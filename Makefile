# Build/test entry points with hard timeouts, so a wedged exploration or
# a blocked run fails the pipeline fast instead of hanging it.
#
#   make ci            — what CI runs: typecheck + full test suite + fault smoke
#   make ci-heavy      — full box: heavy sweeps under ASMSIM_HEAVY=1
#   make smoke         — one sweep per fault tier through the real CLI
#   make smoke-trace   — sweep a seeded bug, export + validate its Chrome trace
#   make smoke-dist    — multi-process runs (with a chaos-killed worker) must
#                        be byte-identical to in-process runs
#   make smoke-net     — the TCP service: serve + chaos-net remote workers,
#                        byte-identical to in-process; SIGTERM drains to 0
#   make smoke-soak    — the soak runner + corpus store: a SIGKILLed-and-
#                        resumed soak must converge on the same corpus as an
#                        uninterrupted one (byte-checked); bit-flips must
#                        quarantine, compaction must preserve the listing
#   make smoke-obs     — fleet observability: serve + chaos-drop workers with
#                        --spans everywhere; `top --once` sees the peers,
#                        stats/--json snapshots are non-empty, and the merged
#                        cross-process trace passes trace-check — while the
#                        sweep stdout stays byte-identical to in-process
#   make smoke-sdl     — the Scenario DSL: check/compile/fmt-fixpoint on the
#                        shipped seeded-bug twin, local sweep byte-identical
#                        to the builtin, then the same source submitted over
#                        TCP — same bytes again; truncated source exits 2
#   make soak-heap     — 60s soak on 4 domains gated on Gc-measured heap
#                        growth (the unbounded-memory detector)
#   make test-heavy    — includes the exhaustive sweeps (ASMSIM_HEAVY=1)
#   make bench-json    — benchmarks as BENCH_svm.json (ns/run + overhead)
#   make bench-gate    — re-time the EX explorer, DIST coordinator, NET
#                        service and SOAK runner families, fail if any row
#                        regressed >1.5x against the committed BENCH_svm.json
#                        or the EXd15/EXp415 par_speedup_ratio fell below 2x

BUILD_TIMEOUT ?= 120
TEST_TIMEOUT ?= 150
SMOKE_TIMEOUT ?= 60
ASMSIM = dune exec --no-print-directory bin/asmsim.exe --

.PHONY: build check test test-heavy ci ci-heavy smoke smoke-trace smoke-dist \
	smoke-net smoke-soak smoke-obs smoke-sdl soak-heap \
	bench-json bench-gate explore-determinism

build:
	dune build

check:
	timeout $(BUILD_TIMEOUT) dune build @check

test:
	timeout $(TEST_TIMEOUT) dune runtest

test-heavy:
	ASMSIM_HEAVY=1 timeout 900 dune runtest --force

# One scenario per fault tier, through the installed CLI — the fast gate
# that the whole sweep→monitor→shrink→replay pipeline still closes.
# The byzantine leg gates on the *expected* integrity violation.
smoke: build
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) sweep --algo safe_agreement --tiers crash
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) sweep --algo x_safe_agreement_abortable --tiers omission
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) sweep --algo bg_sec4 --tiers recovery --budget 40000
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) sweep --algo x_safe_agreement --tiers byzantine \
	  --expect-violation --out _build/smoke.replay
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) replay _build/smoke.replay; test $$? -eq 1

# The observability pipeline end to end: sweep a seeded bug, export the
# shrunk replay as a Chrome trace, validate the JSON (well-formed, a
# span per live pid, the fault instant present), and snapshot metrics.
smoke-trace: build
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) sweep --algo x_safe_agreement_first_subset \
	  --expect-violation --out _build/prof.replay
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) trace _build/prof.replay --format=chrome \
	  --out _build/prof.json
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) trace-check _build/prof.json --require-instants
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) stats _build/prof.replay --out _build/prof.stats.json

# The distributed coordinator through the real CLI: the same seeded-bug
# sweep run in-process and across 2 worker processes — one of which is
# chaos-SIGKILLed mid-shard — must print the same stdout and write a
# byte-identical replay artifact; the grep proves the kill really fired
# (all [dist] chatter goes to stderr, which is why stdout diffs clean).
# Then the same identity for the exhaustive explorer.
smoke-dist: build
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) sweep --algo safe_agreement_no_cancel \
	  --expect-violation --out _build/dist.replay > _build/dist-a.out
	cp _build/dist.replay _build/dist-a.replay
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) sweep --algo safe_agreement_no_cancel \
	  --expect-violation --dist 2 --shard-size 5 --chaos-kill-shard 0 \
	  --out _build/dist.replay > _build/dist-b.out 2> _build/dist-b.err
	diff _build/dist-a.out _build/dist-b.out
	diff _build/dist-a.replay _build/dist.replay
	grep -q chaos _build/dist-b.err
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) explore --algo safe_agreement_no_cancel \
	  --crashes 1 --expect-violation > _build/dist-c.out
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) explore --algo safe_agreement_no_cancel \
	  --crashes 1 --expect-violation --dist 2 --shard-size 7 > _build/dist-d.out
	diff _build/dist-c.out _build/dist-d.out

# The network service end to end, through the real CLI: the same
# seeded-bug sweep run in-process and over loopback TCP — a serve
# daemon and two remote workers, each sabotaging its own writes with a
# different --chaos-net fault — must print the same stdout and write a
# byte-identical replay artifact. The greps prove the chaos really
# fired, and `wait` proves SIGTERM drained the server to exit 0.
smoke-net: build
	rm -rf _build/netsmoke && mkdir -p _build/netsmoke
	set -e; \
	BIN=_build/default/bin/asmsim.exe; D=_build/netsmoke; \
	timeout $(SMOKE_TIMEOUT) $$BIN sweep --algo safe_agreement_no_cancel \
	  --expect-violation --out $$D/net.replay > $$D/a.out; \
	cp $$D/net.replay $$D/a.replay; \
	timeout $(SMOKE_TIMEOUT) $$BIN serve --listen 127.0.0.1:0 \
	  --journal-dir $$D/jobs --metrics-out $$D/srv.metrics.json \
	  2> $$D/srv.err & SRV=$$!; \
	for i in $$(seq 1 100); do \
	  grep -q 'listening on port' $$D/srv.err 2>/dev/null && break; sleep 0.1; \
	done; \
	PORT=$$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' $$D/srv.err | head -1); \
	timeout $(SMOKE_TIMEOUT) $$BIN work --connect 127.0.0.1:$$PORT \
	  --chaos-net drop --chaos-every 3 2> $$D/w1.err & \
	timeout $(SMOKE_TIMEOUT) $$BIN work --connect 127.0.0.1:$$PORT \
	  --chaos-net truncate --chaos-every 5 2> $$D/w2.err & \
	sleep 0.3; \
	timeout $(SMOKE_TIMEOUT) $$BIN sweep --algo safe_agreement_no_cancel \
	  --expect-violation --connect 127.0.0.1:$$PORT \
	  --out $$D/net.replay > $$D/b.out 2> $$D/b.err; \
	kill -TERM $$SRV; wait $$SRV; \
	diff $$D/a.out $$D/b.out; \
	diff $$D/a.replay $$D/net.replay; \
	grep -l chaos $$D/w1.err $$D/w2.err > /dev/null; \
	grep -q draining $$D/srv.err; \
	grep -q net_shards_executed_total $$D/srv.metrics.json

# The Scenario DSL front to back through the real CLI: the shipped twin
# of a seeded-bug builtin must check, compile and reach a fmt fixpoint;
# sweeping it locally must produce the byte-identical stdout and replay
# artifact of the builtin; submitting the *source* over TCP to a
# serve + worker pair must produce the same bytes again; and a
# truncated source must bounce off `sdl check` with exit 2 and a
# spanned error, before anything executes.
smoke-sdl: build
	rm -rf _build/sdlsmoke && mkdir -p _build/sdlsmoke
	set -e; \
	BIN=_build/default/bin/asmsim.exe; D=_build/sdlsmoke; \
	SDL=examples/x_safe_agreement_first_subset.sdl; \
	timeout $(SMOKE_TIMEOUT) $$BIN sdl check $$SDL; \
	timeout $(SMOKE_TIMEOUT) $$BIN sdl compile $$SDL; \
	$$BIN sdl fmt $$SDL > $$D/fmt1.sdl; \
	$$BIN sdl fmt $$D/fmt1.sdl > $$D/fmt2.sdl; \
	diff $$D/fmt1.sdl $$D/fmt2.sdl; \
	timeout $(SMOKE_TIMEOUT) $$BIN sweep --algo x_safe_agreement_first_subset \
	  --expect-violation --out $$D/out.replay > $$D/a.out; \
	cp $$D/out.replay $$D/builtin.replay; \
	timeout $(SMOKE_TIMEOUT) $$BIN sweep --scenario-file $$SDL \
	  --expect-violation --out $$D/out.replay > $$D/b.out; \
	diff $$D/a.out $$D/b.out; \
	diff $$D/builtin.replay $$D/out.replay; \
	head -c 100 $$SDL > $$D/broken.sdl; \
	code=0; $$BIN sdl check $$D/broken.sdl 2> $$D/broken.err || code=$$?; \
	test $$code -eq 2; grep -q 'broken.sdl:' $$D/broken.err; \
	timeout $(SMOKE_TIMEOUT) $$BIN serve --listen 127.0.0.1:0 \
	  --journal-dir $$D/jobs 2> $$D/srv.err & SRV=$$!; \
	for i in $$(seq 1 100); do \
	  grep -q 'listening on port' $$D/srv.err 2>/dev/null && break; sleep 0.1; \
	done; \
	PORT=$$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' $$D/srv.err | head -1); \
	timeout $(SMOKE_TIMEOUT) $$BIN work --connect 127.0.0.1:$$PORT 2> $$D/w.err & \
	sleep 0.3; \
	timeout $(SMOKE_TIMEOUT) $$BIN sweep --scenario-file $$SDL \
	  --expect-violation --connect 127.0.0.1:$$PORT \
	  --out $$D/out.replay > $$D/c.out 2> $$D/c.err; \
	kill -TERM $$SRV; wait $$SRV; \
	diff $$D/a.out $$D/c.out; \
	diff $$D/builtin.replay $$D/out.replay

# The soak runner and its corpus through the real CLI, every robustness
# claim at once:
#   1. a soak of a seeded bug, SIGKILLed mid-append by the store's own
#      torn-write chaos hook and resumed to the same absolute schedule
#      index, must converge on a corpus content-identical (byte-checked
#      via the sorted address listing) to an uninterrupted soak's;
#   2. re-soaking the same range must dedup every finding (0 new);
#   3. a bit-flipped cemented byte must surface as typed quarantine and
#      a --check exit of 1 — never a crash;
#   4. compaction must preserve the listing byte for byte;
#   5. a finding extracted from the corpus must replay (exit 1 = the
#      violation reproduced).
smoke-soak: build
	rm -rf _build/soaksmoke && mkdir -p _build/soaksmoke
	set -e; \
	BIN=_build/default/bin/asmsim.exe; D=_build/soaksmoke; \
	SOAK="--algo safe_agreement_no_cancel --seed 7 --until 120 --batch 40"; \
	timeout $(SMOKE_TIMEOUT) $$BIN soak $$SOAK --corpus $$D/clean \
	  > $$D/clean.out 2> /dev/null; \
	$$BIN corpus $$D/clean --check > /dev/null; \
	$$BIN corpus $$D/clean --list --kind finding > $$D/clean.list; \
	test -s $$D/clean.list; \
	code=0; timeout $(SMOKE_TIMEOUT) $$BIN soak $$SOAK --corpus $$D/chaos \
	  --chaos-store torn --chaos-at 3 > /dev/null 2>&1 || code=$$?; \
	test $$code -eq 137; \
	$$BIN corpus $$D/chaos --check > /dev/null; \
	timeout $(SMOKE_TIMEOUT) $$BIN soak $$SOAK --corpus $$D/chaos --resume \
	  > /dev/null 2> /dev/null; \
	$$BIN corpus $$D/chaos --list --kind finding > $$D/chaos.list; \
	diff $$D/clean.list $$D/chaos.list; \
	timeout $(SMOKE_TIMEOUT) $$BIN soak $$SOAK --corpus $$D/clean \
	  2> /dev/null | grep -q 'findings: 0 new'; \
	timeout $(SMOKE_TIMEOUT) $$BIN soak $$SOAK --corpus $$D/flip \
	  --chaos-store bitflip > /dev/null 2> /dev/null; \
	code=0; $$BIN corpus $$D/flip --check > $$D/flip.check || code=$$?; \
	test $$code -eq 1; \
	grep -q 'digest mismatch' $$D/flip.check; \
	$$BIN corpus $$D/clean --compact 2> /dev/null; \
	$$BIN corpus $$D/clean --list --kind finding > $$D/compacted.list; \
	diff $$D/clean.list $$D/compacted.list; \
	ADDR=$$(head -1 $$D/clean.list | cut -d' ' -f1); \
	$$BIN corpus $$D/clean --cat $$ADDR > $$D/finding.replay; \
	code=0; timeout $(SMOKE_TIMEOUT) $$BIN replay $$D/finding.replay \
	  > /dev/null || code=$$?; \
	test $$code -eq 1

# Fleet observability end to end, through the real CLI: a serve daemon
# and two chaos-drop workers, every process writing a --spans file and
# one worker logging JSON at debug level. The sweep stdout must stay
# byte-identical to the in-process run (all telemetry lives on stderr
# and side files); `top --once' must count both workers and the drained
# queue; `top --json' must carry the worker-pushed fleet counters
# (pushes ride the 0.5s heartbeat pings); `stats --json' must emit a
# one-line snapshot; and the four per-process span files must merge
# into one Chrome trace that passes the same trace-check CI runs on
# single-process exports.
smoke-obs: build
	rm -rf _build/obssmoke && mkdir -p _build/obssmoke
	set -e; \
	BIN=_build/default/bin/asmsim.exe; D=_build/obssmoke; \
	timeout $(SMOKE_TIMEOUT) $$BIN sweep --algo safe_agreement_no_cancel \
	  --expect-violation --out $$D/obs.replay > $$D/a.out; \
	cp $$D/obs.replay $$D/a.replay; \
	timeout $(SMOKE_TIMEOUT) $$BIN serve --listen 127.0.0.1:0 \
	  --journal-dir $$D/jobs --spans $$D/srv.spans --heartbeat-timeout 1 \
	  2> $$D/srv.err & SRV=$$!; \
	for i in $$(seq 1 100); do \
	  grep -q 'listening on port' $$D/srv.err 2>/dev/null && break; sleep 0.1; \
	done; \
	PORT=$$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' $$D/srv.err | head -1); \
	timeout $(SMOKE_TIMEOUT) $$BIN work --connect 127.0.0.1:$$PORT \
	  --chaos-net drop --chaos-every 3 --spans $$D/w1.spans 2> $$D/w1.err & \
	timeout $(SMOKE_TIMEOUT) $$BIN work --connect 127.0.0.1:$$PORT \
	  --chaos-net drop --chaos-every 5 --spans $$D/w2.spans \
	  --log-json --log-level debug 2> $$D/w2.err & \
	for i in $$(seq 1 100); do \
	  $$BIN top --connect 127.0.0.1:$$PORT --once > $$D/top-pre.out \
	    2>/dev/null || true; \
	  grep -q '2 worker(s)' $$D/top-pre.out && break; sleep 0.1; \
	done; \
	grep -q '2 worker(s)' $$D/top-pre.out; \
	timeout $(SMOKE_TIMEOUT) $$BIN sweep --algo safe_agreement_no_cancel \
	  --expect-violation --connect 127.0.0.1:$$PORT --spans $$D/client.spans \
	  --out $$D/obs.replay > $$D/b.out 2> $$D/b.err; \
	diff $$D/a.out $$D/b.out; \
	diff $$D/a.replay $$D/obs.replay; \
	for i in $$(seq 1 100); do \
	  $$BIN top --connect 127.0.0.1:$$PORT --json > $$D/top.json \
	    2>/dev/null || true; \
	  grep -q net_metrics_pushes_total $$D/top.json && break; sleep 0.1; \
	done; \
	grep -q net_metrics_pushes_total $$D/top.json; \
	timeout $(SMOKE_TIMEOUT) $$BIN top --connect 127.0.0.1:$$PORT --once \
	  > $$D/top.out; \
	grep -q 'queue: depth 0' $$D/top.out; \
	grep -Eq '[1-9][0-9]* shard\(s\) executed' $$D/top.out; \
	timeout $(SMOKE_TIMEOUT) $$BIN stats --algo safe_agreement_no_cancel \
	  --json > $$D/stats.json; \
	test -s $$D/stats.json; \
	test $$(wc -l < $$D/stats.json) -eq 1; \
	kill -TERM $$SRV; wait $$SRV; \
	grep -q '"level":"debug"' $$D/w2.err; \
	grep -q chaos $$D/w1.err; \
	timeout $(SMOKE_TIMEOUT) $$BIN trace-merge $$D/srv.spans $$D/w1.spans \
	  $$D/w2.spans $$D/client.spans --out $$D/fleet.json 2> $$D/merge.err; \
	grep -Eq 'across [34] process' $$D/merge.err; \
	timeout $(SMOKE_TIMEOUT) $$BIN trace-check $$D/fleet.json

# Sixty seconds of continuous soaking on 4 domains, gated on the
# Gc-measured major-heap growth after the first batch: the journaled
# arenas, program reuse and per-batch cementing must hold the working
# set flat no matter how long the soak runs.
soak-heap: build
	rm -rf _build/soakheap
	timeout 120 $(ASMSIM) soak --algo safe_agreement --seed 1 --duration 60 \
	  --jobs 4 --corpus _build/soakheap --max-heap-growth 4000000 \
	  2> /dev/null

ci: check
	timeout $(TEST_TIMEOUT) dune runtest
	$(MAKE) smoke
	$(MAKE) smoke-trace
	$(MAKE) smoke-dist
	$(MAKE) smoke-net
	$(MAKE) smoke-soak
	$(MAKE) smoke-obs
	$(MAKE) smoke-sdl
	$(MAKE) explore-determinism

# The parallel explorer must be bit-for-bit deterministic in the job
# count, through the real CLI — both engines:
#   1. the seeded bug (counterexample => the plan-engine fallback
#      defines the verdict): stdout at jobs=8 must diff clean against
#      jobs=1;
#   2. a clean scenario (the work-stealing engine's own result is
#      kept): stdout AND the merged deterministic metrics snapshot
#      (--metrics-out) must diff clean between jobs=1 and jobs=8.
explore-determinism: build
	rm -rf _build/exdet && mkdir -p _build/exdet
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) explore --algo safe_agreement_no_cancel \
	  --expect-violation --jobs 1 > _build/exdet/bug-j1.out
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) explore --algo safe_agreement_no_cancel \
	  --expect-violation --jobs 8 > _build/exdet/bug-j8.out
	diff _build/exdet/bug-j1.out _build/exdet/bug-j8.out
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) explore --algo safe_agreement --jobs 1 \
	  --metrics-out _build/exdet/clean-j1.metrics.json \
	  > _build/exdet/clean-j1.out
	timeout $(SMOKE_TIMEOUT) $(ASMSIM) explore --algo safe_agreement --jobs 8 \
	  --metrics-out _build/exdet/clean-j8.metrics.json \
	  > _build/exdet/clean-j8.out
	diff _build/exdet/clean-j1.out _build/exdet/clean-j8.out
	diff _build/exdet/clean-j1.metrics.json _build/exdet/clean-j8.metrics.json

ci-heavy: ci test-heavy soak-heap

bench-json: build
	timeout 600 dune exec --no-print-directory bench/main.exe -- --json

bench-gate: build
	timeout 300 dune exec --no-print-directory bench/main.exe -- --gate BENCH_svm.json
