# Build/test entry points with hard timeouts, so a wedged exploration or
# a blocked run fails the pipeline fast instead of hanging it.
#
#   make ci            — what CI runs: typecheck + full test suite
#   make test-heavy    — includes the exhaustive sweeps (ASMSIM_HEAVY=1)

BUILD_TIMEOUT ?= 120
TEST_TIMEOUT ?= 150

.PHONY: build check test test-heavy ci

build:
	dune build

check:
	timeout $(BUILD_TIMEOUT) dune build @check

test:
	timeout $(TEST_TIMEOUT) dune runtest

test-heavy:
	ASMSIM_HEAVY=1 timeout 900 dune runtest --force

ci: check
	timeout $(TEST_TIMEOUT) dune runtest
