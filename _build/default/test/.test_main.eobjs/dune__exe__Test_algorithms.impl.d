test/test_algorithms.ml: Adversary Alcotest Core Exec Experiments List Svm Tasks
