test/test_model.ml: Alcotest Core List Printf
