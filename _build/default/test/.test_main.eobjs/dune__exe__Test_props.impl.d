test/test_props.ml: Adversary Array Codec Combin Core Env Exec Experiments Fun Int List Option Printf Prog QCheck QCheck_alcotest Shared_objects Svm Tasks
