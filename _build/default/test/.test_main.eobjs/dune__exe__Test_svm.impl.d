test/test_svm.ml: Adversary Alcotest Array Codec Combin Env Exec Fun List Op Option Printf Prog Rng Svm Trace Univ
