test/test_bg.ml: Adversary Alcotest Codec Core Exec Experiments List Printf Prog Svm Tasks
