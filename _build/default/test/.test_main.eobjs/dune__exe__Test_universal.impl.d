test/test_universal.ml: Adversary Alcotest Array Codec Env Exec Hashtbl List Op Option Printf Prog Svm Trace Univ Universal
