test/test_svm2.ml: Adversary Alcotest Array Codec Env Exec Experiments List Op Option Printf Prog String Svm
