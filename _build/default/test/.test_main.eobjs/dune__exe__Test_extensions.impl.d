test/test_extensions.ml: Adversary Alcotest Array Codec Core Env Exec Experiments Explore Int List Op Printf Prog Shared_objects Svm Tasks Univ
