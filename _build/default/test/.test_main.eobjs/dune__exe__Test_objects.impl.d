test/test_objects.ml: Adversary Alcotest Array Codec Env Exec Fun List Option Printf Prog Shared_objects String Svm
