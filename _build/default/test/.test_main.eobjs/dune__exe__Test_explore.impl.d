test/test_explore.ml: Alcotest Array Codec Env Exec Explore List Prog Svm
