(* Unit tests for the svm substrate: rng, codecs, combinatorics, the
   object environment, adversaries and the scheduler. *)

open Svm

let check = Alcotest.check
let int_list = Alcotest.(list int)

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let sa = List.init 50 (fun _ -> Rng.int a 1000) in
  let sb = List.init 50 (fun _ -> Rng.int b 1000) in
  check int_list "same seed, same stream" sa sb

let rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let sa = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let sb = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" false (sa = sb)

let rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.fail "out of bounds"
  done

let rng_bound_exhaustive () =
  (* Every residue of a small bound is hit. *)
  let r = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int r 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let rng_invalid_bound () =
  let r = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let rng_copy_independent () =
  let a = Rng.create 9 in
  ignore (Rng.int a 100);
  let b = Rng.copy a in
  let va = List.init 10 (fun _ -> Rng.int a 100) in
  let vb = List.init 10 (fun _ -> Rng.int b 100) in
  check int_list "copy continues identically" va vb

let rng_split () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let va = List.init 10 (fun _ -> Rng.int a 1_000_000) in
  let vb = List.init 10 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "split streams differ" false (va = vb)

(* ------------------------------------------------------------------ *)
(* Codec                                                                *)
(* ------------------------------------------------------------------ *)

let codec_roundtrips () =
  check Alcotest.int "int" 42 Codec.(int.prj (int.inj 42));
  check Alcotest.bool "bool" true Codec.(bool.prj (bool.inj true));
  check Alcotest.string "string" "hi" Codec.(string.prj (string.inj "hi"));
  let p = Codec.pair Codec.int Codec.bool in
  check Alcotest.(pair int bool) "pair" (3, false) Codec.(p.prj (p.inj (3, false)));
  let t3 = Codec.triple Codec.int Codec.int Codec.string in
  let v = (1, 2, "x") in
  Alcotest.(check bool) "triple" true (Codec.(t3.prj (t3.inj v)) = v);
  let o = Codec.option Codec.int in
  check Alcotest.(option int) "some" (Some 5) Codec.(o.prj (o.inj (Some 5)));
  check Alcotest.(option int) "none" None Codec.(o.prj (o.inj None));
  let l = Codec.list Codec.int in
  check int_list "list" [ 1; 2; 3 ] Codec.(l.prj (l.inj [ 1; 2; 3 ]));
  let a = Codec.arr Codec.int in
  Alcotest.(check (array int)) "array" [| 4; 5 |] Codec.(a.prj (a.inj [| 4; 5 |]))

let codec_interop () =
  (* Two independently constructed structural codecs interoperate. *)
  let c1 = Codec.pair Codec.int (Codec.list Codec.bool) in
  let c2 = Codec.pair Codec.int (Codec.list Codec.bool) in
  let v = (7, [ true; false ]) in
  Alcotest.(check bool) "cross prj" true (Codec.(c2.prj (c1.inj v)) = v)

let codec_type_error () =
  let u = Codec.int.Codec.inj 1 in
  Alcotest.check_raises "bool of int" (Codec.Type_error "bool") (fun () ->
      ignore (Codec.bool.Codec.prj u))

let codec_nested () =
  let c = Codec.list (Codec.option (Codec.pair Codec.int Codec.string)) in
  let v = [ Some (1, "a"); None; Some (2, "b") ] in
  Alcotest.(check bool) "nested roundtrip" true (Codec.(c.prj (c.inj v)) = v)

let codec_array_copies () =
  let c = Codec.arr Codec.int in
  let original = [| 1; 2; 3 |] in
  let u = c.Codec.inj original in
  original.(0) <- 99;
  check Alcotest.int "inj copied" 1 (c.Codec.prj u).(0);
  let out = c.Codec.prj u in
  out.(1) <- 99;
  check Alcotest.int "prj copied" 2 (c.Codec.prj u).(1)

let codec_assoc () =
  let c = Codec.assoc Codec.int in
  let v = [ (("mem", [ 1; 2 ]), 5); (("xcons", []), 7) ] in
  Alcotest.(check bool) "assoc roundtrip" true (Codec.(c.prj (c.inj v)) = v)

let codec_any_identity () =
  let u = Codec.string.Codec.inj "payload" in
  Alcotest.(check bool) "any is physical identity" true
    (Codec.any.Codec.prj (Codec.any.Codec.inj u) == u)

(* ------------------------------------------------------------------ *)
(* Combin                                                               *)
(* ------------------------------------------------------------------ *)

let combin_counts () =
  List.iter
    (fun (n, k) ->
      check Alcotest.int
        (Printf.sprintf "C(%d,%d)" n k)
        (Combin.binomial n k)
        (List.length (Combin.subsets ~n ~size:k)))
    [ (4, 2); (5, 3); (6, 1); (6, 6); (7, 0); (8, 4) ]

let combin_binomial_values () =
  check Alcotest.int "C(5,2)" 10 (Combin.binomial 5 2);
  check Alcotest.int "C(10,5)" 252 (Combin.binomial 10 5);
  check Alcotest.int "C(3,5)" 0 (Combin.binomial 3 5);
  check Alcotest.int "C(5,-1)" 0 (Combin.binomial 5 (-1));
  check Alcotest.int "C(0,0)" 1 (Combin.binomial 0 0)

let combin_subsets_sorted_lex () =
  let s = Combin.subsets ~n:4 ~size:2 in
  check
    Alcotest.(list int_list)
    "lex order"
    [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ]
    s

let combin_subsets_properties () =
  let s = Combin.subsets ~n:6 ~size:3 in
  List.iter
    (fun sub ->
      check Alcotest.int "size" 3 (List.length sub);
      Alcotest.(check bool) "sorted" true (List.sort compare sub = sub);
      Alcotest.(check bool) "distinct" true
        (List.sort_uniq compare sub = List.sort compare sub);
      Alcotest.(check bool) "in range" true
        (List.for_all (fun e -> e >= 0 && e < 6) sub))
    s;
  check Alcotest.int "no duplicates among subsets"
    (List.length s)
    (List.length (List.sort_uniq compare s))

let combin_floor_div () =
  check Alcotest.int "8/3" 2 (Combin.floor_div 8 3);
  check Alcotest.int "9/3" 3 (Combin.floor_div 9 3);
  check Alcotest.int "0/5" 0 (Combin.floor_div 0 5);
  Alcotest.check_raises "x=0" (Invalid_argument "Combin.floor_div: x must be positive")
    (fun () -> ignore (Combin.floor_div 3 0))

(* ------------------------------------------------------------------ *)
(* Env                                                                  *)
(* ------------------------------------------------------------------ *)

let env () = Env.create ~nprocs:4 ~x:2 ()

let env_register () =
  let e = env () in
  check Alcotest.(option int) "initially empty" None
    (Option.map Codec.int.Codec.prj (Env.apply e ~pid:0 (Op.Reg_read ("r", [ 1 ]))));
  Env.apply e ~pid:1 (Op.Reg_write ("r", [ 1 ], Codec.int.Codec.inj 5));
  check Alcotest.(option int) "read back" (Some 5)
    (Option.map Codec.int.Codec.prj (Env.apply e ~pid:2 (Op.Reg_read ("r", [ 1 ]))));
  (* distinct keys are distinct registers *)
  check Alcotest.(option int) "other key empty" None
    (Option.map Codec.int.Codec.prj (Env.apply e ~pid:2 (Op.Reg_read ("r", [ 2 ]))))

let env_snapshot () =
  let e = env () in
  Env.apply e ~pid:0 (Op.Snap_set ("s", [], Codec.int.Codec.inj 10));
  Env.apply e ~pid:2 (Op.Snap_set ("s", [], Codec.int.Codec.inj 30));
  let view = Env.apply e ~pid:3 (Op.Snap_scan ("s", [])) in
  let ints = Array.map (Option.map Codec.int.Codec.prj) view in
  Alcotest.(check (array (option int)))
    "own components" [| Some 10; None; Some 30; None |] ints

let env_snapshot_scan_is_copy () =
  let e = env () in
  Env.apply e ~pid:0 (Op.Snap_set ("s", [], Codec.int.Codec.inj 1));
  let v1 = Env.apply e ~pid:1 (Op.Snap_scan ("s", [])) in
  Env.apply e ~pid:0 (Op.Snap_set ("s", [], Codec.int.Codec.inj 2));
  check Alcotest.(option int) "old view unchanged" (Some 1)
    (Option.map Codec.int.Codec.prj v1.(0))

let env_ts () =
  let e = env () in
  Alcotest.(check bool) "first wins" true (Env.apply e ~pid:0 (Op.Ts ("t", [])));
  Alcotest.(check bool) "second loses" false (Env.apply e ~pid:1 (Op.Ts ("t", [])));
  Alcotest.(check bool) "other instance fresh" true
    (Env.apply e ~pid:1 (Op.Ts ("t", [ 9 ])))

let env_ts_needs_x2 () =
  let e = Env.create ~nprocs:2 ~x:1 () in
  Alcotest.(check bool) "x=1 refuses test&set" true
    (match Env.apply e ~pid:0 (Op.Ts ("t", [])) with
    | (_ : bool) -> false
    | exception Env.Violation _ -> true)

let env_cons_agreement () =
  let e = env () in
  let d0 =
    Env.apply e ~pid:0 (Op.Cons_propose ("c", [], Codec.int.Codec.inj 7))
  in
  let d1 =
    Env.apply e ~pid:1 (Op.Cons_propose ("c", [], Codec.int.Codec.inj 8))
  in
  check Alcotest.int "first proposal decided" 7 (Codec.int.Codec.prj d0);
  check Alcotest.int "agreement" 7 (Codec.int.Codec.prj d1)

let env_cons_ports () =
  let e = env () in
  ignore (Env.apply e ~pid:0 (Op.Cons_propose ("c", [], Codec.int.Codec.inj 1)));
  ignore (Env.apply e ~pid:1 (Op.Cons_propose ("c", [], Codec.int.Codec.inj 2)));
  (* pid 0 again is fine: already an accessor *)
  ignore (Env.apply e ~pid:0 (Op.Cons_propose ("c", [], Codec.int.Codec.inj 3)));
  Alcotest.(check bool) "third distinct pid refused" true
    (match Env.apply e ~pid:2 (Op.Cons_propose ("c", [], Codec.int.Codec.inj 4)) with
    | (_ : Univ.t) -> false
    | exception Env.Violation _ -> true);
  check int_list "accessors recorded" [ 0; 1 ] (Env.cons_accessors e "c" [])

let env_kset () =
  let e = Env.create ~nprocs:5 ~x:1 ~allow_kset:true () in
  let propose pid v =
    Codec.int.Codec.prj
      (Env.apply e ~pid (Op.Kset_propose ("k", [ 2 ], Codec.int.Codec.inj v)))
  in
  let ds = List.init 5 (fun i -> propose i (100 + i)) in
  let distinct = List.sort_uniq compare ds in
  Alcotest.(check bool) "at most k=2 distinct" true (List.length distinct <= 2);
  Alcotest.(check bool) "validity" true
    (List.for_all (fun d -> d >= 100 && d < 105) ds)

let env_kset_forbidden () =
  let e = env () in
  Alcotest.(check bool) "k-set refused without flag" true
    (match Env.apply e ~pid:0 (Op.Kset_propose ("k", [ 2 ], Codec.int.Codec.inj 1)) with
    | (_ : Univ.t) -> false
    | exception Env.Violation _ -> true)

let env_kind_mismatch () =
  let e = env () in
  Env.apply e ~pid:0 (Op.Reg_write ("obj", [], Codec.int.Codec.inj 1));
  Alcotest.(check bool) "snapshot op on register" true
    (match Env.apply e ~pid:0 (Op.Snap_scan ("obj", [])) with
    | (_ : Univ.t option array) -> false
    | exception Env.Violation _ -> true)

let env_pid_range () =
  let e = env () in
  Alcotest.(check bool) "pid out of range" true
    (match Env.apply e ~pid:4 Op.Yield with
    | () -> false
    | exception Env.Violation _ -> true)

let env_instance_count () =
  let e = env () in
  Env.apply e ~pid:0 (Op.Reg_write ("a", [], Codec.int.Codec.inj 1));
  Env.apply e ~pid:0 (Op.Reg_write ("a", [ 1 ], Codec.int.Codec.inj 1));
  Env.apply e ~pid:0 (Op.Snap_set ("b", [], Codec.int.Codec.inj 1));
  check Alcotest.int "three instances" 3 (Env.instance_count e)

(* ------------------------------------------------------------------ *)
(* Exec + Adversary                                                     *)
(* ------------------------------------------------------------------ *)

open Svm.Prog.Syntax

let counter_prog rounds =
  let rec go n =
    if n = rounds then Prog.return (Codec.int.Codec.inj n)
    else
      let* () = Prog.yield in
      go (n + 1)
  in
  go 0

let exec_all_decide () =
  let e = Env.create ~nprocs:3 ~x:1 () in
  let r =
    Exec.run ~env:e
      ~adversary:(Adversary.round_robin ())
      (Array.init 3 (fun _ -> counter_prog 5))
  in
  check Alcotest.int "all decided" 3 (Exec.decided_count r);
  check int_list "op counts" [ 5; 5; 5 ] (Array.to_list r.Exec.op_counts)

let exec_budget_blocks () =
  let e = Env.create ~nprocs:2 ~x:1 () in
  let spin =
    Prog.loop (fun () -> Prog.map (fun () -> `Again ()) Prog.yield) ()
  in
  let r =
    Exec.run ~budget:100 ~env:e
      ~adversary:(Adversary.round_robin ())
      [| spin; counter_prog 2 |]
  in
  check int_list "spinner blocked" [ 0 ] (Exec.blocked r);
  check Alcotest.int "other decided" 1 (Exec.decided_count r);
  check Alcotest.int "budget consumed" 100 r.Exec.total_steps

let exec_crash_at_local () =
  let e = Env.create ~nprocs:2 ~x:1 () in
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [ Adversary.Crash_at_local { pid = 0; step = 3 } ]
  in
  let r = Exec.run ~env:e ~adversary (Array.init 2 (fun _ -> counter_prog 10)) in
  check int_list "crashed" [ 0 ] r.Exec.crashed;
  check Alcotest.int "crashed after 3 ops" 3 r.Exec.op_counts.(0);
  check Alcotest.int "other decided" 1 (Exec.decided_count r)

let exec_crash_before_op () =
  let e = Env.create ~nprocs:1 ~x:1 () in
  let prog =
    let* () = Prog.yield in
    let* () = Prog.snap_set Codec.int "m" [] 1 in
    let* () = Prog.yield in
    let* () = Prog.snap_set Codec.int "m" [] 2 in
    Prog.return (Codec.int.Codec.inj 0)
  in
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [
        Adversary.Crash_before_op
          {
            pid = 0;
            nth = 1;
            matches = (fun i -> i.Op.kind = Op.Snapshot);
          };
      ]
  in
  let r = Exec.run ~env:e ~adversary [| prog |] in
  check int_list "crashed before 2nd snapshot op" [ 0 ] r.Exec.crashed;
  (* yield, set, yield executed; crash before the second set *)
  check Alcotest.int "three ops done" 3 r.Exec.op_counts.(0);
  check Alcotest.(option int) "first write landed" (Some 1)
    (Option.map Codec.int.Codec.prj (Env.peek_snapshot e "m" [] |> Option.get).(0))

let exec_deterministic () =
  let mk () =
    let e = Env.create ~nprocs:3 ~x:1 () in
    Exec.run ~env:e
      ~adversary:(Adversary.random ~seed:77)
      (Array.init 3 (fun _ -> counter_prog 20))
  in
  let r1 = mk () and r2 = mk () in
  check Alcotest.int "same total steps" r1.Exec.total_steps r2.Exec.total_steps

let exec_trace () =
  let e = Env.create ~nprocs:2 ~x:1 () in
  let r =
    Exec.run ~record_trace:true ~env:e
      ~adversary:(Adversary.round_robin ())
      (Array.init 2 (fun _ -> counter_prog 3))
  in
  match r.Exec.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
      check Alcotest.int "one event per op" 6 (Trace.length t);
      let steps = List.map (fun e -> e.Trace.step) (Trace.events t) in
      Alcotest.(check bool) "steps increasing" true
        (List.sort compare steps = steps)

let exec_wrong_size () =
  let e = Env.create ~nprocs:3 ~x:1 () in
  Alcotest.(check bool) "size mismatch rejected" true
    (match
       Exec.run ~env:e ~adversary:(Adversary.round_robin ())
         [| counter_prog 1 |]
     with
    | (_ : Univ.t Exec.result) -> false
    | exception Invalid_argument _ -> true)

let adversary_round_robin_order () =
  let a = Adversary.round_robin () in
  let p1 = Adversary.pick a ~runnable:[ 0; 1; 2 ] ~global_step:0 in
  let p2 = Adversary.pick a ~runnable:[ 0; 1; 2 ] ~global_step:1 in
  let p3 = Adversary.pick a ~runnable:[ 0; 1; 2 ] ~global_step:2 in
  let p4 = Adversary.pick a ~runnable:[ 0; 1; 2 ] ~global_step:3 in
  check int_list "cycles" [ 0; 1; 2; 0 ] [ p1; p2; p3; p4 ]

let adversary_round_robin_skips () =
  let a = Adversary.round_robin () in
  let p1 = Adversary.pick a ~runnable:[ 1; 3 ] ~global_step:0 in
  let p2 = Adversary.pick a ~runnable:[ 1; 3 ] ~global_step:1 in
  let p3 = Adversary.pick a ~runnable:[ 1 ] ~global_step:2 in
  check int_list "skips missing" [ 1; 3; 1 ] [ p1; p2; p3 ]

let adversary_priority () =
  let a = Adversary.priority [ 2; 0 ] in
  check Alcotest.int "prefers 2" 2 (Adversary.pick a ~runnable:[ 0; 1; 2 ] ~global_step:0);
  check Alcotest.int "then 0" 0 (Adversary.pick a ~runnable:[ 0; 1 ] ~global_step:1);
  check Alcotest.int "then lowest unlisted" 1
    (Adversary.pick a ~runnable:[ 1; 3 ] ~global_step:2)

let adversary_crash_count () =
  let e = Env.create ~nprocs:2 ~x:1 () in
  let a =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [
        Adversary.Crash_at_local { pid = 0; step = 0 };
        Adversary.Crash_at_local { pid = 1; step = 0 };
      ]
  in
  ignore (Exec.run ~env:e ~adversary:a (Array.init 2 (fun _ -> counter_prog 5)));
  check Alcotest.int "both crashes counted" 2 (Adversary.crash_count a)

let trace_limit () =
  let t = Trace.create ~limit:10 () in
  for i = 0 to 24 do
    Trace.add t { Trace.step = i; pid = 0; info = None }
  done;
  Alcotest.(check bool) "dropped some" true (Trace.dropped t > 0);
  let evs = Trace.events t in
  check Alcotest.int "keeps the newest" 24
    (List.fold_left (fun _ e -> e.Trace.step) (-1) evs)

let suite =
  [
    ( "svm.rng",
      [
        Alcotest.test_case "deterministic" `Quick rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick rng_seeds_differ;
        Alcotest.test_case "bounds" `Quick rng_bounds;
        Alcotest.test_case "all residues" `Quick rng_bound_exhaustive;
        Alcotest.test_case "invalid bound" `Quick rng_invalid_bound;
        Alcotest.test_case "copy" `Quick rng_copy_independent;
        Alcotest.test_case "split" `Quick rng_split;
      ] );
    ( "svm.codec",
      [
        Alcotest.test_case "roundtrips" `Quick codec_roundtrips;
        Alcotest.test_case "interop" `Quick codec_interop;
        Alcotest.test_case "type error" `Quick codec_type_error;
        Alcotest.test_case "nested" `Quick codec_nested;
        Alcotest.test_case "array copies" `Quick codec_array_copies;
        Alcotest.test_case "assoc" `Quick codec_assoc;
        Alcotest.test_case "any identity" `Quick codec_any_identity;
      ] );
    ( "svm.combin",
      [
        Alcotest.test_case "counts" `Quick combin_counts;
        Alcotest.test_case "binomial values" `Quick combin_binomial_values;
        Alcotest.test_case "lex order" `Quick combin_subsets_sorted_lex;
        Alcotest.test_case "subset properties" `Quick combin_subsets_properties;
        Alcotest.test_case "floor_div" `Quick combin_floor_div;
      ] );
    ( "svm.env",
      [
        Alcotest.test_case "register" `Quick env_register;
        Alcotest.test_case "snapshot" `Quick env_snapshot;
        Alcotest.test_case "scan is copy" `Quick env_snapshot_scan_is_copy;
        Alcotest.test_case "test&set" `Quick env_ts;
        Alcotest.test_case "test&set needs x>=2" `Quick env_ts_needs_x2;
        Alcotest.test_case "consensus agreement" `Quick env_cons_agreement;
        Alcotest.test_case "consensus ports" `Quick env_cons_ports;
        Alcotest.test_case "k-set" `Quick env_kset;
        Alcotest.test_case "k-set forbidden" `Quick env_kset_forbidden;
        Alcotest.test_case "kind mismatch" `Quick env_kind_mismatch;
        Alcotest.test_case "pid range" `Quick env_pid_range;
        Alcotest.test_case "instance count" `Quick env_instance_count;
      ] );
    ( "svm.exec",
      [
        Alcotest.test_case "all decide" `Quick exec_all_decide;
        Alcotest.test_case "budget blocks" `Quick exec_budget_blocks;
        Alcotest.test_case "crash at local step" `Quick exec_crash_at_local;
        Alcotest.test_case "crash before op" `Quick exec_crash_before_op;
        Alcotest.test_case "deterministic" `Quick exec_deterministic;
        Alcotest.test_case "trace" `Quick exec_trace;
        Alcotest.test_case "wrong size" `Quick exec_wrong_size;
      ] );
    ( "svm.adversary",
      [
        Alcotest.test_case "round robin order" `Quick adversary_round_robin_order;
        Alcotest.test_case "round robin skips" `Quick adversary_round_robin_skips;
        Alcotest.test_case "priority" `Quick adversary_priority;
        Alcotest.test_case "crash count" `Quick adversary_crash_count;
        Alcotest.test_case "trace limit" `Quick trace_limit;
      ] );
  ]
