(* Unit tests for the shared-object constructions: safe agreement,
   tournament test&set, x_compete, x_safe_agreement and the Afek
   snapshot. *)

open Svm
open Svm.Prog.Syntax

let check = Alcotest.check

let run ?budget ?(x = 2) ?(adversary = Adversary.round_robin ()) ~nprocs make =
  let env = Env.create ~nprocs ~x () in
  let progs = Array.init nprocs make in
  (Exec.run ?budget ~env ~adversary progs, env)

let ints r = List.map Codec.int.Codec.prj (Exec.decided r)

(* ------------------------------------------------------------------ *)
(* Safe agreement                                                       *)
(* ------------------------------------------------------------------ *)

let sa_participant sa i =
  let* () =
    Shared_objects.Safe_agreement.propose sa ~key:[] (Codec.int.Codec.inj i)
  in
  Shared_objects.Safe_agreement.decide sa ~key:[]

let sa_single () =
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let r, _ = run ~nprocs:1 ~x:1 (sa_participant sa) in
  check Alcotest.(list int) "sole proposer decides own value" [ 0 ] (ints r)

let sa_agreement_all_schedules () =
  (* 3 processes, every seed: same decided value, and it is someone's
     proposal. *)
  List.iter
    (fun seed ->
      let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
      let r, _ =
        run ~nprocs:3 ~x:1 ~adversary:(Adversary.random ~seed) (sa_participant sa)
      in
      match ints r with
      | [ a; b; c ] when a = b && b = c && a >= 0 && a < 3 -> ()
      | other ->
          Alcotest.fail
            (Printf.sprintf "seed %d: bad decisions [%s]" seed
               (String.concat ";" (List.map string_of_int other))))
    (List.init 30 (fun i -> i))

let sa_instances_independent () =
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let participant i =
    let key = [ i mod 2 ] in
    let* () =
      Shared_objects.Safe_agreement.propose sa ~key (Codec.int.Codec.inj (10 + i))
    in
    Shared_objects.Safe_agreement.decide sa ~key
  in
  let r, _ = run ~nprocs:4 ~x:1 participant in
  match ints r with
  | [ a; b; c; d ] ->
      Alcotest.(check bool) "instance 0 agrees" true (a = c && (a = 10 || a = 12));
      Alcotest.(check bool) "instance 1 agrees" true (b = d && (b = 11 || b = 13))
  | _ -> Alcotest.fail "wrong arity"

let sa_peek () =
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let r, env = run ~nprocs:2 ~x:1 (sa_participant sa) in
  ignore r;
  match Shared_objects.Safe_agreement.peek_decided env sa ~key:[] with
  | Some v -> Alcotest.(check bool) "peek matches" true (Codec.int.Codec.prj v < 2)
  | None -> Alcotest.fail "no decided value"

(* ------------------------------------------------------------------ *)
(* Tournament test&set                                                  *)
(* ------------------------------------------------------------------ *)

let ts_winner_unique () =
  List.iter
    (fun nprocs ->
      List.iter
        (fun seed ->
          let ts =
            Shared_objects.Ts_from_cons.make ~fam:"TS" ~participants:nprocs
          in
          let r, _ =
            run ~nprocs ~adversary:(Adversary.random ~seed) (fun i ->
                Prog.map Codec.bool.Codec.inj
                  (Shared_objects.Ts_from_cons.compete ts ~key:[] ~pid:i))
          in
          let winners =
            Exec.decided r |> List.map Codec.bool.Codec.prj
            |> List.filter Fun.id |> List.length
          in
          check Alcotest.int
            (Printf.sprintf "n=%d seed=%d" nprocs seed)
            1 winners)
        [ 1; 2; 3; 4; 5 ])
    [ 1; 2; 3; 4; 5; 7 ]

let ts_sole_competitor_wins () =
  let ts = Shared_objects.Ts_from_cons.make ~fam:"TS" ~participants:5 in
  let r, _ =
    run ~nprocs:5 (fun i ->
        if i = 3 then
          Prog.map Codec.bool.Codec.inj
            (Shared_objects.Ts_from_cons.compete ts ~key:[] ~pid:i)
        else Prog.return (Codec.bool.Codec.inj false))
  in
  let winners =
    Exec.decided r |> List.map Codec.bool.Codec.prj |> List.filter Fun.id
  in
  check Alcotest.int "sole competitor wins" 1 (List.length winners)

let ts_keys_independent () =
  let ts = Shared_objects.Ts_from_cons.make ~fam:"TS" ~participants:4 in
  let r, _ =
    run ~nprocs:4 (fun i ->
        Prog.map Codec.bool.Codec.inj
          (Shared_objects.Ts_from_cons.compete ts ~key:[ i / 2 ] ~pid:i))
  in
  let winners =
    Exec.decided r |> List.map Codec.bool.Codec.prj |> List.filter Fun.id
  in
  check Alcotest.int "one winner per key" 2 (List.length winners)

let ts_port_discipline_respected () =
  (* The tournament must only ever put 2 distinct pids on one consensus
     object; the environment would raise otherwise. 7 participants makes
     an unbalanced bracket. *)
  let ts = Shared_objects.Ts_from_cons.make ~fam:"TS" ~participants:7 in
  let r, _ =
    run ~nprocs:7 ~adversary:(Adversary.random ~seed:3) (fun i ->
        Prog.map Codec.bool.Codec.inj
          (Shared_objects.Ts_from_cons.compete ts ~key:[] ~pid:i))
  in
  check Alcotest.int "all returned" 7 (Exec.decided_count r)

(* ------------------------------------------------------------------ *)
(* x_compete                                                            *)
(* ------------------------------------------------------------------ *)

let xc_bound () =
  List.iter
    (fun (m, x) ->
      List.iter
        (fun seed ->
          let xc = Shared_objects.X_compete.make ~fam:"XC" ~participants:m ~x in
          let r, _ =
            run ~nprocs:m ~adversary:(Adversary.random ~seed) (fun i ->
                Prog.map Codec.bool.Codec.inj
                  (Shared_objects.X_compete.compete xc ~key:[] ~pid:i))
          in
          let winners =
            Exec.decided r |> List.map Codec.bool.Codec.prj
            |> List.filter Fun.id |> List.length
          in
          Alcotest.(check bool)
            (Printf.sprintf "m=%d x=%d seed=%d" m x seed)
            true
            (winners = min m x))
        [ 1; 2; 3 ])
    [ (4, 1); (4, 2); (4, 3); (5, 4); (3, 3) ]

(* ------------------------------------------------------------------ *)
(* x_safe_agreement                                                     *)
(* ------------------------------------------------------------------ *)

let xsa_participant xsa i =
  let* () =
    Shared_objects.X_safe_agreement.propose xsa ~key:[] ~pid:i
      (Codec.int.Codec.inj (50 + i))
  in
  Shared_objects.X_safe_agreement.decide xsa ~key:[] ~pid:i

let xsa_agreement () =
  List.iter
    (fun (m, x) ->
      List.iter
        (fun seed ->
          let xsa =
            Shared_objects.X_safe_agreement.make ~fam:"XSA" ~participants:m ~x ()
          in
          let r, _ =
            run ~nprocs:m ~x:(max 2 x) ~adversary:(Adversary.random ~seed)
              (xsa_participant xsa)
          in
          let ds = ints r in
          Alcotest.(check bool)
            (Printf.sprintf "m=%d x=%d seed=%d" m x seed)
            true
            (List.length ds = m
            && List.for_all (fun d -> d = List.hd ds) ds
            && List.hd ds >= 50
            && List.hd ds < 50 + m))
        [ 1; 2; 3; 4; 5 ])
    [ (3, 2); (4, 2); (4, 3); (5, 3); (2, 2) ]

let xsa_subsets () =
  let xsa = Shared_objects.X_safe_agreement.make ~fam:"XSA" ~participants:4 ~x:2 () in
  check Alcotest.int "C(4,2) subsets" 6
    (List.length (Shared_objects.X_safe_agreement.subsets xsa))

let xsa_bad_args () =
  Alcotest.(check bool) "participants < x rejected" true
    (match Shared_objects.X_safe_agreement.make ~fam:"X" ~participants:2 ~x:3 () with
    | (_ : Shared_objects.X_safe_agreement.t) -> false
    | exception Invalid_argument _ -> true)

let xsa_peek () =
  let xsa = Shared_objects.X_safe_agreement.make ~fam:"XSA" ~participants:3 ~x:2 () in
  let _, env = run ~nprocs:3 (xsa_participant xsa) in
  match Shared_objects.X_safe_agreement.peek_decided env xsa ~key:[] with
  | Some _ -> ()
  | None -> Alcotest.fail "no decided value"

let xsa_keys_independent () =
  let xsa = Shared_objects.X_safe_agreement.make ~fam:"XSA" ~participants:4 ~x:2 () in
  let participant i =
    let key = [ i mod 2 ] in
    let* () =
      Shared_objects.X_safe_agreement.propose xsa ~key ~pid:i
        (Codec.int.Codec.inj (70 + i))
    in
    Shared_objects.X_safe_agreement.decide xsa ~key ~pid:i
  in
  let r, _ = run ~nprocs:4 participant in
  match ints r with
  | [ a; b; c; d ] ->
      Alcotest.(check bool) "key 0" true (a = c && (a = 70 || a = 72));
      Alcotest.(check bool) "key 1" true (b = d && (b = 71 || b = 73))
  | _ -> Alcotest.fail "wrong arity"

(* ------------------------------------------------------------------ *)
(* Afek snapshot                                                        *)
(* ------------------------------------------------------------------ *)

let afek_sequential () =
  let snap = Shared_objects.Afek_snapshot.make ~fam:"AF" ~nprocs:2 in
  let prog =
    let* () =
      Shared_objects.Afek_snapshot.update snap ~pid:0 (Codec.int.Codec.inj 5)
    in
    let* v = Shared_objects.Afek_snapshot.scan snap ~pid:0 in
    Prog.return
      (Codec.(arr (option int)).Codec.inj (Array.map (Option.map Codec.int.Codec.prj) v))
  in
  let env = Env.create ~nprocs:2 ~x:1 () in
  let r =
    Exec.run ~env
      ~adversary:(Adversary.round_robin ())
      [| prog; Prog.return (Codec.int.Codec.inj 0) |]
  in
  match r.Exec.outcomes.(0) with
  | Exec.Decided u ->
      Alcotest.(check (array (option int)))
        "sees own update" [| Some 5; None |]
        (Codec.(arr (option int)).Codec.prj u)
  | _ -> Alcotest.fail "did not decide"

let afek_empty_scan () =
  let snap = Shared_objects.Afek_snapshot.make ~fam:"AF" ~nprocs:3 in
  let prog =
    let* v = Shared_objects.Afek_snapshot.scan snap ~pid:0 in
    Prog.return (Codec.int.Codec.inj (Array.length v))
  in
  let env = Env.create ~nprocs:3 ~x:1 () in
  let r =
    Exec.run ~env
      ~adversary:(Adversary.round_robin ())
      [| prog;
         Prog.return (Codec.int.Codec.inj 0);
         Prog.return (Codec.int.Codec.inj 0);
      |]
  in
  match r.Exec.outcomes.(0) with
  | Exec.Decided u -> check Alcotest.int "width" 3 (Codec.int.Codec.prj u)
  | _ -> Alcotest.fail "did not decide"

let suite =
  [
    ( "objects.safe_agreement",
      [
        Alcotest.test_case "single proposer" `Quick sa_single;
        Alcotest.test_case "agreement across schedules" `Quick
          sa_agreement_all_schedules;
        Alcotest.test_case "instances independent" `Quick sa_instances_independent;
        Alcotest.test_case "peek" `Quick sa_peek;
      ] );
    ( "objects.ts_from_cons",
      [
        Alcotest.test_case "unique winner" `Quick ts_winner_unique;
        Alcotest.test_case "sole competitor" `Quick ts_sole_competitor_wins;
        Alcotest.test_case "keys independent" `Quick ts_keys_independent;
        Alcotest.test_case "port discipline" `Quick ts_port_discipline_respected;
      ] );
    ( "objects.x_compete",
      [ Alcotest.test_case "winner bound" `Quick xc_bound ] );
    ( "objects.x_safe_agreement",
      [
        Alcotest.test_case "agreement+validity" `Quick xsa_agreement;
        Alcotest.test_case "subsets" `Quick xsa_subsets;
        Alcotest.test_case "bad args" `Quick xsa_bad_args;
        Alcotest.test_case "peek" `Quick xsa_peek;
        Alcotest.test_case "keys independent" `Quick xsa_keys_independent;
      ] );
    ( "objects.afek_snapshot",
      [
        Alcotest.test_case "sequential" `Quick afek_sequential;
        Alcotest.test_case "empty scan" `Quick afek_empty_scan;
      ] );
  ]
