(* Native runs of the directly-programmed task algorithms. *)

open Svm

let check = Alcotest.check

let run_task ?(budget = 200_000) ~alg ~task ~seed ~max_crashes () =
  Experiments.Runner.one_run ~budget ~task ~alg ~seed ~max_crashes ()

let assert_valid_live ~task run =
  (match Experiments.Runner.validate ~task run with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("validity: " ^ m));
  check Alcotest.(list int) "nobody blocked" []
    (Exec.blocked run.Experiments.Runner.result)

(* ------------------------------------------------------------------ *)
(* kset_read_write                                                      *)
(* ------------------------------------------------------------------ *)

let kset_rw_sweep () =
  let alg = Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3 in
  let task = Tasks.Task.kset ~k:3 in
  List.iter
    (fun seed ->
      assert_valid_live ~task (run_task ~alg ~task ~seed ~max_crashes:2 ()))
    (List.init 25 (fun i -> i))

let kset_rw_distinct_bound () =
  (* Never more than t+1 distinct decisions, even with k larger. *)
  let alg = Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:5 in
  let task = Tasks.Task.kset ~k:5 in
  let max_distinct = ref 0 in
  List.iter
    (fun seed ->
      let r = run_task ~alg ~task ~seed ~max_crashes:2 () in
      let d =
        List.length (Tasks.Task.distinct (Experiments.Runner.decisions r))
      in
      if d > !max_distinct then max_distinct := d)
    (List.init 40 (fun i -> i));
  Alcotest.(check bool) "at most t+1 = 3 distinct" true (!max_distinct <= 3)

let kset_rw_rejects_t_ge_k () =
  Alcotest.(check bool) "t >= k rejected" true
    (match Tasks.Algorithms.kset_read_write ~n:5 ~t:3 ~k:3 with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true)

let kset_rw_blocks_beyond_resilience () =
  (* Crash t+1 processes before anyone writes: fewer than n - t inputs
     ever appear, every survivor spins. *)
  let alg = Tasks.Algorithms.kset_read_write ~n:4 ~t:1 ~k:2 in
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [
        Adversary.Crash_at_local { pid = 0; step = 0 };
        Adversary.Crash_at_local { pid = 1; step = 0 };
      ]
  in
  let r =
    Core.Run.run_ints ~budget:5_000 ~alg ~inputs:[ 1; 2; 3; 4 ] ~adversary ()
  in
  check Alcotest.(list int) "survivors blocked" [ 2; 3 ] (Exec.blocked r)

(* ------------------------------------------------------------------ *)
(* consensus                                                            *)
(* ------------------------------------------------------------------ *)

let consensus_zero_resilient () =
  let alg = Tasks.Algorithms.consensus_zero_resilient ~n:4 in
  let task = Tasks.Task.consensus in
  List.iter
    (fun seed ->
      let r = run_task ~alg ~task ~seed ~max_crashes:0 () in
      assert_valid_live ~task r;
      check Alcotest.int "all four decide" 4
        (List.length (Experiments.Runner.decisions r)))
    (List.init 15 (fun i -> i))

let consensus_direct_with_crashes () =
  let alg = Tasks.Algorithms.consensus_direct ~n:5 ~t:4 in
  let task = Tasks.Task.consensus in
  List.iter
    (fun seed ->
      let r = run_task ~alg ~task ~seed ~max_crashes:4 () in
      assert_valid_live ~task r)
    (List.init 15 (fun i -> i))

let consensus_direct_decides_first_proposal () =
  let alg = Tasks.Algorithms.consensus_direct ~n:3 ~t:2 in
  let r =
    Core.Run.run_ints ~alg ~inputs:[ 10; 20; 30 ]
      ~adversary:(Adversary.priority [ 2; 1; 0 ])
      ()
  in
  check Alcotest.(list int) "p2 ran first" [ 30; 30; 30 ] (Exec.decided r)

(* ------------------------------------------------------------------ *)
(* kset_grouped                                                         *)
(* ------------------------------------------------------------------ *)

let kset_grouped_sweep () =
  let alg = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  let task = Tasks.Task.kset ~k:3 in
  List.iter
    (fun seed ->
      assert_valid_live ~task (run_task ~alg ~task ~seed ~max_crashes:4 ()))
    (List.init 25 (fun i -> i))

let kset_grouped_distinct_bound () =
  (* Decisions bounded by floor(t/x) + 1 = 3, tighter than t + 1 = 5. *)
  let alg = Tasks.Algorithms.kset_grouped ~n:8 ~t:4 ~x:2 ~k:5 in
  let task = Tasks.Task.kset ~k:5 in
  let max_distinct = ref 0 in
  List.iter
    (fun seed ->
      let r = run_task ~alg ~task ~seed ~max_crashes:4 () in
      let d =
        List.length (Tasks.Task.distinct (Experiments.Runner.decisions r))
      in
      if d > !max_distinct then max_distinct := d)
    (List.init 40 (fun i -> i));
  Alcotest.(check bool) "at most floor(4/2)+1 = 3 distinct" true
    (!max_distinct <= 3)

let kset_grouped_requires_divisibility () =
  Alcotest.(check bool) "x does not divide n" true
    (match Tasks.Algorithms.kset_grouped ~n:5 ~t:2 ~x:2 ~k:2 with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* renaming                                                             *)
(* ------------------------------------------------------------------ *)

let renaming_sweep () =
  let n = 6 in
  let alg = Tasks.Algorithms.renaming_read_write ~n ~t:2 in
  let task = Tasks.Task.renaming ~slots:((2 * n) - 1) in
  List.iter
    (fun seed ->
      assert_valid_live ~task (run_task ~alg ~task ~seed ~max_crashes:2 ()))
    (List.init 30 (fun i -> i))

let renaming_wait_free () =
  (* Even wait-free (t = n-1), renaming terminates and names stay in
     2n-1. *)
  let n = 4 in
  let alg = Tasks.Algorithms.renaming_read_write ~n ~t:(n - 1) in
  let task = Tasks.Task.renaming ~slots:((2 * n) - 1) in
  List.iter
    (fun seed ->
      assert_valid_live ~task (run_task ~alg ~task ~seed ~max_crashes:(n - 1) ()))
    (List.init 20 (fun i -> i))

let renaming_contention_hits_high_names () =
  (* Under a round-robin schedule all processes collide initially, so
     some process must move beyond name n at least in some schedule. *)
  let n = 5 in
  let alg = Tasks.Algorithms.renaming_read_write ~n ~t:0 in
  let inputs = [ 10; 20; 30; 40; 50 ] in
  let r =
    Core.Run.run_ints ~alg ~inputs ~adversary:(Adversary.round_robin ()) ()
  in
  let names = Exec.decided r in
  Alcotest.(check bool) "distinct" true
    (List.length (Tasks.Task.distinct names) = n);
  Alcotest.(check bool) "within 2n-1" true
    (List.for_all (fun v -> v >= 1 && v <= (2 * n) - 1) names)

(* ------------------------------------------------------------------ *)
(* trivial                                                              *)
(* ------------------------------------------------------------------ *)

let trivial_decides_own () =
  let alg = Tasks.Algorithms.trivial ~n:3 ~t:1 in
  let r =
    Core.Run.run_ints ~alg ~inputs:[ 7; 8; 9 ]
      ~adversary:(Adversary.round_robin ())
      ()
  in
  check Alcotest.(list int) "own inputs" [ 7; 8; 9 ] (Exec.decided r)

(* ------------------------------------------------------------------ *)
(* task definitions                                                     *)
(* ------------------------------------------------------------------ *)

let task_kset_validate () =
  let task = Tasks.Task.kset ~k:2 in
  let v ~decisions =
    task.Tasks.Task.validate ~inputs:[ 1; 2; 3 ] ~decisions
  in
  Alcotest.(check bool) "ok" true (v ~decisions:[ 1; 2; 2 ] = Ok ());
  Alcotest.(check bool) "too many distinct" true
    (match v ~decisions:[ 1; 2; 3 ] with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "not proposed" true
    (match v ~decisions:[ 9 ] with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "empty decisions ok" true (v ~decisions:[] = Ok ())

let task_renaming_validate () =
  let task = Tasks.Task.renaming ~slots:7 in
  let v ~decisions =
    task.Tasks.Task.validate ~inputs:[ 11; 22; 33 ] ~decisions
  in
  Alcotest.(check bool) "ok" true (v ~decisions:[ 1; 7; 3 ] = Ok ());
  Alcotest.(check bool) "duplicate" true
    (match v ~decisions:[ 2; 2 ] with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "out of range" true
    (match v ~decisions:[ 8 ] with Error _ -> true | Ok () -> false)

let task_inputs_distinct_for_renaming () =
  let task = Tasks.Task.renaming ~slots:11 in
  let inputs = task.Tasks.Task.gen_inputs ~seed:5 ~n:6 in
  check Alcotest.int "distinct originals" 6
    (List.length (Tasks.Task.distinct inputs))

let suite =
  [
    ( "algorithms.kset_rw",
      [
        Alcotest.test_case "validity sweep" `Quick kset_rw_sweep;
        Alcotest.test_case "distinct bound t+1" `Quick kset_rw_distinct_bound;
        Alcotest.test_case "rejects t >= k" `Quick kset_rw_rejects_t_ge_k;
        Alcotest.test_case "blocks beyond resilience" `Quick
          kset_rw_blocks_beyond_resilience;
      ] );
    ( "algorithms.consensus",
      [
        Alcotest.test_case "0-resilient" `Quick consensus_zero_resilient;
        Alcotest.test_case "direct with crashes" `Quick
          consensus_direct_with_crashes;
        Alcotest.test_case "first proposal wins" `Quick
          consensus_direct_decides_first_proposal;
      ] );
    ( "algorithms.kset_grouped",
      [
        Alcotest.test_case "validity sweep" `Quick kset_grouped_sweep;
        Alcotest.test_case "distinct bound floor(t/x)+1" `Quick
          kset_grouped_distinct_bound;
        Alcotest.test_case "requires x | n" `Quick
          kset_grouped_requires_divisibility;
      ] );
    ( "algorithms.renaming",
      [
        Alcotest.test_case "validity sweep" `Quick renaming_sweep;
        Alcotest.test_case "wait-free" `Quick renaming_wait_free;
        Alcotest.test_case "contention" `Quick renaming_contention_hits_high_names;
      ] );
    ( "algorithms.misc",
      [
        Alcotest.test_case "trivial" `Quick trivial_decides_own;
        Alcotest.test_case "kset validator" `Quick task_kset_validate;
        Alcotest.test_case "renaming validator" `Quick task_renaming_validate;
        Alcotest.test_case "renaming inputs distinct" `Quick
          task_inputs_distinct_for_renaming;
      ] );
  ]
