(* Unit tests for the model algebra (Sections 1.2, 5.2-5.5). *)

let check = Alcotest.check
let m = Core.Model.make

let make_validates () =
  let rejected f = match f () with
    | (_ : Core.Model.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "t >= n" true (rejected (fun () -> m ~n:3 ~t:3 ~x:1));
  Alcotest.(check bool) "t < 0" true (rejected (fun () -> m ~n:3 ~t:(-1) ~x:1));
  Alcotest.(check bool) "x = 0" true (rejected (fun () -> m ~n:3 ~t:1 ~x:0));
  Alcotest.(check bool) "x > n" true (rejected (fun () -> m ~n:3 ~t:1 ~x:4));
  Alcotest.(check bool) "n = 0" true (rejected (fun () -> m ~n:0 ~t:0 ~x:1));
  Alcotest.(check bool) "t = 0 allowed" true
    (match m ~n:3 ~t:0 ~x:1 with (_ : Core.Model.t) -> true
     | exception Invalid_argument _ -> false)

let power () =
  check Alcotest.int "8/1" 8 (Core.Model.power (m ~n:10 ~t:8 ~x:1));
  check Alcotest.int "8/2" 4 (Core.Model.power (m ~n:10 ~t:8 ~x:2));
  check Alcotest.int "8/3" 2 (Core.Model.power (m ~n:10 ~t:8 ~x:3));
  check Alcotest.int "8/4" 2 (Core.Model.power (m ~n:10 ~t:8 ~x:4));
  check Alcotest.int "8/5" 1 (Core.Model.power (m ~n:10 ~t:8 ~x:5));
  check Alcotest.int "8/9" 0 (Core.Model.power (m ~n:10 ~t:8 ~x:9));
  check Alcotest.int "0/1" 0 (Core.Model.power (m ~n:10 ~t:0 ~x:1))

let equivalence () =
  Alcotest.(check bool) "ASM(10,8,3) ~ ASM(10,8,4)" true
    (Core.Model.equivalent (m ~n:10 ~t:8 ~x:3) (m ~n:10 ~t:8 ~x:4));
  Alcotest.(check bool) "ASM(10,8,2) !~ ASM(10,8,3)" false
    (Core.Model.equivalent (m ~n:10 ~t:8 ~x:2) (m ~n:10 ~t:8 ~x:3));
  Alcotest.(check bool) "different n, same power" true
    (Core.Model.equivalent (m ~n:6 ~t:4 ~x:2) (m ~n:50 ~t:2 ~x:1))

let canonical () =
  let c = Core.Model.canonical (m ~n:10 ~t:8 ~x:3) in
  Alcotest.(check bool) "ASM(10,2,1)" true (Core.Model.equal c (m ~n:10 ~t:2 ~x:1));
  Alcotest.(check bool) "canonical idempotent" true
    (Core.Model.equal (Core.Model.canonical c) c);
  Alcotest.(check bool) "canonical equivalent" true
    (Core.Model.equivalent c (m ~n:10 ~t:8 ~x:3));
  let bg = Core.Model.bg_canonical (m ~n:10 ~t:8 ~x:3) in
  Alcotest.(check bool) "BG canonical ASM(3,2,1)" true
    (Core.Model.equal bg (m ~n:3 ~t:2 ~x:1));
  Alcotest.(check bool) "BG canonical wait-free" true (Core.Model.wait_free bg)

let hierarchy () =
  Alcotest.(check bool) "ASM(n,3,1) stronger than ASM(n,4,1)" true
    (Core.Model.stronger (m ~n:8 ~t:3 ~x:1) (m ~n:8 ~t:4 ~x:1));
  Alcotest.(check bool) "not stronger than itself" false
    (Core.Model.stronger (m ~n:8 ~t:3 ~x:1) (m ~n:8 ~t:3 ~x:1));
  Alcotest.(check bool) "x boosts strength across floor boundary" true
    (Core.Model.stronger (m ~n:8 ~t:4 ~x:2) (m ~n:8 ~t:4 ~x:1))

let windows () =
  check Alcotest.(pair int int) "t=2 x=3" (6, 8) (Core.Model.window_bounds ~t:2 ~x:3);
  check Alcotest.(pair int int) "t=0 x=4" (0, 3) (Core.Model.window_bounds ~t:0 ~x:4);
  check Alcotest.(option int) "window t'=8 x=3" (Some 2)
    (Core.Model.equivalence_window ~t':8 ~x:3);
  check Alcotest.(option int) "bad input" None
    (Core.Model.equivalence_window ~t':(-1) ~x:3);
  (* window_bounds and equivalence_window are inverse. *)
  for t = 0 to 6 do
    for x = 1 to 6 do
      let lo, hi = Core.Model.window_bounds ~t ~x in
      for t' = lo to hi do
        check Alcotest.(option int)
          (Printf.sprintf "t=%d x=%d t'=%d" t x t')
          (Some t)
          (Core.Model.equivalence_window ~t' ~x)
      done
    done
  done

let classes () =
  let cs = Core.Model.classes_for_t' ~t':8 ~x_max:9 in
  check Alcotest.int "five classes" 5 (List.length cs);
  check
    Alcotest.(list (pair int (list int)))
    "paper's t'=8 table"
    [ (8, [ 1 ]); (4, [ 2 ]); (2, [ 3; 4 ]); (1, [ 5; 6; 7; 8 ]); (0, [ 9 ]) ]
    cs

let classes_cover () =
  (* Every x appears in exactly one class. *)
  let cs = Core.Model.classes_for_t' ~t':11 ~x_max:12 in
  let xs = List.concat_map snd cs in
  check Alcotest.(list int) "partition covers 1..12" (List.init 12 (fun i -> i + 1))
    (List.sort compare xs)

let kset_solvable () =
  let model = m ~n:10 ~t:8 ~x:3 in
  Alcotest.(check bool) "k=3 > power 2" true (Core.Model.kset_solvable model ~k:3);
  Alcotest.(check bool) "k=2 = power" false (Core.Model.kset_solvable model ~k:2);
  (* consensus (k=1) solvable iff power = 0 *)
  Alcotest.(check bool) "consensus with x > t" true
    (Core.Model.kset_solvable (m ~n:10 ~t:2 ~x:3) ~k:1);
  Alcotest.(check bool) "no consensus with x <= t" false
    (Core.Model.kset_solvable (m ~n:10 ~t:3 ~x:3) ~k:1)

let flags () =
  Alcotest.(check bool) "wait-free" true (Core.Model.wait_free (m ~n:4 ~t:3 ~x:1));
  Alcotest.(check bool) "not wait-free" false
    (Core.Model.wait_free (m ~n:4 ~t:2 ~x:1));
  Alcotest.(check bool) "x > t solves all" true
    (Core.Model.solves_all_tasks (m ~n:6 ~t:2 ~x:3));
  Alcotest.(check bool) "x = t does not" false
    (Core.Model.solves_all_tasks (m ~n:6 ~t:3 ~x:3))

let simulation_preconditions () =
  let src = m ~n:6 ~t:4 ~x:2 in
  Alcotest.(check bool) "down to equal power" true
    (Core.Model.colorless_simulation_ok ~source:src ~target:(m ~n:6 ~t:2 ~x:1));
  Alcotest.(check bool) "down to weaker target" true
    (Core.Model.colorless_simulation_ok ~source:src ~target:(m ~n:6 ~t:1 ~x:1));
  Alcotest.(check bool) "up to stronger target refused" false
    (Core.Model.colorless_simulation_ok ~source:src ~target:(m ~n:6 ~t:3 ~x:1));
  (* colored: Section 5.5's three conditions *)
  let csrc = m ~n:6 ~t:2 ~x:1 in
  Alcotest.(check bool) "colored ok" true
    (Core.Model.colored_simulation_ok ~source:csrc ~target:(m ~n:4 ~t:2 ~x:2));
  Alcotest.(check bool) "colored x'=1 refused" false
    (Core.Model.colored_simulation_ok ~source:csrc ~target:(m ~n:4 ~t:2 ~x:1));
  Alcotest.(check bool) "colored small n refused" false
    (Core.Model.colored_simulation_ok ~source:csrc ~target:(m ~n:6 ~t:1 ~x:2))

let pp_and_string () =
  check Alcotest.string "to_string" "ASM(6,4,2)"
    (Core.Model.to_string (m ~n:6 ~t:4 ~x:2))

let read_write () =
  Alcotest.(check bool) "read_write x=1" true
    (Core.Model.equal (Core.Model.read_write ~n:5 ~t:2) (m ~n:5 ~t:2 ~x:1))

let suite =
  [
    ( "model",
      [
        Alcotest.test_case "validation" `Quick make_validates;
        Alcotest.test_case "power" `Quick power;
        Alcotest.test_case "equivalence" `Quick equivalence;
        Alcotest.test_case "canonical forms" `Quick canonical;
        Alcotest.test_case "hierarchy" `Quick hierarchy;
        Alcotest.test_case "windows" `Quick windows;
        Alcotest.test_case "t'=8 classes" `Quick classes;
        Alcotest.test_case "classes partition" `Quick classes_cover;
        Alcotest.test_case "kset solvability" `Quick kset_solvable;
        Alcotest.test_case "flags" `Quick flags;
        Alcotest.test_case "simulation preconditions" `Quick
          simulation_preconditions;
        Alcotest.test_case "pretty printing" `Quick pp_and_string;
        Alcotest.test_case "read_write" `Quick read_write;
      ] );
  ]
