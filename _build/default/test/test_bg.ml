(* Tests of the simulation engine: classic BG, Section 3, Section 4,
   chains, colored mode, stats, and failure modes. *)

open Svm

let check = Alcotest.check

let sweep_ok ?budget ~task ~alg ~seeds ~max_crashes () =
  let s =
    Experiments.Runner.sweep ?budget ~task ~alg
      ~seeds:(List.init seeds (fun i -> i + 1))
      ~max_crashes ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d runs valid+live" seeds)
    true
    (s.Experiments.Runner.valid = s.Experiments.Runner.runs
    && s.Experiments.Runner.live = s.Experiments.Runner.runs)

(* ------------------------------------------------------------------ *)
(* classic BG                                                           *)
(* ------------------------------------------------------------------ *)

let classic_valid () =
  let source = Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3 in
  sweep_ok ~budget:400_000 ~task:(Tasks.Task.kset ~k:3)
    ~alg:(Core.Bg.classic ~source) ~seeds:8 ~max_crashes:2 ()

let classic_shape () =
  let source = Tasks.Algorithms.kset_read_write ~n:7 ~t:3 ~k:4 in
  let sim = Core.Bg.classic ~source in
  Alcotest.(check bool) "target is ASM(4,3,1)" true
    (Core.Model.equal sim.Core.Algorithm.model (Core.Model.read_write ~n:4 ~t:3))

let classic_rejects_cons_sources () =
  let source = Tasks.Algorithms.kset_grouped ~n:4 ~t:2 ~x:2 ~k:2 in
  Alcotest.(check bool) "x > 1 source rejected" true
    (match Core.Bg.classic ~source with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true)

let classic_two_simulators () =
  (* n=4, t=1: two wait-free simulators. *)
  let source = Tasks.Algorithms.kset_read_write ~n:4 ~t:1 ~k:2 in
  sweep_ok ~budget:400_000 ~task:(Tasks.Task.kset ~k:2)
    ~alg:(Core.Bg.classic ~source) ~seeds:8 ~max_crashes:1 ()

(* ------------------------------------------------------------------ *)
(* Section 3 (sim_down)                                                 *)
(* ------------------------------------------------------------------ *)

let sim_down_valid () =
  let source = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  sweep_ok ~budget:500_000 ~task:(Tasks.Task.kset ~k:3)
    ~alg:(Core.Bg.sim_down ~source ~t:2) ~seeds:8 ~max_crashes:2 ()

let sim_down_to_weaker () =
  (* Also legal: simulate into a strictly weaker model (t=1 < floor). *)
  let source = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  sweep_ok ~budget:500_000 ~task:(Tasks.Task.kset ~k:3)
    ~alg:(Core.Bg.sim_down ~source ~t:1) ~seeds:4 ~max_crashes:1 ()

let sim_down_rejects_too_strong () =
  let source = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  Alcotest.(check bool) "t=3 > floor(4/2) rejected" true
    (match Core.Bg.sim_down ~source ~t:3 with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Section 4 (sim_up)                                                   *)
(* ------------------------------------------------------------------ *)

let sim_up_valid () =
  let source = Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:3 in
  sweep_ok ~budget:800_000 ~task:(Tasks.Task.kset ~k:3)
    ~alg:(Core.Bg.sim_up ~source ~t':5 ~x:2) ~seeds:8 ~max_crashes:5 ()

let sim_up_x3 () =
  let source = Tasks.Algorithms.kset_read_write ~n:6 ~t:1 ~k:2 in
  sweep_ok ~budget:1_500_000 ~task:(Tasks.Task.kset ~k:2)
    ~alg:(Core.Bg.sim_up ~source ~t':5 ~x:3) ~seeds:4 ~max_crashes:5 ()

let sim_up_rejects () =
  let source = Tasks.Algorithms.kset_read_write ~n:6 ~t:1 ~k:2 in
  Alcotest.(check bool) "floor(4/2)=2 > 1 rejected" true
    (match Core.Bg.sim_up ~source ~t':4 ~x:2 with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true);
  let grouped = Tasks.Algorithms.kset_grouped ~n:4 ~t:2 ~x:2 ~k:2 in
  Alcotest.(check bool) "non-read/write source rejected" true
    (match Core.Bg.sim_up ~source:grouped ~t':2 ~x:2 with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true)

let sim_up_consensus_everywhere () =
  (* x > t' makes every task solvable: consensus via the failure-free
     algorithm simulated up (power 0). *)
  let source = Tasks.Algorithms.consensus_zero_resilient ~n:5 in
  let alg = Core.Bg.sim_up ~source ~t':2 ~x:3 in
  sweep_ok ~budget:1_500_000 ~task:Tasks.Task.consensus ~alg ~seeds:5
    ~max_crashes:2 ()

(* ------------------------------------------------------------------ *)
(* general engine behaviour                                             *)
(* ------------------------------------------------------------------ *)

let to_model_same_model () =
  (* Self-simulation: ASM(5,2,1) into itself. *)
  let source = Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3 in
  sweep_ok ~budget:400_000 ~task:(Tasks.Task.kset ~k:3)
    ~alg:(Core.Bg.to_model ~source ~target:source.Core.Algorithm.model)
    ~seeds:5 ~max_crashes:2 ()

let generalized_classic () =
  let source = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  let sim = Core.Bg.generalized_classic ~source in
  Alcotest.(check bool) "target ASM(3,2,1)" true
    (Core.Model.equal sim.Core.Algorithm.model (Core.Model.read_write ~n:3 ~t:2));
  sweep_ok ~budget:500_000 ~task:(Tasks.Task.kset ~k:3) ~alg:sim ~seeds:5
    ~max_crashes:2 ()

let unsupported_op_detected () =
  let model = Core.Model.read_write ~n:2 ~t:1 in
  let bad =
    Core.Algorithm.make ~name:"uses-registers" ~model (fun ~pid:_ ~input ->
        Prog.bind (Prog.reg_write Codec.int "r" [] 1) (fun () ->
            Prog.return input))
  in
  let sim = Core.Bg.classic ~source:bad in
  Alcotest.(check bool) "Unsupported_op raised at run time" true
    (match
       Core.Run.run_ints ~alg:sim ~inputs:[ 1; 2 ]
         ~adversary:(Adversary.round_robin ())
         ()
     with
    | (_ : int Exec.result) -> false
    | exception Core.Bg_engine.Unsupported_op _ -> true)

let unchecked_override () =
  (* With ~unchecked the engine accepts a too-strong target; with more
     crashes than the source tolerates, correctness may be lost but it
     must not crash the harness: processes block rather than decide
     wrongly here. *)
  let source = Tasks.Algorithms.kset_read_write ~n:4 ~t:1 ~k:2 in
  let alg =
    Core.Bg_engine.simulate ~unchecked:true ~source
      ~target:(Core.Model.read_write ~n:4 ~t:3)
      ~mode:`Colorless ()
  in
  let adversary =
    Adversary.with_crashes
      (Adversary.priority [ 0; 1; 2; 3 ])
      [
        Experiments.Harness.crash_before_fam ~pid:0 ~prefix:"SA" ~nth:1;
        Experiments.Harness.crash_before_fam ~pid:1 ~prefix:"SA" ~nth:4;
        Experiments.Harness.crash_before_fam ~pid:2 ~prefix:"SA" ~nth:7;
      ]
  in
  let inputs = [ 1; 2; 3; 4 ] in
  let r = Core.Run.run_ints ~budget:100_000 ~alg ~inputs ~adversary () in
  (* Three mid-propose crashes can block 3 simulated processes, leaving
     only 1 of the n - t = 3 needed: the run may block, but decided
     values (if any) must still satisfy the task. *)
  let decisions = Exec.decided r in
  Alcotest.(check bool) "any decisions are still valid" true
    (match
       (Tasks.Task.kset ~k:2).Tasks.Task.validate ~inputs ~decisions
     with
    | Ok () -> true
    | Error _ -> false)

let stats_recorded () =
  let source = Tasks.Algorithms.kset_read_write ~n:4 ~t:1 ~k:2 in
  let stats = Core.Bg_engine.new_stats () in
  let alg =
    Core.Bg_engine.simulate ~stats ~source
      ~target:(Core.Model.read_write ~n:2 ~t:1)
      ~mode:`Exhaustive ()
  in
  let r =
    Core.Run.run_ints ~budget:200_000 ~alg ~inputs:[ 1; 2 ]
      ~adversary:(Adversary.round_robin ())
      ()
  in
  (* No crashes: exhaustive simulators finish all 4 threads and decide
     the thread count. *)
  check Alcotest.(list int) "both simulators decide count 4" [ 4; 4 ]
    (Exec.decided r);
  check Alcotest.(list int) "all simulated decided" [ 0; 1; 2; 3 ]
    (Core.Bg_engine.decided_processes stats)

(* ------------------------------------------------------------------ *)
(* chains                                                               *)
(* ------------------------------------------------------------------ *)

let chain_two_hops_fixed () =
  let source = Tasks.Algorithms.kset_read_write ~n:4 ~t:2 ~k:3 in
  let alg =
    Core.Bg.chain ~source
      ~via:[ Core.Model.read_write ~n:3 ~t:2; Core.Model.make ~n:6 ~t:5 ~x:2 ]
  in
  sweep_ok ~budget:3_000_000 ~task:(Tasks.Task.kset ~k:3) ~alg ~seeds:3
    ~max_crashes:2 ()

let chain_empty_is_identity () =
  let source = Tasks.Algorithms.trivial ~n:3 ~t:1 in
  let alg = Core.Bg.chain ~source ~via:[] in
  Alcotest.(check bool) "same algorithm" true (alg == source)

let figure7_chain_shape () =
  let source = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  let via =
    Core.Bg.figure7_chain ~source ~target:(Core.Model.make ~n:5 ~t:2 ~x:1)
  in
  check
    Alcotest.(list string)
    "hops"
    [ "ASM(6,2,1)"; "ASM(3,2,1)"; "ASM(5,2,1)"; "ASM(5,2,1)" ]
    (List.map Core.Model.to_string via)

let figure7_chain_rejects_inequivalent () =
  let source = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  Alcotest.(check bool) "not equivalent" true
    (match
       Core.Bg.figure7_chain ~source ~target:(Core.Model.make ~n:5 ~t:1 ~x:1)
     with
    | (_ : Core.Model.t list) -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* colored                                                              *)
(* ------------------------------------------------------------------ *)

let colored_distinct () =
  let source = Tasks.Algorithms.renaming_read_write ~n:6 ~t:2 in
  let alg =
    Core.Bg.colored ~source ~target:(Core.Model.make ~n:4 ~t:2 ~x:2)
  in
  sweep_ok ~budget:2_000_000 ~task:(Tasks.Task.renaming ~slots:11) ~alg
    ~seeds:8 ~max_crashes:2 ()

let colored_colorless_task_too () =
  (* The colored simulation also carries colorless tasks (distinctness
     of simulated origin is harmless). *)
  let source = Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:3 in
  let alg =
    Core.Bg.colored ~source ~target:(Core.Model.make ~n:4 ~t:2 ~x:2)
  in
  sweep_ok ~budget:2_000_000 ~task:(Tasks.Task.kset ~k:3) ~alg ~seeds:5
    ~max_crashes:2 ()

(* ------------------------------------------------------------------ *)
(* engine edge cases                                                    *)
(* ------------------------------------------------------------------ *)

let single_simulated_process () =
  (* n = 1 simulated process, wait-free target: degenerate but legal. *)
  let source = Tasks.Algorithms.trivial ~n:1 ~t:0 in
  let sim =
    Core.Bg.to_model ~source ~target:(Core.Model.read_write ~n:3 ~t:0)
  in
  let r =
    Core.Run.run_ints ~alg:sim ~inputs:[ 5; 6; 7 ]
      ~adversary:(Adversary.round_robin ())
      ()
  in
  (* All simulators decide the agreed input of the sole simulated
     process — one of their own inputs. *)
  (match Exec.decided r with
  | [ a; b; c ] ->
      Alcotest.(check bool) "agreed single value" true
        (a = b && b = c && List.mem a [ 5; 6; 7 ])
  | _ -> Alcotest.fail "arity")

let engine_deterministic () =
  let source = Tasks.Algorithms.kset_read_write ~n:4 ~t:1 ~k:2 in
  let go () =
    let alg = Core.Bg.classic ~source in
    Core.Run.run_ints ~alg ~inputs:[ 3; 1 ]
      ~adversary:(Adversary.random ~seed:99)
      ()
  in
  let r1 = go () and r2 = go () in
  check Alcotest.(list int) "same decisions" (Exec.decided r1) (Exec.decided r2);
  check Alcotest.int "same step count" r1.Exec.total_steps r2.Exec.total_steps

let approx_through_classic () =
  (* A multi-round colorless task through the classic BG. *)
  let source =
    Tasks.Algorithms.approximate_agreement ~n:4 ~t:1 ~rounds:8 ~scale:256
  in
  let task = Tasks.Task.approximate ~scale:256 ~eps:4 in
  sweep_ok ~budget:2_000_000 ~task ~alg:(Core.Bg.classic ~source) ~seeds:4
    ~max_crashes:1 ()

let colored_same_n () =
  (* Colored simulation with n' = n (and t' such that the precondition
     n >= (n'-t')+t holds: 6 >= 6-2+2). *)
  let source = Tasks.Algorithms.renaming_read_write ~n:6 ~t:2 in
  let alg =
    Core.Bg.colored ~source ~target:(Core.Model.make ~n:6 ~t:2 ~x:2)
  in
  sweep_ok ~budget:3_000_000 ~task:(Tasks.Task.renaming ~slots:11) ~alg
    ~seeds:4 ~max_crashes:2 ()

let suite =
  [
    ( "bg.classic",
      [
        Alcotest.test_case "valid+live" `Quick classic_valid;
        Alcotest.test_case "target shape" `Quick classic_shape;
        Alcotest.test_case "rejects consensus sources" `Quick
          classic_rejects_cons_sources;
        Alcotest.test_case "two simulators" `Quick classic_two_simulators;
      ] );
    ( "bg.section3",
      [
        Alcotest.test_case "valid+live" `Quick sim_down_valid;
        Alcotest.test_case "weaker target" `Quick sim_down_to_weaker;
        Alcotest.test_case "rejects too strong" `Quick sim_down_rejects_too_strong;
      ] );
    ( "bg.section4",
      [
        Alcotest.test_case "valid+live x=2" `Quick sim_up_valid;
        Alcotest.test_case "valid+live x=3" `Quick sim_up_x3;
        Alcotest.test_case "rejections" `Quick sim_up_rejects;
        Alcotest.test_case "consensus when x > t'" `Quick
          sim_up_consensus_everywhere;
      ] );
    ( "bg.engine",
      [
        Alcotest.test_case "self simulation" `Quick to_model_same_model;
        Alcotest.test_case "generalized classic" `Quick generalized_classic;
        Alcotest.test_case "unsupported op" `Quick unsupported_op_detected;
        Alcotest.test_case "unchecked override" `Quick unchecked_override;
        Alcotest.test_case "stats" `Quick stats_recorded;
      ] );
    ( "bg.chains",
      [
        Alcotest.test_case "two hops" `Quick chain_two_hops_fixed;
        Alcotest.test_case "empty chain" `Quick chain_empty_is_identity;
        Alcotest.test_case "figure 7 hops" `Quick figure7_chain_shape;
        Alcotest.test_case "figure 7 rejects" `Quick
          figure7_chain_rejects_inequivalent;
      ] );
    ( "bg.colored",
      [
        Alcotest.test_case "renaming distinct" `Quick colored_distinct;
        Alcotest.test_case "colorless through colored" `Quick
          colored_colorless_task_too;
      ] );
    ( "bg.edge",
      [
        Alcotest.test_case "single simulated process" `Quick
          single_simulated_process;
        Alcotest.test_case "deterministic" `Quick engine_deterministic;
        Alcotest.test_case "approximate through classic" `Quick
          approx_through_classic;
        Alcotest.test_case "colored same n" `Quick colored_same_n;
      ] );
  ]
