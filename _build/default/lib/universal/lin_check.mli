(** A linearizability checker (Wing & Gong style).

    Given a concurrent history — invocations with their real-time
    intervals, operations and results — search for a linearization: a
    total order of the operations that (a) respects real time (if one
    invocation finishes before another starts, it comes first) and (b)
    is a legal sequential execution of the specification producing
    exactly the observed results.

    Exponential in the worst case; fine for the test-sized histories
    produced by the universal-construction tests. *)

type ('op, 'res) event = { start : int; finish : int; op : 'op; res : 'res }

val check : ('s, 'op, 'res) Seq_spec.t -> ('op, 'res) event list -> bool
(** [check spec history] is [true] iff a linearization exists. *)

val witness :
  ('s, 'op, 'res) Seq_spec.t ->
  ('op, 'res) event list ->
  ('op, 'res) event list option
(** Like {!check} but returns the linearization order. *)
