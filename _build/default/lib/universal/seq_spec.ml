open Svm

type ('s, 'op, 'res) t = {
  name : string;
  init : 's;
  apply : 's -> 'op -> 's * 'res;
  op_codec : 'op Codec.t;
  res_codec : 'res Codec.t;
  pp_op : Format.formatter -> 'op -> unit;
  pp_res : Format.formatter -> 'res -> unit;
}

type queue_op = Enqueue of int | Dequeue
type stack_op = Push of int | Pop
type counter_op = Add of int | Get
type rmw_op = Read | Write of int | Compare_and_swap of int * int

(* Operations travel through consensus objects as (tag, payload) pairs.
   (The structural embeddings behind [Codec.pair]/[Codec.list] are shared
   globally, so codecs built here interoperate across calls.) *)
let tagged inj prj =
  let c = Codec.pair Codec.int (Codec.list Codec.int) in
  {
    Codec.inj = (fun v -> c.Codec.inj (inj v));
    prj = (fun u -> prj (c.Codec.prj u));
  }

let fifo_queue =
  let apply s = function
    | Enqueue v -> (s @ [ v ], None)
    | Dequeue -> ( match s with [] -> ([], None) | h :: t -> (t, Some h))
  in
  let op_codec =
    tagged
      (function Enqueue v -> (0, [ v ]) | Dequeue -> (1, []))
      (function
        | 0, [ v ] -> Enqueue v
        | 1, [] -> Dequeue
        | _ -> raise (Codec.Type_error "queue_op"))
  in
  let pp_op ppf = function
    | Enqueue v -> Format.fprintf ppf "enq(%d)" v
    | Dequeue -> Format.fprintf ppf "deq"
  in
  {
    name = "fifo-queue";
    init = [];
    apply;
    op_codec;
    res_codec = Codec.option Codec.int;
    pp_op;
    pp_res = (fun ppf r -> Format.fprintf ppf "%a" (Fmt.Dump.option Fmt.int) r);
  }

let lifo_stack =
  let apply s = function
    | Push v -> (v :: s, None)
    | Pop -> ( match s with [] -> ([], None) | h :: t -> (t, Some h))
  in
  let op_codec =
    tagged
      (function Push v -> (0, [ v ]) | Pop -> (1, []))
      (function
        | 0, [ v ] -> Push v
        | 1, [] -> Pop
        | _ -> raise (Codec.Type_error "stack_op"))
  in
  let pp_op ppf = function
    | Push v -> Format.fprintf ppf "push(%d)" v
    | Pop -> Format.fprintf ppf "pop"
  in
  {
    name = "lifo-stack";
    init = [];
    apply;
    op_codec;
    res_codec = Codec.option Codec.int;
    pp_op;
    pp_res = (fun ppf r -> Format.fprintf ppf "%a" (Fmt.Dump.option Fmt.int) r);
  }

let counter =
  let apply s = function Add d -> (s + d, s) | Get -> (s, s) in
  let op_codec =
    tagged
      (function Add d -> (0, [ d ]) | Get -> (1, []))
      (function
        | 0, [ d ] -> Add d
        | 1, [] -> Get
        | _ -> raise (Codec.Type_error "counter_op"))
  in
  let pp_op ppf = function
    | Add d -> Format.fprintf ppf "add(%d)" d
    | Get -> Format.fprintf ppf "get"
  in
  {
    name = "counter";
    init = 0;
    apply;
    op_codec;
    res_codec = Codec.int;
    pp_op;
    pp_res = Fmt.int;
  }

let rmw_register =
  let apply s = function
    | Read -> (s, s)
    | Write v -> (Some v, s)
    | Compare_and_swap (e, d) ->
        if s = Some e then (Some d, s) else (s, s)
  in
  let op_codec =
    tagged
      (function
        | Read -> (0, [])
        | Write v -> (1, [ v ])
        | Compare_and_swap (e, d) -> (2, [ e; d ]))
      (function
        | 0, [] -> Read
        | 1, [ v ] -> Write v
        | 2, [ e; d ] -> Compare_and_swap (e, d)
        | _ -> raise (Codec.Type_error "rmw_op"))
  in
  let pp_op ppf = function
    | Read -> Format.fprintf ppf "read"
    | Write v -> Format.fprintf ppf "write(%d)" v
    | Compare_and_swap (e, d) -> Format.fprintf ppf "cas(%d,%d)" e d
  in
  {
    name = "rmw-register";
    init = None;
    apply;
    op_codec;
    res_codec = Codec.option Codec.int;
    pp_op;
    pp_res = (fun ppf r -> Format.fprintf ppf "%a" (Fmt.Dump.option Fmt.int) r);
  }

let run_sequential spec ops =
  let _, rev =
    List.fold_left
      (fun (s, acc) op ->
        let s, r = spec.apply s op in
        (s, r :: acc))
      (spec.init, []) ops
  in
  List.rev rev
