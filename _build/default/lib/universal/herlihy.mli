(** Herlihy's universal construction (paper Section 1.1).

    "Enriching asynchronous read/write shared memory systems with
    consensus objects is fundamental as these objects make it possible
    to wait-free implement any concurrent object that has a sequential
    specification." This module is that construction, state-machine
    style:

    - every process announces its pending operation in its component of
      an announce snapshot;
    - processes repeatedly propose the batch of announced-but-unapplied
      operations to a sequence of consensus objects [cons\[0\],
      cons\[1\], ...], and apply the decided batches in order to a local
      replica — all replicas therefore apply the same sequence;
    - an invocation returns once its operation appears in a decided
      batch. Wait-freedom: once an announce is visible, every later
      proposal includes the operation, so some decided batch does.

    Each consensus instance is accessed by all [n] processes, so the
    construction needs the model [ASM(n, t, n)] — consensus number [n]
    is {e universal} for [n] processes, which is the point. *)

type ('s, 'op, 'res) obj

val make : ('s, 'op, 'res) Seq_spec.t -> fam:Svm.Op.fam -> ('s, 'op, 'res) obj

type ('s, 'op, 'res) session
(** A process's handle: its local replica plus its announce counter.
    Create one per process {e per run} (it holds run-local state). *)

val session : ('s, 'op, 'res) obj -> pid:int -> ('s, 'op, 'res) session
val invoke : ('s, 'op, 'res) session -> 'op -> 'res Svm.Prog.t

val batches_consumed : ('s, 'op, 'res) session -> int
(** How many consensus instances this session has consumed (tests use
    it to bound the construction's work). *)
