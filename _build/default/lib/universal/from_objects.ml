open Svm
open Svm.Prog.Syntax

let int_c = Codec.int

let publish ~fam ~key ~pid v = Prog.reg_write int_c (fam ^ ".val") (key @ [ pid ]) v

let read_other ~fam ~key ~pid =
  let* other = Prog.reg_read int_c (fam ^ ".val") (key @ [ 1 - pid ]) in
  match other with
  | Some v -> Prog.return v
  | None ->
      (* Unreachable in the protocols below: a process only reads the
         other's value after losing, and the winner published first. *)
      failwith "from_objects: winner's value missing"

let cons2_from_ts ~fam ~key ~pid v =
  if pid < 0 || pid > 1 then invalid_arg "cons2_from_ts: pid must be 0 or 1";
  let* () = publish ~fam ~key ~pid v in
  let* won = Prog.ts (fam ^ ".ts") key in
  if won then Prog.return v else read_other ~fam ~key ~pid

let setup_queue env ~fam ~key =
  Env.preload_queue env (fam ^ ".q") key [ int_c.Codec.inj 1 ]

let cons2_from_queue ~fam ~key ~pid v =
  if pid < 0 || pid > 1 then invalid_arg "cons2_from_queue: pid must be 0 or 1";
  let* () = publish ~fam ~key ~pid v in
  let* token = Prog.queue_deq int_c (fam ^ ".q") key in
  match token with
  | Some _ -> Prog.return v
  | None -> read_other ~fam ~key ~pid

let consn_from_cas ~fam ~key ~pid:_ v =
  let* _installed =
    Prog.cas int_c (fam ^ ".cas") key ~expected:None ~desired:v
  in
  let* content = Prog.reg_read int_c (fam ^ ".cas") key in
  match content with
  | Some d -> Prog.return d
  | None -> failwith "consn_from_cas: register empty after CAS"
