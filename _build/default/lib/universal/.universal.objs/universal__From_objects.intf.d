lib/universal/from_objects.mli: Svm
