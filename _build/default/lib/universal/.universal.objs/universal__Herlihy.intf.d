lib/universal/herlihy.mli: Seq_spec Svm
