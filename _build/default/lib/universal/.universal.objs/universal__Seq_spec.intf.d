lib/universal/seq_spec.mli: Format Svm
