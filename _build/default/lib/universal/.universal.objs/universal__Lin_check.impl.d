lib/universal/lin_check.ml: List Option Seq_spec
