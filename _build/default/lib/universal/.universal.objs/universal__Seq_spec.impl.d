lib/universal/seq_spec.ml: Codec Fmt Format List Svm
