lib/universal/herlihy.ml: Array Codec List Op Prog Seq_spec Svm
