lib/universal/from_objects.ml: Codec Env Prog Svm
