lib/universal/lin_check.mli: Seq_spec
