open Svm
open Svm.Prog.Syntax

type ('s, 'op, 'res) obj = {
  spec : ('s, 'op, 'res) Seq_spec.t;
  announce_fam : Op.fam;
  cons_fam : Op.fam;
}

let make spec ~fam =
  { spec; announce_fam = fam ^ ".ann"; cons_fam = fam ^ ".cons" }

(* Operation ids are (pid, per-process index). *)
type op_id = int * int

type ('s, 'op, 'res) session = {
  obj : ('s, 'op, 'res) obj;
  pid : int;
  mutable replica : 's;
  mutable applied : op_id list; (* newest first *)
  mutable my_results : (op_id * 'res) list;
  mutable batch_index : int; (* next consensus instance to consume *)
  mutable my_count : int;
  mutable my_announces : (op_id * 'op) list; (* oldest first *)
}

let session obj ~pid =
  {
    obj;
    pid;
    replica = obj.spec.Seq_spec.init;
    applied = [];
    my_results = [];
    batch_index = 0;
    my_count = 0;
    my_announces = [];
  }

let id_codec : op_id Codec.t = Codec.pair Codec.int Codec.int

let announce_codec (spec : _ Seq_spec.t) =
  Codec.list (Codec.pair id_codec spec.Seq_spec.op_codec)

let batch_codec = announce_codec

(* Apply one decided batch to the replica, in decided order, recording
   the result of this session's own operations. Every replica consumes
   batches in index order, so replicas stay identical. *)
let apply_batch s batch =
  List.iter
    (fun (id, op) ->
      if not (List.mem id s.applied) then begin
        let replica, res = s.obj.spec.Seq_spec.apply s.replica op in
        s.replica <- replica;
        s.applied <- id :: s.applied;
        if fst id = s.pid then s.my_results <- (id, res) :: s.my_results
      end)
    batch

let invoke (type s op res) (s : (s, op, res) session) (op : op) :
    res Prog.t =
  let spec = s.obj.spec in
  let my_id = (s.pid, s.my_count) in
  s.my_count <- s.my_count + 1;
  s.my_announces <- s.my_announces @ [ (my_id, op) ];
  let* () =
    Prog.snap_set (announce_codec spec) s.obj.announce_fam [] s.my_announces
  in
  Prog.loop
    (fun () ->
      match List.assoc_opt my_id s.my_results with
      | Some res -> Prog.return (`Stop res)
      | None ->
          let* cells =
            Prog.snap_scan (announce_codec spec) s.obj.announce_fam []
          in
          let pending =
            Array.to_list cells
            |> List.concat_map (function None -> [] | Some l -> l)
            |> List.filter (fun (id, _) -> not (List.mem id s.applied))
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          let* decided =
            Prog.cons_propose (batch_codec spec) s.obj.cons_fam
              [ s.batch_index ] pending
          in
          s.batch_index <- s.batch_index + 1;
          apply_batch s decided;
          Prog.return (`Again ()))
    ()

let batches_consumed s = s.batch_index
