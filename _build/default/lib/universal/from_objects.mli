(** Consensus {e from} objects: the consensus-number gallery.

    The paper's Section 1.1 recalls Herlihy's hierarchy: registers have
    consensus number 1; test&set, queues and stacks have consensus
    number 2; compare&swap has consensus number infinity. These are the
    classic protocols realizing the positive side of those numbers —
    solving consensus among the stated number of processes from one such
    object plus registers. Each call is one-shot per instance key. *)

val cons2_from_ts :
  fam:Svm.Op.fam -> key:Svm.Op.key -> pid:int -> int -> int Svm.Prog.t
(** Consensus for processes [{0, 1}] from one test&set: publish your
    value, test&set; the winner decides its own value, the loser adopts
    the winner's (already published) value. *)

val cons2_from_queue :
  fam:Svm.Op.fam -> key:Svm.Op.key -> pid:int -> int -> int Svm.Prog.t
(** Consensus for processes [{0, 1}] from one queue pre-filled with a
    single token (call {!setup_queue} on the environment first):
    publish, dequeue; token holder wins. *)

val setup_queue : Svm.Env.t -> fam:Svm.Op.fam -> key:Svm.Op.key -> unit
(** Pre-fill the queue used by {!cons2_from_queue}. *)

val consn_from_cas :
  fam:Svm.Op.fam -> key:Svm.Op.key -> pid:int -> int -> int Svm.Prog.t
(** Consensus for {e any} number of processes from one compare&swap
    register (consensus number infinity; environment must allow CAS):
    CAS your value into the empty register, then read and decide its
    content. *)
