type ('op, 'res) event = { start : int; finish : int; op : 'op; res : 'res }

(* An event is a candidate to linearize next iff no remaining event
   finished before it started (otherwise that event must come first). *)
let candidates remaining =
  let min_finish =
    List.fold_left (fun m e -> min m e.finish) max_int remaining
  in
  List.filter (fun e -> e.start <= min_finish) remaining

let witness (spec : _ Seq_spec.t) history =
  let rec go state remaining acc =
    match remaining with
    | [] -> Some (List.rev acc)
    | _ ->
        let rec try_candidates = function
          | [] -> None
          | e :: rest -> (
              let state', res = spec.Seq_spec.apply state e.op in
              if res = e.res then
                let remaining' = List.filter (fun e' -> e' != e) remaining in
                match go state' remaining' (e :: acc) with
                | Some w -> Some w
                | None -> try_candidates rest
              else try_candidates rest)
        in
        try_candidates (candidates remaining)
  in
  go spec.Seq_spec.init history []

let check spec history = Option.is_some (witness spec history)
