(** Sequential object specifications.

    The paper's Section 1.1 recalls Herlihy's theorem: consensus objects
    make it possible to wait-free implement {e any} concurrent object
    that has a sequential specification. A [spec] is such a
    specification: a deterministic state machine with typed operations
    and results (plus codecs so operations can travel through the shared
    memory). *)

type ('s, 'op, 'res) t = {
  name : string;
  init : 's;
  apply : 's -> 'op -> 's * 'res;
  op_codec : 'op Svm.Codec.t;
  res_codec : 'res Svm.Codec.t;
  pp_op : Format.formatter -> 'op -> unit;
  pp_res : Format.formatter -> 'res -> unit;
}

(** {1 Classic instances} *)

type queue_op = Enqueue of int | Dequeue
type stack_op = Push of int | Pop
type counter_op = Add of int | Get
type rmw_op = Read | Write of int | Compare_and_swap of int * int

val fifo_queue : (int list, queue_op, int option) t
val lifo_stack : (int list, stack_op, int option) t
val counter : (int, counter_op, int) t
(** [Add d] returns the {e previous} value (fetch&add); [Get] returns
    the current value. *)

val rmw_register : (int option, rmw_op, int option) t
(** [Compare_and_swap (e, d)] returns the previous content and installs
    [d] if the content was [Some e]; [Read]/[Write] as usual. *)

val run_sequential : ('s, 'op, 'res) t -> 'op list -> 'res list
(** Reference execution, for differential tests. *)
