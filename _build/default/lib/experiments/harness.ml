open Svm

let run_objects ?budget ~nprocs ~x ~adversary make =
  let env = Env.create ~nprocs ~x () in
  let progs = Array.init nprocs make in
  let result = Exec.run ?budget ~env ~adversary progs in
  (result, env)

let int_results r = List.map Codec.int.Codec.prj (Exec.decided r)

let all_equal = function
  | [] -> true
  | v :: rest -> List.for_all (Int.equal v) rest

let seeds n = List.init n (fun i -> i + 1)

let blocked_simulated ~n_simulated stats =
  let decided = Core.Bg_engine.decided_processes stats in
  List.filter (fun j -> not (List.mem j decided)) (List.init n_simulated Fun.id)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let crash_before_fam ~pid ~prefix ~nth =
  Adversary.Crash_before_op
    {
      pid;
      nth;
      matches = (fun (info : Op.info) -> starts_with ~prefix info.Op.fam);
    }
