(** Experiment FD — failure-detector boosting (paper Section 1.3).

    Consensus cannot be solved in [ASM(n, n-1, 1)]; with the leader
    oracle Ω (the weakest failure detector for consensus, Ω1 of the Ωx
    family) it can, for any n, via shared-memory Paxos:

    - wait-free termination and agreement/validity with up to n-1
      crashes, across oracle stabilization times and schedules;
    - safety is oracle-independent: even with an adversarial oracle that
      never stabilizes, decided values never disagree (runs may then
      block, which is the FLP-style price);
    - the simulation engine refuses to carry oracle queries (failure
      detectors are not shared-memory objects, so the paper's
      simulations do not apply to them). *)

val run : unit -> Report.t
