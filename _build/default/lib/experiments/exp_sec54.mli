(** Experiment T54 — Section 5.4: the equivalence classes of system
    models (the paper's t' = 8 enumeration) and the solvability boundary.

    Reproduces the paper's "table": for t' = 8, the models ASM(n, 8, x)
    fall into exactly five classes as x ranges over 1..9, with canonical
    forms ASM(n, 4, 1), ASM(n, 2, 1), ASM(n, 1, 1), ASM(n, 0, 1) and
    ASM(n, 8, 1). Then probes the boundary empirically: for a grid of
    (t', x), the task "(⌊t'/x⌋+1)-set agreement" — the hardest k-set
    task the class allows — is solved in ASM(t'+2, t', x) by simulating
    the ⌊t'/x⌋-resilient read/write algorithm (Section 4), under the
    full t' crashes. *)

val run : unit -> Report.t

val classes_table : t':int -> x_max:int -> string
(** The rendered class table (also used by the CLI and EXPERIMENTS.md). *)
