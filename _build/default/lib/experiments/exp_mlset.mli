(** Experiment SA — k-set agreement from (m, l)-set agreement objects
    (paper Section 1.3, reproducing the Herlihy-Rajsbaum threshold of
    reference [22]).

    For a grid of (t, m, l), the group algorithm of
    {!Tasks.Set_agreement} solves k-set agreement for
    [k = l*floor((t+1)/m) + min(l, (t+1) mod m)] — validated by sweeps
    with the full [t] crashes, recording the maximum number of distinct
    decisions ever observed (it must stay within k). Consistency checks:
    the formula specializes to [floor(t/x) + 1] for consensus objects
    ([l = 1, m = x]) and to [t + 1] for registers ([m = l = 1]). *)

val run : unit -> Report.t
