(** Experiment S4 — Section 4: simulating [ASM(n, t, 1)] in
    [ASM(n, t', x)] (Theorem 3).

    Source: 2-resilient read/write 3-set agreement for 6 processes.
    Target: [ASM(6, 5, 2)] — 5 crashes tolerated thanks to 2-ported
    consensus objects, since [⌊5/2⌋ = 2 <= t]. This is the
    multiplicative power: the same algorithm that tolerates 2 crashes in
    the read/write model now tolerates 5.

    Checks task validity/liveness with up to [t' = 5] crashes and the
    Section 4 accounting: one simulator crash inside a propose blocks
    {e nothing} (an x_safe_agreement object survives x-1 = 1 owner
    crash); [c] crashes block at most [⌊c/x⌋] simulated processes
    (Lemma 7); at least [n - t] simulated processes decide (Lemma 8). *)

val run : unit -> Report.t
