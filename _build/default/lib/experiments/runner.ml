open Svm

type run = {
  seed : int;
  inputs : int list;
  result : int Exec.result;
  stats : Core.Bg_engine.stats option;
}

type summary = {
  runs : int;
  valid : int;
  live : int;
  blocked_runs : int;
  violations : (int * string) list;
  max_distinct_decisions : int;
  avg_steps : float;
}

let adversary_for ~seed ~max_crashes ~nprocs =
  let base = Adversary.random ~seed:((seed * 31) + 7) in
  if max_crashes = 0 then base
  else Adversary.random_crashes ~seed ~max_crashes ~nprocs base

let one_run ?budget ?allow_kset ?stats ~(task : Tasks.Task.t)
    ~(alg : Core.Algorithm.t) ~seed ~max_crashes () =
  let n = Core.Algorithm.n alg in
  let inputs = task.Tasks.Task.gen_inputs ~seed ~n in
  let adversary = adversary_for ~seed ~max_crashes ~nprocs:n in
  let result = Core.Run.run_ints ?budget ?allow_kset ~alg ~inputs ~adversary () in
  { seed; inputs; result; stats }

let decisions run = Exec.decided run.result

let validate ~(task : Tasks.Task.t) run =
  task.Tasks.Task.validate ~inputs:run.inputs ~decisions:(decisions run)

let sweep ?budget ?allow_kset ?make_alg ~task ~alg ~seeds ~max_crashes () =
  let runs =
    List.map
      (fun seed ->
        match make_alg with
        | None -> one_run ?budget ?allow_kset ~task ~alg ~seed ~max_crashes ()
        | Some make ->
            let stats = Core.Bg_engine.new_stats () in
            let alg = make stats in
            one_run ?budget ?allow_kset ~stats ~task ~alg ~seed ~max_crashes ())
      seeds
  in
  let valid = ref 0 and live = ref 0 and blocked_runs = ref 0 in
  let violations = ref [] in
  let max_distinct = ref 0 and steps = ref 0 in
  List.iter
    (fun run ->
      (match validate ~task run with
      | Ok () -> incr valid
      | Error msg -> violations := (run.seed, msg) :: !violations);
      let blocked = Exec.blocked run.result in
      if blocked = [] then incr live else incr blocked_runs;
      let nd = List.length (Tasks.Task.distinct (decisions run)) in
      if nd > !max_distinct then max_distinct := nd;
      steps := !steps + run.result.Exec.total_steps)
    runs;
  {
    runs = List.length runs;
    valid = !valid;
    live = !live;
    blocked_runs = !blocked_runs;
    violations = List.rev !violations;
    max_distinct_decisions = !max_distinct;
    avg_steps = float_of_int !steps /. float_of_int (max 1 (List.length runs));
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "%d runs: %d valid, %d live, %d blocked, max distinct decisions %d, avg \
     steps %.0f"
    s.runs s.valid s.live s.blocked_runs s.max_distinct_decisions s.avg_steps
