(** Experiment F1 — Figure 1, the safe agreement type.

    Checks, over seeded random schedules:
    - agreement and validity always hold;
    - with no crash during [propose], every process decides
      (termination);
    - a single crash {e inside} [propose] blocks every other process's
      [decide] (the blocking behaviour the BG simulation must contain);
    - a crash {e after} [propose] blocks nobody. *)

val run : unit -> Report.t
