(** Experiment F5 — Figure 5, the [x_compete()] operation.

    Checks that the X_T&S object built from test&set objects (themselves
    built from 2-ported consensus) returns [true] to at most [x] callers,
    that with at most [x] callers every correct caller wins, and that
    every correct caller returns. *)

val run : unit -> Report.t
