(** Experiment F8 — Section 5.5 / Figure 8: colored tasks.

    (2n-1)-renaming — the canonical colored task — is run natively in
    [ASM(6, 2, 1)] and simulated in [ASM(4, 2, 2)] and [ASM(5, 3, 2)]
    (both satisfying the section's precondition). Checks: every decided
    name is distinct (the test&set allocation of decisions), names stay
    within the 2n-1 bound, every correct simulator decides, and the
    precondition is enforced ([x' = 1] and too-small [n] are rejected). *)

val run : unit -> Report.t
