(** Experiment F6 — Figure 6, the x_safe_agreement type (Theorem 2).

    Checks agreement and validity over random schedules, termination with
    up to [x - 1] crashes inside [propose], and that blocking the object
    requires crashing a full set of [x] owners inside [propose] — the
    exact property that gives consensus numbers their multiplicative
    power over crashes. *)

val run : unit -> Report.t
