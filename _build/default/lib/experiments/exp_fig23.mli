(** Experiment F2-F3 — Figures 2 and 3: the BG simulation core
    ([sim_write], [sim_snapshot]) via the classic BG simulation.

    A 5-process 2-resilient k-set algorithm is simulated by 3 wait-free
    simulators; we check task validity and liveness over schedule sweeps
    and, in exhaustive mode, the Lemma 1/2 bounds: [c] simulator crashes
    block at most [c] simulated processes (the source uses no consensus
    objects), and every correct simulator witnesses at least [n - t']
    simulated decisions. *)

val run : unit -> Report.t
