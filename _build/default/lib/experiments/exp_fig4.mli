(** Experiment F4 — Figure 4 and Section 3: simulating [ASM(n, t', x)]
    in [ASM(n, t, 1)] ([sim_x_cons_propose]).

    Source: the grouped k-set algorithm in [ASM(6, 4, 2)] (which uses
    2-ported consensus objects). Target: [ASM(6, 2, 1)] — legal since
    [t = 2 <= ⌊4/2⌋]. Checks task validity/liveness over sweeps and the
    Section 3 accounting: a simulator crash inside the agreement serving
    a consensus object blocks at most [x] simulated processes
    (Lemma 1), so [c] crashes block at most [c·x] simulated processes
    and at least [n - t'] simulated processes still decide (Lemma 2). *)

val run : unit -> Report.t
