(** Experiment MP — the multiplicative-power window (Section 5.4).

    For fixed (t, x), [ASM(n, t', x) ≃ ASM(n, t, 1)] iff
    [t·x <= t' <= t·x + (x-1)]. Checks the algebra across the whole
    window and beyond, runs the Section 4 simulation at both window
    edges under the maximal number of crashes, and verifies that the
    engine refuses a simulation just past the window (where
    [⌊t'/x⌋ > t]). Also checks the "increasing the consensus number can
    be useless" remark: ASM(n, 8, 3) and ASM(n, 8, 4) are equivalent. *)

val run : unit -> Report.t
