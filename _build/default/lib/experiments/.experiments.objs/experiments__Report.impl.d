lib/experiments/report.ml: Buffer Format List Printf
