lib/experiments/exp_mp.mli: Report
