lib/experiments/harness.ml: Adversary Array Codec Core Env Exec Fun Int List Op String Svm
