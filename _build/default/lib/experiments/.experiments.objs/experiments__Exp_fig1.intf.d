lib/experiments/exp_fig1.mli: Report
