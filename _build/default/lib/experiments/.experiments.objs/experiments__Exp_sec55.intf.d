lib/experiments/exp_sec55.mli: Report
