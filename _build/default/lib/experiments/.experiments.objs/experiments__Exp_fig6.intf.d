lib/experiments/exp_fig6.mli: Report
