lib/experiments/exp_sec4.mli: Report
