lib/experiments/exp_explore.ml: Array Codec Env Exec Explore Fun Int List Printf Prog Report Shared_objects String Svm Universal
