lib/experiments/exp_universal.mli: Report
