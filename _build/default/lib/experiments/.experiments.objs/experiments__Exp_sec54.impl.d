lib/experiments/exp_sec54.ml: Buffer Core Format Harness List Printf Report Runner String Tasks
