lib/experiments/exp_substrate.mli: Report
