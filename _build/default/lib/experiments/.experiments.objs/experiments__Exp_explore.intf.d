lib/experiments/exp_explore.mli: Report
