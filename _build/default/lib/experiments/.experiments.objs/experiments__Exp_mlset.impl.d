lib/experiments/exp_mlset.ml: Core Harness Printf Report Runner Tasks
