lib/experiments/exp_ablation.ml: Adversary Array Codec Core Env Exec Harness List Printf Prog Report Shared_objects String Svm Tasks
