lib/experiments/exp_sec4.ml: Adversary Array Codec Core Exec Format Harness List Printf Report Runner Svm Tasks
