lib/experiments/harness.mli: Core Svm
