lib/experiments/runner.mli: Core Format Svm Tasks
