lib/experiments/exp_omega.ml: Adversary Array Codec Core Env Exec Harness Int List Op Printf Report Rng Shared_objects Svm Univ
