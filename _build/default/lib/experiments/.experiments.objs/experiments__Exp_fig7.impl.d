lib/experiments/exp_fig7.ml: Core Format Harness List Printf Report Runner String Tasks
