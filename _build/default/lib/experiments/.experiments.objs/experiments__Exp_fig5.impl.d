lib/experiments/exp_fig5.ml: Adversary Array Codec Env Exec Harness List Printf Prog Report Shared_objects Svm
