lib/experiments/exp_omega.mli: Report
