lib/experiments/exp_substrate.ml: Adversary Array Codec Env Exec Fun Harness Int List Option Printf Prog Report Rng Shared_objects Svm
