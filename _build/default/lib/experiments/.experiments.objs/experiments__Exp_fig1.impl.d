lib/experiments/exp_fig1.ml: Adversary Codec Exec Harness List Printf Report Shared_objects Svm
