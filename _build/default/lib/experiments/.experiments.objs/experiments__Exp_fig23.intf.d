lib/experiments/exp_fig23.mli: Report
