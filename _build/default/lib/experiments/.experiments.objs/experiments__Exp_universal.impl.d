lib/experiments/exp_universal.ml: Adversary Array Codec Env Exec Harness List Printf Prog Report Svm Univ Universal
