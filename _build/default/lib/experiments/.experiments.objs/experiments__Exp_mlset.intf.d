lib/experiments/exp_mlset.mli: Report
