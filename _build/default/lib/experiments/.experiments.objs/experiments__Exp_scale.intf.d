lib/experiments/exp_scale.mli: Report
