lib/experiments/exp_mp.ml: Core Format Harness Printf Report Runner Tasks
