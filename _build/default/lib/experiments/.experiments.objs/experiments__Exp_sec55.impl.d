lib/experiments/exp_sec55.ml: Core Format Harness Printf Report Runner Tasks
