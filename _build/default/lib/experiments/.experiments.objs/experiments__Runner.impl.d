lib/experiments/runner.ml: Adversary Core Exec Format List Svm Tasks
