lib/experiments/exp_fig6.ml: Adversary Codec Exec Harness List Printf Report Shared_objects Svm
