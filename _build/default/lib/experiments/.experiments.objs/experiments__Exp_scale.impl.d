lib/experiments/exp_scale.ml: Buffer Core Harness List Printf Report Runner Tasks
