lib/experiments/exp_fig5.mli: Report
