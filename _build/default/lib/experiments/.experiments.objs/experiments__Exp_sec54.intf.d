lib/experiments/exp_sec54.mli: Report
