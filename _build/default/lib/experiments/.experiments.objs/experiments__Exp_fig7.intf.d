lib/experiments/exp_fig7.mli: Report
