lib/experiments/exp_fig4.mli: Report
