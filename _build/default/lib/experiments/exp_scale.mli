(** Experiment SC — the cost shape of the simulations.

    The paper makes no efficiency claims; this experiment quantifies the
    constructions anyway, because the shape is instructive:

    - one simulation hop costs one-to-two orders of magnitude over
      native execution (each simulated snapshot becomes an agreement);
    - the Section 4 hop grows with x' (the agreement scans all
      C(n', x') subsets) — the price of multiplied crash tolerance;
    - hops compose multiplicatively.

    Measured in scheduler steps (deterministic, machine-independent). *)

val run : unit -> Report.t

val overhead_table : unit -> string
(** The rendered steps table (used by the CLI). *)
