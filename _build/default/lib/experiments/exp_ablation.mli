(** Experiment AB — ablations: remove one ingredient at a time and
    exhibit the failure the paper's design prevents.

    1. Safe agreement without Figure 1's cancellation rule: two
       processes decide different values under a priority schedule.
    2. The simulation without mutex1: one simulator crash leaves many
       agreement proposes dangling, blocking far more than x simulated
       processes (the BG accounting collapses).
    3. x_safe_agreement with static owners: the same x crashes kill
       every instance at once, so ⌊t'/x⌋ no longer bounds the blocked
       simulated processes — exactly why Section 4.3 determines owners
       dynamically. *)

val run : unit -> Report.t
