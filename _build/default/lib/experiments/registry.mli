(** All experiments, keyed by id (the per-experiment index of
    DESIGN.md). *)

val all : (string * string * (unit -> Report.t)) list
(** (id, title, run). In presentation order. *)

val find : string -> (unit -> Report.t) option
val ids : unit -> string list
