(** Experiment S0 — the substrate the base models take as given.

    The paper assumes an atomic snapshot memory (its reference [1], Afek
    et al.) and test&set objects implementable from consensus number 2
    ([19]). This experiment validates our constructions of both:

    - the register-based Afek snapshot produces views that are totally
      ordered by containment (the signature property of atomic
      snapshots), contain the scanner's own last update, and respect
      per-process write order;
    - the tournament test&set elects exactly one winner among finishers
      and is wait-free under crashes. *)

val run : unit -> Report.t
