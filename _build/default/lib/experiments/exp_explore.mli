(** Experiment EX — exhaustive verification of the agreement objects.

    Random sweeps (F1, F5, F6) sample schedules; here the explorer
    enumerates {e every} interleaving (and crash placement) within a
    depth bound, so for these scopes the objects' safety properties are
    verified for all schedules:

    - safe agreement, 2 and 3 processes, up to 1 crash anywhere:
      agreement and validity in every schedule; termination in every
      complete crash-free run;
    - the tournament test&set, 3 processes: at most one winner, ever;
    - x_compete, 3 processes with x = 2: never 3 winners;
    - 2-process consensus from test&set: agreement in every schedule,
      up to 1 crash;
    - and, as a sanity check of the method itself, the explorer {e does}
      find the disagreement counterexample in the ablated (no-cancel)
      safe agreement. *)

val run : unit -> Report.t
