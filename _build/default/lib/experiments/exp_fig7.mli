(** Experiment F7 — Figure 7: the model-equivalence chain.

    [ASM(6,4,2) ≃ ASM(5,2,1)] (both have power ⌊t/x⌋ = 2). Figure 7
    realizes the equivalence through four simulations:
    [ASM(6,4,2) → ASM(6,2,1) → ASM(3,2,1) → ASM(5,2,1) → target].
    Every arrow is checked individually on a schedule sweep, and a full
    composition is executed end-to-end (on the cheap trivial task — each
    nesting multiplies the step count ~25-50x, which is the expected
    polynomial-per-level blow-up of BG-style simulation). *)

val run : unit -> Report.t
