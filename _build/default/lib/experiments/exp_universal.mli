(** Experiment UC — the consensus-number context (paper Section 1.1).

    The paper's framing rests on Herlihy's results: consensus objects are
    universal (any object with a sequential specification can be
    wait-free implemented from them), and objects sit in a hierarchy of
    consensus numbers (registers 1; test&set, queues, stacks 2;
    compare&swap infinity). This experiment validates the positive side
    of both on our substrate:

    - the universal construction implements a linearizable wait-free
      queue and fetch&add counter from n-ported consensus objects, under
      crashes;
    - one test&set or one pre-filled queue solves 2-process consensus;
      one compare&swap solves consensus for any number of processes;
    - the environment refuses compare&swap in any finite-x model. *)

val run : unit -> Report.t
