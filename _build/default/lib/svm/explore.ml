type 'a run = {
  outcomes : 'a Exec.outcome array;
  crashed : int list;
  truncated : bool;
  schedule : string;
}

type 'a result = {
  explored : int;
  counterexample : ('a run * string) option;
  exhausted_budget : bool;
}

type 'a pstate = Running of 'a Prog.t | Done of 'a | Crashed

type choice = Step of int | Crash of int

let pp_choice = function
  | Step p -> string_of_int p
  | Crash p -> Printf.sprintf "X%d" p

let schedule_string rev_choices =
  String.concat "." (List.rev_map pp_choice rev_choices)

exception Found

let exhaustive ?(max_crashes = 0) ?(max_runs = 2_000_000) ~max_steps ~make
    ~property () =
  let env0, progs = make () in
  let explored = ref 0 in
  let counterexample = ref None in
  let exhausted = ref false in
  let finish states crashed truncated rev_choices =
    let outcomes =
      Array.map
        (function
          | Running _ -> Exec.Blocked
          | Done v -> Exec.Decided v
          | Crashed -> Exec.Crashed)
        states
    in
    let run =
      {
        outcomes;
        crashed = List.rev crashed;
        truncated;
        schedule = schedule_string rev_choices;
      }
    in
    incr explored;
    (match property run with
    | Ok () -> ()
    | Error msg ->
        counterexample := Some (run, msg);
        raise Found);
    if !explored >= max_runs then begin
      exhausted := true;
      raise Found
    end
  in
  (* Depth-first over choices. [states] is immutable per node (arrays are
     copied when branching); [env] is copied when branching. *)
  let rec dfs env states depth crashes crashed rev_choices =
    let live =
      Array.to_list states
      |> List.mapi (fun i s -> (i, s))
      |> List.filter_map (fun (i, s) ->
             match s with Running _ -> Some i | Done _ | Crashed -> None)
    in
    if live = [] then finish states crashed false rev_choices
    else if depth >= max_steps then finish states crashed true rev_choices
    else
      List.iter
        (fun pid ->
          (* Branch 1: pid executes one operation. *)
          (match states.(pid) with
          | Running prog ->
              let env' = Env.copy env in
              let states' = Array.copy states in
              (match prog with
              | Prog.Done v -> states'.(pid) <- Done v
              | Prog.Step (op, k) ->
                  let r = Env.apply env' ~pid op in
                  states'.(pid) <- Running (k r));
              dfs env' states' (depth + 1) crashes crashed
                (Step pid :: rev_choices)
          | Done _ | Crashed -> assert false);
          (* Branch 2: pid crashes instead. *)
          if crashes < max_crashes then begin
            let states' = Array.copy states in
            states'.(pid) <- Crashed;
            dfs (Env.copy env) states' (depth + 1) (crashes + 1)
              (pid :: crashed)
              (Crash pid :: rev_choices)
          end)
        live
  in
  (try dfs env0 (Array.map (fun p -> Running p) progs) 0 0 [] []
   with Found -> ());
  {
    explored = !explored;
    counterexample = !counterexample;
    exhausted_budget = !exhausted;
  }
