(** Event traces: the linearization order of a run.

    Each executed operation is one event; the order of events is exactly
    the linearization of the run (operations are atomic steps). *)

type event = { step : int; pid : int; info : Op.info option }
(** [info] is [None] for [Yield] steps and for crash events. *)

type t

val create : ?limit:int -> unit -> t
(** Keeps at most [limit] events (default 100_000); older events are
    dropped, [dropped] reports how many. *)

val add : t -> event -> unit
val events : t -> event list
(** In execution order. *)

val dropped : t -> int
val length : t -> int
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
