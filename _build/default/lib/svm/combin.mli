(** Small combinatorics helpers used by the simulations. *)

val subsets : n:int -> size:int -> int list list
(** [subsets ~n ~size] is every subset of [{0, ..., n-1}] of cardinality
    [size], each sorted increasingly, listed in lexicographic order. This
    is the [SET_LIST] of the paper (Figure 6): all simulators scan it in
    the same order. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n, k); 0 when [k < 0] or [k > n]. *)

val floor_div : int -> int -> int
(** [floor_div t x] = ⌊t/x⌋ for non-negative [t] and positive [x]. *)
