type event = { step : int; pid : int; info : Op.info option }

type t = {
  limit : int;
  mutable rev_events : event list;
  mutable count : int;
  mutable dropped : int;
}

let create ?(limit = 100_000) () =
  { limit; rev_events = []; count = 0; dropped = 0 }

let add t e =
  if t.count >= t.limit then begin
    (* Drop the oldest half in one amortized pass. *)
    let keep = t.limit / 2 in
    let kept = ref [] in
    let n = ref 0 in
    List.iter
      (fun e ->
        if !n < keep then begin
          kept := e :: !kept;
          incr n
        end)
      t.rev_events;
    t.dropped <- t.dropped + (t.count - !n);
    t.rev_events <- List.rev !kept;
    t.count <- !n
  end;
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events
let dropped t = t.dropped
let length t = t.count

let pp_event ppf { step; pid; info } =
  match info with
  | Some i -> Format.fprintf ppf "%6d  q%-3d %a" step pid Op.pp_info i
  | None -> Format.fprintf ppf "%6d  q%-3d (yield)" step pid

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
