exception Type_error of string

type 'a t = { inj : 'a -> Univ.t; prj : Univ.t -> 'a }

let of_embedding name (e : 'a Univ.embedding) =
  let prj u =
    match e.prj u with
    | Some v -> v
    | None -> raise (Type_error name)
  in
  { inj = e.inj; prj }

let int = of_embedding "int" (Univ.embed ())
let bool = of_embedding "bool" (Univ.embed ())
let string = of_embedding "string" (Univ.embed ())
let unit = of_embedding "unit" (Univ.embed ())
let any = { inj = Fun.id; prj = Fun.id }

(* Shared structural embeddings: all [pair]/[arr]/... codecs go through the
   same embedding so that independently constructed codecs interoperate. *)
let pair_e : (Univ.t * Univ.t) Univ.embedding = Univ.embed ()
let option_e : Univ.t option Univ.embedding = Univ.embed ()
let list_e : Univ.t list Univ.embedding = Univ.embed ()
let arr_e : Univ.t array Univ.embedding = Univ.embed ()
let key_e : (string * int list) Univ.embedding = Univ.embed ()

let pair a b =
  let p = of_embedding "pair" pair_e in
  {
    inj = (fun (x, y) -> p.inj (a.inj x, b.inj y));
    prj =
      (fun u ->
        let x, y = p.prj u in
        (a.prj x, b.prj y));
  }

let triple a b c =
  let p = pair a (pair b c) in
  {
    inj = (fun (x, y, z) -> p.inj (x, (y, z)));
    prj =
      (fun u ->
        let x, (y, z) = p.prj u in
        (x, y, z));
  }

let option a =
  let o = of_embedding "option" option_e in
  {
    inj = (fun v -> o.inj (Option.map a.inj v));
    prj = (fun u -> Option.map a.prj (o.prj u));
  }

let list a =
  let l = of_embedding "list" list_e in
  {
    inj = (fun v -> l.inj (List.map a.inj v));
    prj = (fun u -> List.map a.prj (l.prj u));
  }

let arr a =
  let l = of_embedding "array" arr_e in
  {
    inj = (fun v -> l.inj (Array.map a.inj v));
    prj = (fun u -> Array.map a.prj (l.prj u));
  }

let assoc a =
  let k = of_embedding "key" key_e in
  list (pair k a)
