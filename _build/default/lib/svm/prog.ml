type 'a t = Done of 'a | Step : 'r Op.t * ('r -> 'a t) -> 'a t

let return x = Done x

let rec bind p f =
  match p with
  | Done v -> f v
  | Step (op, k) -> Step (op, fun r -> bind (k r) f)

let map f p = bind p (fun v -> Done (f v))
let perform op = Step (op, fun r -> Done r)
let yield = perform Op.Yield

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) p f = map f p
  let ( >>= ) = bind
end

open Syntax

let rec iter_list f = function
  | [] -> return ()
  | x :: rest ->
      let* () = f x in
      iter_list f rest

let rec fold_list f acc = function
  | [] -> return acc
  | x :: rest ->
      let* acc = f acc x in
      fold_list f acc rest

let rec loop body s =
  let* next = body s in
  match next with `Again s -> loop body s | `Stop v -> return v

let reg_read (c : 'a Codec.t) fam key =
  map (Option.map c.prj) (perform (Op.Reg_read (fam, key)))

let reg_write (c : 'a Codec.t) fam key v =
  perform (Op.Reg_write (fam, key, c.inj v))

let snap_set (c : 'a Codec.t) fam key v =
  perform (Op.Snap_set (fam, key, c.inj v))

let snap_scan (c : 'a Codec.t) fam key =
  map
    (Array.map (Option.map c.prj))
    (perform (Op.Snap_scan (fam, key)))

let ts fam key = perform (Op.Ts (fam, key))

let cons_propose (c : 'a Codec.t) fam key v =
  map c.prj (perform (Op.Cons_propose (fam, key, c.inj v)))

let kset_propose (c : 'a Codec.t) fam key v =
  map c.prj (perform (Op.Kset_propose (fam, key, c.inj v)))

let queue_enq (c : 'a Codec.t) fam key v =
  perform (Op.Queue_enq (fam, key, c.inj v))

let queue_deq (c : 'a Codec.t) fam key =
  map (Option.map c.prj) (perform (Op.Queue_deq (fam, key)))

let cas (c : 'a Codec.t) fam key ~expected ~desired =
  perform (Op.Cas (fam, key, Option.map c.inj expected, c.inj desired))
