(** Typed encoders/decoders for {!Univ.t} values.

    Base codecs are module-level singletons, and structural combinators
    ([pair], [arr], ...) route through shared embeddings, so any two codecs
    built from the same combinator tree are interoperable: a value injected
    by [pair int bool] can be projected by another [pair int bool]. *)

exception Type_error of string
(** Raised by [prj] when the dynamic value does not match the codec. *)

type 'a t = { inj : 'a -> Univ.t; prj : Univ.t -> 'a }

val int : int t
val bool : bool t
val string : string t
val unit : unit t

val any : Univ.t t
(** The identity codec, for code that threads opaque values through. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val option : 'a t -> 'a option t
val list : 'a t -> 'a list t

val arr : 'a t -> 'a array t
(** Arrays are copied on both [inj] and [prj], so shared-memory cells never
    alias a mutable array still held by a process. *)

val assoc : 'a t -> ((string * int list) * 'a) list t
(** Finite maps keyed by (family, key) pairs, used for virtual memories in
    the simulations. *)
