type t = ..

type 'a embedding = { inj : 'a -> t; prj : t -> 'a option }

let embed (type a) () : a embedding =
  let module M = struct
    type t += K of a
  end in
  let prj = function M.K v -> Some v | _ -> None in
  { inj = (fun v -> M.K v); prj }
