(** The scheduler: runs a set of programs to completion under an
    adversary.

    One call to {!run} is one execution of the distributed system. Each
    iteration the adversary picks a runnable process; the process either
    crashes (if the crash plan says so) or executes exactly one atomic
    operation against the environment. The run ends when every process has
    decided or crashed, or when the step budget is exhausted — remaining
    live processes are then reported as [Blocked], which is how the
    experiments detect the permanent blocking the paper reasons about. *)

type 'a outcome = Decided of 'a | Crashed | Blocked

type 'a result = {
  outcomes : 'a outcome array;
  op_counts : int array;  (** operations executed per process *)
  total_steps : int;
  crashed : int list;  (** pids, in crash order *)
  trace : Trace.t option;
}

val run :
  ?budget:int ->
  ?record_trace:bool ->
  env:Env.t ->
  adversary:Adversary.t ->
  'a Prog.t array ->
  'a result
(** [run ~env ~adversary progs] executes [progs.(i)] as process [i].
    Default [budget] is [2_000_000] steps. The number of programs must
    equal [Env.nprocs env]. *)

val decided : 'a result -> 'a list
(** All decided values, in pid order. *)

val decided_count : 'a result -> int
val blocked : 'a result -> int list
val outcome_name : 'a outcome -> string
