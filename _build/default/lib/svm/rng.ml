type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: one 64-bit state, passes BigCrush; more than enough for
   schedule exploration. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let u = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem u (Int64.of_int bound))

let bool t = Int64.equal (Int64.logand (next t) 1L) 1L
let split t = { state = next t }
