lib/svm/prog.mli: Codec Op
