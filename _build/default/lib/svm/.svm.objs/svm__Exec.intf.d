lib/svm/exec.mli: Adversary Env Prog Trace
