lib/svm/trace.mli: Format Op
