lib/svm/combin.mli:
