lib/svm/univ.ml:
