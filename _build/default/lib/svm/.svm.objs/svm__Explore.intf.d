lib/svm/explore.mli: Env Exec Prog Stdlib
