lib/svm/codec.mli: Univ
