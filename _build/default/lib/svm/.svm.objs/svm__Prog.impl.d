lib/svm/prog.ml: Array Codec Op Option
