lib/svm/trace.ml: Format List Op
