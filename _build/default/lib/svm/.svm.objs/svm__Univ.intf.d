lib/svm/univ.mli:
