lib/svm/combin.ml: List
