lib/svm/op.mli: Format Univ
