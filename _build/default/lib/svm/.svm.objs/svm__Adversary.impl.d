lib/svm/adversary.ml: List Op Printf Rng
