lib/svm/exec.ml: Adversary Array Env List Op Printf Prog Trace
