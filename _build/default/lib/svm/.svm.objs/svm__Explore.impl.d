lib/svm/explore.ml: Array Env Exec List Printf Prog String
