lib/svm/env.mli: Op Univ
