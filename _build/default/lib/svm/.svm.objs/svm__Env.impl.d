lib/svm/env.ml: Array Format Hashtbl List Op Option String Univ
