lib/svm/rng.ml: Int64
