lib/svm/rng.mli:
