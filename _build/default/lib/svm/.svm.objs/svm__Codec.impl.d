lib/svm/codec.ml: Array Fun List Option Univ
