lib/svm/adversary.mli: Op
