lib/svm/op.ml: Format Univ
