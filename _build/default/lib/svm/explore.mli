(** Bounded exhaustive exploration of schedules (a small model checker).

    Random sweeps sample the schedule space; for the small agreement
    objects at the heart of the paper we can do better and enumerate
    {e every} interleaving (and every crash placement) up to a depth
    bound, so safety properties hold for all schedules within scope, not
    just the sampled ones.

    The explorer branches, at every step, over which live process
    executes its next operation and — if the crash budget allows — over
    crashing a process instead. Branches share nothing: the environment
    is deep-copied ({!Env.copy}) and program continuations are pure
    values.

    Requirement: programs must be {e closed} — all their state lives in
    the environment or in the continuation, never in captured mutable
    refs (all the object protocols of this repository qualify; the BG
    simulator processes do not, as their simulator state is in refs).

    Runs that exceed [max_steps] are reported with [Blocked] outcomes for
    the still-running processes; the property is consulted on them too,
    so use properties that are safety-only on truncated runs (e.g.
    "decided values agree", not "everyone decided") or inspect
    [truncated]. *)

type 'a run = {
  outcomes : 'a Exec.outcome array;
  crashed : int list;
  truncated : bool;  (** hit [max_steps] with processes still running *)
  schedule : string;  (** human-readable choice sequence *)
}

type 'a result = {
  explored : int;  (** complete runs checked *)
  counterexample : ('a run * string) option;  (** run + property failure *)
  exhausted_budget : bool;
      (** stopped early because [max_runs] was reached — coverage is then
          partial, like a random sweep *)
}

val exhaustive :
  ?max_crashes:int ->
  ?max_runs:int ->
  max_steps:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  property:('a run -> (unit, string) Stdlib.result) ->
  unit ->
  'a result
(** [exhaustive ~max_steps ~make ~property ()] enumerates schedules
    depth-first. [make] builds a fresh environment and programs (called
    once; branching copies the environment). Defaults: [max_crashes = 0],
    [max_runs = 2_000_000]. *)
