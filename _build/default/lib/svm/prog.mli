(** Programs: a free monad over {!Op.t}.

    A process of the simulated system is a value of type ['a t]: a tree of
    atomic shared-memory operations ending in a decision of type ['a]. The
    scheduler ({!Exec}) interprets one operation per step, so asynchrony is
    exactly the interleaving of [Step] nodes, and a simulation algorithm
    can interpret someone else's program operation by operation (this is
    what the BG-style simulators do). *)

type 'a t = Done of 'a | Step : 'r Op.t * ('r -> 'a t) -> 'a t

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t
val perform : 'r Op.t -> 'r t

val yield : unit t
(** A step with no shared-memory effect; gives the scheduler (and a
    simulator's internal thread scheduler) a chance to switch processes. *)

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
end

val iter_list : ('a -> unit t) -> 'a list -> unit t
val fold_list : ('acc -> 'a -> 'acc t) -> 'acc -> 'a list -> 'acc t

val loop : ('s -> [ `Again of 's | `Stop of 'a ] t) -> 's -> 'a t
(** [loop body s] runs [body] repeatedly, threading state, until it stops.
    Each iteration must perform at least one operation for the scheduler to
    stay fair; bodies that might perform none should include {!yield}. *)

(** {1 Typed operation helpers} *)

val reg_read : 'a Codec.t -> Op.fam -> Op.key -> 'a option t
val reg_write : 'a Codec.t -> Op.fam -> Op.key -> 'a -> unit t
val snap_set : 'a Codec.t -> Op.fam -> Op.key -> 'a -> unit t
val snap_scan : 'a Codec.t -> Op.fam -> Op.key -> 'a option array t
val ts : Op.fam -> Op.key -> bool t
val cons_propose : 'a Codec.t -> Op.fam -> Op.key -> 'a -> 'a t
val kset_propose : 'a Codec.t -> Op.fam -> Op.key -> 'a -> 'a t
val queue_enq : 'a Codec.t -> Op.fam -> Op.key -> 'a -> unit t
val queue_deq : 'a Codec.t -> Op.fam -> Op.key -> 'a option t

val cas : 'a Codec.t -> Op.fam -> Op.key -> expected:'a option -> desired:'a -> bool t
(** Structural compare&swap on a register (see {!Op.t}); the environment
    must have been created with [allow_cas]. *)
