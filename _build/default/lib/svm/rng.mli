(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator goes through this module so
    that a run is fully reproducible from an integer seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val bool : t -> bool

val split : t -> t
(** [split t] advances [t] and returns a new independent generator. *)
