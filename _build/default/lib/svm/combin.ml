let subsets ~n ~size =
  if size < 0 || n < 0 then invalid_arg "Combin.subsets";
  (* Lexicographic enumeration: choose the first element, recurse on the
     remaining suffix. *)
  let rec go first remaining =
    if remaining = 0 then [ [] ]
    else if first >= n then []
    else
      let with_first =
        List.map (fun s -> first :: s) (go (first + 1) (remaining - 1))
      in
      with_first @ go (first + 1) remaining
  in
  go 0 size

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let floor_div t x =
  if x <= 0 then invalid_arg "Combin.floor_div: x must be positive";
  if t < 0 then invalid_arg "Combin.floor_div: t must be non-negative";
  t / x
