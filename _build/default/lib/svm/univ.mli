(** Universal values.

    Shared-memory cells hold values of many different OCaml types (plain
    task inputs, arrays of stamped values inside the BG simulation, whole
    memory views inside agreement objects). [Univ.t] is a type-safe
    dynamic value built on extensible variants; {!Codec} layers typed
    encoders on top. *)

type t

type 'a embedding = { inj : 'a -> t; prj : t -> 'a option }

val embed : unit -> 'a embedding
(** [embed ()] creates a fresh embedding. Two distinct calls give
    incompatible embeddings, so embeddings meant to be shared must be
    created once (see {!Codec}). *)
