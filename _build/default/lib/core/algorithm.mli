(** Distributed algorithms for an [ASM(n, t, x)] model.

    An algorithm is the code of its [n] processes: given a process id and
    an input, it yields a {!Svm.Prog.t} deciding a value. For the
    simulations of the paper to apply, the code must use only the
    {e canonical operation alphabet}:

    - [Snap_set]/[Snap_scan] on any snapshot family (the shared snapshot
      memory [mem], generalized to families so that simulator algorithms
      — which use several snapshot objects — are themselves algorithms,
      making simulations composable);
    - [Cons_propose] on consensus families (each instance touched by at
      most [x] processes — enforced by the environment natively and by
      the agreement objects under simulation);
    - [Yield].

    Registers, test&set and k-set operations are rejected by the
    simulation engine (registers and test&set are still fine for code
    that only runs natively). *)

type t = {
  name : string;
  model : Model.t;  (** designed-for model; [model.n] is the process count *)
  code : pid:int -> input:Svm.Univ.t -> Svm.Univ.t Svm.Prog.t;
}

val make :
  name:string ->
  model:Model.t ->
  (pid:int -> input:Svm.Univ.t -> Svm.Univ.t Svm.Prog.t) ->
  t

val n : t -> int
val resilience : t -> int
(** The [t] of the designed-for model. *)
