(** A uniform view of the two agreement object types used by the
    simulations.

    The engine of Sections 3 and 4 is the same algorithm up to the
    agreement object its simulators use:

    - target model [ASM(n, t, 1)]: the safe agreement type (Figure 1) —
      blocking one object costs one crash;
    - target model [ASM(n, t', x)] with [x > 1]: the x_safe_agreement
      type (Figure 6) — blocking one object costs [x] crashes, which is
      exactly where the multiplicative power comes from. *)

type t = {
  propose : key:Svm.Op.key -> pid:int -> Svm.Univ.t -> unit Svm.Prog.t;
  decide : key:Svm.Op.key -> pid:int -> Svm.Univ.t Svm.Prog.t;
}

val safe : fam:Svm.Op.fam -> t
(** Safe agreement instances over snapshot family [fam]. *)

val x_safe : fam:Svm.Op.fam -> participants:int -> x:int -> t

val for_target : fam:Svm.Op.fam -> target:Model.t -> t
(** [safe] when [target.x = 1], [x_safe] with [x = target.x] and
    [participants = target.n] otherwise. *)
