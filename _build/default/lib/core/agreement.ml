type t = {
  propose : key:Svm.Op.key -> pid:int -> Svm.Univ.t -> unit Svm.Prog.t;
  decide : key:Svm.Op.key -> pid:int -> Svm.Univ.t Svm.Prog.t;
}

let safe ~fam =
  let sa = Shared_objects.Safe_agreement.make ~fam in
  {
    propose =
      (fun ~key ~pid:_ v -> Shared_objects.Safe_agreement.propose sa ~key v);
    decide = (fun ~key ~pid:_ -> Shared_objects.Safe_agreement.decide sa ~key);
  }

let x_safe ~fam ~participants ~x =
  let xsa = Shared_objects.X_safe_agreement.make ~fam ~participants ~x () in
  {
    propose =
      (fun ~key ~pid v -> Shared_objects.X_safe_agreement.propose xsa ~key ~pid v);
    decide =
      (fun ~key ~pid -> Shared_objects.X_safe_agreement.decide xsa ~key ~pid);
  }

let for_target ~fam ~target =
  if target.Model.x = 1 then safe ~fam
  else x_safe ~fam ~participants:target.Model.n ~x:target.Model.x
