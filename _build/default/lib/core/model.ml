type t = { n : int; t : int; x : int }

let make ~n ~t ~x =
  if n <= 0 then invalid_arg "Model.make: n must be positive";
  if t < 0 || t >= n then invalid_arg "Model.make: need 0 <= t < n";
  if x < 1 || x > n then invalid_arg "Model.make: need 1 <= x <= n";
  { n; t; x }

let read_write ~n ~t = make ~n ~t ~x:1
let pp ppf m = Format.fprintf ppf "ASM(%d,%d,%d)" m.n m.t m.x
let to_string m = Format.asprintf "%a" pp m
let equal m1 m2 = m1.n = m2.n && m1.t = m2.t && m1.x = m2.x
let power m = Svm.Combin.floor_div m.t m.x
let equivalent m1 m2 = power m1 = power m2

let canonical m =
  let p = power m in
  (* p < n always holds since t < n and x >= 1. *)
  make ~n:m.n ~t:p ~x:1

let bg_canonical m =
  let p = power m in
  make ~n:(p + 1) ~t:p ~x:1

let stronger m1 m2 = power m1 < power m2
let wait_free m = m.t = m.n - 1
let solves_all_tasks m = m.x > m.t
let kset_solvable m ~k = k > power m

let equivalence_window ~t' ~x =
  if t' < 0 || x < 1 then None else Some (Svm.Combin.floor_div t' x)

let window_bounds ~t ~x =
  if t < 0 || x < 1 then invalid_arg "Model.window_bounds";
  (t * x, (t * x) + x - 1)

let classes_for_t' ~t' ~x_max =
  if t' < 0 || x_max < 1 then invalid_arg "Model.classes_for_t'";
  let rec go x acc =
    if x > x_max then List.rev acc
    else
      let p = Svm.Combin.floor_div t' x in
      match acc with
      | (p0, xs) :: rest when p0 = p -> go (x + 1) ((p0, xs @ [ x ]) :: rest)
      | _ -> go (x + 1) ((p, [ x ]) :: acc)
  in
  go 1 []

let colorless_simulation_ok ~source ~target = power source >= power target

let colored_simulation_ok ~source ~target =
  target.x > 1
  && power source >= power target
  && source.n >= max target.n (target.n - target.t + source.t)
