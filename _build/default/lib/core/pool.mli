(** Cooperative thread pools inside a program.

    A simulator process runs one thread per simulated process and
    interleaves them fairly — this module provides that machinery. Each
    {!step} embeds exactly one atomic operation of the chosen thread into
    the caller's own program, so from the scheduler's point of view the
    whole pool is a single process whose steps are the threads' steps (as
    in the paper, where simulator [qi] "manages n threads and locally
    executes these threads in a fair way"). *)

type 'v t

val make : 'v Svm.Prog.t array -> 'v t
val size : 'v t -> int

val active : 'v t -> int
(** Threads that have not yet finished. *)

val is_active : 'v t -> int -> bool

val step : 'v t -> tid:int -> [ `Done of 'v | `Stepped | `Finished ] Svm.Prog.t
(** Advance thread [tid] by one operation. [`Done v] is returned exactly
    once, when the thread's program completes; after that the thread is
    inactive and further steps return [`Finished]. A step of a spinning
    thread (e.g. a [decide] wait loop) is an ordinary [`Stepped]. *)

val round_robin_next : 'v t -> after:int -> int option
(** The next active tid strictly after [after] in cyclic order ([after]
    itself is considered last); [None] if no thread is active. *)
