lib/core/model.ml: Format List Svm
