lib/core/bg_engine.mli: Algorithm Model
