lib/core/pool.mli: Svm
