lib/core/bg_engine.ml: Agreement Algorithm Array Codec Format Hashtbl List Model Op Option Pool Prog Shared_objects Svm Univ
