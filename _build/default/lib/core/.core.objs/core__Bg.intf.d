lib/core/bg.mli: Algorithm Model
