lib/core/agreement.ml: Model Shared_objects Svm
