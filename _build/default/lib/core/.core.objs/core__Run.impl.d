lib/core/run.ml: Algorithm Array Codec Env Exec List Model Printf Svm
