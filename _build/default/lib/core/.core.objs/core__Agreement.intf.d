lib/core/agreement.mli: Model Svm
