lib/core/algorithm.ml: Model Svm
