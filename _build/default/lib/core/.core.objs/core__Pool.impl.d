lib/core/pool.ml: Array Prog Svm
