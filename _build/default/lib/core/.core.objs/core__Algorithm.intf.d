lib/core/algorithm.mli: Model Svm
