lib/core/bg.ml: Algorithm Bg_engine List Model Printf Svm
