lib/core/run.mli: Algorithm Svm
