(** The system models [ASM(n, t, x)] and their equivalence algebra
    (paper Sections 1.2, 2.3 and 5).

    [ASM(n, t, x)]: [n] asynchronous processes, at most [t] crashes,
    communication through a snapshot read/write memory plus objects of
    consensus number [x], each accessible by at most [x] processes.

    Main theorem of the paper: for colorless decision tasks,
    [ASM(n1, t1, x1) ≃ ASM(n2, t2, x2)] iff [⌊t1/x1⌋ = ⌊t2/x2⌋]. *)

type t = private { n : int; t : int; x : int }

val make : n:int -> t:int -> x:int -> t
(** Validates [0 <= t < n] and [1 <= x <= n]. The paper states
    [1 <= t]; we also allow [t = 0] (the failure-free model
    [ASM(n, 0, 1)] appears in Section 1.2). *)

val read_write : n:int -> t:int -> t
(** [ASM(n, t, 1)]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

(** {1 The equivalence algebra} *)

val power : t -> int
(** [⌊t/x⌋] — the quantity that fully characterizes the model's
    computational power for colorless tasks. *)

val equivalent : t -> t -> bool
(** The main theorem: [power m1 = power m2]. *)

val canonical : t -> t
(** [ASM(n, ⌊t/x⌋, 1)]: the canonical representative of the model's
    equivalence class (Section 5.4). *)

val bg_canonical : t -> t
(** [ASM(⌊t/x⌋ + 1, ⌊t/x⌋, 1)]: the wait-free canonical form obtained by
    additionally applying the BG simulation (Section 5.2). *)

val stronger : t -> t -> bool
(** [stronger m1 m2]: strictly more colorless tasks are solvable in [m1]
    than in [m2], i.e. [power m1 < power m2] (Section 5.4, the hierarchy
    of system models). *)

val wait_free : t -> bool
(** [t = n - 1]. *)

val solves_all_tasks : t -> bool
(** [x > t]: every task is solvable (the paper's remark in Section 1.2). *)

val kset_solvable : t -> k:int -> bool
(** [k]-set agreement is solvable in [ASM(n, t, x)] iff [k > ⌊t/x⌋]
    (Section 5.4: a task with set consensus number k is solvable iff
    [k > ⌊t/x⌋]). *)

val equivalence_window : t':int -> x:int -> int option
(** [equivalence_window ~t' ~x] is [Some t] with
    [ASM(n, t', x) ≃ ASM(n, t, 1)], i.e. [t = ⌊t'/x⌋]; this is the
    multiplicative-power statement [t*x <= t' <= t*x + (x-1)]. [None]
    when the inputs are invalid. *)

val window_bounds : t:int -> x:int -> int * int
(** [window_bounds ~t ~x] is [(t*x, t*x + x - 1)]: the exact range of
    [t'] for which [ASM(n, t', x) ≃ ASM(n, t, 1)]. *)

val classes_for_t' : t':int -> x_max:int -> (int * int list) list
(** Section 5.4's enumeration: for a fixed [t'], partition
    [x ∈ {1..x_max}] by [⌊t'/x⌋]. Each pair is
    [(power, the xs with that power)], powers decreasing in [x] order —
    e.g. for [t' = 8] this reproduces the paper's five classes. *)

(** {1 Simulation preconditions} *)

val colorless_simulation_ok : source:t -> target:t -> bool
(** Colorless tasks: programs for [source] can be simulated in [target]
    iff [power source >= power target] (Sections 3 and 4 combined; the
    direction of the inequality follows the paper's "a task solvable in
    ASM(n, t, 1) is solvable in ASM(n, t', x) for ⌊t'/x⌋ <= t"). *)

val colored_simulation_ok : source:t -> target:t -> bool
(** Section 5.5: requires [target.x > 1], [power source >= power target]
    and [source.n >= max target.n ((target.n - target.t) + source.t)]. *)
