open Svm

type 'v state = Running of 'v Prog.t | Finished

type 'v t = { threads : 'v state array; mutable active : int }

let make progs =
  { threads = Array.map (fun p -> Running p) progs; active = Array.length progs }

let size t = Array.length t.threads
let active t = t.active

let is_active t tid =
  match t.threads.(tid) with Running _ -> true | Finished -> false

let step t ~tid =
  match t.threads.(tid) with
  | Finished -> Prog.return `Finished
  | Running (Prog.Done v) ->
      t.threads.(tid) <- Finished;
      t.active <- t.active - 1;
      Prog.return (`Done v)
  | Running (Prog.Step (op, k)) ->
      Prog.Step
        ( op,
          fun r ->
            t.threads.(tid) <- Running (k r);
            Prog.return `Stepped )

let round_robin_next t ~after =
  let n = Array.length t.threads in
  if n = 0 then None
  else
    let rec go i remaining =
      if remaining = 0 then None
      else if is_active t i then Some i
      else go ((i + 1) mod n) (remaining - 1)
    in
    go ((after + 1) mod n) n
