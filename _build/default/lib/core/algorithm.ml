type t = {
  name : string;
  model : Model.t;
  code : pid:int -> input:Svm.Univ.t -> Svm.Univ.t Svm.Prog.t;
}

let make ~name ~model code = { name; model; code }
let n alg = alg.model.Model.n
let resilience alg = alg.model.Model.t
