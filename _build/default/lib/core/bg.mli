(** The paper's simulations, as named in the paper.

    All are instances of {!Bg_engine.simulate}; the wrappers check the
    exact precondition stated by the corresponding theorem. *)

val sim_down : source:Algorithm.t -> t:int -> Algorithm.t
(** Section 3 (Theorem 1): simulate [ASM(n, t', x)] in [ASM(n, t, 1)].
    Requires [t <= ⌊t'/x⌋]. The source's [n] is kept. *)

val sim_up : source:Algorithm.t -> t':int -> x:int -> Algorithm.t
(** Section 4 (Theorem 3): simulate [ASM(n, t, 1)] in [ASM(n, t', x)].
    Requires the source to be a read/write algorithm ([source.model.x =
    1]) and [t >= ⌊t'/x⌋]. *)

val classic : source:Algorithm.t -> Algorithm.t
(** The original Borowsky-Gafni simulation: [ASM(n, t, 1)] in
    [ASM(t+1, t, 1)]. Requires [source.model.x = 1]. *)

val generalized_classic : source:Algorithm.t -> Algorithm.t
(** Contribution #2 (Section 5.2): [ASM(n, t, x)] in [ASM(t+1, t, x)]
    with [t = ⌊t_src/x_src⌋ ... ] — precisely, any task solvable in
    [ASM(n, t, x)] is solvable in [ASM(⌊t/x⌋+1, ⌊t/x⌋, 1)], the
    wait-free canonical form. *)

val to_model : source:Algorithm.t -> target:Model.t -> Algorithm.t
(** The general colorless simulation: requires
    [⌊t_src/x_src⌋ >= ⌊t_tgt/x_tgt⌋]. *)

val colored : source:Algorithm.t -> target:Model.t -> Algorithm.t
(** Section 5.5: colored-task simulation. Requires [target.x > 1],
    [⌊t_src/x_src⌋ >= ⌊t_tgt/x_tgt⌋] and
    [n_src >= max n_tgt ((n_tgt - t_tgt) + t_src)]. *)

val chain : source:Algorithm.t -> via:Model.t list -> Algorithm.t
(** Figure 7: compose colorless simulations hop by hop through the given
    intermediate models (each hop checked). [via = []] is the identity. *)

val figure7_chain : source:Algorithm.t -> target:Model.t -> Model.t list
(** The intermediate models of Figure 7 for going from the source's
    model [ASM(n1,t1,x1)] to [ASM(n2,t2,x2)]:
    [ASM(n1,t,1)], [ASM(t+1,t,1)], [ASM(n2,t,1)], then the target —
    where [t = ⌊t1/x1⌋ = ⌊t2/x2⌋]. Raises [Invalid_argument] if the
    models are not equivalent. *)
