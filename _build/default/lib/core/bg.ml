let simulate = Bg_engine.simulate

let sim_down ~(source : Algorithm.t) ~t =
  let m = source.Algorithm.model in
  if t > Model.power m then
    invalid_arg
      (Printf.sprintf
         "Bg.sim_down: requires t <= floor(t'/x) = %d (got t = %d)"
         (Model.power m) t);
  let target = Model.read_write ~n:m.Model.n ~t in
  simulate ~source ~target ~mode:`Colorless ()

let sim_up ~(source : Algorithm.t) ~t' ~x =
  let m = source.Algorithm.model in
  if m.Model.x <> 1 then
    invalid_arg "Bg.sim_up: source must be a read/write algorithm (x = 1)";
  let floor_t' = Svm.Combin.floor_div t' x in
  if m.Model.t < floor_t' then
    invalid_arg
      (Printf.sprintf "Bg.sim_up: requires t >= floor(t'/x) = %d (got t = %d)"
         floor_t' m.Model.t);
  let target = Model.make ~n:m.Model.n ~t:t' ~x in
  simulate ~source ~target ~mode:`Colorless ()

let classic ~(source : Algorithm.t) =
  let m = source.Algorithm.model in
  if m.Model.x <> 1 then
    invalid_arg "Bg.classic: source must be a read/write algorithm (x = 1)";
  let target = Model.read_write ~n:(m.Model.t + 1) ~t:m.Model.t in
  simulate ~source ~target ~mode:`Colorless ()

let generalized_classic ~(source : Algorithm.t) =
  let target = Model.bg_canonical source.Algorithm.model in
  simulate ~source ~target ~mode:`Colorless ()

let to_model ~source ~target = simulate ~source ~target ~mode:`Colorless ()
let colored ~source ~target = simulate ~source ~target ~mode:`Colored ()

let chain ~source ~via =
  List.fold_left (fun alg target -> to_model ~source:alg ~target) source via

let figure7_chain ~(source : Algorithm.t) ~target =
  let m1 = source.Algorithm.model in
  if not (Model.equivalent m1 target) then
    invalid_arg
      (Printf.sprintf "Bg.figure7_chain: %s and %s are not equivalent"
         (Model.to_string m1) (Model.to_string target));
  let t = Model.power m1 in
  [
    Model.read_write ~n:m1.Model.n ~t;
    Model.read_write ~n:(t + 1) ~t;
    Model.read_write ~n:target.Model.n ~t;
    target;
  ]
