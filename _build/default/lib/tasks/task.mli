(** Decision tasks (paper Section 2.1).

    A task relates input vectors to allowed output vectors. All concrete
    tasks here are integer-valued. A task is {e colorless} when any
    proposed value may be proposed by every process and any decided value
    may be decided by every process — validity then depends only on the
    {e sets} of inputs and decisions, which is how [validate] is phrased.
    Colored tasks (renaming) additionally constrain which process decides
    what; since the paper's colored simulation guarantees distinct
    simulated origins, distinctness of the decision multiset is the
    checkable criterion. *)

type kind = Colorless | Colored

type t = {
  name : string;
  kind : kind;
  gen_inputs : seed:int -> n:int -> int list;
  validate : inputs:int list -> decisions:int list -> (unit, string) result;
}

val kset : k:int -> t
(** [k]-set agreement: every decision is some process's input, and at
    most [k] distinct values are decided. Colorless. Inputs are random
    small integers. *)

val consensus : t
(** [kset ~k:1]. *)

val trivial : t
(** Decide anything you like as long as it is a proposed value (the
    class-n tasks of the set-consensus hierarchy). Colorless. *)

val approximate : scale:int -> eps:int -> t
(** Approximate agreement: inputs are small integers; decisions are
    {e scaled} by [scale] and must lie within
    [\[min(inputs)*scale, max(inputs)*scale\]] with pairwise distance at
    most [eps]. Colorless, and — unlike consensus — wait-free solvable
    in the plain read/write model. *)

val renaming : slots:int -> t
(** M-renaming with [slots] target names: inputs are distinct original
    names from a large space; decisions must be distinct values in
    [1..slots]. Colored. *)

val check : t -> inputs:int list -> decisions:int list -> unit
(** Like [validate] but raises [Failure] with a readable message. *)

val distinct : int list -> int list
(** Sorted distinct values (helper shared by validators and tests). *)
