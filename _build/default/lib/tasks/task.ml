type kind = Colorless | Colored

type t = {
  name : string;
  kind : kind;
  gen_inputs : seed:int -> n:int -> int list;
  validate : inputs:int list -> decisions:int list -> (unit, string) result;
}

let distinct l = List.sort_uniq compare l

let gen_small_ints ~seed ~n =
  let rng = Svm.Rng.create seed in
  List.init n (fun _ -> Svm.Rng.int rng 100)

let kset ~k =
  if k < 1 then invalid_arg "Task.kset";
  let validate ~inputs ~decisions =
    let bad_value = List.find_opt (fun d -> not (List.mem d inputs)) decisions in
    match bad_value with
    | Some d -> Error (Printf.sprintf "decided %d, which was never proposed" d)
    | None ->
        let nd = List.length (distinct decisions) in
        if nd > k then
          Error (Printf.sprintf "%d distinct decisions, but k = %d" nd k)
        else Ok ()
  in
  {
    name = Printf.sprintf "%d-set-agreement" k;
    kind = Colorless;
    gen_inputs = gen_small_ints;
    validate;
  }

let consensus = { (kset ~k:1) with name = "consensus" }

let trivial =
  let validate ~inputs ~decisions =
    match List.find_opt (fun d -> not (List.mem d inputs)) decisions with
    | Some d -> Error (Printf.sprintf "decided %d, which was never proposed" d)
    | None -> Ok ()
  in
  {
    name = "trivial";
    kind = Colorless;
    gen_inputs = gen_small_ints;
    validate;
  }

let approximate ~scale ~eps =
  let validate ~inputs ~decisions =
    match inputs with
    | [] -> Ok ()
    | i0 :: _ ->
        let lo = List.fold_left min i0 inputs * scale in
        let hi = List.fold_left max i0 inputs * scale in
        let out_of_range = List.find_opt (fun d -> d < lo || d > hi) decisions in
        let too_far =
          List.exists
            (fun d -> List.exists (fun d' -> abs (d - d') > eps) decisions)
            decisions
        in
        if out_of_range <> None then
          Error
            (Printf.sprintf "decision %d outside [%d, %d]"
               (Option.get out_of_range) lo hi)
        else if too_far then Error (Printf.sprintf "decisions more than %d apart" eps)
        else Ok ()
  in
  {
    name = Printf.sprintf "approximate(eps=%d/%d)" eps scale;
    kind = Colorless;
    gen_inputs = gen_small_ints;
    validate;
  }

let renaming ~slots =
  let gen_inputs ~seed ~n =
    (* Distinct original names from a sparse space. *)
    let rng = Svm.Rng.create seed in
    let rec draw acc remaining =
      if remaining = 0 then acc
      else
        let v = 1 + Svm.Rng.int rng 1_000_000 in
        if List.mem v acc then draw acc remaining
        else draw (v :: acc) (remaining - 1)
    in
    draw [] n
  in
  let validate ~inputs:_ ~decisions =
    let nd = List.length (distinct decisions) in
    if nd <> List.length decisions then Error "two processes decided the same name"
    else
      match List.find_opt (fun d -> d < 1 || d > slots) decisions with
      | Some d -> Error (Printf.sprintf "name %d outside [1..%d]" d slots)
      | None -> Ok ()
  in
  {
    name = Printf.sprintf "renaming(%d)" slots;
    kind = Colored;
    gen_inputs;
    validate;
  }

let check t ~inputs ~decisions =
  match t.validate ~inputs ~decisions with
  | Ok () -> ()
  | Error msg ->
      failwith
        (Printf.sprintf "task %s violated: %s (inputs=[%s] decisions=[%s])"
           t.name msg
           (String.concat ";" (List.map string_of_int inputs))
           (String.concat ";" (List.map string_of_int decisions)))
