(** k-set agreement from (m, l)-set agreement objects
    (paper Section 1.3, "Using underlying base (m, l)-set agreement
    objects").

    Herlihy and Rajsbaum showed (the paper's reference [22]) that with
    (m, l)-set agreement objects, k-set agreement is solvable iff

      k >= l * floor((t+1)/m) + min(l, (t+1) mod m).

    {!herlihy_rajsbaum_k} computes that threshold, and {!algorithm}
    achieves it constructively: processes are split into groups of
    exactly [m]; each group funnels its inputs through its own
    (m, l)-set object, so a group carries at most [l] distinct values;
    everyone then runs the read/write protocol (write the group value,
    wait for [n - t] writers, decide the minimum).

    Why the bound is met: let V be the smallest snapshot with [n - t]
    writers. A decided value smaller than min(V) must belong to one of
    the at most [t] processes outside V. A fully-late group (all [m]
    members outside V) contributes at most [l] unseen values; a
    partially-late group has a member in V, so it contributes at most
    [min(l - 1, #late members)] unseen values — summing over the worst
    split of [t] late processes gives exactly the threshold above. *)

val herlihy_rajsbaum_k : t:int -> m:int -> l:int -> int
(** The smallest solvable k per reference [22]. *)

val algorithm : n:int -> t:int -> m:int -> l:int -> k:int -> Core.Algorithm.t
(** Requires [m | n], [1 <= l <= m] and [k >= herlihy_rajsbaum_k t m l].
    The produced algorithm runs in an environment with k-set objects
    enabled ({!Core.Run.run}'s [allow_kset]); its designed-for model is
    [ASM(n, t, 1)]-plus-objects, recorded as x = 1. *)
