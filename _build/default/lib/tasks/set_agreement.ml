open Svm
open Svm.Prog.Syntax

let herlihy_rajsbaum_k ~t ~m ~l =
  if t < 0 || m < 1 || l < 1 then invalid_arg "herlihy_rajsbaum_k";
  (l * ((t + 1) / m)) + min l ((t + 1) mod m)

let algorithm ~n ~t ~m ~l ~k =
  if n mod m <> 0 then invalid_arg "Set_agreement.algorithm: requires m | n";
  if l < 1 || l > m then invalid_arg "Set_agreement.algorithm: need 1 <= l <= m";
  let threshold = herlihy_rajsbaum_k ~t ~m ~l in
  if k < threshold then
    invalid_arg
      (Printf.sprintf
         "Set_agreement.algorithm: k = %d below the Herlihy-Rajsbaum \
          threshold %d"
         k threshold);
  let model = Core.Model.read_write ~n ~t in
  let int_c = Codec.int in
  let code ~pid ~input =
    let v = int_c.Codec.prj input in
    let group = pid / m in
    (* The (m, l)-set object of this group: key = [l; m; group]. *)
    let* gv = Prog.kset_propose int_c "mlset" [ l; m; group ] v in
    let* () = Prog.snap_set int_c "mem" [] gv in
    Prog.loop
      (fun () ->
        let* view = Prog.snap_scan int_c "mem" [] in
        let written =
          Array.fold_left (fun c e -> if e = None then c else c + 1) 0 view
        in
        if written >= n - t then
          let best =
            Array.fold_left
              (fun acc e -> match e with None -> acc | Some w -> min acc w)
              max_int view
          in
          Prog.return (`Stop (int_c.Codec.inj best))
        else Prog.return (`Again ()))
      ()
  in
  Core.Algorithm.make
    ~name:(Printf.sprintf "kset-from-(%d,%d)-set(n=%d,t=%d,k=%d)" m l n t k)
    ~model code
