open Svm
open Svm.Prog.Syntax

let int_c = Codec.int

(* ------------------------------------------------------------------ *)
(* k-set agreement in ASM(n, t, 1), t < k (Chaudhuri)                  *)
(* ------------------------------------------------------------------ *)

let count_some view = Array.fold_left (fun c e -> if e = None then c else c + 1) 0 view

let min_some view =
  Array.fold_left
    (fun m e -> match e with None -> m | Some v -> min m v)
    max_int view

let kset_read_write ~n ~t ~k =
  if t >= k then invalid_arg "Algorithms.kset_read_write: requires t < k";
  let model = Core.Model.read_write ~n ~t in
  let code ~pid:_ ~input =
    let v = int_c.Codec.prj input in
    let* () = Prog.snap_set int_c "mem" [] v in
    Prog.loop
      (fun () ->
        let* view = Prog.snap_scan int_c "mem" [] in
        if count_some view >= n - t then
          Prog.return (`Stop (int_c.Codec.inj (min_some view)))
        else Prog.return (`Again ()))
      ()
  in
  Core.Algorithm.make ~name:(Printf.sprintf "kset-rw(n=%d,t=%d,k=%d)" n t k)
    ~model code

let consensus_zero_resilient ~n = kset_read_write ~n ~t:0 ~k:1

(* ------------------------------------------------------------------ *)
(* Consensus from one n-ported consensus object                        *)
(* ------------------------------------------------------------------ *)

let consensus_direct ~n ~t =
  let model = Core.Model.make ~n ~t ~x:n in
  let code ~pid:_ ~input =
    let v = int_c.Codec.prj input in
    let* d = Prog.cons_propose int_c "cons" [] v in
    Prog.return (int_c.Codec.inj d)
  in
  Core.Algorithm.make ~name:(Printf.sprintf "consensus-direct(n=%d,t=%d)" n t)
    ~model code

(* ------------------------------------------------------------------ *)
(* k-set agreement in ASM(n, t, x), k > floor(t/x), programmed         *)
(* directly (requires x | n so that every group has exactly x          *)
(* members; see the interface for the analysis)                        *)
(* ------------------------------------------------------------------ *)

let kset_grouped ~n ~t ~x ~k =
  if n mod x <> 0 then
    invalid_arg "Algorithms.kset_grouped: requires x | n";
  if k <= t / x then
    invalid_arg "Algorithms.kset_grouped: requires k > floor(t/x)";
  let model = Core.Model.make ~n ~t ~x in
  let code ~pid ~input =
    let v = int_c.Codec.prj input in
    let group = pid / x in
    let* gv = Prog.cons_propose int_c "gcons" [ group ] v in
    let* () = Prog.snap_set int_c "mem" [] gv in
    Prog.loop
      (fun () ->
        let* view = Prog.snap_scan int_c "mem" [] in
        if count_some view >= n - t then
          Prog.return (`Stop (int_c.Codec.inj (min_some view)))
        else Prog.return (`Again ()))
      ()
  in
  Core.Algorithm.make
    ~name:(Printf.sprintf "kset-grouped(n=%d,t=%d,x=%d,k=%d)" n t x k)
    ~model code

(* ------------------------------------------------------------------ *)
(* (2n-1)-renaming in ASM(n, t, 1)                                     *)
(* ------------------------------------------------------------------ *)

let nth_free ~used r =
  (* r-th (1-based) positive integer not in [used]. *)
  let rec go candidate remaining =
    if List.mem candidate used then go (candidate + 1) remaining
    else if remaining = 1 then candidate
    else go (candidate + 1) (remaining - 1)
  in
  go 1 r

let renaming_read_write ~n ~t =
  let model = Core.Model.read_write ~n ~t in
  let cell = Codec.pair Codec.int Codec.int in
  let code ~pid ~input =
    let my_id = int_c.Codec.prj input in
    let* () = Prog.snap_set cell "rename" [] (my_id, 0) in
    Prog.loop
      (fun prop ->
        let* view = Prog.snap_scan cell "rename" [] in
        let others =
          List.filteri (fun j _ -> j <> pid) (Array.to_list view)
          |> List.filter_map (fun e -> e)
        in
        let conflict =
          List.exists (fun (_, p) -> p > 0 && p = prop) others
        in
        if prop > 0 && not conflict then
          Prog.return (`Stop (int_c.Codec.inj prop))
        else begin
          let ids = List.sort compare (my_id :: List.map fst others) in
          let rank =
            1 + (List.filteri (fun _ id -> id < my_id) ids |> List.length)
          in
          let used =
            List.filter_map (fun (_, p) -> if p > 0 then Some p else None) others
            |> Task.distinct
          in
          let prop' = nth_free ~used rank in
          let* () = Prog.snap_set cell "rename" [] (my_id, prop') in
          Prog.return (`Again prop')
        end)
      0
  in
  Core.Algorithm.make ~name:(Printf.sprintf "renaming-rw(n=%d,t=%d)" n t)
    ~model code

(* ------------------------------------------------------------------ *)
(* Approximate agreement                                               *)
(* ------------------------------------------------------------------ *)

let approximate_agreement ~n ~t ~rounds ~scale =
  if rounds < 1 || scale < 1 then
    invalid_arg "Algorithms.approximate_agreement";
  let model = Core.Model.read_write ~n ~t in
  let code ~pid:_ ~input =
    let v0 = int_c.Codec.prj input * scale in
    let rec round r v =
      if r > rounds then Prog.return (int_c.Codec.inj v)
      else
        let* () = Prog.snap_set int_c "aa" [ r ] v in
        let* view = Prog.snap_scan int_c "aa" [ r ] in
        let seen =
          Array.to_list view |> List.filter_map (fun c -> c)
        in
        let lo = List.fold_left min v seen and hi = List.fold_left max v seen in
        round (r + 1) ((lo + hi) / 2)
    in
    round 1 v0
  in
  Core.Algorithm.make
    ~name:(Printf.sprintf "approx-agreement(n=%d,t=%d,rounds=%d)" n t rounds)
    ~model code

(* ------------------------------------------------------------------ *)
(* Trivial task                                                        *)
(* ------------------------------------------------------------------ *)

let trivial ~n ~t =
  let model = Core.Model.read_write ~n ~t in
  let code ~pid:_ ~input =
    let v = int_c.Codec.prj input in
    let* () = Prog.snap_set int_c "mem" [] v in
    let* _ = Prog.snap_scan int_c "mem" [] in
    Prog.return (int_c.Codec.inj v)
  in
  Core.Algorithm.make ~name:(Printf.sprintf "trivial(n=%d,t=%d)" n t) ~model
    code
