(** Directly-programmed algorithms (the paper's building blocks).

    All code uses the canonical operation alphabet, so each algorithm can
    run natively or be fed to the simulations. Inputs and decisions are
    integers (injected through {!Svm.Codec.int}). *)

val kset_read_write : n:int -> t:int -> k:int -> Core.Algorithm.t
(** [k]-set agreement in [ASM(n, t, 1)], for [t < k] (Chaudhuri): write
    your input, scan until at least [n - t] inputs are visible, decide
    the minimum visible input. At most [t + 1 <= k] distinct minima can
    be decided because snapshot views are totally ordered by
    containment. *)

val consensus_zero_resilient : n:int -> Core.Algorithm.t
(** [kset_read_write ~t:0 ~k:1]: wait for all inputs, decide the global
    minimum — consensus in the failure-free read/write model
    [ASM(n, 0, 1)] (used with [sim_up] to realize the paper's claim that
    [ASM(n, t', x)] with [x > t'] solves every task). *)

val consensus_direct : n:int -> t:int -> Core.Algorithm.t
(** Consensus from one [n]-ported consensus object in [ASM(n, t, n)]:
    propose your input, decide the object's output. *)

val kset_grouped : n:int -> t:int -> x:int -> k:int -> Core.Algorithm.t
(** [k]-set agreement in [ASM(n, t, x)] for [k > ⌊t/x⌋], programmed
    directly (no simulation): processes are split into groups of size at
    most [x]; each group funnels its inputs through its own consensus
    object; processes then run the read/write protocol on group values,
    waiting for group values covering at least [n - t] processes. At
    most [⌊t/x⌋ + 1 <= k] distinct minima are decided: the analysis of
    {!kset_read_write} applies at group granularity, since [t] crashes
    can silence at most [⌊t/x⌋] {e whole} groups beyond those whose value
    is already published. *)

val renaming_read_write : n:int -> t:int -> Core.Algorithm.t
(** (2n-1)-renaming in [ASM(n, t, 1)] (Attiya et al., snapshot
    formulation): repeatedly publish a proposed name; on conflict with
    another process, move to the [r]-th free name where [r] is the rank
    of your original name among the participants you see; decide when no
    conflict. Wait-free; decided names are distinct and within
    [1..2n-1]. *)

val approximate_agreement :
  n:int -> t:int -> rounds:int -> scale:int -> Core.Algorithm.t
(** Wait-free approximate agreement in [ASM(n, t, 1)] by iterated
    midpoints: each round, publish your estimate in that round's
    snapshot and move to the midpoint of the estimates you see. Because
    snapshot views are totally ordered by containment, the estimate
    range at least halves every round (up to +/-1 integer rounding), so
    after [rounds] rounds estimates are within
    [range(inputs)*scale/2^rounds + 2] of each other — no waiting, so
    this works for any [t], including wait-free. *)

val trivial : n:int -> t:int -> Core.Algorithm.t
(** Decide your own input after one write and one scan. *)
