lib/tasks/algorithms.mli: Core
