lib/tasks/algorithms.ml: Array Codec Core List Printf Prog Svm Task
