lib/tasks/task.mli:
