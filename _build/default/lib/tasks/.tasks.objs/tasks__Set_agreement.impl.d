lib/tasks/set_agreement.ml: Array Codec Core Printf Prog Svm
