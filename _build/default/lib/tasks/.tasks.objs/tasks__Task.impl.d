lib/tasks/task.ml: List Option Printf String Svm
