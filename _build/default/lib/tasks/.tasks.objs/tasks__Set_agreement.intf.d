lib/tasks/set_agreement.mli: Core
