(** Deliberately broken variants of the paper's constructions.

    Each removes one ingredient whose necessity the paper argues
    informally; experiment AB runs them against adversarial schedules to
    exhibit the exact failure the ingredient prevents. These are for the
    ablation experiments only — never use them in simulations. *)

val sa_propose_no_cancel :
  fam:Svm.Op.fam -> key:Svm.Op.key -> Svm.Univ.t -> unit Svm.Prog.t
(** Figure 1's [sa_propose] {e without} line 03's cancellation: the
    proposer always stabilizes its value, even when it saw an
    already-stable one. Agreement breaks: a late proposer with a smaller
    process id can stabilize after an early decider returned the
    previous minimum, so two [sa_decide] (from
    {!Safe_agreement.decide}, which is unchanged) return different
    values. *)
