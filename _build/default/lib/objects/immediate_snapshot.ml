open Svm
open Svm.Prog.Syntax

type t = { fam : Op.fam; nprocs : int }

let make ~fam ~nprocs =
  if nprocs <= 0 then invalid_arg "Immediate_snapshot.make";
  { fam; nprocs }

(* Cells carry (value, current level). *)
let cell : (Univ.t * int) Codec.t = Codec.pair Codec.any Codec.int

let write_and_snapshot t ~key ~pid:_ v =
  let rec descend level =
    let* () = Prog.snap_set cell t.fam key (v, level) in
    let* view = Prog.snap_scan cell t.fam key in
    let at_or_below =
      Array.to_list view
      |> List.mapi (fun j c -> (j, c))
      |> List.filter_map (fun (j, c) ->
             match c with
             | Some (w, l) when l <= level -> Some (j, w, l)
             | Some _ | None -> None)
    in
    (* Borowsky-Gafni participating set: stop descending once at least
       [level] processes are at or below the current level; they are the
       view. At level 1 the set contains at least ourselves, so the
       descent terminates. *)
    if List.length at_or_below >= level then
      Prog.return (List.map (fun (j, w, _) -> (j, w)) at_or_below)
    else descend (level - 1)
  in
  descend t.nprocs
