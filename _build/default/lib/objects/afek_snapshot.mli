(** Wait-free atomic snapshot from single-writer registers
    (Afek, Attiya, Dolev, Gafni, Merritt & Shavit, JACM 1993 — the
    paper's reference [1] for the snapshot memory it assumes).

    The base models take the snapshot object as given; this module shows
    the assumption is harmless by constructing one from plain SWMR atomic
    registers:

    - [update pid v]: embed a fresh scan in the register together with the
      value and a sequence number;
    - [scan]: double-collect until either two successive collects are
      identical (a direct scan) or some process is seen moving twice, in
      which case that process's embedded view — taken entirely within the
      scan's interval — is borrowed.

    Both operations are wait-free: a scan performs at most [2n + 2]
    collects. *)

type t

val make : fam:Svm.Op.fam -> nprocs:int -> t

val update : t -> pid:int -> Svm.Univ.t -> unit Svm.Prog.t
val scan : t -> pid:int -> Svm.Univ.t option array Svm.Prog.t
