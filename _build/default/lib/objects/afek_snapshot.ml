open Svm
open Svm.Prog.Syntax

type t = { fam : Op.fam; nprocs : int }

(* Register contents: (value, sequence number, embedded view). *)
let cell : (Univ.t * (int * Univ.t option array)) Codec.t =
  Codec.pair Codec.any (Codec.pair Codec.int (Codec.arr (Codec.option Codec.any)))

let make ~fam ~nprocs =
  if nprocs <= 0 then invalid_arg "Afek_snapshot.make";
  { fam; nprocs }

let read_cell t j = Prog.reg_read cell t.fam [ j ]

let collect t =
  let rec go j acc =
    if j >= t.nprocs then Prog.return (Array.of_list (List.rev acc))
    else
      let* c = read_cell t j in
      go (j + 1) (c :: acc)
  in
  go 0 []

let seq = function None -> -1 | Some (_, (sn, _)) -> sn
let value = function None -> None | Some (v, _) -> Some v
let view_of_collect c = Array.map value c

let same_collect c1 c2 =
  let n = Array.length c1 in
  let rec go j = j >= n || (seq c1.(j) = seq c2.(j) && go (j + 1)) in
  go 0

let scan t ~pid:_ =
  let moved = Array.make t.nprocs 0 in
  Prog.loop
    (fun prev ->
      let* c = collect t in
      match prev with
      | None -> Prog.return (`Again (Some c))
      | Some c0 ->
          if same_collect c0 c then Prog.return (`Stop (view_of_collect c))
          else begin
            (* Record movers; a process seen moving twice has completed a
               whole update inside our interval, so its embedded view is a
               valid snapshot taken inside our interval. *)
            let borrowed = ref None in
            for j = 0 to t.nprocs - 1 do
              if seq c0.(j) <> seq c.(j) then begin
                moved.(j) <- moved.(j) + 1;
                if moved.(j) >= 2 && !borrowed = None then
                  match c.(j) with
                  | Some (_, (_, view)) -> borrowed := Some view
                  | None -> ()
              end
            done;
            match !borrowed with
            | Some view -> Prog.return (`Stop (Array.copy view))
            | None -> Prog.return (`Again (Some c))
          end)
    None

let update t ~pid v =
  let* view = scan t ~pid in
  let* prev = read_cell t pid in
  let sn = 1 + (match prev with None -> -1 | Some (_, (s, _)) -> s) in
  Prog.reg_write cell t.fam [ pid ] (v, (sn, view))
