lib/objects/ablations.mli: Svm
