lib/objects/x_safe_agreement.ml: Array Codec Combin Env List Op Prog Svm X_compete
