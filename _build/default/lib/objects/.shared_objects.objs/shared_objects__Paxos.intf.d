lib/objects/paxos.mli: Svm
