lib/objects/afek_snapshot.mli: Svm
