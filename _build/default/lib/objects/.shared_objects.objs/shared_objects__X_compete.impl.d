lib/objects/x_compete.ml: Prog Svm Ts_from_cons
