lib/objects/ts_from_cons.mli: Svm
