lib/objects/paxos.ml: Array Codec List Op Prog Svm Univ
