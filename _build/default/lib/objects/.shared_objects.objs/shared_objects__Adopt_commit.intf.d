lib/objects/adopt_commit.mli: Svm
