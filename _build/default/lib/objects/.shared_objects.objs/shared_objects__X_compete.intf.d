lib/objects/x_compete.mli: Svm
