lib/objects/immediate_snapshot.ml: Array Codec List Op Prog Svm Univ
