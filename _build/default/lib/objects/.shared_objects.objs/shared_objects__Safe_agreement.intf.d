lib/objects/safe_agreement.mli: Svm
