lib/objects/x_safe_agreement.mli: Svm
