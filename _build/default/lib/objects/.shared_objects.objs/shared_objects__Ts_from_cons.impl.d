lib/objects/ts_from_cons.ml: Codec Op Prog Svm
