lib/objects/immediate_snapshot.mli: Svm
