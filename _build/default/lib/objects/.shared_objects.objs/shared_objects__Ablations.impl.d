lib/objects/ablations.ml: Codec Prog Svm Univ
