lib/objects/adopt_commit.ml: Array Codec List Op Prog Svm Univ
