lib/objects/safe_agreement.ml: Array Codec Env Op Option Prog Svm Univ
