lib/objects/afek_snapshot.ml: Array Codec List Op Prog Svm Univ
