open Svm
open Svm.Prog.Syntax

let cell : (Univ.t * int) Codec.t = Codec.pair Codec.any Codec.int

let sa_propose_no_cancel ~fam ~key v =
  let* () = Prog.snap_set cell fam key (v, 1) in
  let* _ = Prog.snap_scan cell fam key in
  (* Ablated: stabilize unconditionally (the real algorithm writes
     (v, 0) when it saw a stable entry). *)
  Prog.snap_set cell fam key (v, 2)
