open Svm
open Svm.Prog.Syntax

type t = { fam : Op.fam; rounds : int }

let rounds_for participants =
  let rec go r span = if span >= participants then r else go (r + 1) (span * 2) in
  go 0 1

let make ~fam ~participants =
  if participants <= 0 then invalid_arg "Ts_from_cons.make";
  { fam; rounds = rounds_for participants }

(* A process entering round [r] at bracket position [pos] plays the
   consensus object at node [pos / 2]; the winner (the decided id)
   advances to position [pos / 2] of the next round. Only the unique
   winners of the node's two child sub-brackets ever access the node's
   object, so each object has at most 2 ports. *)
let compete t ~key ~pid =
  let rec play r pos =
    if r >= t.rounds then Prog.return true
    else
      let node = pos / 2 in
      let* winner = Prog.cons_propose Codec.int t.fam (key @ [ r; node ]) pid in
      if winner = pid then play (r + 1) node else Prog.return false
  in
  play 0 pid
