(** One-shot adopt-commit objects, from registers only.

    The round-based cousin of safe agreement: a wait-free object whose
    [propose v] returns either [(Commit, w)] or [(Adopt, w)] with

    - {e validity}: [w] was proposed;
    - {e agreement}: if some process gets [(Commit, w)], every process
      gets [(_, w)] (commit or adopt, same value);
    - {e convergence}: if all proposals are equal, everyone commits;
    - {e termination}: wait-free (no waiting at all).

    Unlike safe agreement it never blocks — the price is that it may
    merely {e adopt}. Round-based consensus algorithms (like the
    Ω-backed one in {!Paxos}) alternate adopt-commit rounds; here it
    also serves as another explorer-verified register-only object.

    Implementation: two snapshot phases ("A": publish your proposal;
    if you see only your own value, mark it; "B": if everyone you see in
    phase B marked the same value, commit it, else adopt a marked value
    if any). *)

type t

val make : fam:Svm.Op.fam -> t

type verdict = Commit | Adopt

val propose :
  t -> key:Svm.Op.key -> pid:int -> Svm.Univ.t -> (verdict * Svm.Univ.t) Svm.Prog.t
(** At most once per pid per instance key. *)
