open Svm
open Svm.Prog.Syntax

type t = { fam : Op.fam; nprocs : int }

let make ~fam ~nprocs = { fam; nprocs }

type attempt = Commit of Univ.t | Abort

(* Each process's snapshot component: (bal, abal, aval): the highest
   ballot it joined, and the ballot/value it last accepted. *)
type cell = { bal : int; abal : int; aval : Univ.t option }

let cell_codec : cell Codec.t =
  let c = Codec.triple Codec.int Codec.int (Codec.option Codec.any) in
  {
    Codec.inj = (fun { bal; abal; aval } -> c.Codec.inj (bal, abal, aval));
    prj =
      (fun u ->
        let bal, abal, aval = c.Codec.prj u in
        { bal; abal; aval });
  }

let write t cell = Prog.snap_set cell_codec t.fam [] cell
let scan t = Prog.snap_scan cell_codec t.fam []

let my_cell view pid =
  match view.(pid) with
  | Some c -> c
  | None -> { bal = 0; abal = 0; aval = None }

let highest_ballot view =
  Array.fold_left
    (fun acc c -> match c with None -> acc | Some c -> max acc c.bal)
    0 view

let highest_accepted view =
  Array.fold_left
    (fun acc c ->
      match c with
      | Some { abal; aval = Some v; _ } -> (
          match acc with
          | Some (abal0, _) when abal0 >= abal -> acc
          | Some _ | None -> Some (abal, v))
      | Some { aval = None; _ } | None -> acc)
    None view

let alpha_propose t ~pid ~ballot v0 =
  (* Phase 1: claim the ballot. *)
  let* view = scan t in
  let me = my_cell view pid in
  let* () = write t { me with bal = ballot } in
  let* view = scan t in
  if highest_ballot view > ballot then Prog.return Abort
  else
    (* Adopt the value accepted under the highest ballot, if any. *)
    let v = match highest_accepted view with Some (_, v) -> v | None -> v0 in
    (* Phase 2: accept it under our ballot. *)
    let* () = write t { bal = ballot; abal = ballot; aval = Some v } in
    let* view = scan t in
    if highest_ballot view > ballot then Prog.return Abort
    else Prog.return (Commit v)

let dec_fam t = t.fam ^ ".dec"

let consensus t ~oracle_fam ~pid v =
  let rec loop round =
    let* decided = Prog.snap_scan Codec.any (dec_fam t) [] in
    let published =
      Array.to_list decided |> List.find_map (fun c -> c)
    in
    match published with
    | Some d -> Prog.return d
    | None ->
        let* leader = Prog.perform (Op.Oracle_query (oracle_fam, [])) in
        if Codec.int.Codec.prj leader = pid then
          let ballot = pid + 1 + (round * t.nprocs) in
          let* attempt = alpha_propose t ~pid ~ballot v in
          match attempt with
          | Commit d ->
              let* () = Prog.snap_set Codec.any (dec_fam t) [] d in
              Prog.return d
          | Abort -> loop (round + 1)
        else
          let* () = Prog.yield in
          loop round
  in
  loop 0

let leader_oracle ~stabilize_after ~leader ~nprocs ~pid:_ ~query =
  let l = if query < stabilize_after then query mod nprocs else leader in
  Codec.int.Codec.inj l
