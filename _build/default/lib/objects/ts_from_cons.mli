(** One-shot test&set built from 2-ported consensus objects.

    The paper (Section 4.3, citing Gafni, Raynal & Travers [19]) uses
    test&set objects that "can be implemented from consensus number x
    objects" since test&set has consensus number 2. This module gives that
    construction: a single-elimination tournament over process ids where
    each internal node is a consensus object accessed by at most the two
    winners of its child sub-brackets — so every consensus object has at
    most 2 ports, legal in any model with [x >= 2].

    Guarantees (one-shot, among the [participants] id space):
    - at most one caller returns [true];
    - if at least one caller does not crash, some caller returns [true]
      provided every winner of a sub-bracket keeps playing (wait-free:
      no call ever waits for another process);
    - every correct caller returns. *)

type t

val make : fam:Svm.Op.fam -> participants:int -> t
(** [participants] is the size of the id space (pids [0..participants-1]
    may compete). *)

val compete : t -> key:Svm.Op.key -> pid:int -> bool Svm.Prog.t
(** Run the tournament for instance [key]. Call at most once per pid per
    instance. *)
