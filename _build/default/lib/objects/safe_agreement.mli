(** The safe agreement object type (paper Figure 1, from BGLR01).

    One-shot agreement with the weak termination property at the heart of
    the BG simulation:

    - {e Termination}: if no process crashes while executing [propose],
      every correct process that invokes [decide] returns;
    - {e Agreement}: at most one value is decided;
    - {e Validity}: a decided value is a proposed value.

    Implemented over a snapshot object [SM] with one (value, level)
    entry per process; levels: 0 meaningless, 1 unstable, 2 stable.

    Instances form a family: [key] selects the instance (the BG simulation
    uses one instance per [(simulated process, snapshot sequence number)]
    pair). Each process must call [propose] at most once per instance and
    [decide] only after its [propose]. *)

type t

val make : fam:Svm.Op.fam -> t
(** [make ~fam] names the snapshot family backing the instances. *)

val propose : t -> key:Svm.Op.key -> Svm.Univ.t -> unit Svm.Prog.t
(** Figure 1, [sa_propose(v)]: write (v, 1); scan; if some entry is
    stable, downgrade own entry to level 0, otherwise make it stable. *)

val decide : t -> key:Svm.Op.key -> Svm.Univ.t Svm.Prog.t
(** Figure 1, [sa_decide()]: scan until no entry is unstable, then return
    the stable value of the smallest process index. Spins (one scan per
    step) while some entry is unstable — this is the blocking the BG
    simulation protects against with its mutex. *)

val peek_decided : Svm.Env.t -> t -> key:Svm.Op.key -> Svm.Univ.t option
(** Test/experiment helper: the value [decide] would return right now, if
    any (no unstable entries and at least one stable entry). *)
