open Svm
open Svm.Prog.Syntax

type t = { a_fam : Op.fam; b_fam : Op.fam }

let make ~fam = { a_fam = fam ^ ".a"; b_fam = fam ^ ".b" }

type verdict = Commit | Adopt

(* Phase B cells carry (value, flag): flag true means "when I looked,
   only my value had been proposed". *)
let b_codec : (Univ.t * bool) Codec.t = Codec.pair Codec.any Codec.bool

let propose t ~key ~pid:_ v =
  let* () = Prog.snap_set Codec.any t.a_fam key v in
  let* seen_a = Prog.snap_scan Codec.any t.a_fam key in
  let all_mine =
    Array.for_all
      (fun c -> match c with None -> true | Some w -> w == v || w = v)
      seen_a
  in
  let* () = Prog.snap_set b_codec t.b_fam key (v, all_mine) in
  let* seen_b = Prog.snap_scan b_codec t.b_fam key in
  let entries = Array.to_list seen_b |> List.filter_map (fun c -> c) in
  let flagged = List.filter (fun (_, f) -> f) entries in
  match flagged with
  | [] -> Prog.return (Adopt, v)
  | (w, _) :: _ ->
      (* All flagged entries carry the same value: a flag means its
         writer saw no other value in phase A, and two different flagged
         values would each have had to be written before the other's
         phase-A scan — impossible. *)
      let all_flagged = List.for_all (fun (_, f) -> f) entries in
      if all_flagged then Prog.return (Commit, w) else Prog.return (Adopt, w)
