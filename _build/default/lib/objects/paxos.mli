(** Consensus from registers plus the failure detector Ω
    (paper Section 1.3, "Boosting the computability power with failure
    detectors").

    Consensus is unsolvable in [ASM(n, n-1, 1)]; enriching the model
    with the leader oracle Ω (the weakest failure detector for
    consensus, the paper's [11] — Ω1 in the Ωx family of [20,29]) makes
    it solvable for any [n]. Our construction is shared-memory Paxos:

    - {!alpha_propose} is the ballot-based adopt-commit ("alpha"
      abstraction, Gafni & Lamport's Disk Paxos adapted to a snapshot
      memory): phase 1 claims a ballot and aborts if a higher ballot is
      visible; otherwise the proposer adopts the value accepted with the
      highest ballot (or its own), accepts it under its ballot, and
      commits if still unsurpassed;
    - {!consensus} loops: query Ω; whoever currently considers itself
      leader runs alpha with ever-increasing private ballots and
      publishes a committed value; everyone else spins on the decision
      register. Safety never depends on Ω; termination needs Ω to
      eventually output one correct process forever. *)

type t

val make : fam:Svm.Op.fam -> nprocs:int -> t

type attempt = Commit of Svm.Univ.t | Abort

val alpha_propose : t -> pid:int -> ballot:int -> Svm.Univ.t -> attempt Svm.Prog.t
(** Ballots of distinct processes must be distinct; a process's ballots
    must increase. {!consensus} uses [ballot = pid + 1 + round * n]. *)

val consensus :
  t -> oracle_fam:Svm.Op.fam -> pid:int -> Svm.Univ.t -> Svm.Univ.t Svm.Prog.t
(** Decide a proposed value. The environment must carry an oracle on
    [oracle_fam] returning the current leader's pid (as a
    {!Svm.Codec.int}). *)

val leader_oracle :
  stabilize_after:int -> leader:int -> nprocs:int ->
  pid:int -> query:int -> Svm.Univ.t
(** A ready-made Ω behaviour for {!Svm.Env.set_oracle}: before a process
    has asked [stabilize_after] times it gets rotating (wrong) leaders;
    afterwards always [leader]. *)
