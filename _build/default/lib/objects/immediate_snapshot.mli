(** One-shot immediate snapshot (Borowsky & Gafni), from snapshots.

    The object behind the iterated model used throughout BG-era papers:
    each process writes a value and obtains a view such that

    - {e self-inclusion}: a process's view contains its own value;
    - {e containment}: any two views are ordered by inclusion;
    - {e immediacy}: if [pj]'s view contains [pi]'s value, then
      [pi]'s view is contained in [pj]'s view.

    Implementation: the classic "participating set" algorithm. A
    process descends one level at a time (starting at level n = number
    of processes): at level L it tags its value with L and scans; if at
    least L processes have level <= L it returns them as its view,
    otherwise it descends to level L-1. *)

type t

val make : fam:Svm.Op.fam -> nprocs:int -> t

val write_and_snapshot :
  t -> key:Svm.Op.key -> pid:int -> Svm.Univ.t -> (int * Svm.Univ.t) list Svm.Prog.t
(** Returns the view as (pid, value) pairs, sorted by pid. At most once
    per pid per instance key. *)
