(** The [x_compete()] operation (paper Figure 5).

    An [X_T&S] object built from an array of [x] one-shot test&set
    objects: it returns [true] to at most [x] callers (the dynamically
    determined {e owners} of the associated x_safe_agreement object), and
    if [x] or fewer processes invoke it, every correct caller obtains
    [true].

    The underlying test&set objects are the consensus-based tournament of
    {!Ts_from_cons}, so the whole construction only uses objects of
    consensus number <= 2 — legal in any [ASM(n, t, x)] with [x >= 2]. *)

type t

val make : fam:Svm.Op.fam -> participants:int -> x:int -> t
(** [participants] is the caller id space; [x] the number of winners. *)

val compete : t -> key:Svm.Op.key -> pid:int -> bool Svm.Prog.t
(** Figure 5: try [TS(1)], ..., [TS(x)] in order; winner of any returns
    [true], a caller losing all [x] returns [false]. Call at most once
    per pid per instance. *)
