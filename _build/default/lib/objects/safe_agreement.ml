open Svm
open Svm.Prog.Syntax

type t = { fam : Op.fam }

(* SM entries are (value, level) pairs; level 0 = meaningless,
   1 = unstable, 2 = stable. *)
let cell : (Univ.t * int) Codec.t = Codec.pair Codec.any Codec.int

let make ~fam = { fam }

let level = function None -> 0 | Some (_, l) -> l

let propose t ~key v =
  let* () = Prog.snap_set cell t.fam key (v, 1) in
  let* sm = Prog.snap_scan cell t.fam key in
  let stable_exists = Array.exists (fun e -> level e = 2) sm in
  if stable_exists then Prog.snap_set cell t.fam key (v, 0)
  else Prog.snap_set cell t.fam key (v, 2)

let first_stable sm =
  let n = Array.length sm in
  let rec go i =
    if i >= n then None
    else
      match sm.(i) with
      | Some (v, 2) -> Some v
      | Some _ | None -> go (i + 1)
  in
  go 0

let decide t ~key =
  Prog.loop
    (fun () ->
      let* sm = Prog.snap_scan cell t.fam key in
      let unstable = Array.exists (fun e -> level e = 1) sm in
      if unstable then Prog.return (`Again ())
      else
        match first_stable sm with
        | Some v -> Prog.return (`Stop v)
        | None ->
            (* No proposal has stabilized yet (decide raced an early
               propose); keep scanning. *)
            Prog.return (`Again ()))
    ()

let peek_decided env t ~key =
  match Env.peek_snapshot env t.fam key with
  | None -> None
  | Some sm ->
      let sm = Array.map (Option.map cell.Codec.prj) sm in
      if Array.exists (fun e -> level e = 1) sm then None
      else first_stable sm
