open Svm
open Svm.Prog.Syntax

type t = { ts : Ts_from_cons.t; x : int }

let make ~fam ~participants ~x =
  if x <= 0 then invalid_arg "X_compete.make: x must be positive";
  { ts = Ts_from_cons.make ~fam ~participants; x }

let compete t ~key ~pid =
  let rec try_slot l =
    if l > t.x then Prog.return false
    else
      let* winner = Ts_from_cons.compete t.ts ~key:(key @ [ l ]) ~pid in
      if winner then Prog.return true else try_slot (l + 1)
  in
  try_slot 1
