(* Colored tasks (Section 5.5): renaming under simulation.

   Renaming is colored: no two processes may decide the same new name,
   so a simulator cannot simply adopt the first simulated decision it
   sees — two simulators could pick the same one. The Section 5.5
   simulation adds a test&set object per simulated process: a simulator
   that obtains pj's decision first finishes any agreement propose it is
   engaged in, then competes on T&S[j]; only the winner decides pj's
   name, a loser resumes simulating other processes.

   Here: (2n-1)-renaming for 6 processes, 2-resilient, in ASM(6,2,1),
   simulated in ASM(4,2,2). The precondition holds: x' = 2 > 1,
   floor(2/1) >= floor(2/2), and 6 >= max(4, (4-2)+2) = 4.

   Run with:  dune exec examples/renaming_colored.exe *)

open Svm

let () =
  let source = Tasks.Algorithms.renaming_read_write ~n:6 ~t:2 in
  let target = Core.Model.make ~n:4 ~t:2 ~x:2 in
  let alg = Core.Bg.colored ~source ~target in
  Format.printf "%s@.@." alg.Core.Algorithm.name;
  List.iter
    (fun seed ->
      let inputs =
        (Tasks.Task.renaming ~slots:11).Tasks.Task.gen_inputs ~seed ~n:4
      in
      let adversary =
        Adversary.random_crashes ~within:400 ~seed ~max_crashes:2 ~nprocs:4
          (Adversary.random ~seed)
      in
      let r = Core.Run.run_ints ~budget:3_000_000 ~alg ~inputs ~adversary () in
      let names = Exec.decided r in
      let distinct = Tasks.Task.distinct names in
      Format.printf
        "seed %d: crashed simulators [%s], decided names [%s] — %s@." seed
        (String.concat ";" (List.map string_of_int r.Exec.crashed))
        (String.concat ";" (List.map string_of_int names))
        (if List.length distinct = List.length names then
           "all distinct, as the colored simulation requires"
         else "DUPLICATE NAMES (bug!)")
    )
    [ 1; 2; 3; 4; 5 ];
  Format.printf
    "@.simulators decide names of distinct simulated processes; the \
     renaming bound 2n-1 = 11 is inherited from the simulated run.@."
