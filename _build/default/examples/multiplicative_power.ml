(* The multiplicative power of consensus numbers, empirically.

   Fix a 1-resilient read/write algorithm (2-set agreement among 8
   processes). The paper says ASM(8, t', 3) can run it exactly when
   floor(t'/3) <= 1, i.e. t' <= 5, and that ASM(8, t', 3) is *equivalent*
   to ASM(8, 1, 1) exactly for t' in the window [3, 5]. We sweep t' and
   show the window: inside it, the Section 4 simulation carries the
   algorithm and it survives t' crashes; past it, the simulation is
   (correctly) refused.

   Run with:  dune exec examples/multiplicative_power.exe *)

open Svm

let n = 8
let t = 1
let x = 3

let () =
  let source = Tasks.Algorithms.kset_read_write ~n ~t ~k:2 in
  let task = Tasks.Task.kset ~k:2 in
  let lo, hi = Core.Model.window_bounds ~t ~x in
  Format.printf
    "source algorithm: %s;  window for (t=%d, x=%d): t' in [%d, %d]@.@."
    source.Core.Algorithm.name t x lo hi;
  for t' = 1 to 7 do
    let m = Core.Model.make ~n ~t:t' ~x in
    let equivalent = Core.Model.equivalent m (Core.Model.read_write ~n ~t) in
    match Core.Bg.sim_up ~source ~t' ~x with
    | exception Invalid_argument _ ->
        Format.printf
          "t' = %d: power %d > %d — simulation refused (task unsolvable \
           there: %d-set needs k > floor(t'/x))@."
          t' (Core.Model.power m) t 2
    | alg ->
        let adversary =
          Adversary.random_crashes ~within:800 ~seed:(100 + t')
            ~max_crashes:t' ~nprocs:n
            (Adversary.random ~seed:t')
        in
        let inputs = task.Tasks.Task.gen_inputs ~seed:t' ~n in
        let r =
          Core.Run.run_ints ~budget:8_000_000 ~alg ~inputs ~adversary ()
        in
        let decisions = Exec.decided r in
        let valid =
          match task.Tasks.Task.validate ~inputs ~decisions with
          | Ok () -> "valid"
          | Error m -> "INVALID: " ^ m
        in
        Format.printf
          "t' = %d: power %d, %s ASM(%d,1,1); %d crashes injected, %d \
           simulators decided, task %s@."
          t' (Core.Model.power m)
          (if equivalent then "equivalent to " else "strictly above")
          n
          (List.length r.Exec.crashed)
          (List.length decisions) valid
  done
