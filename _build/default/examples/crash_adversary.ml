(* Targeted crash adversaries: the exact worst cases of the lemmas.

   1. Section 3 (Lemma 1): in the simulation of ASM(6,4,2) in
      ASM(6,2,1), crash one simulator while it is inside the safe
      agreement serving a simulated 2-ported consensus object. Exactly
      the 2 processes of that group block; the 4 others decide at every
      correct simulator.

   2. Section 4 (Lemma 7): in the simulation of ASM(6,2,1) in
      ASM(6,5,2), the same single mid-propose crash blocks NOTHING,
      because an x_safe_agreement object survives x-1 = 1 owner crash.
      Blocking one simulated process requires crashing both owners of
      one agreement instance.

   Run with:  dune exec examples/crash_adversary.exe *)

open Svm

let show title n stats (r : Univ.t Exec.result) =
  let decided = Core.Bg_engine.decided_processes stats in
  let blocked =
    List.filter (fun j -> not (List.mem j decided)) (List.init n Fun.id)
  in
  Format.printf "%s@." title;
  Format.printf "  simulators crashed: [%s]@."
    (String.concat ";" (List.map string_of_int r.Exec.crashed));
  Format.printf "  simulated processes decided somewhere: [%s]@."
    (String.concat ";" (List.map string_of_int decided));
  Format.printf "  simulated processes blocked:           [%s]@.@."
    (String.concat ";" (List.map string_of_int blocked))

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let crash_in ~pid ~prefix ~nth =
  Adversary.Crash_before_op
    { pid; nth; matches = (fun (i : Op.info) -> starts_with ~prefix i.Op.fam) }

let () =
  (* Section 3: one crash inside the agreement of a consensus object. *)
  let source = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  let stats = Core.Bg_engine.new_stats () in
  let alg =
    Core.Bg_engine.simulate ~stats ~source
      ~target:(Core.Model.read_write ~n:6 ~t:2)
      ~mode:`Exhaustive ()
  in
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [ crash_in ~pid:0 ~prefix:"XSA:" ~nth:2 ]
  in
  let inputs = Array.init 6 (fun i -> Svm.Codec.int.Codec.inj (10 + i)) in
  let r = Core.Run.run ~budget:600_000 ~alg ~inputs ~adversary () in
  show
    "Section 3 simulation, 1 crash inside a consensus-object agreement \
     (expect one whole group of 2 blocked):"
    6 stats r;

  (* Section 4: one mid-propose crash blocks nothing... *)
  let source = Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:3 in
  let target = Core.Model.make ~n:6 ~t:5 ~x:2 in
  let stats = Core.Bg_engine.new_stats () in
  let alg = Core.Bg_engine.simulate ~stats ~source ~target ~mode:`Exhaustive () in
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [ crash_in ~pid:0 ~prefix:"SA.val" ~nth:0 ]
  in
  let r = Core.Run.run ~budget:900_000 ~alg ~inputs ~adversary () in
  show
    "Section 4 simulation, 1 crash inside a propose (expect NOTHING \
     blocked - the co-owner finishes the object):"
    6 stats r;

  (* ... but crashing both owners of one instance blocks one process. *)
  let stats = Core.Bg_engine.new_stats () in
  let alg = Core.Bg_engine.simulate ~stats ~source ~target ~mode:`Exhaustive () in
  let adversary =
    Adversary.with_crashes
      (Adversary.priority [ 0; 1 ])
      [
        crash_in ~pid:0 ~prefix:"SA.val" ~nth:0;
        crash_in ~pid:1 ~prefix:"SA.val" ~nth:0;
      ]
  in
  let r = Core.Run.run ~budget:900_000 ~alg ~inputs ~adversary () in
  show
    "Section 4 simulation, both owners of one agreement crash (expect \
     exactly 1 simulated process blocked = floor(2/2)):"
    6 stats r
