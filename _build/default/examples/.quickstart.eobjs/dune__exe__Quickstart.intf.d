examples/quickstart.mli:
