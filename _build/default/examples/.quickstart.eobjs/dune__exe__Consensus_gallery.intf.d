examples/consensus_gallery.mli:
