examples/bg_walkthrough.ml: Adversary Array Core Exec Format List Printf Svm Tasks Trace
