examples/multiplicative_power.ml: Adversary Core Exec Format List Svm Tasks
