examples/quickstart.ml: Adversary Array Core Exec Format Printf Svm Tasks
