examples/multiplicative_power.mli:
