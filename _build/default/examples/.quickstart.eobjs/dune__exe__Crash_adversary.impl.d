examples/crash_adversary.ml: Adversary Array Codec Core Exec Format Fun List Op String Svm Tasks Univ
