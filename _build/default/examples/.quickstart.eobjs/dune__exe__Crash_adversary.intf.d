examples/crash_adversary.mli:
