examples/renaming_colored.ml: Adversary Core Exec Format List String Svm Tasks
