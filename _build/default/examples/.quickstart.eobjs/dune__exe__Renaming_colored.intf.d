examples/renaming_colored.mli:
