examples/consensus_gallery.ml: Adversary Array Codec Env Exec Format List Printf Prog Shared_objects String Svm Universal
