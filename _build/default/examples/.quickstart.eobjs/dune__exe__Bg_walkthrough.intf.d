examples/bg_walkthrough.mli:
