(* The consensus-number gallery: the hierarchy the whole paper rests on,
   demonstrated object by object (paper Section 1.1).

   - one test&set or one token queue solves consensus for 2 processes
     (consensus number 2);
   - one compare&swap solves it for any number (consensus number inf);
   - and consensus objects go the other way: Herlihy's universal
     construction turns n-ported consensus into ANY linearizable object
     — here a fetch&add counter shared by 4 processes;
   - finally, the failure detector Omega boosts the register-only model
     to consensus (Section 1.3), shown with 4 of 5 processes crashing.

   Run with:  dune exec examples/consensus_gallery.exe *)

open Svm
open Svm.Prog.Syntax

let show label r =
  let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
  Format.printf "%-46s decided [%s]%s@." label
    (String.concat "; " (List.map string_of_int ds))
    (if r.Exec.crashed = [] then ""
     else
       Printf.sprintf "  (crashed: %s)"
         (String.concat "," (List.map string_of_int r.Exec.crashed)))

let () =
  (* Consensus number 2: test&set. *)
  let env = Env.create ~nprocs:2 ~x:2 () in
  let r =
    Exec.run ~env
      ~adversary:(Adversary.random ~seed:1)
      (Array.init 2 (fun pid ->
           Prog.map Codec.int.Codec.inj
             (Universal.From_objects.cons2_from_ts ~fam:"G" ~key:[] ~pid
                (10 + pid))))
  in
  show "2-consensus from one test&set:" r;

  (* Consensus number 2: a queue holding one token. *)
  let env = Env.create ~nprocs:2 ~x:2 () in
  Universal.From_objects.setup_queue env ~fam:"Q" ~key:[];
  let r =
    Exec.run ~env
      ~adversary:(Adversary.random ~seed:2)
      (Array.init 2 (fun pid ->
           Prog.map Codec.int.Codec.inj
             (Universal.From_objects.cons2_from_queue ~fam:"Q" ~key:[] ~pid
                (20 + pid))))
  in
  show "2-consensus from one token queue:" r;

  (* Consensus number infinity: compare&swap, 6 processes. *)
  let env = Env.create ~nprocs:6 ~x:1 ~allow_cas:true () in
  let r =
    Exec.run ~env
      ~adversary:(Adversary.random ~seed:3)
      (Array.init 6 (fun pid ->
           Prog.map Codec.int.Codec.inj
             (Universal.From_objects.consn_from_cas ~fam:"C" ~key:[] ~pid
                (30 + pid))))
  in
  show "6-consensus from one compare&swap:" r;

  (* The other direction: consensus objects implement anything — a
     wait-free linearizable fetch&add counter for 4 processes. *)
  let open Universal.Seq_spec in
  let env = Env.create ~nprocs:4 ~x:4 () in
  let obj = Universal.Herlihy.make counter ~fam:"U" in
  let prog pid =
    let session = Universal.Herlihy.session obj ~pid in
    let rec go acc = function
      | [] -> Prog.return ((Codec.list Codec.int).Codec.inj (List.rev acc))
      | op :: rest ->
          let* res = Universal.Herlihy.invoke session op in
          go (res :: acc) rest
    in
    go [] [ Add 1; Add 1 ]
  in
  let r =
    Exec.run ~env ~adversary:(Adversary.random ~seed:4) (Array.init 4 prog)
  in
  let tickets =
    Exec.decided r
    |> List.concat_map (fun u -> (Codec.list Codec.int).Codec.prj u)
    |> List.sort compare
  in
  Format.printf
    "%-46s tickets [%s]@."
    "universal fetch&add from 4-consensus:"
    (String.concat "; " (List.map string_of_int tickets));

  (* Omega boosting: consensus from registers + a leader oracle, with 4
     of 5 processes crashing. *)
  let env = Env.create ~nprocs:5 ~x:1 () in
  Env.set_oracle env "OM"
    (Shared_objects.Paxos.leader_oracle ~stabilize_after:3 ~leader:2 ~nprocs:5);
  let paxos = Shared_objects.Paxos.make ~fam:"P" ~nprocs:5 in
  let adversary =
    Adversary.with_crashes
      (Adversary.random ~seed:5)
      [
        Adversary.Crash_at_local { pid = 0; step = 4 };
        Adversary.Crash_at_local { pid = 1; step = 7 };
        Adversary.Crash_at_local { pid = 3; step = 2 };
        Adversary.Crash_at_local { pid = 4; step = 9 };
      ]
  in
  let r =
    Exec.run ~budget:60_000 ~env ~adversary
      (Array.init 5 (fun pid ->
           Shared_objects.Paxos.consensus paxos ~oracle_fam:"OM" ~pid
             (Codec.int.Codec.inj (50 + pid))))
  in
  show "consensus from registers + Omega, 4 crashes:" r;
  Format.printf
    "@.registers alone cannot do the last line (FLP / consensus number 1): \
     the oracle is exactly what the paper's Section 1.3 calls boosting.@."
