(* The leveled logger (Svm.Log).

   - level thresholds drop records at the source; the null logger is
     fully disabled (so callers can guard expensive message builds);
   - human rendering of Info is exactly the historical "[sub] msg"
     stderr format (the smoke recipes grep it), other levels carry the
     level name;
   - JSON rendering is deterministic: stable member order, monotone
     sequence numbers shared across sub-loggers, no timestamps;
   - the bounded ring never lies: a flush after eviction appends an
     explicit drop-count record, so "nothing logged" and "buffer too
     small" are distinguishable. *)

open Svm

let collect () =
  let buf = ref [] in
  ((fun s -> buf := s :: !buf), fun () -> List.rev !buf)

let test_levels_filter () =
  let write, lines = collect () in
  let l = Log.make ~level:Log.Warn (Log.human_sink write) in
  let net = Log.sub l "net" in
  Log.debugf net "nope %d" 1;
  Log.infof net "nope too";
  Log.warnf net "kept %d" 7;
  Log.errorf net "bad";
  Alcotest.(check (list string))
    "only warn and above pass a Warn threshold"
    [ "[net] warn: kept 7"; "[net] error: bad" ]
    (lines ())

let test_info_renders_like_legacy_stderr () =
  let write, lines = collect () in
  let l = Log.make (Log.human_sink write) in
  Log.infof (Log.sub l "net") "listening on port %d" 4321;
  Alcotest.(check (list string))
    "Info keeps the historical [sub] msg shape"
    [ "[net] listening on port 4321" ]
    (lines ())

let test_null_is_disabled () =
  Alcotest.(check bool) "null logger reports disabled" false
    (Log.enabled Log.null Log.Error);
  (* Must be a no-op, not a crash, at every level. *)
  Log.debugf Log.null "x";
  Log.errorf Log.null "x"

let test_json_deterministic () =
  let render () =
    let write, lines = collect () in
    let l = Log.make ~level:Log.Debug (Log.json_sink write) in
    Log.infof (Log.sub l "net") "hello";
    Log.debugf (Log.sub (Log.sub l "net") "frame") "got %d bytes" 17;
    String.concat "\n" (lines ())
  in
  Alcotest.(check string) "two identical runs log byte-identically"
    (render ()) (render ());
  let write, lines = collect () in
  let l = Log.make ~level:Log.Debug (Log.json_sink write) in
  Log.infof (Log.sub l "a") "one";
  Log.warnf (Log.sub l "b") "two";
  Alcotest.(check (list string))
    "stable member order, shared monotone seq, no timestamps"
    [
      {|{"seq":0,"level":"info","sub":"a","msg":"one"}|};
      {|{"seq":1,"level":"warn","sub":"b","msg":"two"}|};
    ]
    (lines ());
  (* Every line must also re-parse as JSON. *)
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparseable log line %s: %s" line e)
    (lines ())

let test_ring_truncation_is_honest () =
  let r = Log.ring 3 in
  let l = Log.make ~level:Log.Debug (Log.ring_sink r) in
  for i = 1 to 5 do
    Log.infof (Log.sub l "net") "event %d" i
  done;
  Alcotest.(check int) "ring keeps the last cap records" 3
    (List.length (Log.ring_records r));
  Alcotest.(check int) "evictions are counted" 2 (Log.ring_dropped r);
  let write, lines = collect () in
  Log.ring_flush r ~into:(Log.human_sink write);
  Alcotest.(check (list string))
    "flush surfaces the drop count as an explicit record"
    [
      "[net] event 3";
      "[net] event 4";
      "[net] event 5";
      "[log] warn: 2 earlier record(s) dropped by bounded ring";
    ]
    (lines ());
  Alcotest.(check int) "flush clears the ring" 0
    (List.length (Log.ring_records r));
  Alcotest.(check int) "flush resets the drop counter" 0 (Log.ring_dropped r);
  (* A ring that never overflowed flushes silently — no spurious
     truncation warning. *)
  Log.infof (Log.sub l "net") "only";
  let write2, lines2 = collect () in
  Log.ring_flush r ~into:(Log.human_sink write2);
  Alcotest.(check (list string))
    "no drop record when nothing was dropped" [ "[net] only" ] (lines2 ())

let test_tee_and_level_names () =
  let w1, l1 = collect () and w2, l2 = collect () in
  let l =
    Log.make (Log.tee (Log.human_sink w1) (Log.json_sink w2))
  in
  Log.warnf (Log.sub l "x") "both";
  Alcotest.(check int) "tee reaches the first sink" 1 (List.length (l1 ()));
  Alcotest.(check int) "tee reaches the second sink" 1 (List.length (l2 ()));
  List.iter
    (fun lvl ->
      match Log.level_of_string (Log.level_name lvl) with
      | Some l' ->
          Alcotest.(check int) "level name round-trips" (Log.severity lvl)
            (Log.severity l')
      | None -> Alcotest.fail "level name does not parse back")
    [ Log.Debug; Log.Info; Log.Warn; Log.Error ]

let suite =
  [
    ( "log",
      [
        Alcotest.test_case "levels filter at the source" `Quick
          test_levels_filter;
        Alcotest.test_case "Info renders as the legacy stderr format" `Quick
          test_info_renders_like_legacy_stderr;
        Alcotest.test_case "null logger is disabled and safe" `Quick
          test_null_is_disabled;
        Alcotest.test_case "JSON lines are deterministic" `Quick
          test_json_deterministic;
        Alcotest.test_case "ring truncation is honest" `Quick
          test_ring_truncation_is_honest;
        Alcotest.test_case "tee and level-name round-trip" `Quick
          test_tee_and_level_names;
      ] );
  ]
