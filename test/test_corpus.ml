(* The corpus store's contract, distilled:

   1. crash-safety — SIGKILL at any instant (including mid-append, via
      the store's own chaos hooks driven through the real binary) loses
      at most the uncemented tail; everything that survives re-validates
      and a resumed soak converges on the same corpus content as an
      uninterrupted one;
   2. self-verification — every read recomputes the content address;
      corrupted cemented bytes become typed quarantine entries, never a
      crash, and compaction refuses to rewrite what it cannot verify;
   3. dedup — content addressing makes re-finding a known counterexample
      (same run, next run, resumed run) a duplicate, not a report. *)

open Corpus

let check = Alcotest.check
let exe = "../bin/asmsim.exe"

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "asmsim-corpus-test-%d-%d" (Unix.getpid ()) !counter)

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

let record ?(kind = Record.Finding) ?(meta = []) payload =
  Record.make ~kind ~meta ~payload

let open_store dir =
  match Store.open_ dir with
  | Ok st -> st
  | Error m -> Alcotest.failf "open %s: %s" dir m

let with_store dir f =
  let st = open_store dir in
  Fun.protect ~finally:(fun () -> Store.close st) (fun () -> f st)

let all_records st =
  Store.fold st ~init:[] ~f:(fun acc ~digest r -> (digest, r) :: acc)
  |> List.rev

let finding_digests dir =
  with_store dir (fun st ->
      Store.fold st ~init:[] ~f:(fun acc ~digest r ->
          if r.Record.kind = Record.Finding then digest :: acc else acc)
      |> List.sort String.compare)

(* ------------------------------------------------------------------ *)
(* records: one canonical rendering                                     *)
(* ------------------------------------------------------------------ *)

let record_roundtrip () =
  let r =
    record ~meta:[ ("zeta", "last"); ("alpha", "first") ] "payload\nbytes"
  in
  (* Canonicalization: metadata order at construction is irrelevant. *)
  let r' =
    record ~meta:[ ("alpha", "first"); ("zeta", "last") ] "payload\nbytes"
  in
  check Alcotest.string "meta order does not change the address"
    (Record.digest r) (Record.digest r');
  let bytes = Record.to_bytes r in
  (match Record.parse_at bytes 0 with
  | Ok (parsed, len) ->
      check Alcotest.int "parse consumes the whole rendering"
        (String.length bytes) len;
      check Alcotest.string "round-trip is byte-identical" bytes
        (Record.to_bytes parsed)
  | Error e -> Alcotest.failf "round-trip: %a" Record.pp_parse_error e);
  (* A prefix is a torn append, typed as such. *)
  (match Record.parse_at (String.sub bytes 0 (String.length bytes - 3)) 0 with
  | Error Record.Truncated -> ()
  | Ok _ | Error _ -> Alcotest.fail "a cut rendering must parse Truncated");
  (* A flipped payload byte is a digest mismatch, and the scanner can
     still compute the record's extent to skip past it. *)
  let corrupt = Bytes.of_string bytes in
  Bytes.set corrupt (String.length bytes - 2) '?';
  let corrupt = Bytes.to_string corrupt in
  (match Record.parse_at corrupt 0 with
  | Error (Record.Digest_mismatch _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "changed content must mismatch its address");
  match Record.skip_at corrupt 0 with
  | Ok len -> check Alcotest.int "extent survives corruption"
      (String.length bytes) len
  | Error e -> Alcotest.failf "skip_at: %a" Record.pp_parse_error e

let record_rejects_unframable_meta () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "space in key" true (raises (fun () ->
      record ~meta:[ ("bad key", "v") ] ""));
  Alcotest.(check bool) "newline in value" true (raises (fun () ->
      record ~meta:[ ("k", "line\nbreak") ] ""));
  Alcotest.(check bool) "duplicate key" true (raises (fun () ->
      record ~meta:[ ("k", "a"); ("k", "b") ] ""))

(* ------------------------------------------------------------------ *)
(* store basics: dedup, persistence without cement, cement              *)
(* ------------------------------------------------------------------ *)

let store_dedup_and_reopen () =
  let dir = fresh_dir () in
  let r1 = record "one" and r2 = record "two" in
  with_store dir (fun st ->
      (match Store.add st r1 with
      | `Added d -> check Alcotest.string "address is the digest"
          (Record.digest r1) d
      | `Duplicate _ -> Alcotest.fail "fresh record reported duplicate");
      ignore (Store.add st r2);
      (match Store.add st r1 with
      | `Duplicate _ -> ()
      | `Added _ -> Alcotest.fail "same content must dedup");
      check Alcotest.int "duplicates count once" 2 (Store.count st);
      match Store.find st (Record.digest r2) with
      | Some r -> check Alcotest.string "find re-reads the bytes"
          (Record.to_bytes r2) (Record.to_bytes r)
      | None -> Alcotest.fail "added record must be findable");
  (* Appends are flushed per record: everything survives a close with
     no cement — the tail is durable against process death. *)
  with_store dir (fun st ->
      check Alcotest.int "tail survives reopen" 2 (Store.count st);
      check Alcotest.int "nothing cemented yet" 0 (Store.segments st);
      Store.cement st;
      check Alcotest.int "cement seals the tail" 1 (Store.segments st);
      check Alcotest.int "tail empty after cement" 0 (Store.tail_count st);
      check Alcotest.int "no records lost" 2 (Store.count st));
  with_store dir (fun st ->
      Alcotest.(check bool) "cemented records persist" true
        (Store.mem st (Record.digest r1) && Store.mem st (Record.digest r2)))

let torn_tail_truncated () =
  let dir = fresh_dir () in
  let r1 = record "kept" and r2 = record "torn-away" in
  with_store dir (fun st -> ignore (Store.add st r1));
  (* Weld half an append onto the tail — what a crash mid-write leaves. *)
  let tail = Filename.concat dir "tail.seg" in
  let torn = Record.to_bytes r2 in
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 tail in
  output_string oc (String.sub torn 0 (String.length torn / 2));
  close_out oc;
  with_store dir (fun st ->
      check Alcotest.int "torn append is invisible" 1 (Store.count st);
      check Alcotest.int "a torn tail is not corruption" 0
        (List.length (Store.quarantined st));
      (* The truncated tail is a clean append point again. *)
      match Store.add st r2 with
      | `Added _ -> check Alcotest.int "append after recovery" 2 (Store.count st)
      | `Duplicate _ -> Alcotest.fail "torn record must not count as present")

(* ------------------------------------------------------------------ *)
(* corruption: typed quarantine, never a crash                          *)
(* ------------------------------------------------------------------ *)

let bitflip_quarantines () =
  let dir = fresh_dir () in
  let r1 = record "intact" and r2 = record "about-to-be-corrupted" in
  with_store dir (fun st ->
      ignore (Store.add st r1);
      ignore (Store.add st r2);
      Store.cement st);
  let seg = Filename.concat (Filename.concat dir "segments") "seg-00000001.cor" in
  let bytes = Bytes.of_string (read_file seg) in
  (* Flip one bit in the last record's payload. *)
  let i = Bytes.length bytes - 2 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 1));
  write_file seg (Bytes.to_string bytes);
  with_store dir (fun st ->
      (match Store.quarantined st with
      | [ q ] -> (
          match q.Store.q_reason with
          | Store.Q_digest _ -> ()
          | Store.Q_malformed m ->
              Alcotest.failf "expected a digest quarantine, got malformed: %s" m)
      | qs -> Alcotest.failf "expected 1 quarantined record, got %d"
          (List.length qs));
      check Alcotest.int "the intact record still counts" 1 (Store.count st);
      Alcotest.(check bool) "intact record readable" true
        (Store.find st (Record.digest r1) <> None);
      Alcotest.(check bool) "corrupt address gone from the index" false
        (Store.mem st (Record.digest r2));
      (* Corruption blocks compaction instead of being rewritten. *)
      match Store.compact st with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "compaction must refuse a quarantined corpus")

(* ------------------------------------------------------------------ *)
(* compaction: byte-identity in, byte-identity out                      *)
(* ------------------------------------------------------------------ *)

let compaction_preserves_bytes () =
  let dir = fresh_dir () in
  let records = List.init 9 (fun i -> record (Printf.sprintf "payload %d" i)) in
  with_store dir (fun st ->
      List.iteri
        (fun i r ->
          ignore (Store.add st r);
          (* Three cements → three segments to merge. *)
          if i mod 3 = 2 then Store.cement st)
        records);
  let before = with_store dir all_records in
  with_store dir (fun st ->
      match Store.compact st with
      | Error m -> Alcotest.failf "compact: %s" m
      | Ok n -> check Alcotest.int "every record compacted" 9 n);
  with_store dir (fun st ->
      check Alcotest.int "one segment afterwards" 1 (Store.segments st);
      let after = all_records st in
      check Alcotest.int "record count stable" (List.length before)
        (List.length after);
      List.iter2
        (fun (d, r) (d', r') ->
          check Alcotest.string "storage order and addresses stable" d d';
          check Alcotest.string "record bytes stable" (Record.to_bytes r)
            (Record.to_bytes r'))
        before after)

(* ------------------------------------------------------------------ *)
(* crash-safety end to end: the real binary, really SIGKILLed           *)
(* ------------------------------------------------------------------ *)

let soak_cli ?chaos ~dir ~until () =
  let args =
    [
      exe; "soak"; "--algo"; "safe_agreement_no_cancel"; "--seed"; "7";
      "--until"; string_of_int until; "--batch"; "20"; "--corpus"; dir;
      "--resume";
    ]
    @
    match chaos with
    | None -> []
    | Some (mode, at) -> [ "--chaos-store"; mode; "--chaos-at"; string_of_int at ]
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe (Array.of_list args) Unix.stdin devnull devnull
  in
  Unix.close devnull;
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error _ -> Unix.WEXITED (-1)

(* One chaos mode end to end: the soak is killed mid-append by the
   store's own hook, recovery finds no corruption, and resuming to the
   same absolute index converges on exactly the findings of an
   uninterrupted soak. *)
let killed_soak_converges mode () =
  let reference = fresh_dir () in
  (match soak_cli ~dir:reference ~until:80 () with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "reference soak failed");
  let ref_findings = finding_digests reference in
  Alcotest.(check bool) "the seeded bug is actually found" true
    (ref_findings <> []);
  let dir = fresh_dir () in
  (match soak_cli ~chaos:(mode, 2) ~dir ~until:80 () with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | Unix.WEXITED n -> Alcotest.failf "chaos %s did not kill (exit %d)" mode n
  | _ -> Alcotest.failf "chaos %s did not SIGKILL" mode);
  with_store dir (fun st ->
      check Alcotest.int
        (Printf.sprintf "%s chaos leaves no corruption" mode)
        0
        (List.length (Store.quarantined st)));
  (match soak_cli ~dir ~until:80 () with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "resumed soak failed");
  check
    Alcotest.(list string)
    "killed+resumed corpus content-identical to uninterrupted" ref_findings
    (finding_digests dir)

(* ------------------------------------------------------------------ *)
(* soak dedup across runs (library level)                               *)
(* ------------------------------------------------------------------ *)

let soak_cfg =
  {
    Experiments.Soak.default_config with
    Experiments.Soak.seed = 7;
    schedules = Some 80;
    batch = 20;
    gc_tune = false;
  }

let soak_run ?(cfg = soak_cfg) dir =
  let s =
    match Experiments.Scenario.find "safe_agreement_no_cancel" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  match Experiments.Soak.run cfg ~corpus_dir:dir s with
  | Ok o -> o
  | Error m -> Alcotest.failf "soak: %s" m

let soak_dedups_across_runs () =
  let dir = fresh_dir () in
  let first = soak_run dir in
  Alcotest.(check bool) "first run reports its findings" true
    (first.Experiments.Soak.o_new_findings <> []);
  check Alcotest.int "nothing to dedup against yet" 0
    first.Experiments.Soak.o_dup_findings;
  (* Same schedules again: every counterexample is already addressed. *)
  let second = soak_run dir in
  check
    Alcotest.(list string)
    "re-found counterexamples are not re-reported" []
    second.Experiments.Soak.o_new_findings;
  check Alcotest.int "they dedup instead"
    (List.length first.Experiments.Soak.o_new_findings)
    second.Experiments.Soak.o_dup_findings;
  (* Resume continues past both, not over them. *)
  let resumed =
    soak_run
      ~cfg:
        {
          soak_cfg with
          Experiments.Soak.schedules = Some 10;
          resume = true;
        }
      dir
  in
  check Alcotest.int "resume starts at the checkpoint" 80
    resumed.Experiments.Soak.o_first_index

let suite =
  [
    ( "corpus",
      [
        Alcotest.test_case "record round-trip, one canonical rendering" `Quick
          record_roundtrip;
        Alcotest.test_case "unframable metadata is rejected" `Quick
          record_rejects_unframable_meta;
        Alcotest.test_case "dedup, per-append durability, cement" `Quick
          store_dedup_and_reopen;
        Alcotest.test_case "torn tail truncated on reopen" `Quick
          torn_tail_truncated;
        Alcotest.test_case "bit-flip quarantines, typed; compaction refuses"
          `Quick bitflip_quarantines;
        Alcotest.test_case "compaction is byte-identical to its input" `Quick
          compaction_preserves_bytes;
        Alcotest.test_case "SIGKILL mid-append, resume converges" `Quick
          (killed_soak_converges "kill");
        Alcotest.test_case "torn append + SIGKILL, resume converges" `Quick
          (killed_soak_converges "torn");
        Alcotest.test_case "findings dedup across soak runs" `Quick
          soak_dedups_across_runs;
      ] );
  ]
