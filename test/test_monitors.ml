(* Every monitor combinator, twice: a healthy run it must stay silent
   on, and a minimal breaking run it must abort — including the
   fault-taxonomy monitors (stall_bound, decided_value_integrity), which
   are driven through real injected faults, not synthetic events. *)

open Svm
open Svm.Prog.Syntax

let rr () = Adversary.round_robin ()

let run ?budget ?(nprocs = 2) ?(x = 1) ?(adversary = rr ()) ~monitors progs =
  let env = Env.create ~nprocs ~x () in
  Exec.run ?budget ~record_trace:true ~monitors ~env ~adversary progs

let expect_clean ?budget ?nprocs ?x ?adversary ~monitors progs =
  match run ?budget ?nprocs ?x ?adversary ~monitors progs with
  | (_ : int Exec.result) -> ()
  | exception Monitor.Violation v ->
      Alcotest.fail
        (Printf.sprintf "healthy run flagged: %s: %s" v.Monitor.monitor
           v.Monitor.message)

let expect_violation ?budget ?nprocs ?x ?adversary ~monitors ~monitor_name
    progs =
  match run ?budget ?nprocs ?x ?adversary ~monitors progs with
  | (_ : int Exec.result) ->
      Alcotest.fail (monitor_name ^ ": breaking run not flagged")
  | exception Monitor.Violation v ->
      Alcotest.(check string) "monitor name" monitor_name v.Monitor.monitor;
      v

(* Spin forever (crash/stall fodder). *)
let spin () =
  Prog.loop (fun () -> Prog.map (fun () -> `Again ()) Prog.yield) ()

(* ------------------------------------------------------------------ *)
(* agreement                                                            *)
(* ------------------------------------------------------------------ *)

let agreement_healthy () =
  expect_clean
    ~monitors:[ Monitor.agreement () ]
    [| Prog.return 7; Prog.return 7 |]

let agreement_breaks () =
  let v =
    expect_violation
      ~monitors:[ Monitor.agreement () ]
      ~monitor_name:"agreement"
      [| Prog.return 1; Prog.return 2 |]
  in
  Alcotest.(check int) "flagged at the second decide" 1 v.Monitor.pid

(* ------------------------------------------------------------------ *)
(* k_agreement                                                          *)
(* ------------------------------------------------------------------ *)

let k_agreement_healthy () =
  expect_clean ~nprocs:3
    ~monitors:[ Monitor.k_agreement ~k:2 () ]
    [| Prog.return 1; Prog.return 2; Prog.return 1 |]

let k_agreement_breaks () =
  ignore
    (expect_violation ~nprocs:3
       ~monitors:[ Monitor.k_agreement ~k:2 () ]
       ~monitor_name:"2-agreement"
       [| Prog.return 1; Prog.return 2; Prog.return 3 |])

(* ------------------------------------------------------------------ *)
(* validity                                                             *)
(* ------------------------------------------------------------------ *)

let validity_healthy () =
  expect_clean ~nprocs:1
    ~monitors:[ Monitor.validity ~allowed:(fun v -> v < 10) () ]
    [| Prog.return 9 |]

let validity_breaks () =
  ignore
    (expect_violation ~nprocs:1
       ~monitors:[ Monitor.validity ~allowed:(fun v -> v < 10) () ]
       ~monitor_name:"validity" [| Prog.return 99 |])

(* ------------------------------------------------------------------ *)
(* crash_bound                                                          *)
(* ------------------------------------------------------------------ *)

let crash_plan specs = Adversary.with_crashes (rr ()) specs

let crash_bound_healthy () =
  expect_clean ~budget:50 ~nprocs:2
    ~adversary:
      (crash_plan [ Adversary.Crash_at_local { pid = 0; step = 1 } ])
    ~monitors:[ Monitor.crash_bound ~bound:1 () ]
    [| spin (); Prog.return 0 |]

let crash_bound_breaks () =
  ignore
    (expect_violation ~budget:50 ~nprocs:2
       ~adversary:
         (crash_plan
            [
              Adversary.Crash_at_local { pid = 0; step = 1 };
              Adversary.Crash_at_local { pid = 1; step = 1 };
            ])
       ~monitors:[ Monitor.crash_bound ~bound:1 () ]
       ~monitor_name:"crash-bound(1)"
       [| spin (); spin () |])

(* ------------------------------------------------------------------ *)
(* port_discipline                                                      *)
(* ------------------------------------------------------------------ *)

let propose_and_return v =
  let* _ = Prog.cons_propose Codec.int "C" [] v in
  Prog.return v

let port_discipline_healthy () =
  expect_clean ~nprocs:2 ~x:2
    ~monitors:[ Monitor.port_discipline ~bound:2 () ]
    [| propose_and_return 1; propose_and_return 2 |]

let port_discipline_breaks () =
  ignore
    (expect_violation ~nprocs:2 ~x:2
       ~monitors:[ Monitor.port_discipline ~bound:1 () ]
       ~monitor_name:"port-discipline(consensus<=1)"
       [| propose_and_return 1; propose_and_return 2 |])

(* ------------------------------------------------------------------ *)
(* crashed_inside                                                       *)
(* ------------------------------------------------------------------ *)

(* Op 0 touches the agreement family, op 1 leaves it; crashing at local
   step 1 kills the process while inside "AG", at step 2 outside it. *)
let touch_ag_then_leave i =
  let* () = Prog.snap_set Codec.int "AG" [] i in
  let* () = Prog.snap_set Codec.int "ELSEWHERE" [] i in
  Prog.map (fun () -> i) (spin ())

let crashed_inside_healthy () =
  expect_clean ~budget:60 ~nprocs:2
    ~adversary:
      (crash_plan
         [
           Adversary.Crash_at_local { pid = 0; step = 2 };
           (* p0 left AG *)
           Adversary.Crash_at_local { pid = 1; step = 1 };
           (* only p1 dies inside *)
         ])
    ~monitors:[ Monitor.crashed_inside ~fam_prefix:"AG" () ]
    [| touch_ag_then_leave 0; touch_ag_then_leave 1 |]

let crashed_inside_breaks () =
  let v =
    expect_violation ~budget:60 ~nprocs:2
      ~adversary:
        (crash_plan
           [
             Adversary.Crash_at_local { pid = 0; step = 1 };
             Adversary.Crash_at_local { pid = 1; step = 1 };
           ])
      ~monitors:[ Monitor.crashed_inside ~fam_prefix:"AG" () ]
      ~monitor_name:"crashed-inside(AG<=1)"
      [| touch_ag_then_leave 0; touch_ag_then_leave 1 |]
  in
  Alcotest.(check bool) "message names the instance" true
    (let m = v.Monitor.message in
     let has sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
       in
       go 0
     in
     has "AG")

(* ------------------------------------------------------------------ *)
(* stall_bound                                                          *)
(* ------------------------------------------------------------------ *)

let fault kind pid step =
  { Adversary.kind; trigger = Adversary.Crash_at_local { pid; step } }

let faults specs = Adversary.with_faults (rr ()) specs

(* Two processes hung (responsive omission) on their "AG" operation:
   the blocking account (at most one simulator halted per instance) is
   violated; one hung process is fine. *)
let stall_bound_healthy () =
  expect_clean ~budget:60 ~nprocs:2
    ~adversary:(faults [ fault Adversary.Omission 0 0 ])
    ~monitors:[ Monitor.stall_bound ~fam_prefix:"AG" () ]
    [| touch_ag_then_leave 0; Prog.return 1 |]

let stall_bound_breaks () =
  ignore
    (expect_violation ~budget:60 ~nprocs:2
       ~adversary:
         (faults
            [ fault Adversary.Omission 0 0; fault Adversary.Omission 1 0 ])
       ~monitors:[ Monitor.stall_bound ~fam_prefix:"AG" () ]
       ~monitor_name:"stall-bound(AG<=1)"
       [| touch_ag_then_leave 0; touch_ag_then_leave 1 |])

(* A crash inside the instance counts against the same bound as a hang:
   mixing one of each must also fire. *)
let stall_bound_counts_crashes () =
  ignore
    (expect_violation ~budget:60 ~nprocs:2
       ~adversary:
         (faults
            [ fault Adversary.Omission 0 0; fault Adversary.Crash_stop 1 1 ])
       ~monitors:[ Monitor.stall_bound ~fam_prefix:"AG" () ]
       ~monitor_name:"stall-bound(AG<=1)"
       [| touch_ag_then_leave 0; touch_ag_then_leave 1 |])

(* ------------------------------------------------------------------ *)
(* decided_value_integrity                                              *)
(* ------------------------------------------------------------------ *)

(* p0 publishes, p1 adopts whatever it reads as its decision. Honest
   runs decide 5; a Byzantine p0 plants a forged value that honest p1
   then adopts — the integrity monitor must flag p1's decision (and not
   p0's own, which is excluded as Byzantine). *)
let publisher =
  let* () = Prog.snap_set Codec.int "M" [] 5 in
  Prog.return 5

let adopter =
  Prog.loop
    (fun () ->
      let* cells = Prog.snap_scan Codec.int "M" [] in
      match cells.(0) with
      | Some v -> Prog.return (`Stop v)
      | None -> Prog.return (`Again ()))
    ()

let integrity_monitors () =
  [ Monitor.decided_value_integrity ~allowed:(fun v -> v < 100) () ]

let integrity_healthy () =
  expect_clean ~monitors:(integrity_monitors ()) [| publisher; adopter |]

let integrity_breaks () =
  let v =
    expect_violation
      ~adversary:(faults [ fault Adversary.Byzantine 0 0 ])
      ~monitors:(integrity_monitors ())
      ~monitor_name:"decided-value-integrity"
      [| publisher; adopter |]
  in
  Alcotest.(check int) "the honest adopter is the flagged pid" 1 v.Monitor.pid

(* The Byzantine process's own decision is excluded: with only p0 (and
   its forged self-decision) in range of the monitor, the run is clean
   degradation, not a violation. *)
let integrity_excludes_byzantine () =
  expect_clean
    ~adversary:(faults [ fault Adversary.Byzantine 0 0 ])
    ~monitors:(integrity_monitors ())
    [| publisher; Prog.return 5 |]

let suite =
  [
    ( "monitors",
      [
        Alcotest.test_case "agreement: healthy" `Quick agreement_healthy;
        Alcotest.test_case "agreement: breaks" `Quick agreement_breaks;
        Alcotest.test_case "k-agreement: healthy" `Quick k_agreement_healthy;
        Alcotest.test_case "k-agreement: breaks" `Quick k_agreement_breaks;
        Alcotest.test_case "validity: healthy" `Quick validity_healthy;
        Alcotest.test_case "validity: breaks" `Quick validity_breaks;
        Alcotest.test_case "crash-bound: healthy" `Quick crash_bound_healthy;
        Alcotest.test_case "crash-bound: breaks" `Quick crash_bound_breaks;
        Alcotest.test_case "port-discipline: healthy" `Quick
          port_discipline_healthy;
        Alcotest.test_case "port-discipline: breaks" `Quick
          port_discipline_breaks;
        Alcotest.test_case "crashed-inside: healthy" `Quick
          crashed_inside_healthy;
        Alcotest.test_case "crashed-inside: breaks" `Quick
          crashed_inside_breaks;
        Alcotest.test_case "stall-bound: healthy" `Quick stall_bound_healthy;
        Alcotest.test_case "stall-bound: breaks on two hangs" `Quick
          stall_bound_breaks;
        Alcotest.test_case "stall-bound: hang + crash also breaks" `Quick
          stall_bound_counts_crashes;
        Alcotest.test_case "integrity: healthy" `Quick integrity_healthy;
        Alcotest.test_case "integrity: honest adoption flagged" `Quick
          integrity_breaks;
        Alcotest.test_case "integrity: Byzantine's own decision excluded"
          `Quick integrity_excludes_byzantine;
      ] );
  ]
