(* The network service's contract, loopback edition:

   1. gatekeeping — a peer with the wrong protocol version or registry
      fingerprint gets a typed rejection and a closed socket, never a
      hang;
   2. identity — a job submitted over TCP and computed by remote
      workers merges to the same outcome and metrics snapshot as the
      in-process run, even when every worker sabotages its own writes
      (the chaos harness);
   3. drain — SIGTERM makes the server checkpoint, tell the client
      [Sc_draining], and exit 0; the suspended job id resumes against a
      restarted server and still matches the in-process run.

   The server runs as a forked child of this test (library API, port 0,
   the bound port crossing back over a pipe); workers are real forked
   processes of the real binary, exactly as in production. *)

open Svm

let check = Alcotest.check
let exe = "../bin/asmsim.exe"

let scenario name =
  match Experiments.Scenario.find name with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "asmsim-net-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let fingerprint () = Experiments.Harness.registry_fingerprint ()

(* ------------------------------------------------------------------ *)
(* process plumbing — everything through [Unix.create_process]: other
   suites create domains, after which [Unix.fork] is off the table      *)
(* ------------------------------------------------------------------ *)

let read_file_opt p =
  match open_in_bin p with
  | exception Sys_error _ -> ""
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s

(* Start the real binary as a server on 127.0.0.1:0 and scrape the
   bound port from its "[net] listening on port N" stderr line. *)
let start_server ?shard_size ~dir () =
  let errfile = Filename.concat dir "server.err" in
  let errfd =
    Unix.openfile errfile [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let args =
    [ exe; "serve"; "--listen"; "127.0.0.1:0"; "--journal-dir"; dir ]
    @
    match shard_size with
    | None -> []
    | Some n -> [ "--shard-size"; string_of_int n ]
  in
  let pid =
    Unix.create_process exe (Array.of_list args) Unix.stdin Unix.stdout errfd
  in
  Unix.close errfd;
  let marker = "listening on port " in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec await () =
    let s = read_file_opt errfile in
    let mn = String.length marker in
    let rec find i =
      if i + mn > String.length s then None
      else if String.sub s i mn = marker then Some (i + mn)
      else find (i + 1)
    in
    match find 0 with
    | Some digits ->
        let j = ref digits in
        while
          !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9'
        do
          incr j
        done;
        if !j > digits then
          int_of_string (String.sub s digits (!j - digits))
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "server never finished printing its port"
        else (
          Unix.sleepf 0.02;
          await ())
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "server never bound; stderr: %s" s
        else (
          Unix.sleepf 0.02;
          await ())
  in
  (pid, await ())

(* SIGTERM [target] after [delay] seconds, from a helper process, so
   the test can sit inside a blocking submit meanwhile. *)
let kill_after ~delay target =
  Unix.create_process "/bin/sh"
    [|
      "/bin/sh";
      "-c";
      Printf.sprintf "sleep %g; kill -TERM %d 2>/dev/null" delay target;
    |]
    Unix.stdin Unix.stdout Unix.stderr

(* SIGKILL [target] as soon as its stderr shows it joined a job, from a
   helper process, so the kill lands mid-run while the test sits in a
   blocking submit. *)
let kill_once_joined ~err target =
  Unix.create_process "/bin/sh"
    [|
      "/bin/sh";
      "-c";
      Printf.sprintf
        "for i in $(seq 1 250); do grep -q 'opened job' %s 2>/dev/null && \
         kill -KILL %d 2>/dev/null && exit 0; sleep 0.02; done"
        (Filename.quote err) target;
    |]
    Unix.stdin Unix.stdout Unix.stderr

(* A real worker process of the real binary, stderr captured so tests
   can prove the chaos harness actually fired. *)
let start_worker ?chaos ~err port =
  let args =
    [ exe; "work"; "--connect"; Printf.sprintf "127.0.0.1:%d" port ]
    @ (match chaos with
      | None -> []
      | Some (mode, every) ->
          [ "--chaos-net"; mode; "--chaos-every"; string_of_int every ])
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let errfd =
    Unix.openfile err [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Unix.create_process exe (Array.of_list args) Unix.stdin devnull errfd
  in
  Unix.close devnull;
  Unix.close errfd;
  pid

let kill_quiet pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error _ -> Unix.WEXITED (-1)

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let client_config () =
  {
    (Dist.Client.default_config ~fingerprint:(fingerprint ()) ()) with
    Dist.Client.backoff_base = 0.02;
    dial_timeout = 5.;
    read_timeout = 30.;
  }

(* ------------------------------------------------------------------ *)
(* in-process reference                                                 *)
(* ------------------------------------------------------------------ *)

let sweep_repr (o : Explore.sweep_outcome) =
  let found =
    match o.Explore.found with
    | None -> "none"
    | Some f ->
        Format.asprintf "%a >> %a | %s@%d | shrink=%d | artifact=<<%s>>"
          Explore.pp_fault_schedule f.Explore.fault Explore.pp_fault_schedule
          f.Explore.shrunk f.Explore.violation.Monitor.monitor
          f.Explore.violation.Monitor.step f.Explore.shrink_runs
          f.Explore.replay
  in
  Printf.sprintf "runs=%d exhausted=%b found=%s" o.Explore.runs
    o.Explore.exhausted found

let sweep_inproc s =
  let metrics = Metrics.create ~wall_clock:false () in
  let o = Experiments.Harness.sweep_scenario ~metrics s in
  (sweep_repr o, Metrics.snapshot_string metrics)

let submit_sweep ?resume cfg s port =
  let metrics = Metrics.create ~wall_clock:false () in
  let job = Experiments.Harness.sweep_job s in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  match Experiments.Harness.submit_job_net ~metrics ?resume cfg job addr with
  | Error m -> Alcotest.failf "submit failed: %s" m
  | Ok (sub, stats) -> (sub, stats, metrics)

(* ------------------------------------------------------------------ *)
(* gatekeeping                                                          *)
(* ------------------------------------------------------------------ *)

let reject_fingerprint_skew () =
  let dir = fresh_dir () in
  let srv, port = start_server ~dir () in
  Fun.protect
    ~finally:(fun () ->
      kill_quiet srv Sys.sigterm;
      ignore (reap srv))
    (fun () ->
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      match Dist.Net.dial ~timeout:5. addr with
      | Error m -> Alcotest.failf "dial failed: %s" m
      | Ok fd -> (
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match
                Dist.Net.client_handshake fd ~role:Dist.Proto.Worker_role
                  ~fingerprint:"someone-else's-registry"
              with
              | Error (Dist.Net.Hs_rejected m) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "rejection names the fingerprint: %S" m)
                    true
                    (contains_sub m "fingerprint")
              | Error (Dist.Net.Hs_link m) ->
                  Alcotest.failf "expected a typed rejection, got link: %s" m
              | Ok () -> Alcotest.fail "fingerprint skew must be rejected")))

let reject_version_skew () =
  let dir = fresh_dir () in
  let srv, port = start_server ~dir () in
  Fun.protect
    ~finally:(fun () ->
      kill_quiet srv Sys.sigterm;
      ignore (reap srv))
    (fun () ->
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      match Dist.Net.dial ~timeout:5. addr with
      | Error m -> Alcotest.failf "dial failed: %s" m
      | Ok fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              (* Hand-craft a hello from the future. *)
              Dist.Frame.write fd
                (Dist.Proto.hello_to_json
                   {
                     Dist.Proto.h_version = Dist.Proto.net_version + 1;
                     h_role = Dist.Proto.Worker_role;
                     h_fingerprint = fingerprint ();
                   });
              match Dist.Frame.read ~timeout:5. fd with
              | Error e ->
                  Alcotest.failf "no reply to a wrong-version hello: %a"
                    Dist.Frame.pp_error e
              | Ok v -> (
                  match Dist.Proto.welcome_of_json v with
                  | Ok (Dist.Proto.Rejected m) ->
                      Alcotest.(check bool)
                        (Printf.sprintf "rejection names the version: %S" m)
                        true (contains_sub m "version")
                  | Ok Dist.Proto.Welcome ->
                      Alcotest.fail "version skew must be rejected"
                  | Error m -> Alcotest.failf "unreadable welcome: %s" m)))

(* A malformed DSL source inside a job must bounce off the server as a
   typed [Sc_rejected] — parse + validate only, no code execution — and
   the server must go on serving fresh connections afterwards. The
   client library expands jobs locally before dialing, so only a
   hand-built frame can exercise the server-side path. Beyond the
   truncated source, a source under the byte cap but nested tens of
   thousands of levels deep (once a Stack_overflow that killed the
   whole server) must bounce the same way. *)
let deeply_nested_source =
  let parens n s =
    String.concat ""
      (List.init n (fun _ -> "(")) ^ s ^ String.concat "" (List.init n (fun _ -> ")"))
  in
  "scenario \"deep\" { nprocs 2 x 1 process all { decide "
  ^ parens 30_000 "0"
  ^ " } property agreement in 0 .. 1 }"

let reject_bad_source () =
  let dir = fresh_dir () in
  let srv, port = start_server ~dir () in
  Fun.protect
    ~finally:(fun () ->
      kill_quiet srv Sys.sigterm;
      ignore (reap srv))
    (fun () ->
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      let dial_ok () =
        match Dist.Net.dial ~timeout:5. addr with
        | Error m -> Alcotest.failf "dial failed: %s" m
        | Ok fd -> (
            match
              Dist.Net.client_handshake fd ~role:Dist.Proto.Client_role
                ~fingerprint:(fingerprint ())
            with
            | Ok () -> fd
            | Error (Dist.Net.Hs_rejected m) ->
                Alcotest.failf "handshake rejected: %s" m
            | Error (Dist.Net.Hs_link m) ->
                Alcotest.failf "handshake link error: %s" m)
      in
      let submit_bad source needles =
        let fd = dial_ok () in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let job =
              {
                Dist.Proto.scenario = "zzz";
                nprocs = None;
                source = Some source;
                mode =
                  Dist.Proto.Sweep
                    {
                      sw_tiers = [ "crash" ];
                      sw_max_faults = 1;
                      sw_op_window = 6;
                      sw_max_runs = 100;
                      sw_budget = None;
                    };
              }
            in
            Dist.Frame.write fd
              (Dist.Proto.client_to_server_to_json
                 (Dist.Proto.Cs_submit { job; resume = None }));
            match Dist.Frame.read ~timeout:5. fd with
            | Error e ->
                Alcotest.failf "no reply to a bad-source submit: %a"
                  Dist.Frame.pp_error e
            | Ok v -> (
                match Dist.Proto.server_to_client_of_json v with
                | Ok (Dist.Proto.Sc_rejected m) ->
                    Alcotest.(check bool)
                      (Printf.sprintf "rejection is typed and spanned: %S" m)
                      true
                      (List.for_all (fun n -> contains_sub m n) needles)
                | Ok _ -> Alcotest.fail "bad source must be rejected"
                | Error m -> Alcotest.failf "unreadable reply: %s" m))
      in
      submit_bad "scenario \"zzz\" { nprocs 2"
        [ "cannot expand job"; "scenario source" ];
      submit_bad deeply_nested_source [ "cannot expand job"; "nest" ];
      (* the server survives: a fresh connection still gets stats *)
      let fd2 = dial_ok () in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
        (fun () ->
          Dist.Frame.write fd2
            (Dist.Proto.client_to_server_to_json Dist.Proto.Cs_stats);
          match Dist.Frame.read ~timeout:5. fd2 with
          | Error e ->
              Alcotest.failf "server gone after a rejected submit: %a"
                Dist.Frame.pp_error e
          | Ok v -> (
              match Dist.Proto.server_to_client_of_json v with
              | Ok (Dist.Proto.Sc_stats _) -> ()
              | Ok _ -> Alcotest.fail "expected stats"
              | Error m -> Alcotest.failf "unreadable stats: %s" m)))

(* A job carrying a well-formed DSL source executes remotely to the
   byte-identical outcome of the same compiled scenario in-process —
   the server has never registered the name; the source on the wire is
   all it gets. *)
let dsl_source_identity () =
  let src =
    let ic = open_in_bin "../examples/safe_agreement_no_cancel.sdl" in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let s =
    match Experiments.Scenario.of_source src with
    | Ok s -> s
    | Error m -> Alcotest.failf "example does not compile: %s" m
  in
  let base = sweep_inproc s in
  let dir = fresh_dir () in
  let srv, port = start_server ~shard_size:5 ~dir () in
  let err = Filename.concat dir "w-dsl.err" in
  let worker = start_worker ~err port in
  Fun.protect
    ~finally:(fun () ->
      kill_quiet worker Sys.sigkill;
      kill_quiet srv Sys.sigterm;
      ignore (reap worker);
      ignore (reap srv))
    (fun () ->
      let sub, stats, _metrics = submit_sweep (client_config ()) s port in
      match sub with
      | Dist.Client.Suspended _ -> Alcotest.fail "job suspended without a drain"
      | Dist.Client.Finished (Dist.Client.Explore_outcome _) ->
          Alcotest.fail "sweep came back as an explore result"
      | Dist.Client.Finished (Dist.Client.Sweep_outcome o) ->
          check Alcotest.string "DSL job identical over TCP" (fst base)
            (sweep_repr o);
          Alcotest.(check bool) "shards were executed remotely" true
            (stats.Dist.Client.executed > 0))

(* ------------------------------------------------------------------ *)
(* identity over TCP, clean and under chaos                             *)
(* ------------------------------------------------------------------ *)

let net_identity ~chaos () =
  let s = scenario "safe_agreement_no_cancel" in
  let base = sweep_inproc s in
  let dir = fresh_dir () in
  let srv, port = start_server ~shard_size:5 ~dir () in
  let errs =
    List.map (fun i -> Filename.concat dir (Printf.sprintf "w%d.err" i)) [ 1; 2 ]
  in
  let workers = List.map (fun err -> start_worker ?chaos ~err port) errs in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun pid -> kill_quiet pid Sys.sigkill) workers;
      kill_quiet srv Sys.sigterm;
      List.iter (fun pid -> ignore (reap pid)) workers;
      ignore (reap srv))
    (fun () ->
      let sub, stats, metrics = submit_sweep (client_config ()) s port in
      (match sub with
      | Dist.Client.Suspended _ ->
          Alcotest.fail "job suspended without a drain"
      | Dist.Client.Finished (Dist.Client.Explore_outcome _) ->
          Alcotest.fail "sweep came back as an explore result"
      | Dist.Client.Finished (Dist.Client.Sweep_outcome o) ->
          check Alcotest.string "outcome identical over TCP" (fst base)
            (sweep_repr o);
          check Alcotest.string "metrics identical over TCP" (snd base)
            (Metrics.snapshot_string metrics));
      Alcotest.(check bool) "shards were executed remotely" true
        (stats.Dist.Client.executed > 0);
      if chaos <> None then begin
        (* The harness must actually have fired — otherwise this test
           proves nothing about fault tolerance. *)
        let fired =
          List.exists (fun err -> contains_sub (read_file err) "chaos") errs
        in
        Alcotest.(check bool) "chaos really cut connections" true fired
      end)

let net_identity_clean = net_identity ~chaos:None

let net_identity_chaos = net_identity ~chaos:(Some ("drop", 3))

(* The acceptance bar from the issue: 4 remote workers, chaos drop on
   every one of them, one SIGKILLed mid-run — the server must reassign
   the lost shard and the merged result must still be byte-identical.
   shard_size=1 stretches the run so the kill has a wide window. *)
let net_identity_chaos_kill () =
  let s = scenario "safe_agreement_no_cancel" in
  let base = sweep_inproc s in
  let dir = fresh_dir () in
  let srv, port = start_server ~shard_size:1 ~dir () in
  let errs =
    List.map
      (fun i -> Filename.concat dir (Printf.sprintf "kw%d.err" i))
      [ 1; 2; 3; 4 ]
  in
  let workers =
    List.map (fun err -> start_worker ~chaos:("drop", 3) ~err port) errs
  in
  let victim = List.hd workers in
  let assassin = kill_once_joined ~err:(List.hd errs) victim in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun pid -> kill_quiet pid Sys.sigkill) workers;
      kill_quiet srv Sys.sigterm;
      kill_quiet assassin Sys.sigkill;
      List.iter (fun pid -> ignore (reap pid)) (assassin :: workers);
      ignore (reap srv))
    (fun () ->
      let sub, stats, metrics = submit_sweep (client_config ()) s port in
      (* The victim must really have died of SIGKILL, not been stranded
         unkilled — otherwise this proves nothing about reassignment. *)
      let deadline = Unix.gettimeofday () +. 5. in
      let rec victim_status () =
        match Unix.waitpid [ Unix.WNOHANG ] victim with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then None
            else (
              Unix.sleepf 0.02;
              victim_status ())
        | _, st -> Some st
        | exception Unix.Unix_error _ -> None
      in
      (match victim_status () with
      | Some (Unix.WSIGNALED sg) when sg = Sys.sigkill -> ()
      | _ -> Alcotest.fail "victim worker was never SIGKILLed");
      (match sub with
      | Dist.Client.Suspended _ ->
          Alcotest.fail "job suspended without a drain"
      | Dist.Client.Finished (Dist.Client.Explore_outcome _) ->
          Alcotest.fail "sweep came back as an explore result"
      | Dist.Client.Finished (Dist.Client.Sweep_outcome o) ->
          check Alcotest.string "outcome identical despite worker SIGKILL"
            (fst base) (sweep_repr o);
          check Alcotest.string "metrics identical despite worker SIGKILL"
            (snd base)
            (Metrics.snapshot_string metrics));
      Alcotest.(check bool) "shards were executed remotely" true
        (stats.Dist.Client.executed > 0))

(* ------------------------------------------------------------------ *)
(* result cache                                                         *)
(* ------------------------------------------------------------------ *)

let cache_answers_completed_resubmit () =
  let s = scenario "safe_agreement_no_cancel" in
  let base = sweep_inproc s in
  let dir = fresh_dir () in
  let srv, port = start_server ~shard_size:16 ~dir () in
  let worker = start_worker ~err:(Filename.concat dir "worker.err") port in
  Fun.protect
    ~finally:(fun () ->
      kill_quiet worker Sys.sigkill;
      kill_quiet srv Sys.sigterm;
      ignore (reap worker);
      ignore (reap srv))
    (fun () ->
      (* First submission: computed by the worker, journalled shard by
         shard. *)
      (match submit_sweep (client_config ()) s port with
      | Dist.Client.Suspended _, _, _ -> Alcotest.fail "first submit suspended"
      | Dist.Client.Finished (Dist.Client.Explore_outcome _), _, _ ->
          Alcotest.fail "sweep produced an explore result"
      | Dist.Client.Finished (Dist.Client.Sweep_outcome o), stats, _ ->
          Alcotest.(check bool) "first run executes shards remotely" true
            (stats.Dist.Client.executed > 0);
          check Alcotest.string "first outcome identical to in-process"
            (fst base) (sweep_repr o));
      (* The worker is gone: a re-submitted identical job can only
         finish if the server answers it from the completed journal. *)
      kill_quiet worker Sys.sigkill;
      ignore (reap worker);
      match submit_sweep (client_config ()) s port with
      | Dist.Client.Suspended _, _, _ ->
          Alcotest.fail "cached job must finish, not suspend"
      | Dist.Client.Finished (Dist.Client.Explore_outcome _), _, _ ->
          Alcotest.fail "cached sweep came back as an explore result"
      | Dist.Client.Finished (Dist.Client.Sweep_outcome o), stats, metrics ->
          check Alcotest.int "no shard re-executed" 0
            stats.Dist.Client.executed;
          (* A sweep that found its violation never executed the shards
             past the finding cut, so the journal — and therefore the
             cache — restores only the shards up to the cut. *)
          Alcotest.(check bool) "shards restored from the journal" true
            (stats.Dist.Client.resumed > 0
            && stats.Dist.Client.resumed <= stats.Dist.Client.shards);
          check Alcotest.string "cached outcome identical to in-process"
            (fst base) (sweep_repr o);
          check Alcotest.string "cached metrics identical to in-process"
            (snd base)
            (Metrics.snapshot_string metrics))

(* ------------------------------------------------------------------ *)
(* graceful drain and resume                                            *)
(* ------------------------------------------------------------------ *)

let drain_and_resume () =
  let s = scenario "safe_agreement_no_cancel" in
  let base = sweep_inproc s in
  let dir = fresh_dir () in
  (* Phase 1: a server with no workers — the job is accepted but cannot
     progress; SIGTERM must drain and suspend it, not strand the client. *)
  let srv, port = start_server ~shard_size:5 ~dir () in
  let killer = kill_after ~delay:0.4 srv in
  let id =
    match submit_sweep (client_config ()) s port with
    | Dist.Client.Finished _, _, _ ->
        Alcotest.fail "the job cannot finish with no workers"
    | Dist.Client.Suspended id, _, _ -> id
  in
  let srv_status = reap srv in
  ignore (reap killer);
  (match srv_status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "SIGTERM drain must exit 0");
  Alcotest.(check bool) "journal survives the drain" true
    (List.mem id (Dist.Journal.list_ids ~dir ()));
  (* Phase 2: restart, attach a worker, resume by id — and still match
     the in-process run byte for byte. *)
  let srv, port = start_server ~shard_size:5 ~dir () in
  let worker =
    start_worker ~err:(Filename.concat dir "resume-worker.err") port
  in
  Fun.protect
    ~finally:(fun () ->
      kill_quiet worker Sys.sigkill;
      kill_quiet srv Sys.sigterm;
      ignore (reap worker);
      ignore (reap srv))
    (fun () ->
      match submit_sweep ~resume:id (client_config ()) s port with
      | Dist.Client.Suspended _, _, _ ->
          Alcotest.fail "resumed job suspended again"
      | Dist.Client.Finished (Dist.Client.Explore_outcome _), _, _ ->
          Alcotest.fail "sweep resumed as an explore result"
      | Dist.Client.Finished (Dist.Client.Sweep_outcome o), stats, metrics ->
          check Alcotest.string "job id stable across the drain" id
            stats.Dist.Client.job_id;
          check Alcotest.string "resumed outcome identical to in-process"
            (fst base) (sweep_repr o);
          check Alcotest.string "resumed metrics identical to in-process"
            (snd base)
            (Metrics.snapshot_string metrics))

(* ------------------------------------------------------------------ *)
(* v2 codec: stats request/reply and the metrics-bearing pong           *)
(* ------------------------------------------------------------------ *)

let proto_v2_codec () =
  Alcotest.(check int) "DSL job sources bumped the version" 3
    Dist.Proto.net_version;
  let rt_worker m =
    match
      Dist.Proto.net_from_worker_of_json
        (Dist.Proto.net_from_worker_to_json m)
    with
    | Ok m' -> Alcotest.(check bool) "worker frame round-trips" true (m = m')
    | Error e -> Alcotest.failf "worker frame rejected its own JSON: %s" e
  in
  (* A bare pong (v1 shape) and a metrics-bearing pong (v2 push) must
     both survive the wire; the member is simply absent when the worker
     has no registry. *)
  rt_worker (Dist.Proto.Nf_pong { metrics = None });
  let reg = Metrics.create ~wall_clock:false () in
  Metrics.bump ~by:3 (Some reg) "worker_shards_total";
  Metrics.sample (Some reg) "h.cells" 128;
  rt_worker (Dist.Proto.Nf_pong { metrics = Some (Metrics.snapshot reg) });
  (match
     Dist.Proto.client_to_server_of_json
       (Dist.Proto.client_to_server_to_json Dist.Proto.Cs_stats)
   with
  | Ok Dist.Proto.Cs_stats -> ()
  | Ok _ -> Alcotest.fail "Cs_stats decoded as a different message"
  | Error e -> Alcotest.failf "Cs_stats rejected its own JSON: %s" e);
  let doc = Json.Obj [ ("health", Json.Obj [ ("peers", Json.Int 2) ]) ] in
  (match
     Dist.Proto.server_to_client_of_json
       (Dist.Proto.server_to_client_to_json (Dist.Proto.Sc_stats doc))
   with
  | Ok (Dist.Proto.Sc_stats doc') ->
      Alcotest.(check string) "stats payload survives the wire"
        (Json.to_string doc) (Json.to_string doc')
  | Ok _ -> Alcotest.fail "Sc_stats decoded as a different message"
  | Error e -> Alcotest.failf "Sc_stats rejected its own JSON: %s" e);
  (* A stats reply with no payload is wire garbage, not an empty doc. *)
  match
    Dist.Proto.server_to_client_of_json
      (Json.Obj [ ("t", Json.String "stats") ])
  with
  | Ok _ -> Alcotest.fail "payload-less stats reply accepted"
  | Error _ -> ()

(* `asmsim top --once' against a live server with workers attached: the
   one query must see every connected peer and an empty queue, and the
   --json twin must emit the raw stats document. *)
let top_sees_the_fleet () =
  let dir = fresh_dir () in
  let srv, port = start_server ~dir () in
  let w1 = start_worker ~err:(Filename.concat dir "tw1.err") port in
  let w2 = start_worker ~err:(Filename.concat dir "tw2.err") port in
  Fun.protect
    ~finally:(fun () ->
      kill_quiet w1 Sys.sigkill;
      kill_quiet w2 Sys.sigkill;
      kill_quiet srv Sys.sigterm;
      ignore (reap w1);
      ignore (reap w2);
      ignore (reap srv))
    (fun () ->
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      (* Workers race the query to the handshake; poll until both are
         counted rather than sleeping blind. *)
      let deadline = Unix.gettimeofday () +. 10. in
      let rec query () =
        match Dist.Client.stats_query (client_config ()) addr with
        | Error m -> Alcotest.failf "stats query failed: %s" m
        | Ok doc -> (
            let health k =
              Option.bind
                (Option.bind (Json.member "health" doc) (Json.member k))
                Json.to_int
            in
            match health "workers" with
            | Some 2 -> doc
            | _ when Unix.gettimeofday () > deadline ->
                Alcotest.failf "top never saw both workers: %s"
                  (Json.to_string doc)
            | _ ->
                Unix.sleepf 0.05;
                query ())
      in
      let doc = query () in
      let health k =
        Option.bind
          (Option.bind (Json.member "health" doc) (Json.member k))
          Json.to_int
      in
      Alcotest.(check (option int)) "idle queue" (Some 0)
        (health "queue_depth");
      Alcotest.(check (option int)) "no jobs" (Some 0) (health "jobs_active");
      (* The same doc must carry a mergeable metrics member: the server's
         own registry folded with both workers' pushes. *)
      match Json.member "metrics" doc with
      | None -> Alcotest.fail "stats doc has no metrics member"
      | Some m -> (
          match Metrics.of_snapshot m with
          | Error e -> Alcotest.failf "stats metrics don't decode: %s" e
          | Ok _ -> ()))

let suite =
  [
    ( "net",
      [
        Alcotest.test_case "fingerprint skew is rejected, typed" `Quick
          reject_fingerprint_skew;
        Alcotest.test_case "v2 codec: stats and metrics-bearing pong" `Quick
          proto_v2_codec;
        Alcotest.test_case "stats query sees peers and queue" `Quick
          top_sees_the_fleet;
        Alcotest.test_case "version skew is rejected, typed" `Quick
          reject_version_skew;
        Alcotest.test_case "malformed DSL source is rejected, typed" `Quick
          reject_bad_source;
        Alcotest.test_case "DSL source job: TCP identity, 1 worker" `Quick
          dsl_source_identity;
        Alcotest.test_case "TCP identity, 2 remote workers" `Quick
          net_identity_clean;
        Alcotest.test_case "TCP identity under --chaos-net drop" `Quick
          net_identity_chaos;
        Alcotest.test_case "TCP identity, 4 workers, chaos + SIGKILL" `Quick
          net_identity_chaos_kill;
        Alcotest.test_case "completed journal answers a re-submit" `Quick
          cache_answers_completed_resubmit;
        Alcotest.test_case "SIGTERM drains; the job resumes" `Quick
          drain_and_resume;
      ] );
  ]
