(* Tests for the universal construction, the consensus-number gallery
   and the linearizability checker. *)

open Svm
open Svm.Prog.Syntax

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Linearizability checker on hand-written histories                   *)
(* ------------------------------------------------------------------ *)

let ev start finish op res = { Universal.Lin_check.start; finish; op; res }

let lin_accepts_sequential () =
  let open Universal.Seq_spec in
  let h =
    [ ev 0 1 (Enqueue 1) None; ev 2 3 (Enqueue 2) None; ev 4 5 Dequeue (Some 1) ]
  in
  Alcotest.(check bool) "fifo ok" true
    (Universal.Lin_check.check fifo_queue h)

let lin_accepts_concurrent_reorder () =
  let open Universal.Seq_spec in
  (* Two overlapping enqueues; a later dequeue sees 2 first: legal only
     because the enqueues overlap and may linearize in either order. *)
  let h =
    [ ev 0 5 (Enqueue 1) None; ev 1 4 (Enqueue 2) None; ev 6 7 Dequeue (Some 2) ]
  in
  Alcotest.(check bool) "overlap reorder ok" true
    (Universal.Lin_check.check fifo_queue h)

let lin_rejects_wrong_result () =
  let open Universal.Seq_spec in
  let h = [ ev 0 1 (Enqueue 1) None; ev 2 3 Dequeue (Some 7) ] in
  Alcotest.(check bool) "wrong dequeue rejected" false
    (Universal.Lin_check.check fifo_queue h)

let lin_respects_real_time () =
  let open Universal.Seq_spec in
  (* enq(1) finished before enq(2) started, so deq must not see 2. *)
  let h =
    [ ev 0 1 (Enqueue 1) None; ev 2 3 (Enqueue 2) None; ev 4 5 Dequeue (Some 2) ]
  in
  Alcotest.(check bool) "real-time violation rejected" false
    (Universal.Lin_check.check fifo_queue h)

let lin_witness_order () =
  let open Universal.Seq_spec in
  let h = [ ev 2 3 (Enqueue 2) None; ev 0 1 (Enqueue 1) None ] in
  match Universal.Lin_check.witness fifo_queue h with
  | Some [ a; b ] ->
      Alcotest.(check bool) "witness respects real time" true
        (a.Universal.Lin_check.start = 0 && b.Universal.Lin_check.start = 2)
  | Some _ | None -> Alcotest.fail "no witness"

(* ------------------------------------------------------------------ *)
(* Universal construction                                               *)
(* ------------------------------------------------------------------ *)

(* Each process performs its scripted ops through the universal object
   and returns its results; afterwards we linearize the history using
   the markers left in the trace. *)
let run_universal ~spec ~scripts ~seed =
  let n = Array.length scripts in
  let env = Env.create ~nprocs:n ~x:n () in
  let obj = Universal.Herlihy.make spec ~fam:"U" in
  let sessions = Array.init n (fun pid -> Universal.Herlihy.session obj ~pid) in
  let res_list_codec = Codec.list spec.Universal.Seq_spec.res_codec in
  let prog pid =
    let session = sessions.(pid) in
    let rec go idx acc = function
      | [] -> Prog.return (res_list_codec.Codec.inj (List.rev acc))
      | op :: rest ->
          let* () = Prog.reg_write Codec.unit "__mark" [ pid; idx; 0 ] () in
          let* res = Universal.Herlihy.invoke session op in
          let* () = Prog.reg_write Codec.unit "__mark" [ pid; idx; 1 ] () in
          go (idx + 1) (res :: acc) rest
    in
    go 0 [] scripts.(pid)
  in
  let r =
    Exec.run ~record_trace:true ~budget:500_000 ~env
      ~adversary:(Adversary.random ~seed) (Array.init n prog)
  in
  (r, sessions, res_list_codec)

let intervals_of_trace trace =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.Trace.info with
      | Some { Op.fam = "__mark"; key = [ pid; idx; mark ]; _ } ->
          let k = (pid, idx) in
          let s, f = try Hashtbl.find tbl k with Not_found -> (-1, -1) in
          if mark = 0 then Hashtbl.replace tbl k (e.Trace.step, f)
          else Hashtbl.replace tbl k (s, e.Trace.step)
      | Some _ | None -> ())
    (Trace.events trace);
  tbl

let history_of_run ~scripts r res_list_codec =
  let trace = Option.get r.Exec.trace in
  let tbl = intervals_of_trace trace in
  let events = ref [] in
  Array.iteri
    (fun pid outcome ->
      match outcome with
      | Exec.Decided u ->
          let results = res_list_codec.Codec.prj u in
          List.iteri
            (fun idx (op, res) ->
              let start, finish = Hashtbl.find tbl (pid, idx) in
              events :=
                { Universal.Lin_check.start; finish; op; res } :: !events)
            (List.combine scripts.(pid) results)
      | Exec.Crashed | Exec.Blocked | Exec.Stuck -> ())
    r.Exec.outcomes;
  !events

let universal_queue_linearizable () =
  let open Universal.Seq_spec in
  let scripts =
    [|
      [ Enqueue 1; Enqueue 2; Dequeue ];
      [ Dequeue; Enqueue 3 ];
      [ Dequeue; Dequeue ];
    |]
  in
  List.iter
    (fun seed ->
      let r, _, codec = run_universal ~spec:fifo_queue ~scripts ~seed in
      check Alcotest.int "all decided" 3 (Exec.decided_count r);
      let history = history_of_run ~scripts r codec in
      Alcotest.(check bool)
        (Printf.sprintf "linearizable (seed %d)" seed)
        true
        (Universal.Lin_check.check fifo_queue history))
    (List.init 12 (fun i -> i))

let universal_replicas_agree () =
  let open Universal.Seq_spec in
  let scripts = [| [ Enqueue 1 ]; [ Enqueue 2 ]; [ Dequeue ] |] in
  let r, sessions, _ = run_universal ~spec:fifo_queue ~scripts ~seed:5 in
  check Alcotest.int "all decided" 3 (Exec.decided_count r);
  (* After deciding, some replicas may lag (they stop consuming batches
     once their op is applied) — but applied prefixes must be
     consistent: one applied list is a suffix-extension of the other. *)
  let applied =
    Array.to_list sessions
    |> List.map (fun s -> Universal.Herlihy.batches_consumed s)
  in
  Alcotest.(check bool) "every session consumed >= 1 batch" true
    (List.for_all (fun b -> b >= 1) applied)

let universal_counter_fetch_add_atomic () =
  let open Universal.Seq_spec in
  let scripts = Array.make 3 [ Add 1; Add 1; Add 1 ] in
  List.iter
    (fun seed ->
      let r, _, codec = run_universal ~spec:counter ~scripts ~seed in
      check Alcotest.int "all decided" 3 (Exec.decided_count r);
      let previous =
        Exec.decided r |> List.concat_map (fun u -> codec.Codec.prj u)
      in
      (* 9 fetch&adds: the previous values must be exactly 0..8. *)
      check
        Alcotest.(list int)
        (Printf.sprintf "fetch&add previous values (seed %d)" seed)
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
        (List.sort compare previous))
    (List.init 12 (fun i -> i))

let universal_stack_sequential () =
  let open Universal.Seq_spec in
  let scripts = [| [ Push 1; Push 2; Pop; Pop; Pop ] |] in
  let r, _, codec = run_universal ~spec:lifo_stack ~scripts ~seed:1 in
  match Exec.decided r with
  | [ u ] ->
      Alcotest.(check (list (option int)))
        "LIFO order" [ None; None; Some 2; Some 1; None ] (codec.Codec.prj u)
  | _ -> Alcotest.fail "expected one result"

let universal_rmw () =
  let open Universal.Seq_spec in
  let scripts =
    [| [ Write 5; Compare_and_swap (5, 9); Read ]; [ Read ] |]
  in
  let r, _, codec = run_universal ~spec:rmw_register ~scripts ~seed:3 in
  check Alcotest.int "all decided" 2 (Exec.decided_count r);
  (match Exec.decided r with
  | [ u0; _ ] ->
      (match codec.Codec.prj u0 with
      | [ _; _; Some 9 ] -> ()
      | other ->
          Alcotest.fail
            (Printf.sprintf "p0 results wrong (%d entries)" (List.length other)))
  | _ -> Alcotest.fail "arity")

let universal_with_crash () =
  (* A crashed process must not wedge the object for others. *)
  let open Universal.Seq_spec in
  let scripts = [| [ Add 1; Add 1 ]; [ Add 1 ]; [ Add 1 ] |] in
  let n = 3 in
  let env = Env.create ~nprocs:n ~x:n () in
  let obj = Universal.Herlihy.make counter ~fam:"U" in
  let codec = Codec.list counter.res_codec in
  let prog pid =
    let session = Universal.Herlihy.session obj ~pid in
    let rec go acc = function
      | [] -> Prog.return (codec.Codec.inj (List.rev acc))
      | op :: rest ->
          let* res = Universal.Herlihy.invoke session op in
          go (res :: acc) rest
    in
    go [] scripts.(pid)
  in
  let adversary =
    Adversary.with_crashes
      (Adversary.random ~seed:9)
      [ Adversary.Crash_at_local { pid = 0; step = 4 } ]
  in
  let r = Exec.run ~budget:200_000 ~env ~adversary (Array.init n prog) in
  check Alcotest.int "survivors decide" 2 (Exec.decided_count r);
  check Alcotest.(list int) "nobody blocked" [] (Exec.blocked r)

(* ------------------------------------------------------------------ *)
(* The gallery: consensus from objects                                  *)
(* ------------------------------------------------------------------ *)

let gallery_agreement ~nprocs ~x ~allow_cas ~setup ~protocol ~label =
  List.iter
    (fun seed ->
      let env = Env.create ~nprocs ~x ~allow_cas () in
      setup env;
      let progs =
        Array.init nprocs (fun pid ->
            Prog.map Codec.int.Codec.inj (protocol ~pid (100 + pid)))
      in
      let r = Exec.run ~env ~adversary:(Adversary.random ~seed) progs in
      let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d" label seed)
        true
        (List.length ds = nprocs
        && List.for_all (fun d -> d = List.hd ds) ds
        && List.hd ds >= 100
        && List.hd ds < 100 + nprocs))
    (List.init 20 (fun i -> i))

let cons2_from_ts () =
  gallery_agreement ~nprocs:2 ~x:2 ~allow_cas:false
    ~setup:(fun _ -> ())
    ~protocol:(fun ~pid v ->
      Universal.From_objects.cons2_from_ts ~fam:"G" ~key:[] ~pid v)
    ~label:"2-consensus from test&set"

let cons2_from_queue () =
  gallery_agreement ~nprocs:2 ~x:2 ~allow_cas:false
    ~setup:(fun env -> Universal.From_objects.setup_queue env ~fam:"G" ~key:[])
    ~protocol:(fun ~pid v ->
      Universal.From_objects.cons2_from_queue ~fam:"G" ~key:[] ~pid v)
    ~label:"2-consensus from a queue"

let consn_from_cas () =
  gallery_agreement ~nprocs:5 ~x:1 ~allow_cas:true
    ~setup:(fun _ -> ())
    ~protocol:(fun ~pid v ->
      Universal.From_objects.consn_from_cas ~fam:"G" ~key:[] ~pid v)
    ~label:"n-consensus from compare&swap"

let cas_forbidden_without_flag () =
  let env = Env.create ~nprocs:2 ~x:2 () in
  let progs =
    Array.init 2 (fun pid ->
        Prog.map Codec.int.Codec.inj
          (Universal.From_objects.consn_from_cas ~fam:"G" ~key:[] ~pid pid))
  in
  Alcotest.(check bool) "CAS refused in finite-x model" true
    (match Exec.run ~env ~adversary:(Adversary.round_robin ()) progs with
    | (_ : Univ.t Exec.result) -> false
    | exception Env.Violation _ -> true)

let queue_semantics () =
  (* Direct sanity of the native queue: FIFO per interleaved history. *)
  let env = Env.create ~nprocs:1 ~x:2 () in
  let prog =
    let* () = Prog.queue_enq Codec.int "q" [] 1 in
    let* () = Prog.queue_enq Codec.int "q" [] 2 in
    let* a = Prog.queue_deq Codec.int "q" [] in
    let* b = Prog.queue_deq Codec.int "q" [] in
    let* c = Prog.queue_deq Codec.int "q" [] in
    Prog.return
      ((Codec.list (Codec.option Codec.int)).Codec.inj [ a; b; c ])
  in
  let r = Exec.run ~env ~adversary:(Adversary.round_robin ()) [| prog |] in
  match Exec.decided r with
  | [ u ] ->
      Alcotest.(check (list (option int)))
        "FIFO" [ Some 1; Some 2; None ]
        ((Codec.list (Codec.option Codec.int)).Codec.prj u)
  | _ -> Alcotest.fail "no result"

let suite =
  [
    ( "universal.lin_check",
      [
        Alcotest.test_case "accepts sequential" `Quick lin_accepts_sequential;
        Alcotest.test_case "accepts overlapping reorder" `Quick
          lin_accepts_concurrent_reorder;
        Alcotest.test_case "rejects wrong result" `Quick lin_rejects_wrong_result;
        Alcotest.test_case "respects real time" `Quick lin_respects_real_time;
        Alcotest.test_case "witness order" `Quick lin_witness_order;
      ] );
    ( "universal.construction",
      [
        Alcotest.test_case "queue linearizable" `Quick
          universal_queue_linearizable;
        Alcotest.test_case "replicas progress" `Quick universal_replicas_agree;
        Alcotest.test_case "fetch&add atomic" `Quick
          universal_counter_fetch_add_atomic;
        Alcotest.test_case "stack LIFO" `Quick universal_stack_sequential;
        Alcotest.test_case "rmw register" `Quick universal_rmw;
        Alcotest.test_case "crash tolerant" `Quick universal_with_crash;
      ] );
    ( "universal.gallery",
      [
        Alcotest.test_case "2-cons from test&set" `Quick cons2_from_ts;
        Alcotest.test_case "2-cons from queue" `Quick cons2_from_queue;
        Alcotest.test_case "n-cons from CAS" `Quick consn_from_cas;
        Alcotest.test_case "CAS needs the flag" `Quick cas_forbidden_without_flag;
        Alcotest.test_case "native queue FIFO" `Quick queue_semantics;
      ] );
  ]
