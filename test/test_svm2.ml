(* Second batch of svm unit tests: program combinators, queues,
   compare&swap, more adversary specs, and the report plumbing. *)

open Svm
open Svm.Prog.Syntax

let check = Alcotest.check

let run1 ?(x = 2) ?(allow_cas = false) prog =
  let env = Env.create ~nprocs:1 ~x ~allow_cas () in
  let r = Exec.run ~env ~adversary:(Adversary.round_robin ()) [| prog |] in
  match r.Exec.outcomes.(0) with
  | Exec.Decided v -> v
  | Exec.Crashed | Exec.Blocked | Exec.Stuck -> Alcotest.fail "did not decide"

(* ------------------------------------------------------------------ *)
(* Prog combinators                                                     *)
(* ------------------------------------------------------------------ *)

let prog_iter_order () =
  let prog =
    let* () =
      Prog.iter_list
        (fun v -> Prog.queue_enq Codec.int "q" [] v)
        [ 1; 2; 3; 4 ]
    in
    let* a = Prog.queue_deq Codec.int "q" [] in
    let* b = Prog.queue_deq Codec.int "q" [] in
    Prog.return (Codec.(pair (option int) (option int)).Codec.inj (a, b))
  in
  check
    Alcotest.(pair (option int) (option int))
    "iteration order preserved" (Some 1, Some 2)
    (Codec.(pair (option int) (option int)).Codec.prj (run1 prog))

let prog_fold () =
  let prog =
    let* sum =
      Prog.fold_list
        (fun acc v ->
          let* () = Prog.yield in
          Prog.return (acc + v))
        0 [ 1; 2; 3; 4; 5 ]
    in
    Prog.return (Codec.int.Codec.inj sum)
  in
  check Alcotest.int "fold sums" 15 (Codec.int.Codec.prj (run1 prog))

let prog_loop_state () =
  let prog =
    Prog.loop
      (fun n ->
        let* () = Prog.yield in
        if n >= 10 then Prog.return (`Stop (Codec.int.Codec.inj n))
        else Prog.return (`Again (n + 2)))
      0
  in
  check Alcotest.int "loop threads state" 10 (Codec.int.Codec.prj (run1 prog))

(* ------------------------------------------------------------------ *)
(* Queue and CAS semantics                                              *)
(* ------------------------------------------------------------------ *)

let queue_interleaved_no_duplicates () =
  (* 2 enqueuers x 3 values, 2 dequeuers x 3 pops: every popped value
     unique and was enqueued. *)
  List.iter
    (fun seed ->
      let env = Env.create ~nprocs:4 ~x:2 () in
      let enqueuer base =
        let* () =
          Prog.iter_list
            (fun v -> Prog.queue_enq Codec.int "q" [] v)
            [ base; base + 1; base + 2 ]
        in
        Prog.return ((Codec.list Codec.int).Codec.inj [])
      in
      let dequeuer =
        let rec go n acc =
          if n = 0 then Prog.return ((Codec.list Codec.int).Codec.inj acc)
          else
            let* v = Prog.queue_deq Codec.int "q" [] in
            match v with
            | Some v -> go (n - 1) (v :: acc)
            | None ->
                let* () = Prog.yield in
                go n acc
        in
        go 3 []
      in
      let r =
        Exec.run ~budget:10_000 ~env
          ~adversary:(Adversary.random ~seed)
          [| enqueuer 10; enqueuer 20; dequeuer; dequeuer |]
      in
      let popped =
        Exec.decided r
        |> List.concat_map (fun u -> (Codec.list Codec.int).Codec.prj u)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: no duplicates, all enqueued" seed)
        true
        (List.length (List.sort_uniq compare popped) = List.length popped
        && List.for_all (fun v -> List.mem v [ 10; 11; 12; 20; 21; 22 ]) popped))
    (List.init 15 (fun i -> i))

let queue_fifo_per_producer () =
  (* FIFO: one producer's values come out in order. *)
  let env = Env.create ~nprocs:1 ~x:2 () in
  let prog =
    let* () =
      Prog.iter_list (fun v -> Prog.queue_enq Codec.int "q" [] v) [ 7; 8; 9 ]
    in
    let* a = Prog.queue_deq Codec.int "q" [] in
    let* b = Prog.queue_deq Codec.int "q" [] in
    let* c = Prog.queue_deq Codec.int "q" [] in
    Prog.return
      ((Codec.list (Codec.option Codec.int)).Codec.inj [ a; b; c ])
  in
  let r = Exec.run ~env ~adversary:(Adversary.round_robin ()) [| prog |] in
  (match Exec.decided r with
  | [ u ] ->
      Alcotest.(check (list (option int)))
        "in order" [ Some 7; Some 8; Some 9 ]
        ((Codec.list (Codec.option Codec.int)).Codec.prj u)
  | _ -> Alcotest.fail "no result")

let cas_semantics () =
  let prog =
    let* ok1 = Prog.cas Codec.int "r" [] ~expected:None ~desired:5 in
    let* ok2 = Prog.cas Codec.int "r" [] ~expected:None ~desired:6 in
    let* ok3 = Prog.cas Codec.int "r" [] ~expected:(Some 5) ~desired:7 in
    let* v = Prog.reg_read Codec.int "r" [] in
    Prog.return
      ((Codec.list Codec.bool).Codec.inj [ ok1; ok2; ok3 ]
      |> fun l -> Codec.(pair any (option int)).Codec.inj (l, v))
  in
  let u = run1 ~allow_cas:true prog in
  let l, v = Codec.(pair any (option int)).Codec.prj u in
  check Alcotest.(list bool) "cas outcomes" [ true; false; true ]
    ((Codec.list Codec.bool).Codec.prj l);
  check Alcotest.(option int) "final value" (Some 7) v

(* ------------------------------------------------------------------ *)
(* Adversary specs                                                      *)
(* ------------------------------------------------------------------ *)

let counter_prog rounds =
  let rec go n =
    if n = rounds then Prog.return (Codec.int.Codec.inj n)
    else
      let* () = Prog.yield in
      go (n + 1)
  in
  go 0

let crash_at_global () =
  let env = Env.create ~nprocs:2 ~x:1 () in
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [ Adversary.Crash_at_global { pid = 1; step = 6 } ]
  in
  let r = Exec.run ~env ~adversary (Array.init 2 (fun _ -> counter_prog 10)) in
  check Alcotest.(list int) "p1 crashed" [ 1 ] r.Exec.crashed;
  Alcotest.(check bool) "p1 executed about 3 ops" true
    (r.Exec.op_counts.(1) <= 4)

let biased_still_fair () =
  let env = Env.create ~nprocs:3 ~x:1 () in
  let adversary = Adversary.biased ~seed:4 ~favourite:0 ~weight:8 in
  let r = Exec.run ~env ~adversary (Array.init 3 (fun _ -> counter_prog 20)) in
  check Alcotest.int "everyone decides under bias" 3 (Exec.decided_count r)

let crash_before_op_nth () =
  let env = Env.create ~nprocs:1 ~x:1 () in
  let prog =
    let* () = Prog.snap_set Codec.int "m" [] 1 in
    let* () = Prog.snap_set Codec.int "m" [] 2 in
    let* () = Prog.snap_set Codec.int "m" [] 3 in
    Prog.return (Codec.int.Codec.inj 0)
  in
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [
        Adversary.Crash_before_op
          { pid = 0; nth = 2; matches = (fun i -> i.Op.kind = Op.Snapshot) };
      ]
  in
  let r = Exec.run ~env ~adversary [| prog |] in
  check Alcotest.int "two writes landed" 2 r.Exec.op_counts.(0);
  (match Env.peek_snapshot env "m" [] with
  | Some a ->
      check Alcotest.(option int) "last write was 2" (Some 2)
        (Option.map Codec.int.Codec.prj a.(0))
  | None -> Alcotest.fail "no snapshot")

(* ------------------------------------------------------------------ *)
(* Report / registry plumbing                                           *)
(* ------------------------------------------------------------------ *)

let report_checks () =
  let c =
    Experiments.Report.check_eq ~label:"eq" ~pp:string_of_int ~expected:3
      ~actual:3
  in
  Alcotest.(check bool) "eq ok" true c.Experiments.Report.ok;
  let bad =
    Experiments.Report.check_eq ~label:"eq" ~pp:string_of_int ~expected:3
      ~actual:4
  in
  Alcotest.(check bool) "eq fail" false bad.Experiments.Report.ok;
  let rep =
    {
      Experiments.Report.id = "X";
      title = "t";
      paper = "p";
      metrics = [];
      checks = [ c ];
    }
  in
  Alcotest.(check bool) "all_ok" true (Experiments.Report.all_ok rep);
  Alcotest.(check bool) "markdown has table header" true
    (let md = Experiments.Report.to_markdown rep in
     String.length md > 0
     &&
     let contains_sub s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains_sub md "| check | status | measured |")

let registry_sane () =
  let ids = Experiments.Registry.ids () in
  Alcotest.(check bool) "at least 14 experiments" true (List.length ids >= 14);
  check Alcotest.int "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      Alcotest.(check bool) id true
        (Experiments.Registry.find id <> None))
    ids

let classes_table_text () =
  let t = Experiments.Exp_sec54.classes_table ~t':8 ~x_max:9 in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions ASM(n, 4, 1)" true
    (contains_sub t "ASM(n, 4, 1)");
  Alcotest.(check bool) "mentions x in {5, 6, 7, 8}" true
    (contains_sub t "{5, 6, 7, 8}")

let suite =
  [
    ( "svm.prog",
      [
        Alcotest.test_case "iter order" `Quick prog_iter_order;
        Alcotest.test_case "fold" `Quick prog_fold;
        Alcotest.test_case "loop state" `Quick prog_loop_state;
      ] );
    ( "svm.queue_cas",
      [
        Alcotest.test_case "interleaved queue" `Quick
          queue_interleaved_no_duplicates;
        Alcotest.test_case "fifo order" `Quick queue_fifo_per_producer;
        Alcotest.test_case "cas semantics" `Quick cas_semantics;
      ] );
    ( "svm.adversary2",
      [
        Alcotest.test_case "crash at global" `Quick crash_at_global;
        Alcotest.test_case "biased fairness" `Quick biased_still_fair;
        Alcotest.test_case "crash before nth op" `Quick crash_before_op_nth;
      ] );
    ( "plumbing",
      [
        Alcotest.test_case "report" `Quick report_checks;
        Alcotest.test_case "registry" `Quick registry_sane;
        Alcotest.test_case "classes table" `Quick classes_table_text;
      ] );
  ]
