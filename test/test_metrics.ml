(* The metrics registry (Svm.Metrics) and its JSON snapshots.

   - histogram bucket boundaries: powers-of-two edges, zero, negatives,
     max_int, and the bucket_of/bucket_lo round-trip;
   - counters/gauges find-or-create semantics;
   - snapshot determinism: two identical replays of the same decision
     log into fresh registries snapshot byte-identically (the rule that
     makes telemetry replay-comparable);
   - pay-for-what-you-use: the metrics-off path of Exec.run allocates
     exactly as much as another metrics-off run, and strictly less than
     the same run with a registry attached;
   - snapshots are valid JSON, and the wall-clock section appears only
     behind the explicit flag. *)

open Svm
open Svm.Prog.Syntax

(* ------------------------------------------------------------------ *)
(* Buckets                                                              *)
(* ------------------------------------------------------------------ *)

let test_bucket_edges () =
  Alcotest.(check int) "0 -> bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "negative -> bucket 0" 0 (Metrics.bucket_of (-17));
  Alcotest.(check int) "min_int -> bucket 0" 0 (Metrics.bucket_of min_int);
  Alcotest.(check int) "1 -> bucket 1" 1 (Metrics.bucket_of 1);
  (* Every power of two starts a new bucket; its predecessor ends one. *)
  for k = 1 to 61 do
    let v = 1 lsl k in
    Alcotest.(check int)
      (Printf.sprintf "2^%d opens bucket %d" k (k + 1))
      (k + 1) (Metrics.bucket_of v);
    Alcotest.(check int)
      (Printf.sprintf "2^%d - 1 closes bucket %d" k k)
      k
      (Metrics.bucket_of (v - 1))
  done;
  Alcotest.(check int) "max_int capped at last bucket" 62
    (Metrics.bucket_of max_int)

let test_bucket_lo () =
  Alcotest.(check int) "bucket 0 lo" 0 (Metrics.bucket_lo 0);
  for i = 1 to 62 do
    let lo = Metrics.bucket_lo i in
    Alcotest.(check int)
      (Printf.sprintf "bucket_lo %d round-trips" i)
      i (Metrics.bucket_of lo);
    if i > 1 then
      Alcotest.(check int)
        (Printf.sprintf "bucket_lo %d - 1 is previous bucket" i)
        (i - 1)
        (Metrics.bucket_of (lo - 1))
  done

let test_histogram_stats () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ 0; 1; 5; 1024; max_int ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count m "h");
  Alcotest.(check int) "sum" (0 + 1 + 5 + 1024 + max_int)
    (Metrics.histogram_sum m "h");
  match Metrics.histograms m with
  | [ ("h", ((count, _), (min_v, max_v), buckets)) ] ->
      Alcotest.(check int) "listed count" 5 count;
      Alcotest.(check int) "min" 0 min_v;
      Alcotest.(check int) "max" max_int max_v;
      Alcotest.(check (list (pair int int)))
        "non-empty buckets"
        [ (0, 1); (1, 1); (3, 1); (11, 1); (62, 1) ]
        buckets
  | l -> Alcotest.failf "unexpected histogram listing (%d entries)" (List.length l)

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                  *)
(* ------------------------------------------------------------------ *)

let test_counters_gauges () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "c");
  Metrics.incr ~by:41 (Metrics.counter m "c");
  Alcotest.(check int) "find-or-create accumulates" 42
    (Metrics.counter_value m "c");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.counter_value m "zz");
  let g = Metrics.gauge m "g" in
  Metrics.set g 7;
  Metrics.set_max g 3;
  Alcotest.(check int) "set_max keeps max" 7 (Metrics.gauge_value m "g");
  Metrics.set_max g 12;
  Alcotest.(check int) "set_max raises" 12 (Metrics.gauge_value m "g");
  Metrics.reset m;
  Alcotest.(check int) "reset clears" 0 (Metrics.counter_value m "c")

(* ------------------------------------------------------------------ *)
(* Snapshot determinism across identical replays                        *)
(* ------------------------------------------------------------------ *)

let sa_make () =
  let env = Env.create ~nprocs:3 ~x:1 () in
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let prog i =
    let* () =
      Shared_objects.Safe_agreement.propose sa ~key:[] (Codec.int.Codec.inj i)
    in
    Shared_objects.Safe_agreement.decide sa ~key:[]
  in
  (env, Array.init 3 prog)

let test_snapshot_determinism () =
  (* Record one run's decision log, then replay it twice into two fresh
     registries: the snapshots must be byte-identical. *)
  let env, progs = sa_make () in
  let r =
    Exec.run ~record_trace:true ~env ~adversary:(Adversary.random ~seed:7) progs
  in
  let decisions =
    match r.Exec.trace with
    | Some t -> Trace.decisions t
    | None -> Alcotest.fail "no trace recorded"
  in
  let snap () =
    let m = Metrics.create () in
    (match Explore.replay ~metrics:m ~make:sa_make ~monitors:(fun () -> []) decisions with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "healthy replay violated");
    Metrics.snapshot_string m
  in
  let s1 = snap () and s2 = snap () in
  Alcotest.(check string) "byte-identical snapshots" s1 s2;
  Alcotest.(check bool) "snapshot is non-trivial" true (String.length s1 > 100)

let test_sweep_metrics_accounting () =
  let m = Metrics.create () in
  let beats = ref 0 in
  let outcome =
    Explore.sweep_crashes ~max_crashes:1 ~op_window:2 ~max_runs:50 ~metrics:m
      ~on_progress:(fun ~runs:_ -> incr beats)
      ~make:sa_make
      ~monitors:(fun () -> [ Monitor.agreement () ])
      ()
  in
  Alcotest.(check int) "sweep.runs counts every run" outcome.Explore.runs
    (Metrics.counter_value m "sweep.runs");
  Alcotest.(check int) "heartbeat fired once per run" outcome.Explore.runs
    !beats;
  Alcotest.(check int)
    "verdicts partition the runs" outcome.Explore.runs
    (Metrics.counter_value m "sweep.verdict.clean"
    + Metrics.counter_value m "sweep.verdict.deadlocked"
    + Metrics.counter_value m "sweep.verdict.violating")

(* ------------------------------------------------------------------ *)
(* Pay-for-what-you-use                                                 *)
(* ------------------------------------------------------------------ *)

let allocated f =
  let before = Gc.allocated_bytes () in
  f ();
  Gc.allocated_bytes () -. before

let test_metrics_off_allocates_nothing_extra () =
  let run metrics () =
    let env, progs = sa_make () in
    ignore
      (Exec.run ?metrics ~env ~adversary:(Adversary.round_robin ()) progs)
  in
  (* Warm up so one-time allocations (closures under the hood of the
     first run) don't pollute the measurement. *)
  run None ();
  run (Some (Metrics.create ())) ();
  let off1 = allocated (run None) in
  let off2 = allocated (run None) in
  let on_ = allocated (run (Some (Metrics.create ()))) in
  Alcotest.(check (float 0.0))
    "metrics-off runs allocate identically (no hidden per-op state)" off1 off2;
  Alcotest.(check bool)
    (Printf.sprintf
       "metrics-on allocates strictly more (off %.0fB vs on %.0fB)" off1 on_)
    true (on_ > off1)

(* ------------------------------------------------------------------ *)
(* Snapshot JSON shape                                                  *)
(* ------------------------------------------------------------------ *)

let test_snapshot_json () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "a.b");
  Metrics.observe (Metrics.histogram m "h") 5;
  let s = Metrics.snapshot_string ~pretty:true m in
  match Json.of_string s with
  | Error e -> Alcotest.failf "snapshot is not JSON: %s" e
  | Ok j ->
      Alcotest.(check (option int))
        "counter survives the round-trip" (Some 1)
        (Option.bind (Json.member "counters" j) (fun c ->
             Option.bind (Json.member "a.b" c) Json.to_int));
      Alcotest.(check bool)
        "no wall section without the flag" true
        (Json.member "wall" j = None)

let test_snapshot_wall_flag () =
  let m = Metrics.create ~wall_clock:true () in
  Metrics.incr (Metrics.counter m "c");
  match Json.of_string (Metrics.snapshot_string m) with
  | Error e -> Alcotest.failf "snapshot is not JSON: %s" e
  | Ok j ->
      Alcotest.(check bool)
        "wall section present behind the flag" true
        (Json.member "wall" j <> None)

(* ------------------------------------------------------------------ *)
(* Merge algebra and snapshot decoding                                  *)
(* ------------------------------------------------------------------ *)

(* A registry with enough shape to make merge order matter if merge were
   wrong: shared and disjoint counters, a max-tracked gauge, a histogram
   spanning several buckets including the <= 0 bucket. *)
let reg_of seed =
  let m = Metrics.create () in
  Metrics.incr ~by:(seed + 3) (Metrics.counter m "c.shared");
  Metrics.incr (Metrics.counter m (Printf.sprintf "c.only%d" seed));
  Metrics.set_max (Metrics.gauge m "g.peak") (10 * seed);
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ -seed; 0; seed; seed * seed; 1 lsl seed ];
  m

let snap = Metrics.snapshot_string

let test_merge_commutative () =
  let ab =
    let x = reg_of 1 in
    Metrics.merge ~into:x (reg_of 2);
    snap x
  in
  let ba =
    let x = reg_of 2 in
    Metrics.merge ~into:x (reg_of 1);
    snap x
  in
  Alcotest.(check string) "a+b = b+a" ab ba

let test_merge_associative () =
  let left =
    (* (a+b)+c *)
    let x = reg_of 1 in
    Metrics.merge ~into:x (reg_of 2);
    Metrics.merge ~into:x (reg_of 5);
    snap x
  in
  let right =
    (* a+(b+c) *)
    let bc = reg_of 2 in
    Metrics.merge ~into:bc (reg_of 5);
    let x = reg_of 1 in
    Metrics.merge ~into:x bc;
    snap x
  in
  Alcotest.(check string) "(a+b)+c = a+(b+c)" left right

let test_merge_sharded_identity () =
  (* The fleet invariant behind `asmsim top': the same 100 observations
     dealt to 1, 2 or 4 worker registries fold into byte-identical
     snapshots. *)
  let observe m i =
    Metrics.incr (Metrics.counter m "ops");
    Metrics.observe (Metrics.histogram m "latency") (i * 7 mod 113);
    Metrics.set_max (Metrics.gauge m "peak") i
  in
  let folded jobs =
    let regs = Array.init jobs (fun _ -> Metrics.create ()) in
    for i = 0 to 99 do
      observe regs.(i mod jobs) i
    done;
    let into = Metrics.create () in
    Array.iter (fun r -> Metrics.merge ~into r) regs;
    snap into
  in
  let s1 = folded 1 in
  Alcotest.(check string) "jobs=2 folds identically" s1 (folded 2);
  Alcotest.(check string) "jobs=4 folds identically" s1 (folded 4)

let test_of_snapshot_roundtrip () =
  let m = reg_of 4 in
  let s = Metrics.snapshot m in
  match Metrics.of_snapshot s with
  | Error e -> Alcotest.failf "of_snapshot rejected its own format: %s" e
  | Ok m2 ->
      Alcotest.(check string)
        "snapshot -> registry -> snapshot is byte-identical"
        (Json.to_string s)
        (snap m2);
      (* The wire path: decode a worker push, merge it — same result as
         merging the original registry. *)
      let direct =
        let x = reg_of 7 in
        Metrics.merge ~into:x m;
        snap x
      in
      let via_wire =
        let x = reg_of 7 in
        Metrics.merge ~into:x m2;
        snap x
      in
      Alcotest.(check string) "decoded registries merge like originals"
        direct via_wire

let test_of_snapshot_rejects_garbage () =
  let bad json =
    match Metrics.of_snapshot json with
    | Ok _ -> Alcotest.fail "garbage snapshot accepted"
    | Error _ -> ()
  in
  bad (Json.Obj [ ("counters", Json.List []) ]);
  bad (Json.Obj [ ("counters", Json.Obj [ ("c", Json.String "no") ]) ]);
  bad
    (Json.Obj
       [ ("histograms", Json.Obj [ ("h", Json.Obj [ ("count", Json.Int 1) ]) ]) ]);
  (* An empty object is a valid (empty) snapshot. *)
  match Metrics.of_snapshot (Json.Obj []) with
  | Ok m -> Alcotest.(check string) "empty decodes empty" (snap (Metrics.create ())) (snap m)
  | Error e -> Alcotest.failf "empty snapshot rejected: %s" e

let suite =
  [
    ( "metrics",
      [
        Alcotest.test_case "histogram bucket edges" `Quick test_bucket_edges;
        Alcotest.test_case "bucket_lo round-trip" `Quick test_bucket_lo;
        Alcotest.test_case "histogram stats and listing" `Quick
          test_histogram_stats;
        Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
        Alcotest.test_case "replay snapshots byte-identical" `Quick
          test_snapshot_determinism;
        Alcotest.test_case "sweep accounting and heartbeat" `Quick
          test_sweep_metrics_accounting;
        Alcotest.test_case "metrics-off path allocates no per-op state" `Quick
          test_metrics_off_allocates_nothing_extra;
        Alcotest.test_case "snapshot JSON shape" `Quick test_snapshot_json;
        Alcotest.test_case "wall section only behind the flag" `Quick
          test_snapshot_wall_flag;
        Alcotest.test_case "merge is commutative" `Quick test_merge_commutative;
        Alcotest.test_case "merge is associative" `Quick test_merge_associative;
        Alcotest.test_case "sharded folds are byte-identical (jobs=1/2/4)"
          `Quick test_merge_sharded_identity;
        Alcotest.test_case "of_snapshot round-trips and merges" `Quick
          test_of_snapshot_roundtrip;
        Alcotest.test_case "of_snapshot is total on garbage" `Quick
          test_of_snapshot_rejects_garbage;
      ] );
  ]
