(* The parallel explorer's determinism contract, and the copy-free
   machinery under it: jobs ∈ {1, 2, 4, 8} must produce identical
   results and byte-identical merged metrics; the shared visited and
   interning tables must stay linearizable under concurrent insert
   storms; the undo journal must restore the exact pre-checkpoint
   state; canonical fingerprints must not depend on instance creation
   order; dedup must never change a verdict. *)

open Svm
open Svm.Prog.Syntax

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* jobs determinism on the seeded bugs                                  *)
(* ------------------------------------------------------------------ *)

let scenario name =
  match Experiments.Scenario.find name with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* [oversubscribe] so the multi-domain code paths really run even on a
   single-core CI host (Par.run otherwise caps jobs at the machine). *)
let run_jobs ~jobs ~max_crashes (s : Experiments.Scenario.t) =
  let metrics = Metrics.create ~wall_clock:false () in
  let r =
    Explore.exhaustive ~jobs ~oversubscribe:true ~max_crashes
      ~max_steps:s.Experiments.Scenario.explore_steps ~metrics
      ~make:s.Experiments.Scenario.make
      ~property:s.Experiments.Scenario.exhaustive_property ()
  in
  (r, Metrics.snapshot_string metrics)

let cex_repr = function
  | None -> "none"
  | Some (run, msg) ->
      Printf.sprintf "%s | %s | crashed=[%s] | truncated=%b"
        run.Explore.schedule msg
        (String.concat ";" (List.map string_of_int run.Explore.crashed))
        run.Explore.truncated

let same_results label ((r1 : Univ.t Explore.result), m1) (r2, m2) =
  check Alcotest.int (label ^ ": explored") r1.Explore.explored
    r2.Explore.explored;
  check Alcotest.int (label ^ ": pruned states") r1.Explore.pruned_states
    r2.Explore.pruned_states;
  check Alcotest.int (label ^ ": pruned commutes") r1.Explore.pruned_commutes
    r2.Explore.pruned_commutes;
  check Alcotest.int (label ^ ": pruned source") r1.Explore.pruned_source
    r2.Explore.pruned_source;
  Alcotest.(check bool)
    (label ^ ": exhausted")
    r1.Explore.exhausted_budget r2.Explore.exhausted_budget;
  check Alcotest.string
    (label ^ ": counterexample")
    (cex_repr r1.Explore.counterexample)
    (cex_repr r2.Explore.counterexample);
  check Alcotest.string (label ^ ": metrics snapshot") m1 m2

let jobs_determinism ~name ~max_crashes ~expect_cex () =
  let s = scenario name in
  let ((base_r, _) as base) = run_jobs ~jobs:1 ~max_crashes s in
  List.iter
    (fun jobs ->
      same_results
        (Printf.sprintf "%s jobs=%d" name jobs)
        base
        (run_jobs ~jobs ~max_crashes s))
    [ 2; 4; 8 ];
  if expect_cex then
    Alcotest.(check bool)
      (name ^ ": seeded bug found")
      true
      (base_r.Explore.counterexample <> None)

let no_cancel_jobs () =
  jobs_determinism ~name:"safe_agreement_no_cancel" ~max_crashes:0
    ~expect_cex:true ()

let first_subset_jobs () =
  (* Crash branching included: the first-subset bug's exploration at its
     default depth must merge identically at any job count. *)
  jobs_determinism ~name:"x_safe_agreement_first_subset" ~max_crashes:1
    ~expect_cex:false ()

(* A deliberately lopsided tree — one process with a long write chain,
   two with a single op each — so the DFS spends most of its time in
   one subtree and a starving sibling domain can only make progress by
   stealing deep inside it. The merged result must still be identical
   at every job count. *)
let skewed_make () =
  let env = Env.create ~nprocs:3 ~x:1 () in
  let writes fam n =
    let rec go i =
      if i > n then Prog.return (Codec.int.Codec.inj i)
      else
        let* () = Prog.reg_write Codec.int fam [ i ] i in
        go (i + 1)
    in
    go 1
  in
  (env, [| writes "A" 9; writes "B" 1; writes "C" 1 |])

let skewed_steals () =
  let run jobs =
    let metrics = Metrics.create ~wall_clock:false () in
    let r =
      Explore.exhaustive ~jobs ~oversubscribe:true ~max_steps:12
        ~metrics ~make:skewed_make
        ~property:(fun _ -> Ok ())
        ()
    in
    (r, Metrics.snapshot_string metrics)
  in
  let ((base_r, _) as base) = run 1 in
  Alcotest.(check bool) "skewed tree explored" true (base_r.Explore.explored > 0);
  List.iter
    (fun jobs -> same_results (Printf.sprintf "skewed jobs=%d" jobs) base
        (run jobs))
    [ 2; 8 ]

(* ------------------------------------------------------------------ *)
(* undo-journal rollback property                                       *)
(* ------------------------------------------------------------------ *)

(* A small alphabet over every journaled op kind: two families, two
   keys, values and pids derived from the code, nothing that needs
   allow_cas/allow_kset or an oracle handler. *)
let apply_op env code =
  let pid = (code lsr 5) land 1 in
  (* The family name carries the op kind (the environment enforces one
     kind per (fam, key)) plus one variation bit; two keys per family. *)
  let fam =
    (match code mod 8 with
    | 0 | 1 -> "R"
    | 2 | 3 -> "S"
    | 4 -> "T"
    | 5 -> "C"
    | _ -> "Q")
    ^ if code land 1 = 0 then "a" else "b"
  in
  let key = [ (code lsr 1) land 1 ] in
  let v = Codec.int.Codec.inj (code lsr 3) in
  match code mod 8 with
  | 0 -> Env.apply env ~pid (Op.Reg_write (fam, key, v))
  | 1 -> ignore (Env.apply env ~pid (Op.Reg_read (fam, key)))
  | 2 -> Env.apply env ~pid (Op.Snap_set (fam, key, v))
  | 3 -> ignore (Env.apply env ~pid (Op.Snap_scan (fam, key)))
  | 4 -> ignore (Env.apply env ~pid (Op.Ts (fam, key)))
  | 5 -> ignore (Env.apply env ~pid (Op.Cons_propose (fam, key, v)))
  | 6 -> Env.apply env ~pid (Op.Queue_enq (fam, key, v))
  | _ -> ignore (Env.apply env ~pid (Op.Queue_deq (fam, key)))

let undo_log_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"journal rollback restores the exact pre-checkpoint state"
    QCheck.(pair (list (int_bound 2048)) (list (int_bound 2048)))
    (fun (prefix, suffix) ->
      let env = Env.create ~nprocs:2 ~x:2 () in
      Env.enable_journal env;
      List.iter (apply_op env) prefix;
      let cp = Env.checkpoint env in
      List.iter (apply_op env) suffix;
      Env.rollback env cp;
      let fresh = Env.create ~nprocs:2 ~x:2 () in
      List.iter (apply_op fresh) prefix;
      Env.observationally_equal env fresh
      && Env.state_hash env = Env.state_hash fresh)

(* ------------------------------------------------------------------ *)
(* canonical fingerprints vs. instance creation order                   *)
(* ------------------------------------------------------------------ *)

let prewarm_hash_stable () =
  let infos =
    [
      { Op.kind = Op.Register; fam = "R"; key = [ 0 ] };
      { Op.kind = Op.Snapshot; fam = "S"; key = [] };
      { Op.kind = Op.Queue; fam = "Q"; key = [ 1 ] };
    ]
  in
  let w_reg env =
    Env.apply env ~pid:0 (Op.Reg_write ("R", [ 0 ], Codec.int.Codec.inj 7))
  in
  let w_snap env =
    Env.apply env ~pid:1 (Op.Snap_set ("S", [], Codec.int.Codec.inj 9))
  in
  let w_q env =
    Env.apply env ~pid:0 (Op.Queue_enq ("Q", [ 1 ], Codec.int.Codec.inj 3))
  in
  let build ~warm order =
    let env = Env.create ~nprocs:2 ~x:2 () in
    if warm then Env.prewarm env infos;
    List.iter (fun f -> f env) order;
    Env.state_hash env
  in
  let h0 = build ~warm:true [ w_reg; w_snap; w_q ] in
  List.iter
    (fun order ->
      check Alcotest.int "permuted access order, same fingerprint" h0
        (build ~warm:true order))
    [ [ w_snap; w_q; w_reg ]; [ w_q; w_reg; w_snap ]; [ w_snap; w_reg; w_q ] ];
  check Alcotest.int "prewarm does not change the fingerprint" h0
    (build ~warm:false [ w_q; w_snap; w_reg ]);
  check Alcotest.int "untouched prewarmed instances are dropped"
    (build ~warm:false []) (build ~warm:true [])

(* ------------------------------------------------------------------ *)
(* shared-table linearizability under insert storms                     *)
(* ------------------------------------------------------------------ *)

(* Four domains (oversubscribed on small hosts) hammer one table with
   overlapping key sets, each domain starting at a different rotation
   so the same keys race in different orders. Linearizability of
   insert-if-absent says exactly one call per distinct key may report a
   miss, whatever the interleaving; tiny tables force long chains and
   bucket CAS retries. *)
let storm_keys = QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 30))

let visited_linearizable =
  QCheck.Test.make ~count:40
    ~name:"shared visited: one miss per distinct key under domain storms"
    storm_keys
    (fun keys ->
      let tbl = Visited.create ~buckets:16 () in
      let keys = Array.of_list keys in
      let n = Array.length keys in
      let ndom = 4 in
      let stats = Array.init ndom (fun _ -> Visited.fresh_stats ()) in
      let doms =
        Array.init ndom (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to n - 1 do
                  let k = keys.((i + d) mod n) in
                  ignore
                    (Visited.seen_or_add tbl ~hash:(Hashtbl.hash k) k
                       stats.(d))
                done))
      in
      Array.iter Domain.join doms;
      let distinct =
        List.length (List.sort_uniq compare (Array.to_list keys))
      in
      let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
      sum (fun s -> s.Visited.misses) = distinct
      && sum (fun s -> s.Visited.hits) = (ndom * n) - distinct
      && Visited.distinct tbl = distinct)

let intern_linearizable =
  QCheck.Test.make ~count:40
    ~name:"intern: racing domains agree on every id" storm_keys
    (fun keys ->
      let t = Visited.Intern.create ~buckets:16 () in
      let keys = Array.of_list keys in
      let n = Array.length keys in
      let ndom = 4 in
      let ids = Array.make ndom [||] in
      let doms =
        Array.init ndom (fun d ->
            Domain.spawn (fun () ->
                ids.(d) <-
                  Array.init n (fun i ->
                      let k = keys.((i + d) mod n) in
                      (k, Visited.Intern.id t ~hash:(Hashtbl.hash k) k))))
      in
      Array.iter Domain.join doms;
      let all = Array.to_list ids |> Array.concat |> Array.to_list in
      (* Every domain's view: id equality iff key equality, and a later
         uncontended lookup returns the already-published id. *)
      List.for_all
        (fun (k1, i1) ->
          List.for_all (fun (k2, i2) -> (k1 = k2) = (i1 = i2)) all)
        all
      && List.for_all
           (fun (k, i) -> Visited.Intern.id t ~hash:(Hashtbl.hash k) k = i)
           all)

(* ------------------------------------------------------------------ *)
(* dedup never changes a verdict                                        *)
(* ------------------------------------------------------------------ *)

let dedup_verdict_parity () =
  Experiments.Scenario.all ()
  |> List.iter (fun (s : Experiments.Scenario.t) ->
         if s.Experiments.Scenario.explorable then begin
           (* Full enumeration bound: keep the dedup-off run cheap for
              the wider scenarios without losing the seeded-bug depths
              of the 2-process ones. *)
           let max_steps =
             min s.Experiments.Scenario.explore_steps
               (if s.Experiments.Scenario.nprocs >= 4 then 8 else 10)
           in
           let run dedup =
             Explore.exhaustive ~dedup ~max_steps
               ~make:s.Experiments.Scenario.make
               ~property:s.Experiments.Scenario.exhaustive_property ()
           in
           let verdict (r : Univ.t Explore.result) =
             match r.Explore.counterexample with
             | None -> "ok"
             | Some (_, msg) -> "cex: " ^ msg
           in
           check Alcotest.string
             (s.Experiments.Scenario.name ^ ": dedup preserves the verdict")
             (verdict (run false))
             (verdict (run true))
         end)

let suite =
  [
    ( "explore-par",
      [
        Alcotest.test_case "no_cancel: jobs 1/2/4/8 identical" `Quick
          no_cancel_jobs;
        Alcotest.test_case "first_subset: jobs 1/2/4/8 identical" `Quick
          first_subset_jobs;
        Alcotest.test_case "skewed tree: steal-heavy jobs identical" `Quick
          skewed_steals;
        Alcotest.test_case "canonical hash ignores creation order" `Quick
          prewarm_hash_stable;
        Alcotest.test_case "dedup on/off verdict parity" `Quick
          dedup_verdict_parity;
        QCheck_alcotest.to_alcotest visited_linearizable;
        QCheck_alcotest.to_alcotest intern_linearizable;
        QCheck_alcotest.to_alcotest undo_log_roundtrip;
      ] );
  ]
