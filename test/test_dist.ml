(* The distributed runner's whole contract in three claims:

   1. identity — a --dist run's outcome, replay artifact and metrics
      snapshot are byte-identical to the in-process run's, at any
      worker count;
   2. crash-tolerance — SIGKILLing workers mid-run changes nothing but
      the stats (the shard is re-dealt; shards that keep killing
      workers are reported hostile, not retried forever);
   3. resumability — a coordinator stopped mid-job restarts from its
      journal without re-running completed shards.

   Workers are real forked processes of the real binary (dune's [deps]
   places ../bin/asmsim.exe next to this test's cwd). *)

open Svm

let check = Alcotest.check
let exe = "../bin/asmsim.exe"

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let scenario name =
  match Experiments.Scenario.find name with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let config ?(workers = 2) ?shard_size ?journal_dir ?resume ?chaos ?stop_after
    ?(max_retries = 2) () =
  let base = Dist.Coordinator.default_config ~workers ~exe () in
  {
    base with
    Dist.Coordinator.shard_size;
    journal_dir;
    resume;
    chaos_kill_shard = chaos;
    stop_after_shards = stop_after;
    max_retries;
    backoff = 0.01;
  }

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "asmsim-dist-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* ------------------------------------------------------------------ *)
(* sweep identity                                                       *)
(* ------------------------------------------------------------------ *)

let sweep_repr (o : Explore.sweep_outcome) =
  let found =
    match o.Explore.found with
    | None -> "none"
    | Some f ->
        Format.asprintf "%a >> %a | %s@%d | shrink=%d | artifact=<<%s>>"
          Explore.pp_fault_schedule f.Explore.fault Explore.pp_fault_schedule
          f.Explore.shrunk f.Explore.violation.Monitor.monitor
          f.Explore.violation.Monitor.step f.Explore.shrink_runs
          f.Explore.replay
  in
  let deadlock =
    match o.Explore.deadlock with
    | None -> "none"
    | Some d -> Format.asprintf "%a" Explore.pp_fault_schedule d
  in
  Printf.sprintf "runs=%d exhausted=%b deadlock=%s found=%s" o.Explore.runs
    o.Explore.exhausted deadlock found

let sweep_inproc s =
  let metrics = Metrics.create ~wall_clock:false () in
  let o = Experiments.Harness.sweep_scenario ~metrics s in
  (sweep_repr o, Metrics.snapshot_string metrics)

let sweep_dist cfg s =
  let metrics = Metrics.create ~wall_clock:false () in
  match Experiments.Harness.sweep_scenario_dist ~metrics cfg s with
  | Error m -> Alcotest.failf "dist sweep failed: %s" m
  | Ok (Dist.Coordinator.Suspended _, _) ->
      Alcotest.fail "dist sweep suspended unexpectedly"
  | Ok (Dist.Coordinator.Complete o, stats) ->
      ((sweep_repr o, Metrics.snapshot_string metrics), stats)

let sweep_identity name () =
  let s = scenario name in
  let base = sweep_inproc s in
  List.iter
    (fun workers ->
      let got, _ =
        sweep_dist (config ~workers ~shard_size:7 ()) s
      in
      let label p = Printf.sprintf "%s, %d workers: %s" name workers p in
      check Alcotest.string (label "outcome + artifact") (fst base) (fst got);
      check Alcotest.string (label "metrics snapshot") (snd base) (snd got))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* explore identity                                                     *)
(* ------------------------------------------------------------------ *)

let explore_repr (r : Univ.t Explore.result) =
  let cex =
    match r.Explore.counterexample with
    | None -> "none"
    | Some (run, msg) ->
        Printf.sprintf "%s | %s | crashed=[%s] | truncated=%b"
          run.Explore.schedule msg
          (String.concat ";" (List.map string_of_int run.Explore.crashed))
          run.Explore.truncated
  in
  Printf.sprintf "explored=%d pruned=%d+%d exhausted=%b cex=%s"
    r.Explore.explored r.Explore.pruned_states r.Explore.pruned_commutes
    r.Explore.exhausted_budget cex

let explore_inproc ~max_crashes s =
  let metrics = Metrics.create ~wall_clock:false () in
  match Experiments.Harness.explore_scenario ~max_crashes ~metrics s with
  | Error m -> Alcotest.fail m
  | Ok r -> (explore_repr r, Metrics.snapshot_string metrics)

let explore_dist ~max_crashes cfg s =
  let metrics = Metrics.create ~wall_clock:false () in
  match Experiments.Harness.explore_scenario_dist ~max_crashes ~metrics cfg s with
  | Error m -> Alcotest.failf "dist explore failed: %s" m
  | Ok (Dist.Coordinator.Suspended _, _) ->
      Alcotest.fail "dist explore suspended unexpectedly"
  | Ok (Dist.Coordinator.Complete r, stats) ->
      ((explore_repr r, Metrics.snapshot_string metrics), stats)

let explore_identity name ~max_crashes () =
  let s = scenario name in
  let base = explore_inproc ~max_crashes s in
  List.iter
    (fun workers ->
      let got, _ =
        explore_dist ~max_crashes (config ~workers ~shard_size:9 ()) s
      in
      let label p = Printf.sprintf "%s, %d workers: %s" name workers p in
      check Alcotest.string (label "result") (fst base) (fst got);
      check Alcotest.string (label "metrics snapshot") (snd base) (snd got))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* crash-tolerance                                                      *)
(* ------------------------------------------------------------------ *)

let chaos_identical () =
  let s = scenario "safe_agreement_no_cancel" in
  let base = sweep_inproc s in
  let got, stats =
    sweep_dist (config ~shard_size:7 ~chaos:(0, 1) ()) s
  in
  check Alcotest.string "outcome despite a SIGKILLed worker" (fst base)
    (fst got);
  check Alcotest.string "metrics despite a SIGKILLed worker" (snd base)
    (snd got);
  Alcotest.(check bool) "a worker really was killed" true
    (stats.Dist.Coordinator.killed >= 1);
  Alcotest.(check bool) "the shard really was reassigned" true
    (stats.Dist.Coordinator.reassigned >= 1);
  Alcotest.(check bool) "a replacement worker was spawned" true
    (stats.Dist.Coordinator.spawned >= 3)

let chaos_explore_identical () =
  let s = scenario "safe_agreement_no_cancel" in
  let base = explore_inproc ~max_crashes:1 s in
  let got, stats =
    explore_dist ~max_crashes:1
      (config ~shard_size:9 ~chaos:(1, 1) ())
      s
  in
  check Alcotest.string "explore outcome despite a SIGKILLed worker"
    (fst base) (fst got);
  check Alcotest.string "explore metrics despite a SIGKILLed worker"
    (snd base) (snd got);
  Alcotest.(check bool) "a worker really was killed" true
    (stats.Dist.Coordinator.killed >= 1)

let hostile_shard () =
  let s = scenario "safe_agreement_no_cancel" in
  match
    Experiments.Harness.sweep_scenario_dist
      (config ~shard_size:7 ~chaos:(0, 99) ~max_retries:1 ())
      s
  with
  | Ok _ -> Alcotest.fail "a shard that kills every worker must not succeed"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions hostility: %S" m)
        true (contains_sub m "hostile")

(* ------------------------------------------------------------------ *)
(* resume from the journal                                              *)
(* ------------------------------------------------------------------ *)

let resume_no_rerun () =
  let s = scenario "safe_agreement_no_cancel" in
  let dir = fresh_dir () in
  let base = sweep_inproc s in
  (* Session 1: journal on, stop after a single shard result. *)
  let metrics1 = Metrics.create ~wall_clock:false () in
  let id, first_executed =
    match
      Experiments.Harness.sweep_scenario_dist ~metrics:metrics1
        (config ~shard_size:7 ~journal_dir:dir
           ~stop_after:1 ())
        s
    with
    | Error m -> Alcotest.failf "session 1 failed: %s" m
    | Ok (Dist.Coordinator.Complete _, _) ->
        Alcotest.fail "session 1 was supposed to suspend"
    | Ok (Dist.Coordinator.Suspended id, stats) ->
        (id, stats.Dist.Coordinator.executed)
  in
  check Alcotest.int "session 1 executed exactly one shard" 1 first_executed;
  (* Session 2: resume; finished shards restored, not re-run. *)
  let got, stats =
    sweep_dist
      (config ~shard_size:7 ~journal_dir:dir ~resume:id ())
      s
  in
  check Alcotest.int "session 2 restored session 1's shard" first_executed
    stats.Dist.Coordinator.resumed;
  Alcotest.(check bool)
    "session 2 did not re-run the restored shard" true
    (stats.Dist.Coordinator.executed + stats.Dist.Coordinator.resumed
    <= stats.Dist.Coordinator.shards);
  check Alcotest.string "resumed outcome identical to in-process" (fst base)
    (fst got);
  check Alcotest.string "resumed metrics identical to in-process" (snd base)
    (snd got)

let resume_rejects_other_job () =
  let s = scenario "safe_agreement_no_cancel" in
  let dir = fresh_dir () in
  let id =
    match
      Experiments.Harness.sweep_scenario_dist
        (config ~shard_size:7 ~journal_dir:dir
           ~stop_after:1 ())
        s
    with
    | Ok (Dist.Coordinator.Suspended id, _) -> id
    | _ -> Alcotest.fail "setup run was supposed to suspend"
  in
  (* Same id, different parameters: the fingerprint check must refuse. *)
  match
    Experiments.Harness.sweep_scenario_dist ~max_faults:2
      (config ~shard_size:7 ~journal_dir:dir ~resume:id ())
      s
  with
  | Ok _ -> Alcotest.fail "resume under different parameters must fail"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions the mismatch: %S" m)
        true
        (contains_sub m "different job")

(* ------------------------------------------------------------------ *)
(* retry/heartbeat policy — the pure decisions behind both the fork
   coordinator and the TCP queue, pinned exactly                        *)
(* ------------------------------------------------------------------ *)

let policy_backoff_schedule () =
  (* attempt k re-deals after base * 2^(k-1): the documented schedule,
     value by value. *)
  List.iter
    (fun (attempt, expect) ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "delay before attempt %d" attempt)
        expect
        (Dist.Policy.backoff_delay ~base:0.05 ~attempt))
    [ (0, 0.); (1, 0.05); (2, 0.1); (3, 0.2); (4, 0.4); (5, 0.8) ];
  match Dist.Policy.retry ~max_retries:3 ~base:0.05 ~attempts:2 with
  | Dist.Policy.Requeue d -> check (Alcotest.float 1e-9) "requeue delay" 0.1 d
  | Dist.Policy.Hostile -> Alcotest.fail "attempt 2 of 3 must requeue"

let policy_hostile_after_k_plus_1 () =
  (* max_retries = k: kills 1..k are retried; the k+1th kill makes the
     shard hostile — never retried forever. *)
  let k = 2 in
  for attempts = 1 to k do
    match Dist.Policy.retry ~max_retries:k ~base:0.01 ~attempts with
    | Dist.Policy.Requeue _ -> ()
    | Dist.Policy.Hostile ->
        Alcotest.failf "kill %d of max %d must still requeue" attempts k
  done;
  match Dist.Policy.retry ~max_retries:k ~base:0.01 ~attempts:(k + 1) with
  | Dist.Policy.Hostile -> ()
  | Dist.Policy.Requeue _ ->
      Alcotest.failf "kill %d must be hostile (k+1 kills)" (k + 1)

let policy_heartbeat_edges () =
  let hb ~silent ~pinged =
    Dist.Policy.heartbeat ~timeout:20. ~silent ~pinged
  in
  (* quiet < timeout/2: leave the peer alone *)
  (match hb ~silent:9.9 ~pinged:false with
  | Dist.Policy.Wait -> ()
  | _ -> Alcotest.fail "under half the timeout: wait");
  (* past the half-timeout edge: ping once... *)
  (match hb ~silent:10.1 ~pinged:false with
  | Dist.Policy.Ping -> ()
  | _ -> Alcotest.fail "past half the timeout, unpinged: ping");
  (* ...and only once *)
  (match hb ~silent:10.1 ~pinged:true with
  | Dist.Policy.Wait -> ()
  | _ -> Alcotest.fail "already pinged: wait for the pong");
  (* past the full timeout the peer is dead, pinged or not *)
  (match hb ~silent:20.1 ~pinged:true with
  | Dist.Policy.Dead -> ()
  | _ -> Alcotest.fail "past the timeout: dead");
  match hb ~silent:20.1 ~pinged:false with
  | Dist.Policy.Dead -> ()
  | _ -> Alcotest.fail "past the timeout without a ping: still dead"

let policy_reconnect_jitter () =
  (* growth up to the cap, with rand pinned to 1.0 *)
  List.iter
    (fun (attempt, expect) ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "reconnect delay, attempt %d" attempt)
        expect
        (Dist.Policy.reconnect_delay ~base:0.2 ~cap:5.0 ~attempt ~rand:1.0))
    [ (0, 0.2); (1, 0.4); (2, 0.8); (3, 1.6); (4, 3.2); (5, 5.0); (9, 5.0) ];
  (* jitter scales the delay but never below the 10% floor *)
  check (Alcotest.float 1e-9) "jitter floor" 0.02
    (Dist.Policy.reconnect_delay ~base:0.2 ~cap:5.0 ~attempt:0 ~rand:0.0)

(* ------------------------------------------------------------------ *)
(* journal crash-safety: a torn final line is recovered from, both by
   the reader and by a resuming writer                                  *)
(* ------------------------------------------------------------------ *)

let journal_path dir id =
  Filename.concat (Filename.concat dir id) "journal.jsonl"

let journal_setup () =
  let s = scenario "safe_agreement_no_cancel" in
  let dir = fresh_dir () in
  let job = Experiments.Harness.sweep_job s in
  let j = Dist.Journal.create ~dir ~job ~cells:65 ~shard_size:7 () in
  Dist.Journal.append_shard j ~shard:0 ~payload:(Json.String "CCCCCCC");
  Dist.Journal.append_shard j ~shard:1 ~payload:(Json.String "DDDDDDD");
  Dist.Journal.close j;
  (dir, Dist.Journal.id j)

let tear_final_line dir id =
  (* Chop bytes off the end, past the last record's newline: what a
     crash mid-append leaves on disk. *)
  let p = journal_path dir id in
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  close_in ic;
  let fd = Unix.openfile p [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (n - 3);
  Unix.close fd

let journal_torn_line_load () =
  let dir, id = journal_setup () in
  tear_final_line dir id;
  match Dist.Journal.load ~dir id with
  | Error m -> Alcotest.failf "torn journal must still load: %s" m
  | Ok l ->
      (* The torn record is dropped; the complete prefix survives. *)
      check Alcotest.int "complete shards recovered" 1
        (List.length l.Dist.Journal.l_done);
      (match l.Dist.Journal.l_done with
      | [ (0, Json.String "CCCCCCC") ] -> ()
      | _ -> Alcotest.fail "wrong shard recovered from the torn journal");
      check Alcotest.int "cells metadata intact" 65 l.Dist.Journal.l_cells

let journal_torn_line_reopen () =
  let dir, id = journal_setup () in
  tear_final_line dir id;
  (* Reopen must truncate the torn tail and append cleanly after it. *)
  (match Dist.Journal.reopen ~dir id with
  | Error m -> Alcotest.failf "torn journal must reopen: %s" m
  | Ok j ->
      Dist.Journal.append_shard j ~shard:1 ~payload:(Json.String "VVVVVVV");
      Dist.Journal.close j);
  match Dist.Journal.load ~dir id with
  | Error m -> Alcotest.failf "journal unreadable after reopen: %s" m
  | Ok l -> (
      check Alcotest.int "both shards present after repair" 2
        (List.length l.Dist.Journal.l_done);
      match List.assoc_opt 1 l.Dist.Journal.l_done with
      | Some (Json.String "VVVVVVV") -> ()
      | _ -> Alcotest.fail "the re-appended shard must replace the torn one")

let journal_fsync_flag () =
  (* The fsync path must write the same bytes as the buffered path. *)
  let s = scenario "safe_agreement_no_cancel" in
  let job = Experiments.Harness.sweep_job s in
  let write dir fsync =
    let j = Dist.Journal.create ~dir ~fsync ~job ~cells:65 ~shard_size:7 () in
    Dist.Journal.append_shard j ~shard:0 ~payload:(Json.String "CCCCCCC");
    Dist.Journal.append_hostile j ~shard:3;
    Dist.Journal.close j;
    let ic = open_in_bin (journal_path dir (Dist.Journal.id j)) in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    contents
  in
  check Alcotest.string "fsync changes durability, not bytes"
    (write (fresh_dir ()) false)
    (write (fresh_dir ()) true)

let journal_fsync_rename_reopen () =
  (* The fsync path syncs the journal's directory entries, not just its
     bytes — exercised by the harshest rename a filesystem offers short
     of power loss: move the whole job directory and reopen it under
     its new name, appending across the boundary. *)
  let s = scenario "safe_agreement_no_cancel" in
  let job = Experiments.Harness.sweep_job s in
  let dir = fresh_dir () in
  let j = Dist.Journal.create ~dir ~fsync:true ~job ~cells:65 ~shard_size:7 () in
  let old_id = Dist.Journal.id j in
  Dist.Journal.append_shard j ~shard:0 ~payload:(Json.String "CCCCCCC");
  Dist.Journal.close j;
  let new_id = old_id ^ "-renamed" in
  Unix.rename (Filename.concat dir old_id) (Filename.concat dir new_id);
  (match Dist.Journal.reopen ~dir ~fsync:true new_id with
  | Error m -> Alcotest.failf "renamed journal must reopen: %s" m
  | Ok j2 ->
      Dist.Journal.append_shard j2 ~shard:1 ~payload:(Json.String "VVVVVVV");
      Dist.Journal.close j2);
  match Dist.Journal.load ~dir new_id with
  | Error m -> Alcotest.failf "renamed journal unreadable: %s" m
  | Ok l ->
      check Alcotest.int "shards from both lives present" 2
        (List.length l.Dist.Journal.l_done);
      Alcotest.(check bool) "old id is gone" false
        (List.mem old_id (Dist.Journal.list_ids ~dir ()))

let suite =
  [
    ( "dist",
      [
        Alcotest.test_case "sweep identity (seeded bug 1)" `Quick
          (sweep_identity "safe_agreement_no_cancel");
        Alcotest.test_case "sweep identity (seeded bug 2)" `Quick
          (sweep_identity "x_safe_agreement_first_subset");
        Alcotest.test_case "explore identity (seeded bug 1)" `Quick
          (explore_identity "safe_agreement_no_cancel" ~max_crashes:1);
        Alcotest.test_case "worker SIGKILL changes nothing (sweep)" `Quick
          chaos_identical;
        Alcotest.test_case "worker SIGKILL changes nothing (explore)" `Quick
          chaos_explore_identical;
        Alcotest.test_case "hostile shard is reported, not retried forever"
          `Quick hostile_shard;
        Alcotest.test_case "resume runs no shard twice" `Quick resume_no_rerun;
        Alcotest.test_case "resume refuses a different job" `Quick
          resume_rejects_other_job;
        Alcotest.test_case "retry backoff schedule is exact" `Quick
          policy_backoff_schedule;
        Alcotest.test_case "shard is hostile after k+1 kills" `Quick
          policy_hostile_after_k_plus_1;
        Alcotest.test_case "heartbeat pings at half-timeout, once" `Quick
          policy_heartbeat_edges;
        Alcotest.test_case "reconnect backoff: growth, cap, jitter floor"
          `Quick policy_reconnect_jitter;
        Alcotest.test_case "journal survives a torn final line" `Quick
          journal_torn_line_load;
        Alcotest.test_case "journal reopen truncates the torn tail" `Quick
          journal_torn_line_reopen;
        Alcotest.test_case "journal --fsync writes identical bytes" `Quick
          journal_fsync_flag;
        Alcotest.test_case "journal --fsync survives rename-then-reopen"
          `Quick journal_fsync_rename_reopen;
      ] );
  ]
