(* The distributed runner's whole contract in three claims:

   1. identity — a --dist run's outcome, replay artifact and metrics
      snapshot are byte-identical to the in-process run's, at any
      worker count;
   2. crash-tolerance — SIGKILLing workers mid-run changes nothing but
      the stats (the shard is re-dealt; shards that keep killing
      workers are reported hostile, not retried forever);
   3. resumability — a coordinator stopped mid-job restarts from its
      journal without re-running completed shards.

   Workers are real forked processes of the real binary (dune's [deps]
   places ../bin/asmsim.exe next to this test's cwd). *)

open Svm

let check = Alcotest.check
let exe = "../bin/asmsim.exe"

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let scenario name =
  match Experiments.Scenario.find name with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let config ?(workers = 2) ?shard_size ?journal_dir ?resume ?chaos ?stop_after
    ?(max_retries = 2) () =
  let base = Dist.Coordinator.default_config ~workers ~exe () in
  {
    base with
    Dist.Coordinator.shard_size;
    journal_dir;
    resume;
    chaos_kill_shard = chaos;
    stop_after_shards = stop_after;
    max_retries;
    backoff = 0.01;
  }

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "asmsim-dist-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* ------------------------------------------------------------------ *)
(* sweep identity                                                       *)
(* ------------------------------------------------------------------ *)

let sweep_repr (o : Explore.sweep_outcome) =
  let found =
    match o.Explore.found with
    | None -> "none"
    | Some f ->
        Format.asprintf "%a >> %a | %s@%d | shrink=%d | artifact=<<%s>>"
          Explore.pp_fault_schedule f.Explore.fault Explore.pp_fault_schedule
          f.Explore.shrunk f.Explore.violation.Monitor.monitor
          f.Explore.violation.Monitor.step f.Explore.shrink_runs
          f.Explore.replay
  in
  let deadlock =
    match o.Explore.deadlock with
    | None -> "none"
    | Some d -> Format.asprintf "%a" Explore.pp_fault_schedule d
  in
  Printf.sprintf "runs=%d exhausted=%b deadlock=%s found=%s" o.Explore.runs
    o.Explore.exhausted deadlock found

let sweep_inproc s =
  let metrics = Metrics.create ~wall_clock:false () in
  let o = Experiments.Harness.sweep_scenario ~metrics s in
  (sweep_repr o, Metrics.snapshot_string metrics)

let sweep_dist cfg s =
  let metrics = Metrics.create ~wall_clock:false () in
  match Experiments.Harness.sweep_scenario_dist ~metrics cfg s with
  | Error m -> Alcotest.failf "dist sweep failed: %s" m
  | Ok (Dist.Coordinator.Suspended _, _) ->
      Alcotest.fail "dist sweep suspended unexpectedly"
  | Ok (Dist.Coordinator.Complete o, stats) ->
      ((sweep_repr o, Metrics.snapshot_string metrics), stats)

let sweep_identity name () =
  let s = scenario name in
  let base = sweep_inproc s in
  List.iter
    (fun workers ->
      let got, _ =
        sweep_dist (config ~workers ~shard_size:7 ()) s
      in
      let label p = Printf.sprintf "%s, %d workers: %s" name workers p in
      check Alcotest.string (label "outcome + artifact") (fst base) (fst got);
      check Alcotest.string (label "metrics snapshot") (snd base) (snd got))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* explore identity                                                     *)
(* ------------------------------------------------------------------ *)

let explore_repr (r : Univ.t Explore.result) =
  let cex =
    match r.Explore.counterexample with
    | None -> "none"
    | Some (run, msg) ->
        Printf.sprintf "%s | %s | crashed=[%s] | truncated=%b"
          run.Explore.schedule msg
          (String.concat ";" (List.map string_of_int run.Explore.crashed))
          run.Explore.truncated
  in
  Printf.sprintf "explored=%d pruned=%d+%d exhausted=%b cex=%s"
    r.Explore.explored r.Explore.pruned_states r.Explore.pruned_commutes
    r.Explore.exhausted_budget cex

let explore_inproc ~max_crashes s =
  let metrics = Metrics.create ~wall_clock:false () in
  match Experiments.Harness.explore_scenario ~max_crashes ~metrics s with
  | Error m -> Alcotest.fail m
  | Ok r -> (explore_repr r, Metrics.snapshot_string metrics)

let explore_dist ~max_crashes cfg s =
  let metrics = Metrics.create ~wall_clock:false () in
  match Experiments.Harness.explore_scenario_dist ~max_crashes ~metrics cfg s with
  | Error m -> Alcotest.failf "dist explore failed: %s" m
  | Ok (Dist.Coordinator.Suspended _, _) ->
      Alcotest.fail "dist explore suspended unexpectedly"
  | Ok (Dist.Coordinator.Complete r, stats) ->
      ((explore_repr r, Metrics.snapshot_string metrics), stats)

let explore_identity name ~max_crashes () =
  let s = scenario name in
  let base = explore_inproc ~max_crashes s in
  List.iter
    (fun workers ->
      let got, _ =
        explore_dist ~max_crashes (config ~workers ~shard_size:9 ()) s
      in
      let label p = Printf.sprintf "%s, %d workers: %s" name workers p in
      check Alcotest.string (label "result") (fst base) (fst got);
      check Alcotest.string (label "metrics snapshot") (snd base) (snd got))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* crash-tolerance                                                      *)
(* ------------------------------------------------------------------ *)

let chaos_identical () =
  let s = scenario "safe_agreement_no_cancel" in
  let base = sweep_inproc s in
  let got, stats =
    sweep_dist (config ~shard_size:7 ~chaos:(0, 1) ()) s
  in
  check Alcotest.string "outcome despite a SIGKILLed worker" (fst base)
    (fst got);
  check Alcotest.string "metrics despite a SIGKILLed worker" (snd base)
    (snd got);
  Alcotest.(check bool) "a worker really was killed" true
    (stats.Dist.Coordinator.killed >= 1);
  Alcotest.(check bool) "the shard really was reassigned" true
    (stats.Dist.Coordinator.reassigned >= 1);
  Alcotest.(check bool) "a replacement worker was spawned" true
    (stats.Dist.Coordinator.spawned >= 3)

let chaos_explore_identical () =
  let s = scenario "safe_agreement_no_cancel" in
  let base = explore_inproc ~max_crashes:1 s in
  let got, stats =
    explore_dist ~max_crashes:1
      (config ~shard_size:9 ~chaos:(1, 1) ())
      s
  in
  check Alcotest.string "explore outcome despite a SIGKILLed worker"
    (fst base) (fst got);
  check Alcotest.string "explore metrics despite a SIGKILLed worker"
    (snd base) (snd got);
  Alcotest.(check bool) "a worker really was killed" true
    (stats.Dist.Coordinator.killed >= 1)

let hostile_shard () =
  let s = scenario "safe_agreement_no_cancel" in
  match
    Experiments.Harness.sweep_scenario_dist
      (config ~shard_size:7 ~chaos:(0, 99) ~max_retries:1 ())
      s
  with
  | Ok _ -> Alcotest.fail "a shard that kills every worker must not succeed"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions hostility: %S" m)
        true (contains_sub m "hostile")

(* ------------------------------------------------------------------ *)
(* resume from the journal                                              *)
(* ------------------------------------------------------------------ *)

let resume_no_rerun () =
  let s = scenario "safe_agreement_no_cancel" in
  let dir = fresh_dir () in
  let base = sweep_inproc s in
  (* Session 1: journal on, stop after a single shard result. *)
  let metrics1 = Metrics.create ~wall_clock:false () in
  let id, first_executed =
    match
      Experiments.Harness.sweep_scenario_dist ~metrics:metrics1
        (config ~shard_size:7 ~journal_dir:dir
           ~stop_after:1 ())
        s
    with
    | Error m -> Alcotest.failf "session 1 failed: %s" m
    | Ok (Dist.Coordinator.Complete _, _) ->
        Alcotest.fail "session 1 was supposed to suspend"
    | Ok (Dist.Coordinator.Suspended id, stats) ->
        (id, stats.Dist.Coordinator.executed)
  in
  check Alcotest.int "session 1 executed exactly one shard" 1 first_executed;
  (* Session 2: resume; finished shards restored, not re-run. *)
  let got, stats =
    sweep_dist
      (config ~shard_size:7 ~journal_dir:dir ~resume:id ())
      s
  in
  check Alcotest.int "session 2 restored session 1's shard" first_executed
    stats.Dist.Coordinator.resumed;
  Alcotest.(check bool)
    "session 2 did not re-run the restored shard" true
    (stats.Dist.Coordinator.executed + stats.Dist.Coordinator.resumed
    <= stats.Dist.Coordinator.shards);
  check Alcotest.string "resumed outcome identical to in-process" (fst base)
    (fst got);
  check Alcotest.string "resumed metrics identical to in-process" (snd base)
    (snd got)

let resume_rejects_other_job () =
  let s = scenario "safe_agreement_no_cancel" in
  let dir = fresh_dir () in
  let id =
    match
      Experiments.Harness.sweep_scenario_dist
        (config ~shard_size:7 ~journal_dir:dir
           ~stop_after:1 ())
        s
    with
    | Ok (Dist.Coordinator.Suspended id, _) -> id
    | _ -> Alcotest.fail "setup run was supposed to suspend"
  in
  (* Same id, different parameters: the fingerprint check must refuse. *)
  match
    Experiments.Harness.sweep_scenario_dist ~max_faults:2
      (config ~shard_size:7 ~journal_dir:dir ~resume:id ())
      s
  with
  | Ok _ -> Alcotest.fail "resume under different parameters must fail"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions the mismatch: %S" m)
        true
        (contains_sub m "different job")

let suite =
  [
    ( "dist",
      [
        Alcotest.test_case "sweep identity (seeded bug 1)" `Quick
          (sweep_identity "safe_agreement_no_cancel");
        Alcotest.test_case "sweep identity (seeded bug 2)" `Quick
          (sweep_identity "x_safe_agreement_first_subset");
        Alcotest.test_case "explore identity (seeded bug 1)" `Quick
          (explore_identity "safe_agreement_no_cancel" ~max_crashes:1);
        Alcotest.test_case "worker SIGKILL changes nothing (sweep)" `Quick
          chaos_identical;
        Alcotest.test_case "worker SIGKILL changes nothing (explore)" `Quick
          chaos_explore_identical;
        Alcotest.test_case "hostile shard is reported, not retried forever"
          `Quick hostile_shard;
        Alcotest.test_case "resume runs no shard twice" `Quick resume_no_rerun;
        Alcotest.test_case "resume refuses a different job" `Quick
          resume_rejects_other_job;
      ] );
  ]
