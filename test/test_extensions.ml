(* Tests for the extension layers: (m,l)-set agreement objects and the
   Omega-boosted Paxos consensus. *)

open Svm
open Svm.Prog.Syntax

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* (m, l)-set agreement objects                                         *)
(* ------------------------------------------------------------------ *)

let mlset_object_bounds () =
  (* 6 processes on one (3,2)-set object keyed [2;3;0] would violate
     ports; over two objects it is fine and each decides <= 2 values. *)
  let env = Env.create ~nprocs:6 ~x:1 ~allow_kset:true () in
  let progs =
    Array.init 6 (fun pid ->
        Prog.kset_propose Codec.int "mlset" [ 2; 3; pid / 3 ] (100 + pid)
        |> Prog.map Codec.int.Codec.inj)
  in
  let r = Exec.run ~env ~adversary:(Adversary.random ~seed:3) progs in
  let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
  let group g = List.filteri (fun i _ -> i / 3 = g) ds in
  check Alcotest.int "all decided" 6 (List.length ds);
  List.iter
    (fun g ->
      let distinct = List.sort_uniq compare (group g) in
      Alcotest.(check bool)
        (Printf.sprintf "group %d decides <= 2 values" g)
        true
        (List.length distinct <= 2))
    [ 0; 1 ]

let mlset_port_discipline () =
  let env = Env.create ~nprocs:4 ~x:1 ~allow_kset:true () in
  (* Port bound m = 2: the third distinct accessor must be refused. *)
  let p pid = Env.apply env ~pid (Op.Kset_propose ("o", [ 1; 2 ], Codec.int.Codec.inj pid)) in
  ignore (p 0);
  ignore (p 1);
  Alcotest.(check bool) "third accessor refused" true
    (match p 2 with
    | (_ : Univ.t) -> false
    | exception Env.Violation _ -> true)

let hr_formula_values () =
  (* Spot values of the Herlihy-Rajsbaum threshold. *)
  let f ~t ~m ~l = Tasks.Set_agreement.herlihy_rajsbaum_k ~t ~m ~l in
  check Alcotest.int "t=5,m=3,l=2" 4 (f ~t:5 ~m:3 ~l:2);
  check Alcotest.int "t=2,m=3,l=2" 2 (f ~t:2 ~m:3 ~l:2);
  check Alcotest.int "t=0,m=4,l=3" 1 (f ~t:0 ~m:4 ~l:3);
  check Alcotest.int "t=7,m=2,l=1" 4 (f ~t:7 ~m:2 ~l:1)

let mlset_algorithm_sweep () =
  let k = Tasks.Set_agreement.herlihy_rajsbaum_k ~t:3 ~m:3 ~l:2 in
  let alg = Tasks.Set_agreement.algorithm ~n:6 ~t:3 ~m:3 ~l:2 ~k in
  let task = Tasks.Task.kset ~k in
  List.iter
    (fun seed ->
      let run =
        Experiments.Runner.one_run ~allow_kset:true ~task ~alg ~seed
          ~max_crashes:3 ()
      in
      (match Experiments.Runner.validate ~task run with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      check Alcotest.(list int) "live" [] (Exec.blocked run.Experiments.Runner.result))
    (List.init 25 (fun i -> i))

let mlset_rejections () =
  let reject f = match f () with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "m must divide n" true
    (reject (fun () -> Tasks.Set_agreement.algorithm ~n:5 ~t:2 ~m:3 ~l:2 ~k:3));
  Alcotest.(check bool) "l <= m" true
    (reject (fun () -> Tasks.Set_agreement.algorithm ~n:6 ~t:2 ~m:2 ~l:3 ~k:5));
  Alcotest.(check bool) "k below threshold" true
    (reject (fun () -> Tasks.Set_agreement.algorithm ~n:6 ~t:5 ~m:3 ~l:2 ~k:3))

(* ------------------------------------------------------------------ *)
(* Oracles and Paxos                                                    *)
(* ------------------------------------------------------------------ *)

let oracle_query_counting () =
  let env = Env.create ~nprocs:2 ~x:1 () in
  let seen = ref [] in
  Env.set_oracle env "O" (fun ~pid ~query ->
      seen := (pid, query) :: !seen;
      Codec.int.Codec.inj query);
  let prog _pid =
    let* a = Prog.perform (Op.Oracle_query ("O", [])) in
    let* b = Prog.perform (Op.Oracle_query ("O", [])) in
    Prog.return
      (Codec.(pair int int).Codec.inj
         (Codec.int.Codec.prj a, Codec.int.Codec.prj b))
  in
  let r =
    Exec.run ~env ~adversary:(Adversary.round_robin ()) (Array.init 2 prog)
  in
  List.iter
    (fun u ->
      check Alcotest.(pair int int) "per-process query indices" (0, 1)
        (Codec.(pair int int).Codec.prj u))
    (Exec.decided r);
  check Alcotest.int "four queries total" 4 (List.length !seen)

let oracle_unregistered () =
  let env = Env.create ~nprocs:1 ~x:1 () in
  Alcotest.(check bool) "missing handler" true
    (match Env.apply env ~pid:0 (Op.Oracle_query ("nope", [])) with
    | (_ : Univ.t) -> false
    | exception Env.Violation _ -> true)

let alpha_sole_proposer_commits () =
  let env = Env.create ~nprocs:3 ~x:1 () in
  let paxos = Shared_objects.Paxos.make ~fam:"P" ~nprocs:3 in
  let prog =
    let* a =
      Shared_objects.Paxos.alpha_propose paxos ~pid:0 ~ballot:1
        (Codec.int.Codec.inj 42)
    in
    match a with
    | Shared_objects.Paxos.Commit v -> Prog.return v
    | Shared_objects.Paxos.Abort -> Prog.return (Codec.int.Codec.inj (-1))
  in
  let r =
    Exec.run ~env
      ~adversary:(Adversary.round_robin ())
      [| prog; Prog.return (Codec.int.Codec.inj 0); Prog.return (Codec.int.Codec.inj 0) |]
  in
  (match r.Exec.outcomes.(0) with
  | Exec.Decided u -> check Alcotest.int "committed own value" 42 (Codec.int.Codec.prj u)
  | _ -> Alcotest.fail "no outcome")

let alpha_agreement_across_ballots () =
  (* Sequential ballots by different processes must carry the first
     committed value forever. *)
  let env = Env.create ~nprocs:2 ~x:1 () in
  let paxos = Shared_objects.Paxos.make ~fam:"P" ~nprocs:2 in
  let propose pid ballot v =
    let* a = Shared_objects.Paxos.alpha_propose paxos ~pid ~ballot (Codec.int.Codec.inj v) in
    match a with
    | Shared_objects.Paxos.Commit u -> Prog.return (Codec.int.Codec.prj u)
    | Shared_objects.Paxos.Abort -> Prog.return (-1)
  in
  let prog0 = Prog.map Codec.int.Codec.inj (propose 0 1 11) in
  let prog1 =
    (* Runs after p0 under the priority schedule. *)
    Prog.map Codec.int.Codec.inj (propose 1 2 22)
  in
  let r =
    Exec.run ~env ~adversary:(Adversary.priority [ 0; 1 ]) [| prog0; prog1 |]
  in
  (match Exec.decided r with
  | [ a; b ] ->
      check Alcotest.int "first commit" 11 (Codec.int.Codec.prj a);
      check Alcotest.int "second ballot adopts it" 11 (Codec.int.Codec.prj b)
  | _ -> Alcotest.fail "arity")

let paxos_consensus_sweep () =
  List.iter
    (fun seed ->
      let env = Env.create ~nprocs:4 ~x:1 () in
      Env.set_oracle env "OM"
        (Shared_objects.Paxos.leader_oracle ~stabilize_after:3
           ~leader:(seed mod 4) ~nprocs:4);
      let paxos = Shared_objects.Paxos.make ~fam:"P" ~nprocs:4 in
      let progs =
        Array.init 4 (fun pid ->
            Shared_objects.Paxos.consensus paxos ~oracle_fam:"OM" ~pid
              (Codec.int.Codec.inj (30 + pid)))
      in
      let r = Exec.run ~budget:60_000 ~env ~adversary:(Adversary.random ~seed) progs in
      let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true
        (List.length ds = 4
        && List.for_all (fun d -> d = List.hd ds) ds
        && List.hd ds >= 30 && List.hd ds < 34))
    (List.init 25 (fun i -> i))

let paxos_explorer_agreement () =
  (* Exhaustive: 2 processes, both considering themselves leader (a
     worst-case oracle), up to depth 24: agreement in every schedule. *)
  let make () =
    let env = Env.create ~nprocs:2 ~x:1 () in
    Env.set_oracle env "OM" (fun ~pid ~query:_ -> Codec.int.Codec.inj pid);
    let paxos = Shared_objects.Paxos.make ~fam:"P" ~nprocs:2 in
    let progs =
      Array.init 2 (fun pid ->
          Shared_objects.Paxos.consensus paxos ~oracle_fam:"OM" ~pid
            (Codec.int.Codec.inj (50 + pid)))
    in
    (env, progs)
  in
  let property (run : 'a Explore.run) =
    let ds =
      Array.to_list run.Explore.outcomes
      |> List.filter_map (function
           | Exec.Decided u -> Some (Codec.int.Codec.prj u)
           | Exec.Crashed | Exec.Blocked | Exec.Stuck -> None)
    in
    match ds with
    | [] -> Ok ()
    | d :: rest ->
        if List.for_all (Int.equal d) rest then Ok () else Error "disagreement"
  in
  let r = Explore.exhaustive ~max_steps:22 ~max_runs:400_000 ~make ~property () in
  Alcotest.(check bool) "no disagreement in any schedule" true
    (r.Explore.counterexample = None)

(* ------------------------------------------------------------------ *)
(* Immediate snapshot, adopt-commit, approximate agreement              *)
(* ------------------------------------------------------------------ *)

let is_views seed nprocs =
  let is = Shared_objects.Immediate_snapshot.make ~fam:"IS" ~nprocs in
  let env = Env.create ~nprocs ~x:1 () in
  let views_codec = Codec.list (Codec.pair Codec.int Codec.int) in
  let progs =
    Array.init nprocs (fun i ->
        Shared_objects.Immediate_snapshot.write_and_snapshot is ~key:[] ~pid:i
          (Codec.int.Codec.inj (900 + i))
        |> Prog.map (fun view ->
               views_codec.Codec.inj
                 (List.map (fun (j, w) -> (j, Codec.int.Codec.prj w)) view)))
  in
  let r = Exec.run ~env ~adversary:(Adversary.random ~seed) progs in
  Exec.decided r |> List.mapi (fun i u -> (i, views_codec.Codec.prj u))

let immediate_snapshot_properties () =
  List.iter
    (fun seed ->
      let views = is_views seed 5 in
      let contains v j = List.mem_assoc j v in
      let subset v1 v2 = List.for_all (fun (j, _) -> contains v2 j) v1 in
      List.iter
        (fun (i, vi) ->
          Alcotest.(check bool) "self" true (contains vi i);
          Alcotest.(check bool) "values correct" true
            (List.for_all (fun (j, w) -> w = 900 + j) vi);
          List.iter
            (fun (j, vj) ->
              Alcotest.(check bool) "containment" true
                (subset vi vj || subset vj vi);
              if contains vj i then
                Alcotest.(check bool)
                  (Printf.sprintf "immediacy %d->%d seed %d" i j seed)
                  true (subset vi vj))
            views)
        views)
    (List.init 30 (fun i -> i))

let immediate_snapshot_sequential_is_total () =
  (* Under round-robin, the levels algorithm still returns legal views
     covering everyone who wrote first. *)
  let views = is_views 0 3 in
  Alcotest.(check int) "three views" 3 (List.length views)

let adopt_commit_solo_commits () =
  let ac = Shared_objects.Adopt_commit.make ~fam:"AC" in
  let env = Env.create ~nprocs:1 ~x:1 () in
  let prog =
    Shared_objects.Adopt_commit.propose ac ~key:[] ~pid:0
      (Codec.int.Codec.inj 7)
    |> Prog.map (fun (v, u) ->
           Codec.(pair bool int).Codec.inj
             ((v = Shared_objects.Adopt_commit.Commit), Codec.int.Codec.prj u))
  in
  let r = Exec.run ~env ~adversary:(Adversary.round_robin ()) [| prog |] in
  (match Exec.decided r with
  | [ u ] ->
      Alcotest.(check (pair bool int)) "solo commits own" (true, 7)
        (Codec.(pair bool int).Codec.prj u)
  | _ -> Alcotest.fail "no result")

let adopt_commit_exhaustive () =
  (* Exhaustive check of commit-agreement for 2 processes with different
     proposals, over every interleaving. *)
  let make () =
    let ac = Shared_objects.Adopt_commit.make ~fam:"AC" in
    let env = Env.create ~nprocs:2 ~x:1 () in
    let prog pid =
      Shared_objects.Adopt_commit.propose ac ~key:[] ~pid
        (Codec.int.Codec.inj (600 + pid))
      |> Prog.map (fun (v, u) ->
             Codec.(pair bool int).Codec.inj
               ( (v = Shared_objects.Adopt_commit.Commit),
                 Codec.int.Codec.prj u ))
    in
    (env, Array.init 2 prog)
  in
  let property (run : 'a Explore.run) =
    let rs =
      Array.to_list run.Explore.outcomes
      |> List.filter_map (function
           | Exec.Decided u -> Some (Codec.(pair bool int).Codec.prj u)
           | Exec.Crashed | Exec.Blocked | Exec.Stuck -> None)
    in
    let commits = List.filter fst rs in
    match commits with
    | [] -> Ok ()
    | (_, w) :: _ ->
        if List.for_all (fun (_, v) -> v = w) rs then Ok ()
        else Error "commit without agreement"
  in
  let r = Explore.exhaustive ~max_crashes:1 ~max_steps:10 ~make ~property () in
  Alcotest.(check bool) "commit-agreement in all schedules" true
    (r.Explore.counterexample = None)

let approximate_agreement_native () =
  let scale = 1024 and rounds = 17 in
  let alg = Tasks.Algorithms.approximate_agreement ~n:5 ~t:4 ~rounds ~scale in
  let task = Tasks.Task.approximate ~scale ~eps:4 in
  List.iter
    (fun seed ->
      let run =
        Experiments.Runner.one_run ~task ~alg ~seed ~max_crashes:4 ()
      in
      match Experiments.Runner.validate ~task run with
      | Ok () -> ()
      | Error m -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed m))
    (List.init 30 (fun i -> i))

let approximate_agreement_converges_tightly () =
  (* Inputs 0 and 100: decisions must be within 4/1024 of each other on
     the scaled axis and inside [0, 102400]. *)
  let scale = 1024 and rounds = 17 in
  let alg = Tasks.Algorithms.approximate_agreement ~n:4 ~t:3 ~rounds ~scale in
  let r =
    Core.Run.run_ints ~alg ~inputs:[ 0; 100; 0; 100 ]
      ~adversary:(Adversary.random ~seed:11) ()
  in
  let ds = Exec.decided r in
  Alcotest.(check int) "all decide" 4 (List.length ds);
  let lo = List.fold_left min max_int ds and hi = List.fold_left max 0 ds in
  Alcotest.(check bool) "eps-close" true (hi - lo <= 4);
  Alcotest.(check bool) "in range" true (lo >= 0 && hi <= 100 * scale)

let suite =
  [
    ( "extensions.mlset",
      [
        Alcotest.test_case "object bounds" `Quick mlset_object_bounds;
        Alcotest.test_case "port discipline" `Quick mlset_port_discipline;
        Alcotest.test_case "HR formula" `Quick hr_formula_values;
        Alcotest.test_case "algorithm sweep" `Quick mlset_algorithm_sweep;
        Alcotest.test_case "rejections" `Quick mlset_rejections;
      ] );
    ( "extensions.objects",
      [
        Alcotest.test_case "immediate snapshot properties" `Quick
          immediate_snapshot_properties;
        Alcotest.test_case "immediate snapshot total" `Quick
          immediate_snapshot_sequential_is_total;
        Alcotest.test_case "adopt-commit solo" `Quick adopt_commit_solo_commits;
        Alcotest.test_case "adopt-commit exhaustive" `Quick
          adopt_commit_exhaustive;
        Alcotest.test_case "approximate native" `Quick
          approximate_agreement_native;
        Alcotest.test_case "approximate convergence" `Quick
          approximate_agreement_converges_tightly;
      ] );
    ( "extensions.omega",
      [
        Alcotest.test_case "query counting" `Quick oracle_query_counting;
        Alcotest.test_case "unregistered oracle" `Quick oracle_unregistered;
        Alcotest.test_case "alpha sole proposer" `Quick alpha_sole_proposer_commits;
        Alcotest.test_case "alpha cross-ballot agreement" `Quick
          alpha_agreement_across_ballots;
        Alcotest.test_case "consensus sweep" `Quick paxos_consensus_sweep;
        Alcotest.test_case "exhaustive agreement" `Quick paxos_explorer_agreement;
      ] );
  ]
