(* The generalized fault taxonomy, end to end:

   - executor semantics of each tier (omission hangs, crash-recovery
     restarts and re-runs, Byzantine corrupts value ops and latches);
   - fault decisions round-trip through the replay artifact and re-drive
     bit-for-bit, stuck/restart sets included;
   - "everyone halted" is a typed [Deadlocked] verdict, not a crash;
   - corrupt artifacts are rejected with typed, line-numbered errors;
   - the shrinker weakens fault kinds toward crash-stop only when the
     weaker kind still violates. *)

open Svm
open Svm.Prog.Syntax

let outcome_str = function
  | Exec.Decided v -> Printf.sprintf "decided %d" v
  | Exec.Crashed -> "crashed"
  | Exec.Blocked -> "blocked"
  | Exec.Stuck -> "stuck"

let fault kind pid step =
  { Adversary.kind; trigger = Adversary.Crash_at_local { pid; step } }

let faults specs = Adversary.with_faults (Adversary.round_robin ()) specs

(* Write your input, spin until both components are there, decide the
   minimum — a tiny agreement-ish program whose progress depends on the
   other process's write landing. *)
let min_of_two n i =
  let* () = Prog.snap_set Codec.int "M" [] (10 + i) in
  Prog.loop
    (fun () ->
      let* cells = Prog.snap_scan Codec.int "M" [] in
      let vs = Array.to_list cells |> List.filter_map Fun.id in
      if List.length vs >= n then
        Prog.return (`Stop (List.fold_left min max_int vs))
      else Prog.return (`Again ()))
    ()

(* ------------------------------------------------------------------ *)
(* Tier semantics at the executor                                       *)
(* ------------------------------------------------------------------ *)

let test_omission_semantics () =
  let env = Env.create ~nprocs:2 ~x:1 () in
  let r =
    Exec.run ~budget:200 ~env
      ~adversary:(faults [ fault Adversary.Omission 0 0 ])
      [| min_of_two 2 0; min_of_two 2 1 |]
  in
  (* p0's very first write hangs: p0 is stuck (not crashed), p1 spins
     against its missing component until the budget ends. *)
  Alcotest.(check string) "victim stuck" "stuck" (outcome_str r.Exec.outcomes.(0));
  Alcotest.(check string) "waiter blocked" "blocked"
    (outcome_str r.Exec.outcomes.(1));
  Alcotest.(check (list int)) "stuck set" [ 0 ] r.Exec.stuck;
  Alcotest.(check (list int)) "no crashes" [] r.Exec.crashed;
  Alcotest.(check int) "hung op never executed" 0 r.Exec.op_counts.(0)

let test_recovery_semantics () =
  let env = Env.create ~nprocs:2 ~x:1 () in
  let r =
    Exec.run ~budget:400 ~env
      ~adversary:(faults [ fault Adversary.Crash_recovery 0 2 ])
      [| min_of_two 2 0; min_of_two 2 1 |]
  in
  (* p0 restarts after two ops, re-runs from the top (its snapshot write
     is idempotent here) and still decides; the restart is recorded. *)
  Alcotest.(check string) "victim recovered and decided" "decided 10"
    (outcome_str r.Exec.outcomes.(0));
  Alcotest.(check string) "other decided" "decided 10"
    (outcome_str r.Exec.outcomes.(1));
  Alcotest.(check (list int)) "restart set" [ 0 ] r.Exec.restarts;
  Alcotest.(check (list int)) "no stuck" [] r.Exec.stuck

let test_byzantine_corrupts_and_latches () =
  let env = Env.create ~nprocs:2 ~x:1 () in
  let r =
    Exec.run ~budget:400 ~record_trace:true ~env
      ~adversary:(faults [ fault Adversary.Byzantine 0 0 ])
      [| min_of_two 2 0; min_of_two 2 1 |]
  in
  (* p0's write is corrupted to a huge int; both processes then see
     {huge, 11} and decide min = 11 — the forged value flowed through
     shared memory deterministically. *)
  Alcotest.(check string) "honest process decided the surviving value"
    "decided 11"
    (outcome_str r.Exec.outcomes.(1));
  (* The latch: every value op of p0 from the trigger on is recorded as
     a Byz decision; scans (non-value ops) are not. *)
  let byz_steps =
    match r.Exec.trace with
    | None -> []
    | Some t ->
        List.filter_map
          (function Trace.Byz p -> Some p | _ -> None)
          (Trace.decisions t)
  in
  Alcotest.(check bool) "at least one Byz decision recorded" true
    (byz_steps <> []);
  Alcotest.(check bool) "all Byz decisions are p0's" true
    (List.for_all (Int.equal 0) byz_steps)

(* A corrupted value whose type no reader expects poisons the reader:
   it gets Stuck (decode failure under an active Byzantine fault), the
   run completes, nothing leaks as a decision. *)
let test_byzantine_poisons_typed_readers () =
  let env = Env.create ~nprocs:2 ~x:1 () in
  let pair = Codec.pair Codec.int Codec.int in
  let writer =
    let* () = Prog.snap_set pair "P" [] (1, 2) in
    Prog.return 0
  in
  let reader =
    Prog.loop
      (fun () ->
        let* cells = Prog.snap_scan pair "P" [] in
        match cells.(0) with
        | Some (a, b) -> Prog.return (`Stop (a + b))
        | None -> Prog.return (`Again ()))
      ()
  in
  let r =
    Exec.run ~budget:200 ~env
      ~adversary:(faults [ fault Adversary.Byzantine 0 0 ])
      [| writer; reader |]
  in
  Alcotest.(check string) "reader poisoned, not crashed" "stuck"
    (outcome_str r.Exec.outcomes.(1));
  Alcotest.(check (list int)) "reader in the stuck set" [ 1 ] r.Exec.stuck

(* ------------------------------------------------------------------ *)
(* Fault decisions replay bit-for-bit                                   *)
(* ------------------------------------------------------------------ *)

let check_same_run ~ctx (a : int Exec.result) (b : int Exec.result) =
  Alcotest.(check (list string))
    (ctx ^ ": outcomes")
    (Array.to_list a.Exec.outcomes |> List.map outcome_str)
    (Array.to_list b.Exec.outcomes |> List.map outcome_str);
  Alcotest.(check (list int))
    (ctx ^ ": op counts")
    (Array.to_list a.Exec.op_counts)
    (Array.to_list b.Exec.op_counts);
  Alcotest.(check (list int)) (ctx ^ ": crashed") a.Exec.crashed b.Exec.crashed;
  Alcotest.(check (list int)) (ctx ^ ": stuck") a.Exec.stuck b.Exec.stuck;
  Alcotest.(check (list int))
    (ctx ^ ": restarts") a.Exec.restarts b.Exec.restarts;
  Alcotest.(check int)
    (ctx ^ ": total steps") a.Exec.total_steps b.Exec.total_steps

let test_fault_tiers_roundtrip () =
  List.iter
    (fun (ctx, plan) ->
      let make_run adversary =
        let env = Env.create ~nprocs:3 ~x:1 () in
        Exec.run ~budget:500 ~record_trace:true ~env ~adversary
          [| min_of_two 3 0; min_of_two 3 1; min_of_two 3 2 |]
      in
      let original = make_run (faults plan) in
      let trace =
        match original.Exec.trace with
        | Some t -> t
        | None -> Alcotest.fail (ctx ^ ": no trace")
      in
      let artifact = Trace.to_replay trace in
      let decisions =
        match Trace.parse_replay artifact with
        | Ok (_, ds) -> ds
        | Error e ->
            Alcotest.fail
              (ctx ^ ": " ^ Format.asprintf "%a" Trace.pp_parse_error e)
      in
      let replayed = make_run (Adversary.of_replay decisions) in
      check_same_run ~ctx original replayed)
    [
      ("omission", [ fault Adversary.Omission 1 1 ]);
      ("recovery", [ fault Adversary.Crash_recovery 2 2 ]);
      ("byzantine", [ fault Adversary.Byzantine 0 0 ]);
      ( "mixed",
        [
          fault Adversary.Omission 1 2;
          fault Adversary.Crash_recovery 2 1;
          fault Adversary.Byzantine 0 0;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Deadlock is a verdict                                                *)
(* ------------------------------------------------------------------ *)

let test_all_stuck_is_deadlocked () =
  let make () =
    let env = Env.create ~nprocs:2 ~x:1 () in
    (env, [| min_of_two 2 0; min_of_two 2 1 |])
  in
  let verdict =
    Explore.run_fault ~budget:200 ~make
      ~monitors:(fun () -> [ Monitor.agreement () ])
      ~scheduler:(fun () -> Adversary.round_robin ())
      [
        { Explore.victim = 0; op = 0; kind = Adversary.Omission };
        { Explore.victim = 1; op = 0; kind = Adversary.Omission };
      ]
  in
  (match verdict with
  | Explore.Deadlocked -> ()
  | Explore.Clean -> Alcotest.fail "all-stuck run reported Clean"
  | Explore.Violating v ->
      Alcotest.fail ("all-stuck run reported violation: " ^ v.Monitor.message));
  (* And the sweep records it without stopping. *)
  let outcome =
    Explore.sweep_faults ~kinds:[ Adversary.Omission ] ~max_faults:2
      ~op_window:1 ~budget:200 ~make
      ~monitors:(fun () -> [ Monitor.agreement () ])
      ()
  in
  Alcotest.(check bool) "sweep recorded a deadlock schedule" true
    (outcome.Explore.deadlock <> None);
  Alcotest.(check bool) "sweep still covered the box" false
    outcome.Explore.exhausted;
  Alcotest.(check bool) "no violation invented" true
    (outcome.Explore.found = None)

(* ------------------------------------------------------------------ *)
(* Typed, line-numbered artifact errors                                 *)
(* ------------------------------------------------------------------ *)

let expect_error ~ctx ~line s =
  match Trace.parse_replay s with
  | Ok _ -> Alcotest.fail (ctx ^ ": corrupt artifact accepted")
  | Error e -> Alcotest.(check int) (ctx ^ ": error line") line e.Trace.line

let test_corrupt_artifacts_rejected () =
  expect_error ~ctx:"no magic" ~line:1 "schedule 0 1\nend 2\n";
  expect_error ~ctx:"bad token" ~line:2 "asmsim-replay 2\nschedule 0 Q1\nend 2\n";
  expect_error ~ctx:"bad fault pid" ~line:3
    "asmsim-replay 2\nmeta k v\nschedule 0 X-3\nend 2\n";
  expect_error ~ctx:"missing end trailer" ~line:2 "asmsim-replay 2\nschedule 0 1\n";
  expect_error ~ctx:"count mismatch" ~line:3
    "asmsim-replay 2\nschedule 0 1\nend 3\n";
  expect_error ~ctx:"trailing garbage" ~line:4
    "asmsim-replay 2\nschedule 0 1\nend 2\nschedule 1\n";
  expect_error ~ctx:"unrecognized line" ~line:2
    "asmsim-replay 2\nscheduled 0 1\nend 2\n";
  (* v1 artifacts predate the trailer and must still parse. *)
  (match Trace.parse_replay "asmsim-replay 1\nschedule 0 X1 0\n" with
  | Ok (_, ds) -> Alcotest.(check int) "v1 accepted" 3 (List.length ds)
  | Error e ->
      Alcotest.fail
        (Format.asprintf "v1 artifact rejected: %a" Trace.pp_parse_error e));
  (* The error pretty-printer carries the line number. *)
  match Trace.parse_replay "garbage\n" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e ->
      let s = Format.asprintf "%a" Trace.pp_parse_error e in
      Alcotest.(check bool) "printer names the line" true
        (String.length s >= 7 && String.sub s 0 7 = "line 1:")

(* ------------------------------------------------------------------ *)
(* Shrinking across kinds                                               *)
(* ------------------------------------------------------------------ *)

(* safe_agreement violates under crash-recovery (Figure 1's cancel is
   not idempotent under re-proposal) but NOT under crash-stop — so the
   shrinker must try the weaker kind, fail to validate it, and keep
   Crash_recovery in the minimal schedule. *)
let test_shrinker_keeps_necessary_kind () =
  let s =
    match Experiments.Scenario.find "safe_agreement" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let outcome =
    Experiments.Harness.sweep_scenario ~kinds:[ Adversary.Crash_recovery ]
      ~max_faults:1 s
  in
  match outcome.Explore.found with
  | None -> Alcotest.fail "recovery violation on safe_agreement not found"
  | Some f ->
      Alcotest.(check int) "minimal schedule has one fault point" 1
        (List.length f.Explore.shrunk.Explore.faults);
      List.iter
        (fun (p : Explore.fault_point) ->
          Alcotest.(check string)
            "kind not weakened to crash (crash-stop does not violate)"
            "recovery"
            (Adversary.fault_kind_name p.Explore.kind))
        f.Explore.shrunk.Explore.faults

(* The Byzantine acceptance loop through a scenario artifact: sweep,
   shrink, serialize, rebuild from metadata, reproduce the identical
   violation. *)
let test_byzantine_sweep_replays () =
  let s =
    match Experiments.Scenario.find "x_safe_agreement" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let outcome =
    Experiments.Harness.sweep_scenario ~kinds:[ Adversary.Byzantine ]
      ~max_faults:1 s
  in
  let f =
    match outcome.Explore.found with
    | Some f -> f
    | None -> Alcotest.fail "Byzantine integrity violation not found"
  in
  let v = f.Explore.violation in
  Alcotest.(check string) "integrity monitor fired" "decided-value-integrity"
    v.Monitor.monitor;
  let meta, decisions =
    match Trace.parse_replay f.Explore.replay with
    | Ok md -> md
    | Error e ->
        Alcotest.fail (Format.asprintf "%a" Trace.pp_parse_error e)
  in
  let s' =
    match Experiments.Scenario.of_replay_meta meta with
    | Ok s' -> s'
    | Error m -> Alcotest.fail m
  in
  match
    Explore.replay ~make:s'.Experiments.Scenario.make
      ~monitors:s'.Experiments.Scenario.monitors decisions
  with
  | Ok _ -> Alcotest.fail "recorded Byzantine violation did not reproduce"
  | Error v' ->
      Alcotest.(check string) "same monitor" v.Monitor.monitor v'.Monitor.monitor;
      Alcotest.(check int) "same step" v.Monitor.step v'.Monitor.step;
      Alcotest.(check string) "same message" v.Monitor.message v'.Monitor.message

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "omission: victim stuck, op never runs" `Quick
          test_omission_semantics;
        Alcotest.test_case "recovery: restart recorded, still decides" `Quick
          test_recovery_semantics;
        Alcotest.test_case "byzantine: corrupts value ops, latches" `Quick
          test_byzantine_corrupts_and_latches;
        Alcotest.test_case "byzantine: type-mismatched forgery poisons reader"
          `Quick test_byzantine_poisons_typed_readers;
        Alcotest.test_case "all fault tiers replay bit-for-bit" `Quick
          test_fault_tiers_roundtrip;
        Alcotest.test_case "all-stuck is a Deadlocked verdict" `Quick
          test_all_stuck_is_deadlocked;
        Alcotest.test_case "corrupt artifacts: typed line-numbered errors"
          `Quick test_corrupt_artifacts_rejected;
        Alcotest.test_case "shrinker keeps a necessary fault kind" `Quick
          test_shrinker_keeps_necessary_kind;
        Alcotest.test_case "byzantine sweep artifact reproduces exactly"
          `Quick test_byzantine_sweep_replays;
      ] );
  ]
