(* Deterministic replay and the fault-injection sweeper.

   - round-trips: record a run's decision log, serialize it to the
     replay-artifact text format, parse it back, re-drive a fresh run
     with [Adversary.of_replay] — every observable of the two runs must
     match bit-for-bit; across several schedulers and algorithms.
   - monitors: the online invariant monitors fire at the breaking step
     and stay silent on healthy runs.
   - acceptance: the sweeper finds the seeded x_safe_agreement
     first-subset bug, shrinks it, and the written artifact reproduces
     the identical violation through a file. *)

open Svm

let heavy =
  match Sys.getenv_opt "ASMSIM_HEAVY" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* ------------------------------------------------------------------ *)
(* Round-trips                                                          *)
(* ------------------------------------------------------------------ *)

let outcome_to_string = function
  | Exec.Decided v -> Printf.sprintf "decided %d" v
  | Exec.Crashed -> "crashed"
  | Exec.Blocked -> "blocked"
  | Exec.Stuck -> "stuck"

let check_same_run ~ctx (a : int Exec.result) (b : int Exec.result) =
  Alcotest.(check (list string))
    (ctx ^ ": outcomes")
    (Array.to_list a.Exec.outcomes |> List.map outcome_to_string)
    (Array.to_list b.Exec.outcomes |> List.map outcome_to_string);
  Alcotest.(check (list int))
    (ctx ^ ": op counts")
    (Array.to_list a.Exec.op_counts)
    (Array.to_list b.Exec.op_counts);
  Alcotest.(check (list int)) (ctx ^ ": crash order") a.Exec.crashed b.Exec.crashed;
  Alcotest.(check int) (ctx ^ ": total steps") a.Exec.total_steps b.Exec.total_steps

let algorithms =
  [
    ( "kset(5,2,3)",
      Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3,
      [ 3; 1; 4; 1; 5 ] );
    ( "renaming(4,2)",
      Tasks.Algorithms.renaming_read_write ~n:4 ~t:2,
      [ 7; 2; 9; 4 ] );
  ]

let schedulers =
  [
    ("round-robin", fun () -> Adversary.round_robin ());
    ("random", fun () -> Adversary.random ~seed:7);
    ("priority-desc", fun () -> Adversary.priority [ 4; 3; 2; 1; 0 ]);
    ("biased", fun () -> Adversary.biased ~seed:3 ~favourite:1 ~weight:4);
  ]

let crash_plan = [ Adversary.Crash_at_local { pid = 0; step = 2 } ]

let test_round_trips () =
  List.iter
    (fun (alg_name, alg, inputs) ->
      List.iter
        (fun (sched_name, scheduler) ->
          let ctx = alg_name ^ " / " ^ sched_name in
          let adversary = Adversary.with_crashes (scheduler ()) crash_plan in
          let original =
            Core.Run.run_ints ~budget:100_000 ~record_trace:true ~alg ~inputs
              ~adversary ()
          in
          let trace =
            match original.Exec.trace with
            | Some t -> t
            | None -> Alcotest.fail (ctx ^ ": no trace recorded")
          in
          (* Serialize -> parse -> re-drive. *)
          let artifact = Trace.to_replay ~meta:[ ("alg", alg_name) ] trace in
          let meta, decisions =
            match Trace.parse_replay artifact with
            | Ok md -> md
            | Error e ->
                Alcotest.fail
                  (ctx ^ ": parse_replay: "
                  ^ Format.asprintf "%a" Trace.pp_parse_error e)
          in
          Alcotest.(check (option string))
            (ctx ^ ": meta survives") (Some alg_name)
            (List.assoc_opt "alg" meta);
          Alcotest.(check int)
            (ctx ^ ": one decision per step")
            original.Exec.total_steps (List.length decisions);
          let replayed =
            Core.Run.run_ints ~budget:100_000 ~record_trace:true ~alg ~inputs
              ~adversary:(Adversary.of_replay decisions) ()
          in
          check_same_run ~ctx original replayed;
          (* The replayed run's own log is the log it was driven by. *)
          match replayed.Exec.trace with
          | None -> Alcotest.fail (ctx ^ ": replay recorded no trace")
          | Some t ->
              Alcotest.(check bool)
                (ctx ^ ": decision log is a fixpoint") true
                (Trace.decisions t = decisions))
        schedulers)
    algorithms

let test_artifact_rejects_garbage () =
  (match Trace.parse_replay "not a replay\n" with
  | Ok _ -> Alcotest.fail "accepted a file without the magic line"
  | Error _ -> ());
  match Trace.parse_replay "asmsim-replay 1\nschedule 0 Q1\n" with
  | Ok _ -> Alcotest.fail "accepted a malformed schedule token"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Monitors                                                             *)
(* ------------------------------------------------------------------ *)

(* Two processes decide different values: the agreement monitor must
   abort at the second decide, naming both values. *)
let test_agreement_monitor_fires () =
  let env = Env.create ~nprocs:2 ~x:1 () in
  let progs = [| Prog.return 1; Prog.return 2 |] in
  match
    Exec.run ~record_trace:true
      ~monitors:[ Monitor.agreement ~pp:string_of_int () ]
      ~env
      ~adversary:(Adversary.round_robin ())
      progs
  with
  | _ -> Alcotest.fail "disagreement not caught"
  | exception Monitor.Violation v ->
      Alcotest.(check string) "monitor name" "agreement" v.Monitor.monitor;
      Alcotest.(check int) "pid of the second decide" 1 v.Monitor.pid;
      Alcotest.(check bool) "live trace attached" true
        (v.Monitor.trace <> None);
      Alcotest.(check bool) "message names both values" true
        (let has s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         has v.Monitor.message "1" && has v.Monitor.message "2")

let test_validity_monitor_fires () =
  let env = Env.create ~nprocs:1 ~x:1 () in
  match
    Exec.run
      ~monitors:[ Monitor.validity ~allowed:(fun v -> v < 10) () ]
      ~env
      ~adversary:(Adversary.round_robin ())
      [| Prog.return 99 |]
  with
  | _ -> Alcotest.fail "invalid decision not caught"
  | exception Monitor.Violation v ->
      Alcotest.(check string) "monitor name" "validity" v.Monitor.monitor

let test_crash_bound_monitor () =
  let env = Env.create ~nprocs:3 ~x:1 () in
  let spin () =
    Prog.loop (fun () -> Prog.map (fun () -> `Again ()) Prog.yield) ()
  in
  let progs = [| spin (); spin (); spin () |] in
  let adversary =
    Adversary.with_crashes (Adversary.round_robin ())
      [
        Adversary.Crash_at_local { pid = 0; step = 1 };
        Adversary.Crash_at_local { pid = 1; step = 1 };
      ]
  in
  match
    Exec.run ~budget:100 ~monitors:[ Monitor.crash_bound ~bound:1 () ] ~env
      ~adversary progs
  with
  | _ -> Alcotest.fail "second crash not caught"
  | exception Monitor.Violation v ->
      Alcotest.(check int) "second crash is the violation" 1 v.Monitor.pid

(* ------------------------------------------------------------------ *)
(* Sweeper acceptance                                                   *)
(* ------------------------------------------------------------------ *)

let get_scenario name =
  match Experiments.Scenario.find name with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* Healthy object, whole <=1-crash box: the sweeper must come back
   empty — no false positives. *)
let test_sweep_clean_on_healthy () =
  let s = get_scenario "x_safe_agreement" in
  let outcome =
    Experiments.Harness.sweep_scenario ~max_faults:1
      ~op_window:(if heavy then 12 else 4)
      s
  in
  (match outcome.Explore.found with
  | None -> ()
  | Some f ->
      Alcotest.fail
        (Fmt.str "false positive: %a" Monitor.pp_violation f.Explore.violation));
  Alcotest.(check bool) "box fully covered" false outcome.Explore.exhausted

(* The seeded safe-agreement ablation disagrees without any crash: the
   sweeper's scheduler dimension alone must find it. *)
let test_sweep_finds_no_cancel_without_crashes () =
  let s = get_scenario "safe_agreement_no_cancel" in
  let outcome = Experiments.Harness.sweep_scenario ~max_faults:0 s in
  match outcome.Explore.found with
  | None -> Alcotest.fail "seeded no-cancel bug not found"
  | Some f ->
      Alcotest.(check string)
        "agreement broke" "agreement"
        f.Explore.violation.Monitor.monitor;
      Alcotest.(check int)
        "shrunk to zero fault points" 0
        (List.length f.Explore.shrunk.Explore.faults)

(* The end-to-end acceptance loop: sweep the seeded x_safe_agreement
   first-subset bug, shrink, write the artifact to a real file, read it
   back, rebuild the scenario from its metadata, and reproduce the
   identical violation. *)
let test_acceptance_sweep_shrink_replay () =
  let s = get_scenario "x_safe_agreement_first_subset" in
  let outcome = Experiments.Harness.sweep_scenario ~max_faults:2 s in
  let f =
    match outcome.Explore.found with
    | Some f -> f
    | None -> Alcotest.fail "seeded first-subset bug not found"
  in
  let v = f.Explore.violation in
  Alcotest.(check string) "an agreement violation" "agreement" v.Monitor.monitor;
  Alcotest.(check bool)
    "shrunk to at most 2 crash points" true
    (List.length f.Explore.shrunk.Explore.faults <= 2);
  Alcotest.(check bool)
    "shrinking never grows the schedule" true
    (List.length f.Explore.shrunk.Explore.faults
    <= List.length f.Explore.fault.Explore.faults);
  (* Through an actual file, like `asmsim sweep --out` + `asmsim replay`. *)
  let file = Filename.temp_file "asmsim_test" ".replay" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc f.Explore.replay;
      close_out oc;
      let ic = open_in_bin file in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let meta, decisions =
        match Trace.parse_replay contents with
        | Ok md -> md
        | Error e ->
            Alcotest.fail
              ("artifact does not parse: "
              ^ Format.asprintf "%a" Trace.pp_parse_error e)
      in
      let s' =
        match Experiments.Scenario.of_replay_meta meta with
        | Ok s' -> s'
        | Error e -> Alcotest.fail ("scenario not rebuilt from meta: " ^ e)
      in
      Alcotest.(check string)
        "metadata names the scenario" s.Experiments.Scenario.name
        s'.Experiments.Scenario.name;
      match
        Explore.replay ~make:s'.Experiments.Scenario.make
          ~monitors:s'.Experiments.Scenario.monitors decisions
      with
      | Ok _ -> Alcotest.fail "replay did not reproduce the violation"
      | Error v' ->
          Alcotest.(check string)
            "same monitor" v.Monitor.monitor v'.Monitor.monitor;
          Alcotest.(check string)
            "same message" v.Monitor.message v'.Monitor.message;
          Alcotest.(check int) "same step" v.Monitor.step v'.Monitor.step;
          Alcotest.(check int) "same pid" v.Monitor.pid v'.Monitor.pid)

let suite =
  [
    ( "replay",
      [
        Alcotest.test_case "decision-log round-trips, bit-for-bit" `Quick
          test_round_trips;
        Alcotest.test_case "artifact parser rejects garbage" `Quick
          test_artifact_rejects_garbage;
        Alcotest.test_case "agreement monitor aborts at the breaking step"
          `Quick test_agreement_monitor_fires;
        Alcotest.test_case "validity monitor" `Quick test_validity_monitor_fires;
        Alcotest.test_case "crash-bound monitor" `Quick test_crash_bound_monitor;
        Alcotest.test_case "sweeper is clean on the healthy object" `Quick
          test_sweep_clean_on_healthy;
        Alcotest.test_case "sweeper finds the no-cancel bug with 0 crashes"
          `Quick test_sweep_finds_no_cancel_without_crashes;
        Alcotest.test_case "acceptance: sweep, shrink, artifact, exact replay"
          `Quick test_acceptance_sweep_shrink_replay;
      ] );
  ]
