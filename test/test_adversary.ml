(* Unit tests for the crash-plan machinery: exactly when each
   [Adversary.crash_spec] fires, and how the specs interact when layered
   — driving [Adversary.crash_now] directly, outside any run. *)

open Svm

let snap_info : Op.info = { Op.kind = Op.Snapshot; fam = "MEM"; key = [] }
let cons_info : Op.info = { Op.kind = Op.Consensus; fam = "CONS"; key = [ 0 ] }

let ask adv ~pid ~local_step ~global_step ~next =
  Adversary.crash_now adv ~pid ~local_step ~global_step ~next

(* Crash_at_local fires exactly at the given local step, not before, not
   after (a process that survived its k-th op keeps running). *)
let test_at_local_exact () =
  let adv =
    Adversary.with_crashes (Adversary.round_robin ())
      [ Adversary.Crash_at_local { pid = 1; step = 2 } ]
  in
  Alcotest.(check bool)
    "step 0" false
    (ask adv ~pid:1 ~local_step:0 ~global_step:0 ~next:(Some snap_info));
  Alcotest.(check bool)
    "step 1" false
    (ask adv ~pid:1 ~local_step:1 ~global_step:5 ~next:(Some snap_info));
  Alcotest.(check bool)
    "wrong pid at the right step" false
    (ask adv ~pid:0 ~local_step:2 ~global_step:6 ~next:(Some snap_info));
  Alcotest.(check bool)
    "step 2 fires" true
    (ask adv ~pid:1 ~local_step:2 ~global_step:7 ~next:(Some snap_info));
  Alcotest.(check bool)
    "step 3 (past it) silent" false
    (ask adv ~pid:1 ~local_step:3 ~global_step:8 ~next:(Some snap_info));
  Alcotest.(check int) "one crash counted" 1 (Adversary.crash_count adv)

(* Crash_at_global is a threshold ([>=]), so it still fires when the
   victim's first opportunity comes after the named step — and only
   once. *)
let test_at_global_threshold () =
  let adv =
    Adversary.with_crashes (Adversary.round_robin ())
      [ Adversary.Crash_at_global { pid = 0; step = 10 } ]
  in
  Alcotest.(check bool)
    "below threshold" false
    (ask adv ~pid:0 ~local_step:0 ~global_step:9 ~next:(Some snap_info));
  Alcotest.(check bool)
    "first opportunity past the threshold fires" true
    (ask adv ~pid:0 ~local_step:1 ~global_step:17 ~next:(Some snap_info));
  Alcotest.(check bool)
    "fires at most once" false
    (ask adv ~pid:0 ~local_step:2 ~global_step:18 ~next:(Some snap_info))

(* Crash_before_op counts only matching operations of the right pid. *)
let test_before_op_counts_matches () =
  let is_cons (i : Op.info) = i.Op.kind = Op.Consensus in
  let adv =
    Adversary.with_crashes (Adversary.round_robin ())
      [ Adversary.Crash_before_op { pid = 2; nth = 1; matches = is_cons } ]
  in
  Alcotest.(check bool)
    "non-matching op ignored" false
    (ask adv ~pid:2 ~local_step:0 ~global_step:0 ~next:(Some snap_info));
  Alcotest.(check bool)
    "first match (nth=0) counted but not fired" false
    (ask adv ~pid:2 ~local_step:1 ~global_step:1 ~next:(Some cons_info));
  Alcotest.(check bool)
    "matching op of another pid ignored" false
    (ask adv ~pid:1 ~local_step:0 ~global_step:2 ~next:(Some cons_info));
  Alcotest.(check bool)
    "Yield (no info) ignored" false
    (ask adv ~pid:2 ~local_step:2 ~global_step:3 ~next:None);
  Alcotest.(check bool)
    "second match fires" true
    (ask adv ~pid:2 ~local_step:3 ~global_step:4 ~next:(Some cons_info))

(* All specs are evaluated on every query: a [Crash_before_op]'s match
   counter advances even on the query where another spec fires, so its
   own firing point does not shift. *)
let test_counter_advances_when_other_spec_fires () =
  let any (_ : Op.info) = true in
  let adv =
    Adversary.with_crashes (Adversary.round_robin ())
      [
        Adversary.Crash_at_local { pid = 0; step = 0 };
        Adversary.Crash_before_op { pid = 0; nth = 1; matches = any };
      ]
  in
  Alcotest.(check bool)
    "local spec fires on the first query" true
    (ask adv ~pid:0 ~local_step:0 ~global_step:0 ~next:(Some snap_info));
  (* The match counter saw op 0, so the very next matching op is nth=1. *)
  Alcotest.(check bool)
    "before_op spec fires immediately after" true
    (ask adv ~pid:0 ~local_step:1 ~global_step:1 ~next:(Some snap_info));
  Alcotest.(check int) "both crashes counted" 2 (Adversary.crash_count adv)

(* with_crashes layers over the base policy: scheduling is untouched and
   the base's own crash decisions still apply. *)
let test_layering_preserves_pick () =
  let base = Adversary.priority [ 3; 1 ] in
  let adv = Adversary.with_crashes base [] in
  Alcotest.(check int)
    "pick delegates to the base policy" 3
    (Adversary.pick adv ~runnable:[ 0; 1; 2; 3 ] ~global_step:0);
  Alcotest.(check bool)
    "no spec, no crash" false
    (ask adv ~pid:3 ~local_step:0 ~global_step:0 ~next:(Some snap_info))

(* of_replay: scheduling follows the decision log, crash decisions crash
   exactly the recorded pid, and exhausting the log falls back. *)
let test_of_replay_follows_log () =
  let adv =
    Adversary.of_replay
      [ Trace.Sched 2; Trace.Crash 1; Trace.Sched 0 ]
  in
  let runnable = [ 0; 1; 2 ] in
  Alcotest.(check int)
    "first decision schedules p2" 2
    (Adversary.pick adv ~runnable ~global_step:0);
  Alcotest.(check bool)
    "a Sched decision never crashes" false
    (ask adv ~pid:2 ~local_step:0 ~global_step:0 ~next:(Some snap_info));
  Alcotest.(check int)
    "crash decision still schedules its pid" 1
    (Adversary.pick adv ~runnable ~global_step:1);
  Alcotest.(check bool)
    "and crashes it at the crash query" true
    (ask adv ~pid:1 ~local_step:0 ~global_step:1 ~next:(Some snap_info));
  Alcotest.(check int)
    "next decision schedules p0" 0
    (Adversary.pick adv ~runnable:[ 0; 2 ] ~global_step:2);
  Alcotest.(check bool)
    "consumed without crashing" false
    (ask adv ~pid:0 ~local_step:1 ~global_step:2 ~next:(Some snap_info));
  (* Log exhausted: fall back to round-robin over the runnable set. *)
  let p = Adversary.pick adv ~runnable:[ 0; 2 ] ~global_step:3 in
  Alcotest.(check bool) "fallback picks a runnable pid" true (List.mem p [ 0; 2 ])

let suite =
  [
    ( "adversary",
      [
        Alcotest.test_case "Crash_at_local fires exactly at its step" `Quick
          test_at_local_exact;
        Alcotest.test_case "Crash_at_global is a >= threshold" `Quick
          test_at_global_threshold;
        Alcotest.test_case "Crash_before_op counts matching ops" `Quick
          test_before_op_counts_matches;
        Alcotest.test_case "match counters advance when another spec fires"
          `Quick test_counter_advances_when_other_spec_fires;
        Alcotest.test_case "with_crashes preserves the base policy" `Quick
          test_layering_preserves_pick;
        Alcotest.test_case "of_replay follows the decision log" `Quick
          test_of_replay_follows_log;
      ] );
  ]
