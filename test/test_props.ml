(* Property-based tests (qcheck): the agreement objects' safety under
   arbitrary schedules and crash plans, the model algebra's laws, codec
   roundtrips, and end-to-end task validity of the simulations. *)

open Svm

let to_alcotest = QCheck_alcotest.to_alcotest

(* ASMSIM_HEAVY=1 multiplies every qcheck count for exhaustive overnight
   runs; the default counts keep `dune runtest` well under two minutes. *)
let count n =
  match Sys.getenv_opt "ASMSIM_HEAVY" with
  | None | Some "" | Some "0" -> n
  | Some _ -> n * 10

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)
(* ------------------------------------------------------------------ *)

let seed_gen = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let model_gen =
  let open QCheck.Gen in
  let g =
    int_range 1 9 >>= fun n ->
    int_range 0 (n - 1) >>= fun t ->
    int_range 1 n >>= fun x -> return (n, t, x)
  in
  QCheck.make
    ~print:(fun (n, t, x) -> Printf.sprintf "ASM(%d,%d,%d)" n t x)
    g

(* ------------------------------------------------------------------ *)
(* Model algebra laws                                                   *)
(* ------------------------------------------------------------------ *)

let prop_canonical_equivalent =
  QCheck.Test.make ~count:(count 200) ~name:"canonical form is equivalent and idempotent"
    model_gen (fun (n, t, x) ->
      let m = Core.Model.make ~n ~t ~x in
      let c = Core.Model.canonical m in
      Core.Model.equivalent m c
      && Core.Model.equal (Core.Model.canonical c) c
      && c.Core.Model.x = 1)

let prop_window_iff =
  QCheck.Test.make ~count:(count 200) ~name:"window membership iff equivalence"
    model_gen (fun (n, t', x) ->
      let m = Core.Model.make ~n ~t:t' ~x in
      let t = Core.Model.power m in
      let lo, hi = Core.Model.window_bounds ~t ~x in
      t' >= lo && t' <= hi)

let prop_equivalence_relation =
  QCheck.Test.make ~count:(count 200) ~name:"equivalence is symmetric and transitive"
    (QCheck.triple model_gen model_gen model_gen)
    (fun ((n1, t1, x1), (n2, t2, x2), (n3, t3, x3)) ->
      let m1 = Core.Model.make ~n:n1 ~t:t1 ~x:x1 in
      let m2 = Core.Model.make ~n:n2 ~t:t2 ~x:x2 in
      let m3 = Core.Model.make ~n:n3 ~t:t3 ~x:x3 in
      Core.Model.equivalent m1 m1
      && Core.Model.equivalent m1 m2 = Core.Model.equivalent m2 m1
      && (not (Core.Model.equivalent m1 m2 && Core.Model.equivalent m2 m3))
         || Core.Model.equivalent m1 m3)

let prop_kset_boundary =
  QCheck.Test.make ~count:(count 200) ~name:"k-set solvable iff k > floor(t/x)"
    model_gen (fun (n, t, x) ->
      let m = Core.Model.make ~n ~t ~x in
      let p = Core.Model.power m in
      Core.Model.kset_solvable m ~k:(p + 1)
      && (p = 0 || not (Core.Model.kset_solvable m ~k:p)))

let prop_stronger_irreflexive_total =
  QCheck.Test.make ~count:(count 200) ~name:"hierarchy: exactly one of <, >, ~"
    (QCheck.pair model_gen model_gen)
    (fun ((n1, t1, x1), (n2, t2, x2)) ->
      let m1 = Core.Model.make ~n:n1 ~t:t1 ~x:x1 in
      let m2 = Core.Model.make ~n:n2 ~t:t2 ~x:x2 in
      let cases =
        [
          Core.Model.stronger m1 m2;
          Core.Model.stronger m2 m1;
          Core.Model.equivalent m1 m2;
        ]
      in
      List.length (List.filter Fun.id cases) = 1)

(* ------------------------------------------------------------------ *)
(* Codec roundtrips                                                     *)
(* ------------------------------------------------------------------ *)

let prop_codec_roundtrip =
  let codec =
    Codec.list (Codec.pair Codec.int (Codec.option (Codec.list Codec.string)))
  in
  (* Size-bounded generators: QCheck's default nested list/string sizes
     make this one test dominate the whole suite's runtime. *)
  let gen =
    let open QCheck.Gen in
    list_size (int_bound 10)
      (pair int
         (option (list_size (int_bound 8) (string_size (int_bound 16)))))
  in
  let print = QCheck.Print.(list (pair int (option (list string)))) in
  QCheck.Test.make ~count:(count 300) ~name:"nested codec roundtrip"
    (QCheck.make ~print gen)
    (fun v -> codec.Codec.prj (codec.Codec.inj v) = v)

let prop_subsets =
  QCheck.Test.make ~count:(count 100) ~name:"subsets: count, sortedness, distinctness"
    (QCheck.pair (QCheck.int_range 0 9) (QCheck.int_range 0 9))
    (fun (n, size) ->
      let s = Combin.subsets ~n ~size in
      List.length s = Combin.binomial n size
      && List.for_all
           (fun sub ->
             List.length sub = size && List.sort_uniq compare sub = sub)
           s
      && List.length (List.sort_uniq compare s) = List.length s)

(* ------------------------------------------------------------------ *)
(* Agreement objects under arbitrary schedules                          *)
(* ------------------------------------------------------------------ *)

let run_agreement ~seed ~nprocs ~crashes ~x make_participant =
  let env = Env.create ~nprocs ~x () in
  let adversary =
    if crashes = 0 then Adversary.random ~seed
    else
      Adversary.random_crashes ~within:30 ~seed ~max_crashes:crashes
        ~nprocs (Adversary.random ~seed)
  in
  let progs = Array.init nprocs make_participant in
  Exec.run ~budget:60_000 ~env ~adversary progs

let prop_safe_agreement_safety =
  QCheck.Test.make ~count:(count 150)
    ~name:"safe agreement: agreement+validity under random crashes"
    (QCheck.pair seed_gen (QCheck.int_range 0 2))
    (fun (seed, crashes) ->
      let open Prog.Syntax in
      let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
      let r =
        run_agreement ~seed ~nprocs:4 ~crashes ~x:1 (fun i ->
            let* () =
              Shared_objects.Safe_agreement.propose sa ~key:[]
                (Codec.int.Codec.inj i)
            in
            Shared_objects.Safe_agreement.decide sa ~key:[])
      in
      let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
      (match ds with
      | [] -> true
      | d :: rest -> List.for_all (Int.equal d) rest && d >= 0 && d < 4))

let prop_safe_agreement_termination =
  QCheck.Test.make ~count:(count 100)
    ~name:"safe agreement: termination without crashes"
    seed_gen
    (fun seed ->
      let open Prog.Syntax in
      let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
      let r =
        run_agreement ~seed ~nprocs:5 ~crashes:0 ~x:1 (fun i ->
            let* () =
              Shared_objects.Safe_agreement.propose sa ~key:[]
                (Codec.int.Codec.inj i)
            in
            Shared_objects.Safe_agreement.decide sa ~key:[])
      in
      Exec.decided_count r = 5)

let prop_x_safe_agreement =
  QCheck.Test.make ~count:(count 120)
    ~name:"x_safe_agreement: safety always, termination with < x crashes"
    (QCheck.pair seed_gen (QCheck.int_range 0 1))
    (fun (seed, crashes) ->
      let open Prog.Syntax in
      let xsa =
        Shared_objects.X_safe_agreement.make ~fam:"XSA" ~participants:4 ~x:2 ()
      in
      let r =
        run_agreement ~seed ~nprocs:4 ~crashes ~x:2 (fun i ->
            let* () =
              Shared_objects.X_safe_agreement.propose xsa ~key:[] ~pid:i
                (Codec.int.Codec.inj (10 + i))
            in
            Shared_objects.X_safe_agreement.decide xsa ~key:[] ~pid:i)
      in
      let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
      let crashed = List.length r.Exec.crashed in
      let agreement =
        match ds with
        | [] -> true
        | d :: rest -> List.for_all (Int.equal d) rest && d >= 10 && d < 14
      in
      (* <= x-1 = 1 crash: everyone correct must decide. *)
      agreement && List.length ds = 4 - crashed)

let prop_ts_unique_winner =
  QCheck.Test.make ~count:(count 150) ~name:"tournament test&set: unique winner"
    (QCheck.pair seed_gen (QCheck.int_range 1 6))
    (fun (seed, nprocs) ->
      let ts = Shared_objects.Ts_from_cons.make ~fam:"TS" ~participants:nprocs in
      let env = Env.create ~nprocs ~x:2 () in
      let progs =
        Array.init nprocs (fun i ->
            Prog.map Codec.bool.Codec.inj
              (Shared_objects.Ts_from_cons.compete ts ~key:[] ~pid:i))
      in
      let r = Exec.run ~env ~adversary:(Adversary.random ~seed) progs in
      let winners =
        Exec.decided r |> List.map Codec.bool.Codec.prj |> List.filter Fun.id
      in
      List.length winners = 1)

(* ------------------------------------------------------------------ *)
(* Task validity end-to-end                                             *)
(* ------------------------------------------------------------------ *)

let prop_kset_rw_validity =
  let task = Tasks.Task.kset ~k:3 in
  let alg = Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3 in
  QCheck.Test.make ~count:(count 150) ~name:"native k-set validity" seed_gen
    (fun seed ->
      let run =
        Experiments.Runner.one_run ~task ~alg ~seed ~max_crashes:2 ()
      in
      Experiments.Runner.validate ~task run = Ok ()
      && Exec.blocked run.Experiments.Runner.result = [])

let prop_renaming_validity =
  let task = Tasks.Task.renaming ~slots:11 in
  let alg = Tasks.Algorithms.renaming_read_write ~n:6 ~t:2 in
  QCheck.Test.make ~count:(count 100) ~name:"native renaming validity" seed_gen
    (fun seed ->
      let run =
        Experiments.Runner.one_run ~task ~alg ~seed ~max_crashes:2 ()
      in
      Experiments.Runner.validate ~task run = Ok ()
      && Exec.blocked run.Experiments.Runner.result = [])

let prop_bg_classic_validity =
  let task = Tasks.Task.kset ~k:3 in
  let source = Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3 in
  let alg = Core.Bg.classic ~source in
  QCheck.Test.make ~count:(count 30) ~name:"BG classic task validity" seed_gen
    (fun seed ->
      let run =
        Experiments.Runner.one_run ~budget:400_000 ~task ~alg ~seed
          ~max_crashes:2 ()
      in
      Experiments.Runner.validate ~task run = Ok ()
      && Exec.blocked run.Experiments.Runner.result = [])

let prop_sim_up_validity =
  let task = Tasks.Task.kset ~k:3 in
  let source = Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:3 in
  let alg = Core.Bg.sim_up ~source ~t':5 ~x:2 in
  QCheck.Test.make ~count:(count 20) ~name:"Section 4 simulation task validity"
    seed_gen (fun seed ->
      let run =
        Experiments.Runner.one_run ~budget:900_000 ~task ~alg ~seed
          ~max_crashes:5 ()
      in
      Experiments.Runner.validate ~task run = Ok ()
      && Exec.blocked run.Experiments.Runner.result = [])

(* ------------------------------------------------------------------ *)
(* Afek snapshot linearizability signature                              *)
(* ------------------------------------------------------------------ *)

let prop_afek_views_ordered =
  QCheck.Test.make ~count:(count 60) ~name:"Afek snapshot views totally ordered"
    seed_gen
    (fun seed ->
      let open Prog.Syntax in
      let nprocs = 3 in
      let snap = Shared_objects.Afek_snapshot.make ~fam:"AF" ~nprocs in
      let views_c = Codec.list (Codec.list (Codec.pair Codec.int Codec.int)) in
      let worker i =
        let rec go r acc =
          if r = 3 then Prog.return (views_c.Codec.inj (List.rev acc))
          else
            let* () =
              Shared_objects.Afek_snapshot.update snap ~pid:i
                (Codec.int.Codec.inj ((10 * i) + r))
            in
            let* view = Shared_objects.Afek_snapshot.scan snap ~pid:i in
            let decoded =
              Array.to_list view
              |> List.mapi (fun j v ->
                     Option.map (fun u -> (j, Codec.int.Codec.prj u)) v)
              |> List.filter_map Fun.id
            in
            go (r + 1) (decoded :: acc)
        in
        go 0 []
      in
      let env = Env.create ~nprocs ~x:1 () in
      let r =
        Exec.run ~env ~adversary:(Adversary.random ~seed)
          (Array.init nprocs worker)
      in
      let views =
        Exec.decided r |> List.concat_map (fun u -> views_c.Codec.prj u)
      in
      let leq v1 v2 =
        List.for_all
          (fun (j, value) ->
            match List.assoc_opt j v2 with
            | None -> false
            | Some value' -> value' >= value)
          v1
      in
      List.for_all
        (fun v1 -> List.for_all (fun v2 -> leq v1 v2 || leq v2 v1) views)
        views)

let prop_immediate_snapshot =
  QCheck.Test.make ~count:(count 80) ~name:"immediate snapshot: containment+immediacy"
    seed_gen
    (fun seed ->
      let open Prog.Syntax in
      let nprocs = 4 in
      let is = Shared_objects.Immediate_snapshot.make ~fam:"IS" ~nprocs in
      let env = Env.create ~nprocs ~x:1 () in
      let views_codec = Codec.list Codec.int in
      let progs =
        Array.init nprocs (fun i ->
            let* view =
              Shared_objects.Immediate_snapshot.write_and_snapshot is ~key:[]
                ~pid:i (Codec.int.Codec.inj i)
            in
            Prog.return (views_codec.Codec.inj (List.map fst view)))
      in
      let r = Exec.run ~env ~adversary:(Adversary.random ~seed) progs in
      let views =
        Exec.decided r
        |> List.mapi (fun i u -> (i, views_codec.Codec.prj u))
      in
      let subset v1 v2 = List.for_all (fun j -> List.mem j v2) v1 in
      List.for_all
        (fun (i, vi) ->
          List.mem i vi
          && List.for_all
               (fun (_, vj) ->
                 (subset vi vj || subset vj vi)
                 && ((not (List.mem i vj)) || subset vi vj))
               views)
        views)

let prop_adopt_commit =
  QCheck.Test.make ~count:(count 100) ~name:"adopt-commit: commit implies agreement"
    (QCheck.pair seed_gen (QCheck.int_range 0 1))
    (fun (seed, spread) ->
      let ac = Shared_objects.Adopt_commit.make ~fam:"AC" in
      let env = Env.create ~nprocs:4 ~x:1 () in
      let res_c = Codec.pair Codec.bool Codec.int in
      let progs =
        Array.init 4 (fun i ->
            let v = if spread = 0 then 5 else 5 + (i mod 2) in
            Shared_objects.Adopt_commit.propose ac ~key:[] ~pid:i
              (Codec.int.Codec.inj v)
            |> Prog.map (fun (verdict, u) ->
                   res_c.Codec.inj
                     ( verdict = Shared_objects.Adopt_commit.Commit,
                       Codec.int.Codec.prj u )))
      in
      let r = Exec.run ~env ~adversary:(Adversary.random ~seed) progs in
      let rs = List.map res_c.Codec.prj (Exec.decided r) in
      let commits = List.filter fst rs in
      List.length rs = 4
      &&
      match commits with
      | [] -> true
      | (_, w) :: _ -> List.for_all (fun (_, v) -> v = w) rs)

let prop_approximate =
  (* Inputs span up to 99, so the initial spread is <= 99 * scale; each
     round at best halves it (plus 1 of integer-midpoint truncation), so
     reaching eps = 4 needs 2^rounds >= 99 * scale / 2 — 12 rounds were
     too few (spread ~6.2 left) and failed under adversarial schedules. *)
  let scale = 256 and rounds = 16 in
  let task = Tasks.Task.approximate ~scale ~eps:4 in
  let alg = Tasks.Algorithms.approximate_agreement ~n:5 ~t:4 ~rounds ~scale in
  QCheck.Test.make ~count:(count 80) ~name:"approximate agreement validity" seed_gen
    (fun seed ->
      let run =
        Experiments.Runner.one_run ~task ~alg ~seed ~max_crashes:4 ()
      in
      Experiments.Runner.validate ~task run = Ok ()
      && Exec.blocked run.Experiments.Runner.result = [])

let prop_hr_threshold_monotone =
  QCheck.Test.make ~count:(count 200)
    ~name:"Herlihy-Rajsbaum threshold: monotone in t, antitone in m and l"
    (QCheck.triple (QCheck.int_range 0 12) (QCheck.int_range 1 6)
       (QCheck.int_range 1 6))
    (fun (t, m, l) ->
      let l = min l m in
      let f = Tasks.Set_agreement.herlihy_rajsbaum_k in
      f ~t:(t + 1) ~m ~l >= f ~t ~m ~l
      && f ~t ~m:(m + 1) ~l <= f ~t ~m ~l
      && (l < 2 || f ~t ~m ~l:(l - 1) <= f ~t ~m ~l)
      && f ~t ~m ~l >= 1)

let suite =
  [
    ( "properties",
      List.map to_alcotest
        [
          prop_canonical_equivalent;
          prop_window_iff;
          prop_equivalence_relation;
          prop_kset_boundary;
          prop_stronger_irreflexive_total;
          prop_codec_roundtrip;
          prop_subsets;
          prop_safe_agreement_safety;
          prop_safe_agreement_termination;
          prop_x_safe_agreement;
          prop_ts_unique_winner;
          prop_kset_rw_validity;
          prop_renaming_validity;
          prop_bg_classic_validity;
          prop_sim_up_validity;
          prop_afek_views_ordered;
          prop_immediate_snapshot;
          prop_adopt_commit;
          prop_approximate;
          prop_hr_threshold_monotone;
        ] );
  ]
