(* Unit tests for the exhaustive schedule explorer itself. *)

open Svm
open Svm.Prog.Syntax

let check = Alcotest.check

let yields k =
  let rec go n =
    if n = 0 then Prog.return (Codec.int.Codec.inj 0)
    else
      let* () = Prog.yield in
      go (n - 1)
  in
  go k

let make_yields counts () =
  (Env.create ~nprocs:(Array.length counts) ~x:1 (), Array.map yields counts)

let ok_prop _ = Ok ()

(* Each process contributes (ops + 1) scheduler choices (the final one
   harvests the Done). Interleavings of two processes with a and b
   choices each: C(a+b, a). *)
let counts_two_procs () =
  let r =
    Explore.exhaustive ~dedup:false ~max_steps:20
      ~make:(make_yields [| 2; 2 |]) ~property:ok_prop ()
  in
  check Alcotest.int "C(6,3) = 20" 20 r.Explore.explored;
  Alcotest.(check bool) "no counterexample" true (r.Explore.counterexample = None);
  Alcotest.(check bool) "not exhausted" false r.Explore.exhausted_budget;
  check Alcotest.int "nothing pruned without dedup" 0
    (r.Explore.pruned_states + r.Explore.pruned_commutes);
  (* Two processes that never touch shared state commute everywhere:
     with pruning on, one representative interleaving proves them all. *)
  let p =
    Explore.exhaustive ~max_steps:20 ~make:(make_yields [| 2; 2 |])
      ~property:ok_prop ()
  in
  check Alcotest.int "pruned to one representative" 1 p.Explore.explored;
  Alcotest.(check bool) "pruning accounted" true
    (p.Explore.pruned_states + p.Explore.pruned_commutes > 0)

let counts_with_crash () =
  (* One process, one op: schedules are [S;S], [S;X], [X]. *)
  let r =
    Explore.exhaustive ~max_crashes:1 ~max_steps:20 ~make:(make_yields [| 1 |])
      ~property:ok_prop ()
  in
  check Alcotest.int "three schedules" 3 r.Explore.explored

let finds_failure () =
  (* Property rejecting any crash: found on the crashing branch. *)
  let property run =
    if run.Explore.crashed = [] then Ok () else Error "crashed"
  in
  let r =
    Explore.exhaustive ~max_crashes:1 ~max_steps:20 ~make:(make_yields [| 1 |])
      ~property ()
  in
  match r.Explore.counterexample with
  | Some (run, "crashed") ->
      check Alcotest.(list int) "the victim" [ 0 ] run.Explore.crashed
  | Some _ | None -> Alcotest.fail "expected a counterexample"

let truncation_flag () =
  let spin = Prog.loop (fun () -> Prog.map (fun () -> `Again ()) Prog.yield) () in
  let seen_truncated = ref false in
  let property run =
    if run.Explore.truncated then seen_truncated := true;
    Ok ()
  in
  let make () = (Env.create ~nprocs:1 ~x:1 (), [| spin |]) in
  let r = Explore.exhaustive ~max_steps:5 ~make ~property () in
  check Alcotest.int "single truncated run" 1 r.Explore.explored;
  Alcotest.(check bool) "flagged" true !seen_truncated

let budget_flag () =
  let r =
    Explore.exhaustive ~dedup:false ~max_runs:5 ~max_steps:30
      ~make:(make_yields [| 3; 3; 3 |])
      ~property:ok_prop ()
  in
  Alcotest.(check bool) "budget exhausted" true r.Explore.exhausted_budget;
  check Alcotest.int "stopped at budget" 5 r.Explore.explored

let branches_isolated () =
  (* Writes on one branch must not leak into a sibling branch: every
     complete 2-process run sees exactly its own interleaving. *)
  let prog pid =
    let* () = Prog.snap_set Codec.int "m" [] (pid + 1) in
    let* view = Prog.snap_scan Codec.int "m" [] in
    let sum =
      Array.fold_left
        (fun acc e -> match e with None -> acc | Some v -> acc + v)
        0 view
    in
    Prog.return (Codec.int.Codec.inj sum)
  in
  let make () = (Env.create ~nprocs:2 ~x:1 (), [| prog 0; prog 1 |]) in
  let property run =
    (* Each decided sum is 1, 2 or 3, and the process's own write is
       always included (sum >= pid+1 cannot be checked per pid here, but
       a leaked write would produce sums > 3 after copy bugs). *)
    let sums =
      Array.to_list run.Explore.outcomes
      |> List.filter_map (function
           | Exec.Decided u -> Some (Codec.int.Codec.prj u)
           | Exec.Crashed | Exec.Blocked | Exec.Stuck -> None)
    in
    if List.for_all (fun s -> s >= 1 && s <= 3) sums then Ok ()
    else Error "state leaked across branches"
  in
  let r = Explore.exhaustive ~max_steps:12 ~make ~property () in
  Alcotest.(check bool) "no leak" true (r.Explore.counterexample = None);
  Alcotest.(check bool) "several schedules" true (r.Explore.explored > 1)

let suite =
  [
    ( "svm.explore",
      [
        Alcotest.test_case "interleaving count" `Quick counts_two_procs;
        Alcotest.test_case "crash branching count" `Quick counts_with_crash;
        Alcotest.test_case "finds failures" `Quick finds_failure;
        Alcotest.test_case "truncation" `Quick truncation_flag;
        Alcotest.test_case "run budget" `Quick budget_flag;
        Alcotest.test_case "branch isolation" `Quick branches_isolated;
      ] );
  ]
