(* Svm.Json as a wire codec: the dist protocol feeds it bytes from
   arbitrary peers, so parsing must be total — typed errors on
   malformed, truncated, non-finite and absurdly nested input, never an
   exception and never an unbounded allocation — and printing must
   round-trip everything the protocol emits. *)

open Svm

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* generators                                                           *)
(* ------------------------------------------------------------------ *)

let scalar_gen =
  let open QCheck.Gen in
  oneof
    [
      return Json.Null;
      map (fun b -> Json.Bool b) bool;
      map (fun i -> Json.Int i) int;
      (* Finite floats only: the emitter maps non-finite to null. *)
      map (fun f -> Json.Float f) (float_bound_inclusive 1e9);
      map (fun s -> Json.String s) (string_size (int_bound 20));
    ]

let json_gen =
  let open QCheck.Gen in
  sized_size (int_bound 4) @@ fix (fun self n ->
      if n = 0 then scalar_gen
      else
        frequency
          [
            (2, scalar_gen);
            ( 1,
              map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)))
            );
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4)
                   (pair (string_size (int_bound 8)) (self (n / 2)))) );
          ])

let json_arb = QCheck.make ~print:Json.to_string json_gen

(* ------------------------------------------------------------------ *)
(* properties                                                           *)
(* ------------------------------------------------------------------ *)

let rec canon = function
  (* What a round-trip is allowed to change: nothing. (Floats with an
     integral value print as "x.0" and re-parse as Float, so even those
     survive; duplicate object keys are kept as-is by the parser.) *)
  | (Json.Null | Json.Bool _ | Json.Int _ | Json.String _) as v -> v
  | Json.Float f -> Json.Float f
  | Json.List l -> Json.List (List.map canon l)
  | Json.Obj kvs -> Json.Obj (List.map (fun (k, v) -> (k, canon v)) kvs)

let roundtrip =
  QCheck.Test.make ~count:500 ~name:"to_string |> of_string round-trips"
    json_arb (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> canon v = canon v'
      | Error e -> QCheck.Test.fail_reportf "did not parse back: %s" e)

let pretty_roundtrip =
  QCheck.Test.make ~count:200 ~name:"pretty printing parses back too"
    json_arb (fun v ->
      match Json.of_string (Json.to_string ~pretty:true v) with
      | Ok v' -> canon v = canon v'
      | Error e -> QCheck.Test.fail_reportf "did not parse back: %s" e)

(* Arbitrary bytes — and mutilated valid documents — must produce a
   typed result, never an exception. *)
let no_raise_on_garbage =
  QCheck.Test.make ~count:1000 ~name:"of_string never raises on garbage"
    QCheck.(string_gen QCheck.Gen.char)
    (fun s ->
      match Json.of_string s with Ok _ | Error _ -> true)

let no_raise_on_truncated =
  QCheck.Test.make ~count:500 ~name:"of_string never raises on truncations"
    QCheck.(pair json_arb small_nat)
    (fun (v, k) ->
      let s = Json.to_string v in
      let s = String.sub s 0 (min k (String.length s)) in
      match Json.of_string s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* hostile-input unit cases                                             *)
(* ------------------------------------------------------------------ *)

let is_error what = function
  | Error _ -> ()
  | Ok v ->
      Alcotest.failf "%s unexpectedly parsed as %s" what (Json.to_string v)

let deep_nesting () =
  (* 100k unclosed brackets: a naive recursive-descent parser blows the
     stack here. Must come back as a typed error, fast. *)
  is_error "100k open brackets" (Json.of_string (String.make 100_000 '['));
  is_error "100k open braces" (Json.of_string (String.make 100_000 '{'));
  let deep_closed =
    String.make 2_000 '[' ^ "1" ^ String.make 2_000 ']'
  in
  is_error "2k-deep closed nesting" (Json.of_string deep_closed);
  (* ... while nesting below the cap still parses. *)
  let ok_depth = Json.max_depth - 2 in
  let shallow = String.make ok_depth '[' ^ "1" ^ String.make ok_depth ']' in
  match Json.of_string shallow with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "nesting below the cap rejected: %s" e

let non_finite () =
  is_error "1e999" (Json.of_string "1e999");
  is_error "-1e999" (Json.of_string "[-1e999]");
  (* Literal forms of non-finite numbers are not JSON at all. *)
  is_error "nan" (Json.of_string "nan");
  is_error "inf" (Json.of_string "inf");
  (* And the emitter never produces them: non-finite floats go to null,
     so emitted output always re-parses. *)
  Alcotest.(check string)
    "nan emits null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "inf emits null" "[null]"
    (Json.to_string (Json.List [ Json.Float Float.infinity ]))

let malformed_table () =
  List.iter
    (fun s -> is_error (Printf.sprintf "%S" s) (Json.of_string s))
    [
      "";
      "   ";
      "{";
      "}";
      "[1,";
      "[1 2]";
      "{\"a\":}";
      "{\"a\" 1}";
      "{a:1}";
      "\"unterminated";
      "\"bad escape \\q\"";
      "tru";
      "truefalse";
      "- 1";
      "[1],";
      "{\"a\":1}{\"b\":2}";
      "\xff\xfe";
    ]

(* ------------------------------------------------------------------ *)
(* the frame layer over the codec: incremental decoding must be
   insensitive to how a peer's writes chunk the byte stream, and an
   incomplete frame must die on its stall deadline — with a pinned
   clock, so the tests are exact, not sleep-based                       *)
(* ------------------------------------------------------------------ *)

let encode_all vs =
  String.concat ""
    (List.map (fun v -> Bytes.to_string (Dist.Frame.encode v)) vs)

(* Drain every complete frame; any decoder error fails the test. *)
let drain dec =
  let rec go acc =
    match Dist.Frame.next dec with
    | Ok (Some v) -> go (v :: acc)
    | Ok None -> List.rev acc
    | Error e -> Alcotest.failf "decoder error: %a" Dist.Frame.pp_error e
  in
  go []

let frames_equal vs got =
  Alcotest.(check (list string))
    "decoded frames"
    (List.map Json.to_string vs)
    (List.map Json.to_string got)

let frame_byte_at_a_time () =
  let vs =
    [
      Json.Null;
      Json.Int 42;
      Json.String "shard";
      Json.List [ Json.Int 1; Json.Bool false; Json.String "" ];
      Json.Obj [ ("payload", Json.List [ Json.Int 7 ]); ("v", Json.Null) ];
    ]
  in
  let wire = encode_all vs in
  let dec = Dist.Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      Dist.Frame.feed dec (Bytes.make 1 c) 1;
      got := !got @ drain dec)
    wire;
  frames_equal vs !got;
  Alcotest.(check int) "no leftover bytes" 0 (Dist.Frame.pending dec)

(* Interleaved partial writes: the same frames, cut wherever the chunk
   schedule says — a syscall boundary is never a frame boundary. *)
let frame_chunking =
  QCheck.Test.make ~count:300 ~name:"frame decoding is chunk-insensitive"
    QCheck.(pair (small_list json_arb) (small_list small_nat))
    (fun (vs, cuts) ->
      let wire = encode_all vs in
      let n = String.length wire in
      let cuts = List.map (fun c -> 1 + (c mod 9)) (if cuts = [] then [ 3 ] else cuts) in
      let dec = Dist.Frame.decoder () in
      let got = ref [] in
      let rec go i k =
        if i < n then begin
          let len = min (List.nth cuts (k mod List.length cuts)) (n - i) in
          Dist.Frame.feed dec (Bytes.of_string (String.sub wire i len)) len;
          got := !got @ drain dec;
          go (i + len) (k + 1)
        end
      in
      go 0 0;
      List.map Json.to_string !got = List.map (fun v -> Json.to_string (canon v)) vs
      && Dist.Frame.pending dec = 0)

let frame_stall_deadline () =
  let dec = Dist.Frame.decoder ~stall_timeout:5.0 () in
  let wire = Dist.Frame.encode (Json.String "slow-loris") in
  let part = Bytes.length wire - 1 in
  Dist.Frame.feed ~now:0.0 dec wire part;
  (match Dist.Frame.next ~now:4.9 dec with
  | Ok None -> ()
  | Ok (Some _) | Error _ ->
      Alcotest.fail "incomplete frame inside its deadline must just wait");
  match Dist.Frame.next ~now:5.1 dec with
  | Error (Dist.Frame.Stalled n) ->
      Alcotest.(check int) "received byte count reported" part n
  | Ok _ | Error _ ->
      Alcotest.fail "incomplete frame past its deadline must be Stalled"

let frame_stall_restarts_at_boundary () =
  (* The deadline clocks one frame, not the connection: a prompt frame
     drained at t=100 must not inherit the age of one fed at t=0. *)
  let dec = Dist.Frame.decoder ~stall_timeout:5.0 () in
  let a = Dist.Frame.encode (Json.Int 1) in
  Dist.Frame.feed ~now:0.0 dec a (Bytes.length a);
  (match Dist.Frame.next ~now:100.0 dec with
  | Ok (Some (Json.Int 1)) -> ()
  | _ -> Alcotest.fail "complete frame must decode regardless of age");
  let b = Dist.Frame.encode (Json.Int 2) in
  Dist.Frame.feed ~now:100.0 dec b 3;
  (match Dist.Frame.next ~now:104.0 dec with
  | Ok None -> ()
  | _ -> Alcotest.fail "fresh frame's deadline starts at its first byte");
  Dist.Frame.feed ~now:104.0 dec
    (Bytes.sub b 3 (Bytes.length b - 3))
    (Bytes.length b - 3);
  match Dist.Frame.next ~now:104.5 dec with
  | Ok (Some (Json.Int 2)) -> ()
  | _ -> Alcotest.fail "completed frame must decode inside the deadline"

(* Garbage after the length header must come back as a typed Bad_json,
   and an absurd declared length as Oversized — never an exception. *)
let frame_hostile_bytes () =
  let dec = Dist.Frame.decoder () in
  let junk = Bytes.of_string "\x00\x00\x00\x04@#$%" in
  Dist.Frame.feed dec junk (Bytes.length junk);
  (match Dist.Frame.next dec with
  | Error (Dist.Frame.Bad_json _) -> ()
  | _ -> Alcotest.fail "non-JSON payload must be Bad_json");
  let dec = Dist.Frame.decoder ~max_len:1024 () in
  let huge = Bytes.of_string "\x7f\xff\xff\xff" in
  Dist.Frame.feed dec huge 4;
  match Dist.Frame.next dec with
  | Error (Dist.Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized declared length must be rejected"

let suite =
  [
    ( "json-wire",
      [
        Alcotest.test_case "hostile nesting depth" `Quick deep_nesting;
        Alcotest.test_case "non-finite numbers" `Quick non_finite;
        Alcotest.test_case "malformed-input table" `Quick malformed_table;
        to_alcotest roundtrip;
        to_alcotest pretty_roundtrip;
        to_alcotest no_raise_on_garbage;
        to_alcotest no_raise_on_truncated;
        Alcotest.test_case "frame decoder, byte at a time" `Quick
          frame_byte_at_a_time;
        to_alcotest frame_chunking;
        Alcotest.test_case "frame stall deadline (pinned clock)" `Quick
          frame_stall_deadline;
        Alcotest.test_case "frame stall clock restarts per frame" `Quick
          frame_stall_restarts_at_boundary;
        Alcotest.test_case "frame hostile bytes are typed errors" `Quick
          frame_hostile_bytes;
      ] );
  ]
