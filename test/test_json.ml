(* Svm.Json as a wire codec: the dist protocol feeds it bytes from
   arbitrary peers, so parsing must be total — typed errors on
   malformed, truncated, non-finite and absurdly nested input, never an
   exception and never an unbounded allocation — and printing must
   round-trip everything the protocol emits. *)

open Svm

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* generators                                                           *)
(* ------------------------------------------------------------------ *)

let scalar_gen =
  let open QCheck.Gen in
  oneof
    [
      return Json.Null;
      map (fun b -> Json.Bool b) bool;
      map (fun i -> Json.Int i) int;
      (* Finite floats only: the emitter maps non-finite to null. *)
      map (fun f -> Json.Float f) (float_bound_inclusive 1e9);
      map (fun s -> Json.String s) (string_size (int_bound 20));
    ]

let json_gen =
  let open QCheck.Gen in
  sized_size (int_bound 4) @@ fix (fun self n ->
      if n = 0 then scalar_gen
      else
        frequency
          [
            (2, scalar_gen);
            ( 1,
              map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)))
            );
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4)
                   (pair (string_size (int_bound 8)) (self (n / 2)))) );
          ])

let json_arb = QCheck.make ~print:Json.to_string json_gen

(* ------------------------------------------------------------------ *)
(* properties                                                           *)
(* ------------------------------------------------------------------ *)

let rec canon = function
  (* What a round-trip is allowed to change: nothing. (Floats with an
     integral value print as "x.0" and re-parse as Float, so even those
     survive; duplicate object keys are kept as-is by the parser.) *)
  | (Json.Null | Json.Bool _ | Json.Int _ | Json.String _) as v -> v
  | Json.Float f -> Json.Float f
  | Json.List l -> Json.List (List.map canon l)
  | Json.Obj kvs -> Json.Obj (List.map (fun (k, v) -> (k, canon v)) kvs)

let roundtrip =
  QCheck.Test.make ~count:500 ~name:"to_string |> of_string round-trips"
    json_arb (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> canon v = canon v'
      | Error e -> QCheck.Test.fail_reportf "did not parse back: %s" e)

let pretty_roundtrip =
  QCheck.Test.make ~count:200 ~name:"pretty printing parses back too"
    json_arb (fun v ->
      match Json.of_string (Json.to_string ~pretty:true v) with
      | Ok v' -> canon v = canon v'
      | Error e -> QCheck.Test.fail_reportf "did not parse back: %s" e)

(* Arbitrary bytes — and mutilated valid documents — must produce a
   typed result, never an exception. *)
let no_raise_on_garbage =
  QCheck.Test.make ~count:1000 ~name:"of_string never raises on garbage"
    QCheck.(string_gen QCheck.Gen.char)
    (fun s ->
      match Json.of_string s with Ok _ | Error _ -> true)

let no_raise_on_truncated =
  QCheck.Test.make ~count:500 ~name:"of_string never raises on truncations"
    QCheck.(pair json_arb small_nat)
    (fun (v, k) ->
      let s = Json.to_string v in
      let s = String.sub s 0 (min k (String.length s)) in
      match Json.of_string s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* hostile-input unit cases                                             *)
(* ------------------------------------------------------------------ *)

let is_error what = function
  | Error _ -> ()
  | Ok v ->
      Alcotest.failf "%s unexpectedly parsed as %s" what (Json.to_string v)

let deep_nesting () =
  (* 100k unclosed brackets: a naive recursive-descent parser blows the
     stack here. Must come back as a typed error, fast. *)
  is_error "100k open brackets" (Json.of_string (String.make 100_000 '['));
  is_error "100k open braces" (Json.of_string (String.make 100_000 '{'));
  let deep_closed =
    String.make 2_000 '[' ^ "1" ^ String.make 2_000 ']'
  in
  is_error "2k-deep closed nesting" (Json.of_string deep_closed);
  (* ... while nesting below the cap still parses. *)
  let ok_depth = Json.max_depth - 2 in
  let shallow = String.make ok_depth '[' ^ "1" ^ String.make ok_depth ']' in
  match Json.of_string shallow with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "nesting below the cap rejected: %s" e

let non_finite () =
  is_error "1e999" (Json.of_string "1e999");
  is_error "-1e999" (Json.of_string "[-1e999]");
  (* Literal forms of non-finite numbers are not JSON at all. *)
  is_error "nan" (Json.of_string "nan");
  is_error "inf" (Json.of_string "inf");
  (* And the emitter never produces them: non-finite floats go to null,
     so emitted output always re-parses. *)
  Alcotest.(check string)
    "nan emits null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "inf emits null" "[null]"
    (Json.to_string (Json.List [ Json.Float Float.infinity ]))

let malformed_table () =
  List.iter
    (fun s -> is_error (Printf.sprintf "%S" s) (Json.of_string s))
    [
      "";
      "   ";
      "{";
      "}";
      "[1,";
      "[1 2]";
      "{\"a\":}";
      "{\"a\" 1}";
      "{a:1}";
      "\"unterminated";
      "\"bad escape \\q\"";
      "tru";
      "truefalse";
      "- 1";
      "[1],";
      "{\"a\":1}{\"b\":2}";
      "\xff\xfe";
    ]

let suite =
  [
    ( "json-wire",
      [
        Alcotest.test_case "hostile nesting depth" `Quick deep_nesting;
        Alcotest.test_case "non-finite numbers" `Quick non_finite;
        Alcotest.test_case "malformed-input table" `Quick malformed_table;
        to_alcotest roundtrip;
        to_alcotest pretty_roundtrip;
        to_alcotest no_raise_on_garbage;
        to_alcotest no_raise_on_truncated;
      ] );
  ]
