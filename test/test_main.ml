let () =
  Alcotest.run "multiplicative-power-of-consensus-numbers"
    (Test_svm.suite @ Test_svm2.suite @ Test_explore.suite
   @ Test_explore_par.suite @ Test_objects.suite
   @ Test_model.suite @ Test_algorithms.suite @ Test_bg.suite
   @ Test_universal.suite @ Test_extensions.suite @ Test_adversary.suite
   @ Test_replay.suite @ Test_monitors.suite @ Test_faults.suite
   @ Test_metrics.suite @ Test_timeline.suite @ Test_props.suite
   @ Test_json.suite @ Test_log.suite @ Test_dist.suite @ Test_net.suite
   @ Test_corpus.suite @ Test_sdl.suite @ Test_cli_exit.suite)
