(* The one exit-code convention of the asmsim binary, asserted against
   the real executable: 0 clean, 1 finding, 2 usage-or-input error,
   3 internal/distributed failure. Every row forks ../bin/asmsim.exe
   (a dune dep of this test) through /bin/sh. *)

let exe = Unix.realpath "../bin/asmsim.exe"

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let run_case args =
  let cmd = Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote exe) args in
  match Unix.system cmd with
  | Unix.WEXITED code -> code
  | Unix.WSIGNALED s -> Alcotest.failf "killed by signal %d" s
  | Unix.WSTOPPED s -> Alcotest.failf "stopped by signal %d" s

let table =
  [
    (* 0 — clean *)
    ("canonical 3,1,1", 0);
    ("classes -t 4 --x-max 5", 0);
    ("sweep --algo safe_agreement --runs 200 --out " ^ tmp "cli0.replay", 0);
    ( "sweep --algo safe_agreement_no_cancel --expect-violation --out "
      ^ tmp "cli1.replay",
      0 );
    (* --jobs 0 = one domain per core, on both fan-out subcommands *)
    ("sweep --algo safe_agreement --runs 200 --jobs 0 --out "
     ^ tmp "cli4.replay", 0);
    ( "explore --algo safe_agreement_no_cancel --expect-violation --jobs 0",
      0 );
    (* the DSL surface: check/compile/fmt on the shipped examples, a
       sweep of a scenario file, and the registry listing *)
    ("sdl check ../examples/x_safe_agreement.sdl", 0);
    ("sdl compile ../examples/safe_agreement_no_cancel.sdl", 0);
    ("sdl fmt ../examples/x_safe_agreement_first_subset.sdl", 0);
    ( "sweep --scenario-file ../examples/x_safe_agreement.sdl --out "
      ^ tmp "cli5.replay",
      0 );
    ("scenarios", 0);
    ("scenarios --json --scenario-dir ../examples", 0);
    ("stats --scenario-file ../examples/safe_agreement_no_cancel.sdl --json", 0);
    (* 1 — finding *)
    ("sweep --algo safe_agreement_no_cancel --out " ^ tmp "cli2.replay", 1);
    ("explore --algo safe_agreement_no_cancel --crashes 1", 1);
    (* 2 — usage or input error *)
    ("definitely-not-a-subcommand", 2);
    ("canonical", 2);
    ("canonical not-a-model", 2);
    ("sweep --algo safe_agreement --no-such-flag", 2);
    ("run-task --task nope", 2);
    ("simulate --task nope --target 3,1,1", 2);
    ("experiment NO_SUCH_EXPERIMENT", 2);
    ("sweep --algo no_such_scenario", 2);
    (* resize below the scenario's minimum names the valid range *)
    ("sweep --algo safe_agreement -n 1", 2);
    ("explore --algo x_safe_agreement_first_subset -n 3", 2);
    (* neither --algo nor --scenario-file *)
    ("sweep", 2);
    ("soak --until 10", 2);
    ("sweep --scenario-file /no/such/file.sdl", 2);
    (* a file that is not DSL at all still fails with a typed parse
       error, not an exception *)
    ("sdl check ../bin/asmsim.exe", 2);
    ("sdl fmt /no/such/file.sdl", 2);
    ("stats ../examples/x_safe_agreement.sdl --algo safe_agreement", 2);
    ("sweep --algo safe_agreement --tiers gamma-rays", 2);
    ("explore --algo no_such_scenario", 2);
    ("replay /no/such/file.replay", 2);
    ("serve --resume no-such-job --journal-dir /tmp/asmsim-cli-nojobs", 2);
    ("stats", 2);
    (* 3 — internal / distributed failure *)
    ( "sweep --algo safe_agreement_no_cancel --dist 2 --resume no-such-job \
       --journal-dir /tmp/asmsim-cli-nojobs --out " ^ tmp "cli3.replay",
      3 );
  ]

let exit_codes () =
  List.iter
    (fun (args, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "asmsim %s" args)
        expected (run_case args))
    table

let suite =
  [ ("cli-exit", [ Alcotest.test_case "exit-code table" `Quick exit_codes ]) ]
