(* Timelines (Svm.Timeline): trace -> spans/instants, the causality
   pass, the Chrome export and its validator, and truncation honesty.

   Uses a real recorded run (safe agreement under an injected crash) so
   the decision log and event list correlate exactly as in production,
   plus hand-built traces for the truncation edge cases. *)

open Svm
open Svm.Prog.Syntax

let sa_make () =
  let env = Env.create ~nprocs:3 ~x:1 () in
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let prog i =
    let* () =
      Shared_objects.Safe_agreement.propose sa ~key:[] (Codec.int.Codec.inj i)
    in
    Shared_objects.Safe_agreement.decide sa ~key:[]
  in
  (env, Array.init 3 prog)

let crashed_run () =
  let env, progs = sa_make () in
  (* Crash p1 before its first operation: it never enters the protocol,
     so the others still decide and the run terminates. *)
  let adversary =
    Adversary.with_faults
      (Adversary.round_robin ())
      [
        {
          Adversary.kind = Adversary.Crash_stop;
          trigger = Adversary.Crash_at_local { pid = 1; step = 0 };
        };
      ]
  in
  let r = Exec.run ~budget:10_000 ~record_trace:true ~env ~adversary progs in
  match r.Exec.trace with
  | Some t -> (r, t)
  | None -> Alcotest.fail "no trace recorded"

let test_of_trace () =
  let r, trace = crashed_run () in
  let tl = Timeline.of_trace ~nprocs:3 trace in
  Alcotest.(check int) "nprocs" 3 tl.Timeline.nprocs;
  Alcotest.(check int) "nothing dropped" 0 tl.Timeline.dropped;
  (* One span per executed operation: op_counts sums over live pids. *)
  let ops = Array.fold_left ( + ) 0 r.Exec.op_counts in
  Alcotest.(check int) "one span per op" ops (List.length tl.Timeline.spans);
  (match tl.Timeline.instants with
  | [ i ] ->
      Alcotest.(check int) "crash instant pid" 1 i.Timeline.pid;
      Alcotest.(check string)
        "crash instant kind" "crash"
        (Timeline.fault_name i.Timeline.fault)
  | l -> Alcotest.failf "expected 1 instant, got %d" (List.length l));
  Alcotest.(check (list int)) "pids cover the run" [ 0; 1; 2 ]
    (Timeline.pids tl)

let test_causality () =
  let _, trace = crashed_run () in
  let tl = Timeline.of_trace ~nprocs:3 trace in
  let c = Timeline.causality tl in
  Alcotest.(check int) "span count" (List.length tl.Timeline.spans)
    c.Timeline.span_count;
  Alcotest.(check bool) "critical path within [1, spans]" true
    (c.Timeline.critical_path >= 1
    && c.Timeline.critical_path <= c.Timeline.span_count);
  Alcotest.(check bool) "parallelism >= 1" true (c.Timeline.parallelism >= 1.0);
  match c.Timeline.hot with
  | [] -> Alcotest.fail "no hot instances on a run that touched objects"
  | h :: _ ->
      Alcotest.(check bool) "hottest instance was accessed" true
        (h.Timeline.accesses >= 1);
      Alcotest.(check bool) "contention bounded by nprocs" true
        (h.Timeline.distinct_pids >= 1 && h.Timeline.distinct_pids <= 3)

let test_chrome_roundtrip () =
  let _, trace = crashed_run () in
  let tl = Timeline.of_trace ~nprocs:3 trace in
  let json = Timeline.to_chrome ~meta:[ ("scenario", "test") ] tl in
  (* The export must survive its own serialization... *)
  let reparsed =
    match Json.of_string (Json.to_string ~pretty:true json) with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome JSON does not reparse: %s" e
  in
  (* ... and satisfy the CI validator. *)
  match Timeline.validate_chrome reparsed with
  | Error e -> Alcotest.failf "validator rejects a fresh export: %s" e
  | Ok s ->
      Alcotest.(check int) "one fault instant" 1 s.Timeline.instants;
      Alcotest.(check int) "nothing dropped" 0 s.Timeline.dropped;
      List.iter
        (fun pid ->
          match List.assoc_opt pid s.Timeline.spans_per_pid with
          | Some n when n >= 1 -> ()
          | _ -> Alcotest.failf "pid %d has no spans in the export" pid)
        [ 0; 2 ]

let test_validator_rejects_malformed () =
  let check_rejected name json =
    match Timeline.validate_chrome json with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "validator accepted %s" name
  in
  check_rejected "a non-object" (Json.List []);
  check_rejected "missing traceEvents" (Json.Obj [ ("foo", Json.Int 1) ]);
  check_rejected "event without ph"
    (Json.Obj
       [ ("traceEvents", Json.List [ Json.Obj [ ("tid", Json.Int 0) ] ]) ]);
  (* An "X" span without ts/dur is structurally broken. *)
  check_rejected "span without ts"
    (Json.Obj
       [
         ( "traceEvents",
           Json.List
             [
               Json.Obj
                 [
                   ("ph", Json.String "X");
                   ("tid", Json.Int 0);
                   ("name", Json.String "op");
                 ];
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* Truncation honesty                                                   *)
(* ------------------------------------------------------------------ *)

let truncated_trace () =
  (* A tiny event buffer: the run outgrows it, so earlier events drop
     while the decision log stays complete. *)
  let t = Trace.create ~limit:4 () in
  let info = Some { Op.kind = Op.Register; fam = "R"; key = [] } in
  for step = 0 to 9 do
    Trace.record_decision t (Trace.Sched (step mod 2));
    Trace.add t { Trace.step; pid = step mod 2; info }
  done;
  t

let test_truncated_timeline () =
  let t = truncated_trace () in
  Alcotest.(check bool) "trace reports drops" true (Trace.dropped t > 0);
  let tl = Timeline.of_trace ~nprocs:2 t in
  Alcotest.(check int) "dropped propagates" (Trace.dropped t)
    tl.Timeline.dropped;
  (* Every export flags the truncation instead of looking complete. *)
  let text = Timeline.to_text tl in
  let csv = Timeline.to_csv tl in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "text warns" true (contains text "truncated");
  Alcotest.(check bool) "csv warns" true (contains csv "truncated");
  let chrome = Timeline.to_chrome tl in
  match Timeline.validate_chrome chrome with
  | Error e -> Alcotest.failf "validator rejects annotated truncation: %s" e
  | Ok s ->
      Alcotest.(check int) "chrome carries the dropped count"
        tl.Timeline.dropped s.Timeline.dropped

let test_trace_pp_truncation () =
  let t = truncated_trace () in
  let s = Format.asprintf "%a" Trace.pp t in
  Alcotest.(check bool) "Trace.pp announces truncation" true
    (String.length s > 0 && String.sub s 0 1 = "[")

(* ------------------------------------------------------------------ *)
(* Cross-process span merging                                           *)
(* ------------------------------------------------------------------ *)

let pspan proc phase job shard ts dur =
  {
    Timeline.ps_proc = proc;
    ps_phase = phase;
    ps_job = job;
    ps_shard = shard;
    ps_ts = ts;
    ps_dur = dur;
  }

(* The life of one shard across three OS processes, plus a second worker
   lane, like a 2-worker `sweep --connect' run. *)
let fleet_spans () =
  [
    pspan "serve:1" "admit" "job-a" (-1) 1000 5;
    pspan "serve:1" "dispatch" "job-a" 0 1010 2;
    pspan "worker:2" "receive" "job-a" 0 1020 1;
    pspan "worker:2" "execute" "job-a" 0 1021 400;
    pspan "worker:2" "reply" "job-a" 0 1421 3;
    pspan "serve:1" "merge" "job-a" 0 1430 4;
    pspan "worker:3" "execute" "job-a" 1 1050 200;
    pspan "client:4" "collect" "job-a" 0 1440 2;
  ]

let test_pspan_json_roundtrip () =
  let p = pspan "worker:9" "execute" "deadbeef" 3 123456 789 in
  (match Timeline.pspan_of_json (Timeline.pspan_to_json p) with
  | Ok p' -> Alcotest.(check bool) "round-trips" true (p = p')
  | Error e -> Alcotest.failf "pspan rejected its own JSON: %s" e);
  match Timeline.pspan_of_json (Json.Obj [ ("proc", Json.String "x") ]) with
  | Ok _ -> Alcotest.fail "incomplete span accepted"
  | Error _ -> ()

let test_merge_processes_lanes_and_validation () =
  let trace = Timeline.merge_processes (fleet_spans ()) in
  (* One lane per OS process, and the result must satisfy the same
     validator CI runs on single-process exports. *)
  (match Timeline.validate_chrome trace with
  | Error e -> Alcotest.failf "merged trace fails trace-check: %s" e
  | Ok s -> Alcotest.(check int) "no fault instants" 0 s.Timeline.instants);
  let other k =
    Option.bind (Json.member "otherData" trace) (Json.member k)
  in
  Alcotest.(check (option int))
    "one lane per process" (Some 4)
    (Option.bind (other "nprocs") Json.to_int);
  Alcotest.(check (option int))
    "every span survives" (Some 8)
    (Option.bind (other "spans") Json.to_int);
  Alcotest.(check (option string))
    "lane order is first appearance"
    (Some "serve:1,worker:2,worker:3,client:4")
    (Option.bind (other "processes") Json.to_str)

let test_merge_processes_critical_path () =
  let trace = Timeline.merge_processes (fleet_spans ()) in
  let cp =
    Option.value ~default:0
      (Option.bind
         (Option.bind (Json.member "otherData" trace)
            (Json.member "critical_path"))
         Json.to_int)
  in
  (* Shard 0's chain admit(5) -> dispatch(2) -> receive(1) -> execute(400)
     -> reply(3) -> merge(4) -> collect(2) dominates: the happens-before
     relation chains across lanes through the (job, shard) key. The
     serve lane also prepends admit(5)+dispatch(2) in program order;
     either way the heaviest chain is 417 µs. Worker 3's 200 µs shard-1
     execute must NOT extend it (different shard, different lane). *)
  Alcotest.(check int) "critical path chains across the wire" 417 cp

let test_merge_processes_empty () =
  let trace = Timeline.merge_processes [] in
  match Timeline.validate_chrome trace with
  | Error e -> Alcotest.failf "empty merge fails validation: %s" e
  | Ok s -> Alcotest.(check int) "no events" 0 s.Timeline.events

let suite =
  [
    ( "timeline",
      [
        Alcotest.test_case "trace -> spans + instants" `Quick test_of_trace;
        Alcotest.test_case "causality: critical path and hot instances"
          `Quick test_causality;
        Alcotest.test_case "chrome export round-trips the validator" `Quick
          test_chrome_roundtrip;
        Alcotest.test_case "validator rejects malformed traces" `Quick
          test_validator_rejects_malformed;
        Alcotest.test_case "truncation is flagged in every export" `Quick
          test_truncated_timeline;
        Alcotest.test_case "Trace.pp announces truncation" `Quick
          test_trace_pp_truncation;
        Alcotest.test_case "pspan JSON round-trip" `Quick
          test_pspan_json_roundtrip;
        Alcotest.test_case "merge_processes: lanes + validator" `Quick
          test_merge_processes_lanes_and_validation;
        Alcotest.test_case "merge_processes: cross-process critical path"
          `Quick test_merge_processes_critical_path;
        Alcotest.test_case "merge_processes: empty input" `Quick
          test_merge_processes_empty;
      ] );
  ]
