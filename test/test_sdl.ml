(* The Scenario DSL front to back: the parser's golden shapes and typed
   failures (never exceptions, even on garbage), the validator's
   rejection table, the fmt -> parse round-trip law on generated
   scenarios, and the compiled-twin differentials — a DSL transcription
   of a builtin scenario must sweep to the byte-identical outcome,
   replay artifact included. *)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Sdl.Ast.error_to_string e)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

let parse_ok src = ok_or_fail (Sdl.Parser.parse src)

let golden_src =
  {|# a comment
scenario "golden" {
  doc "the parser golden"
  nprocs 3 min 2
  x 2
  explore_steps 8
  objects {
    reg R
    xsa X2 x 2 first_subset_only
    sa SA no_cancel
  }
  process 0 .. 1 {
    write R [] (pid * 2)
    repeat 2 {
      propose X2 [1] pid
    }
    let v = decide X2 [1]
    decide v + 1
  }
  process 2 {
    let w = read R [] default 7
    decide w
  }
  property agreement in 0 .. nprocs
  property stall_bound "X2" bound 3
}|}

let parser_golden () =
  let sc = parse_ok golden_src in
  Alcotest.(check string) "name" "golden" sc.Sdl.Ast.sc_name;
  Alcotest.(check string) "doc" "the parser golden" sc.Sdl.Ast.sc_doc;
  Alcotest.(check int) "nprocs" 3 sc.Sdl.Ast.sc_nprocs;
  Alcotest.(check int) "min" 2 sc.Sdl.Ast.sc_min_nprocs;
  Alcotest.(check int) "x" 2 sc.Sdl.Ast.sc_x;
  Alcotest.(check bool) "seeded_bug" false sc.Sdl.Ast.sc_seeded_bug;
  Alcotest.(check int) "explore_steps" 8 sc.Sdl.Ast.sc_explore_steps;
  Alcotest.(check int) "objects" 3 (List.length sc.Sdl.Ast.sc_objects);
  Alcotest.(check int) "blocks" 2 (List.length sc.Sdl.Ast.sc_procs);
  Alcotest.(check int) "props" 2 (List.length sc.Sdl.Ast.sc_props);
  (match (List.nth sc.Sdl.Ast.sc_objects 1).Sdl.Ast.o_kind with
  | Sdl.Ast.Xsa { x; first_subset_only; static_owners } ->
      Alcotest.(check int) "xsa x" 2 x;
      Alcotest.(check bool) "xsa fso" true first_subset_only;
      Alcotest.(check bool) "xsa static" false static_owners
  | _ -> Alcotest.fail "second object should be an xsa");
  match (List.hd sc.Sdl.Ast.sc_procs).Sdl.Ast.pb_sel with
  | Sdl.Ast.Range (0, 1) -> ()
  | _ -> Alcotest.fail "first block should select 0 .. 1"

(* Broken sources and a substring their error must mention. Every row
   must come back [Error] — an exception is a test failure. *)
let parse_reject_table =
  [
    ("", "scenario");
    ("scenario {", "name");
    ("scenario \"a\" { x 1 }", "nprocs");
    ("scenario \"a\" { nprocs 2 }", "x");
    ("scenario \"a\" { nprocs 2 x 1 objects { reg pid } process all { decide \
      0 } property agreement in 0 .. 1 }", "cannot be used as an object name");
    ("scenario \"a\" { nprocs 2 x 1 process all { decide 0 } property \
      agreement in 0 .. 1 } trailing", "trailing input");
    ("scenario \"a\" { nprocs 2 x 1 frobnicate 3 }", "frobnicate");
    ("scenario \"a\" { nprocs 2 x 1 objects { gadget G } }", "gadget");
  ]

let parser_rejects () =
  List.iter
    (fun (src, needle) ->
      match Sdl.Parser.parse src with
      | Ok _ -> Alcotest.failf "accepted: %s" src
      | Error e ->
          let msg = Sdl.Ast.error_to_string e in
          if not (contains ~needle msg) then
            Alcotest.failf "error %S lacks %S" msg needle)
    parse_reject_table

(* A bare object decide at statement level (the shape Pretty prints for
   an unbound [Decide_obj]) parses, its result dropped — pinning the
   parse(to_string sc) = sc contract for programmatically built ASTs. *)
let parser_bare_object_decide () =
  let sc =
    parse_ok
      "scenario \"a\" { nprocs 2 x 1 objects { sa S } process all { propose \
       S [] pid decide S [] decide 0 } property agreement in 0 .. 1 }"
  in
  (match (List.hd sc.Sdl.Ast.sc_procs).Sdl.Ast.pb_body with
  | [ _; { Sdl.Ast.st_desc = Sdl.Ast.Call c; _ }; _ ] -> (
      match c.Sdl.Ast.c_desc with
      | Sdl.Ast.Decide_obj { obj = "S"; key = [] } -> ()
      | _ -> Alcotest.fail "second statement should be an object decide")
  | _ -> Alcotest.fail "expected three statements");
  ok_or_fail (Sdl.Validate.validate sc);
  (* and the printed form round-trips *)
  let printed = Sdl.Pretty.to_string sc in
  let sc' = parse_ok printed in
  if not (Sdl.Ast.equal_ignoring_spans sc sc') then
    Alcotest.failf "bare object decide does not round-trip:\n%s" printed

(* Structural nesting is depth-capped with a typed error — a wire
   client cannot drive the recursive-descent parser into
   Stack_overflow with nested parens or nested blocks. *)
let parser_depth_capped () =
  let wrap_expr n =
    Printf.sprintf
      "scenario \"a\" { nprocs 2 x 1 process all { decide %s0%s } property \
       agreement in 0 .. 1 }"
      (String.concat "" (List.init n (fun _ -> "(")))
      (String.concat "" (List.init n (fun _ -> ")")))
  in
  let wrap_blocks n =
    Printf.sprintf
      "scenario \"a\" { nprocs 2 x 1 process all { %syield%s decide 0 } \
       property agreement in 0 .. 1 }"
      (String.concat "" (List.init n (fun _ -> "repeat 2 { ")))
      (String.concat "" (List.init n (fun _ -> " }")))
  in
  (* comfortably inside the cap: accepted *)
  (match Sdl.Parser.parse (wrap_expr 20) with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "20 nested parens rejected: %s"
        (Sdl.Ast.error_to_string e));
  (* past the cap — including the tens-of-thousands range that used to
     overflow the stack — a typed error, never an exception *)
  List.iter
    (fun src ->
      match Sdl.Parser.parse src with
      | Ok _ -> Alcotest.fail "over-deep source accepted"
      | Error e ->
          let msg = Sdl.Ast.error_to_string e in
          if not (contains ~needle:"nest" msg) then
            Alcotest.failf "depth error %S lacks %S" msg "nest"
      | exception e ->
          Alcotest.failf "deep source raised %s" (Printexc.to_string e))
    [ wrap_expr 100; wrap_blocks 100; wrap_expr 30_000; wrap_blocks 8_000 ]

(* A deterministic little byte mangler: the parser (and lexer under it)
   must return typed errors on arbitrary input, never raise and never
   loop. Seeds a generator with chopped/spliced variants of the golden
   source plus raw noise. *)
let parser_never_raises () =
  let st = Random.State.make [| 0xfade; 17 |] in
  let noise len =
    String.init len (fun _ -> Char.chr (Random.State.int st 256))
  in
  let n = String.length golden_src in
  for i = 0 to 199 do
    let src =
      match i mod 4 with
      | 0 -> String.sub golden_src 0 (Random.State.int st (n + 1))
      | 1 ->
          let cut = Random.State.int st n in
          String.sub golden_src 0 cut ^ noise 5
          ^ String.sub golden_src cut (n - cut)
      | 2 -> noise (Random.State.int st 64)
      | _ ->
          String.map
            (fun c -> if Random.State.int st 10 = 0 then '"' else c)
            golden_src
    in
    match Sdl.Parser.parse src with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "parser raised %s on %S" (Printexc.to_string e) src
  done

(* Sources the parser accepts but the validator must reject, with a
   substring of the reason. *)
let validate_reject_table =
  [
    (* at least one property *)
    ("scenario \"a\" { nprocs 2 x 1 process all { decide pid } }", "property");
    (* duplicate object names *)
    ( "scenario \"a\" { nprocs 2 x 1 objects { reg R reg R } process all { \
       decide 0 } property agreement in 0 .. 1 }",
      "duplicate" );
    (* decide inside repeat *)
    ( {|scenario "a" { nprocs 2 x 1 process all { repeat 2 { decide 0 } }
        property agreement in 0 .. 1 }|},
      "inside 'repeat'" );
    (* decide buried in an if branch inside the repeat counts too *)
    ( {|scenario "a" { nprocs 2 x 1 process all {
          repeat 3 { if pid == 0 { decide 1 } } decide 0 }
        property agreement in 0 .. 1 }|},
      "inside 'repeat'" );
    (* nested repeats multiply past the unroll cap *)
    ( {|scenario "a" { nprocs 2 x 1 process all {
          repeat 255 { repeat 255 { yield } } decide 0 }
        property agreement in 0 .. 1 }|},
      "cap" );
    (* ... even when the naive product wraps the native int negative
       (255^8 overflows 63-bit ints): saturating arithmetic still
       rejects instead of silently accepting *)
    ( {|scenario "a" { nprocs 2 x 1 process all {
          repeat 255 { repeat 255 { repeat 255 { repeat 255 {
          repeat 255 { repeat 255 { repeat 255 { repeat 255 {
          yield } } } } } } } } decide 0 }
        property agreement in 0 .. 1 }|},
      "cap" );
    (* body must end decided *)
    ( {|scenario "a" { nprocs 2 x 1 objects { reg R } process all { write R [] 1 }
        property agreement in 0 .. 1 }|},
      "decide" );
    (* unbound variable *)
    ( {|scenario "a" { nprocs 2 x 1 process all { decide zig }
        property agreement in 0 .. 1 }|},
      "zig" );
    (* ts needs x >= 2 *)
    ( {|scenario "a" { nprocs 2 x 1 objects { ts T } process all { decide 0 }
        property agreement in 0 .. 1 }|},
      "x" );
    (* cons ports above the model arity *)
    ( {|scenario "a" { nprocs 2 x 1 objects { cons C ports 2 } process all { decide 0 }
        property agreement in 0 .. 1 }|},
      "port" );
    (* xsa arity above the model arity *)
    ( {|scenario "a" { nprocs 3 x 2 objects { xsa X x 3 } process all { decide 0 }
        property agreement in 0 .. 1 }|},
      "x" );
    (* op/kind mismatch: read on a queue *)
    ( {|scenario "a" { nprocs 2 x 2 objects { queue Q }
        process all { let v = read Q [] decide v }
        property agreement in 0 .. 1 }|},
      "read" );
    (* property ranges must be schedule-independent: no pid *)
    ( {|scenario "a" { nprocs 2 x 1 process all { decide 0 }
        property agreement in 0 .. pid }|},
      "pid" );
    (* coverage: two blocks claiming pid 1 *)
    ( {|scenario "a" { nprocs 3 x 1 process 0 .. 1 { decide 0 }
        process 1 .. 2 { decide 0 } property agreement in 0 .. 1 }|},
      "block" );
    (* coverage: pid 2 unclaimed *)
    ( {|scenario "a" { nprocs 3 x 1 process 0 .. 1 { decide 0 }
        property agreement in 0 .. 1 }|},
      "block" );
    (* port discipline: 2 unconditional proposers on a 1-port cons *)
    ( {|scenario "a" { nprocs 2 x 1 objects { cons C ports 1 }
        process all { let v = propose C [0] pid decide v }
        property agreement in 0 .. 1 }|},
      "port" );
  ]

let validator_rejects () =
  List.iter
    (fun (src, needle) ->
      let sc = parse_ok src in
      match Sdl.Validate.validate sc with
      | Ok () -> Alcotest.failf "validated: %s" src
      | Error e ->
          let msg = Sdl.Ast.error_to_string e in
          if not (contains ~needle msg) then
            Alcotest.failf "error %S lacks %S" msg needle)
    validate_reject_table

let validator_accepts_golden () =
  ok_or_fail (Sdl.Validate.validate (parse_ok golden_src))

(* fmt -> parse must be the identity up to spans, and generated
   scenarios must validate: the generator, printer, parser and
   validator agree on the language. *)
let roundtrip =
  QCheck.Test.make ~name:"fmt -> parse round-trips generated scenarios"
    ~count:200
    QCheck.(small_nat)
    (fun seed ->
      let sc = Sdl.Gen.scenario ~seed in
      (match Sdl.Validate.validate sc with
      | Ok () -> ()
      | Error e ->
          QCheck.Test.fail_reportf "generated scenario invalid: %s"
            (Sdl.Ast.error_to_string e));
      let printed = Sdl.Pretty.to_string sc in
      match Sdl.Parser.parse printed with
      | Error e ->
          QCheck.Test.fail_reportf "printed form does not parse: %s\n%s"
            (Sdl.Ast.error_to_string e) printed
      | Ok sc' ->
          if not (Sdl.Ast.equal_ignoring_spans sc sc') then
            QCheck.Test.fail_reportf "round-trip changed the scenario:\n%s"
              printed;
          (* and printing is a fixpoint: fmt(parse(fmt sc)) = fmt sc *)
          String.equal printed (Sdl.Pretty.to_string sc'))

(* ------------------------------------------------------------------ *)
(* Compiled-twin differentials: the DSL transcription of a builtin
   sweeps to the byte-identical outcome. [found.replay] is the whole
   replay artifact as bytes — comparing it transitively compares the
   violation, the shrunk schedule, the trace and the metadata. *)

let read_example name =
  let path = Filename.concat "../examples" name in
  In_channel.with_open_bin path In_channel.input_all

let ok_or_fail' = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let twin_outcome src_name builtin_name =
  let builtin = ok_or_fail' (Experiments.Scenario.find builtin_name)
  and dsl =
    ok_or_fail' (Experiments.Scenario.of_source (read_example src_name))
  in
  ( Experiments.Harness.sweep_scenario builtin,
    Experiments.Harness.sweep_scenario dsl )

let check_twin src_name builtin_name ~expect_found () =
  let b, d = twin_outcome src_name builtin_name in
  Alcotest.(check int) "runs" b.Svm.Explore.runs d.Svm.Explore.runs;
  Alcotest.(check bool)
    "exhausted" b.Svm.Explore.exhausted d.Svm.Explore.exhausted;
  match (b.Svm.Explore.found, d.Svm.Explore.found) with
  | None, None ->
      if expect_found then Alcotest.fail "expected both sweeps to find"
  | Some fb, Some fd ->
      if not expect_found then Alcotest.fail "expected both sweeps clean";
      Alcotest.(check string)
        "replay artifact bytes" fb.Svm.Explore.replay fd.Svm.Explore.replay;
      Alcotest.(check string)
        "violation message" fb.Svm.Explore.violation.Svm.Monitor.message
        fd.Svm.Explore.violation.Svm.Monitor.message
  | Some _, None -> Alcotest.fail "builtin found a violation, the twin did not"
  | None, Some _ -> Alcotest.fail "the twin found a violation, builtin did not"

(* The wire cap ([Dist.Proto] cannot depend on [Sdl], so the constant
   is duplicated) must stay equal to the compiler's. *)
let source_cap_pinned () =
  Alcotest.(check int)
    "Proto.max_source_bytes = Compile.max_source_bytes"
    Sdl.Compile.max_source_bytes Dist.Proto.max_source_bytes;
  let big =
    "scenario \"big\" { # " ^ String.make Sdl.Compile.max_source_bytes 'x'
  in
  match Sdl.Compile.load big with
  | Ok _ -> Alcotest.fail "oversized source compiled"
  | Error m ->
      if not (contains ~needle:"cap" m) then
        Alcotest.failf "cap error %S does not mention the cap" m

(* Scenario.find resolution: a registered DSL source shadows the builtin
   of the same name, and resizing goes through the DSL's own min. *)
let registration_shadows () =
  let src = read_example "x_safe_agreement.sdl" in
  let _ = ok_or_fail' (Experiments.Scenario.register_source src) in
  let s = ok_or_fail' (Experiments.Scenario.find "x_safe_agreement") in
  (match s.Experiments.Scenario.origin with
  | Experiments.Scenario.Sdl_source _ -> ()
  | Experiments.Scenario.Builtin -> Alcotest.fail "find ignored the registration");
  let resized =
    ok_or_fail' (Experiments.Scenario.find ~nprocs:5 "x_safe_agreement")
  in
  Alcotest.(check int) "resized" 5 resized.Experiments.Scenario.nprocs;
  match Experiments.Scenario.find ~nprocs:2 "x_safe_agreement" with
  | Ok _ -> Alcotest.fail "below-min size accepted"
  | Error m ->
      if not (contains ~needle:"valid nprocs" m) then
        Alcotest.failf "resize error %S does not name the range" m

let suite =
  [
    ( "sdl-parser",
      [
        Alcotest.test_case "golden shape" `Quick parser_golden;
        Alcotest.test_case "typed rejections" `Quick parser_rejects;
        Alcotest.test_case "bare object decide" `Quick
          parser_bare_object_decide;
        Alcotest.test_case "nesting depth capped" `Quick parser_depth_capped;
        Alcotest.test_case "never raises on garbage" `Quick parser_never_raises;
      ] );
    ( "sdl-validate",
      [
        Alcotest.test_case "rejection table" `Quick validator_rejects;
        Alcotest.test_case "accepts the golden" `Quick validator_accepts_golden;
      ] );
    ( "sdl-roundtrip",
      [ QCheck_alcotest.to_alcotest roundtrip ] );
    ( "sdl-twins",
      [
        Alcotest.test_case "x_safe_agreement (clean)" `Quick
          (check_twin "x_safe_agreement.sdl" "x_safe_agreement"
             ~expect_found:false);
        Alcotest.test_case "safe_agreement_no_cancel (seeded)" `Quick
          (check_twin "safe_agreement_no_cancel.sdl" "safe_agreement_no_cancel"
             ~expect_found:true);
        Alcotest.test_case "x_safe_agreement_first_subset (seeded)" `Quick
          (check_twin "x_safe_agreement_first_subset.sdl"
             "x_safe_agreement_first_subset" ~expect_found:true);
      ] );
    ( "sdl-wire",
      [
        Alcotest.test_case "source cap pinned to the wire's" `Quick
          source_cap_pinned;
        Alcotest.test_case "registration shadows builtins" `Quick
          registration_shadows;
      ] );
  ]
