open Svm
open Svm.Prog.Syntax

type t = {
  compete : X_compete.t;
  xcons_fam : Op.fam;
  val_fam : Op.fam;
  abort_fam : Op.fam;
  set_list : int list list;
  x : int;
  static_owners : bool;
  first_subset_only : bool;
}

let make ?(static_owners = false) ?(first_subset_only = false) ~fam
    ~participants ~x () =
  if x < 1 then invalid_arg "X_safe_agreement.make: x must be >= 1";
  if participants < x then
    invalid_arg "X_safe_agreement.make: need at least x participants";
  {
    compete = X_compete.make ~fam:(fam ^ ".ts") ~participants ~x;
    xcons_fam = fam ^ ".xcons";
    val_fam = fam ^ ".val";
    abort_fam = fam ^ ".abort";
    set_list = Combin.subsets ~n:participants ~size:x;
    x;
    static_owners;
    first_subset_only;
  }

(* The decided value is published in what the paper calls the atomic
   register X_SAFE_AG. We realize it as the owner's component of a
   snapshot object: all owners write the same value (Theorem 2), and a
   reader adopts any non-empty component. *)

let publish t ~key ~pid:_ v = Prog.snap_set Codec.any t.val_fam key v

let read_published t ~key =
  let* cells = Prog.snap_scan Codec.any t.val_fam key in
  let rec first i =
    if i >= Array.length cells then None
    else match cells.(i) with Some v -> Some v | None -> first (i + 1)
  in
  Prog.return (first 0)

let propose t ~key ~pid v =
  let* owner =
    (* The ablation the paper's Section 4.3 argues against: if owners are
       the same fixed x processes for every instance, their crashes kill
       every instance at once; the dynamic competition confines t'
       crashes to at most floor(t'/x) instances. *)
    if t.static_owners then Prog.return (pid < t.x)
    else X_compete.compete t.compete ~key ~pid
  in
  if not owner then Prog.return ()
  else
    (* Scan SET_LIST in the common order; funnel the estimate through the
       consensus object of every subset containing us. *)
    let rec scan l sets res =
      match sets with
      | [] -> publish t ~key ~pid res
      | s :: rest ->
          if List.mem pid s then
            let* res =
              Prog.cons_propose Codec.any t.xcons_fam (key @ [ l ]) res
            in
            (* Ablated (first_subset_only): stop at the first subset
               containing us instead of scanning the whole SET_LIST. Two
               owners whose first subsets differ then never meet in a
               common consensus object and can publish different values —
               Theorem 2's agreement hinges on the full scan. *)
            if t.first_subset_only then publish t ~key ~pid res
            else scan (l + 1) rest res
          else scan (l + 1) rest res
    in
    scan 0 t.set_list v

let decide t ~key ~pid:_ =
  Prog.loop
    (fun () ->
      let* published = read_published t ~key in
      match published with
      | Some v -> Prog.return (`Stop v)
      | None -> Prog.return (`Again ()))
    ()

(* Graceful degradation under responsive omission (the §4 cancel
   semantics): [decide] above spins forever when every owner hangs
   inside [propose]. The abortable variant adds an {e arbiter register}
   per instance. A decider that has scanned [patience] times without
   seeing a published value raises the abort flag and reroutes; any
   process already convinced the instance is dead ([cancel]) trips the
   same flag, so one detection aborts every waiting port. Safety is
   untouched: aborting never invents a value — [`Aborted] is an explicit
   refusal the caller must reroute around, exactly the BG account where
   a blocked instance stalls a simulator but never corrupts decisions. *)

let cancel t ~key = Prog.reg_write Codec.bool t.abort_fam key true

let decide_abortable t ~key ~pid:_ ~patience =
  Prog.loop
    (fun scans ->
      let* published = read_published t ~key in
      match published with
      | Some v -> Prog.return (`Stop (`Decided v))
      | None -> (
          let* aborted = Prog.reg_read Codec.bool t.abort_fam key in
          match aborted with
          | Some true -> Prog.return (`Stop `Aborted)
          | Some false | None ->
              if scans >= patience then
                let* () = cancel t ~key in
                Prog.return (`Stop `Aborted)
              else Prog.return (`Again (scans + 1))))
    0

let subsets t = t.set_list

let peek_decided env t ~key =
  match Env.peek_snapshot env t.val_fam key with
  | None -> None
  | Some cells ->
      Array.to_list cells |> List.find_map (fun c -> c)
