(** The x_safe_agreement object type (paper Section 4.2, Figure 6).

    The generalization of safe agreement at the core of the
    [ASM(n, t, 1)] → [ASM(n, t', x)] simulation:

    - {e Termination}: if at most [x - 1] processes crash while executing
      [propose], every correct process that invokes [decide] returns;
    - {e Agreement}: at most one value is decided;
    - {e Validity}: a decided value is a proposed value.

    Each instance has up to [x] {e owners}, determined dynamically as the
    first [x] processes to win the instance's [X_T&S] object
    ({!X_compete}). An owner scans the list [SET_LIST\[1..m\]] of all
    subsets of size [x] of the process ids (in a fixed common order) and,
    for every subset containing it, funnels its current estimate through
    that subset's x-ported consensus object [XCONS\[l\]]; it finally
    publishes the resulting value. Since some subset contains exactly the
    owner set, all owners leave that subset with the same value, so every
    published value is identical (Theorem 2 of the paper).

    Everything is built from consensus objects with at most [x] ports and
    the snapshot memory, so the construction is legal in
    [ASM(n, t', x)]. *)

type t

val make :
  ?static_owners:bool ->
  ?first_subset_only:bool ->
  fam:Svm.Op.fam ->
  participants:int ->
  x:int ->
  unit ->
  t
(** [participants] is the process id space (the simulators); instances
    are keyed. [Invalid_argument] if [x < 1] or [participants < x].

    [static_owners] is an {e ablation}: owners are the fixed processes
    [0..x-1] for every instance instead of being determined dynamically
    by [x_compete]. The paper (Section 4.3) explains why this breaks the
    crash accounting — "if all the x_safe_agreement objects had the same
    set of x owners ... their crashes would crash all the
    x_safe_agreement objects and the simulation could block forever" —
    and experiment AB exhibits it.

    [first_subset_only] is an {e ablation} that breaks agreement itself:
    an owner funnels its estimate only through the first SET_LIST subset
    containing it, instead of all of them. Owners whose first subsets
    differ (possible once crashes steer x_compete away from the lowest
    pids) can then publish two different values — the seeded safety bug
    the fault-injection sweeper is demonstrated on. *)

val propose : t -> key:Svm.Op.key -> pid:int -> Svm.Univ.t -> unit Svm.Prog.t
(** Figure 6 [x_sa_propose(v)]. At most once per pid per instance. *)

val decide : t -> key:Svm.Op.key -> pid:int -> Svm.Univ.t Svm.Prog.t
(** Figure 6 [x_sa_decide()]: wait (spinning one scan per step) until the
    decided value is published, then return it. *)

val decide_abortable :
  t ->
  key:Svm.Op.key ->
  pid:int ->
  patience:int ->
  [ `Decided of Svm.Univ.t | `Aborted ] Svm.Prog.t
(** [decide] with graceful degradation against hung ports (responsive
    omission): scan at most [patience] times; if no value is published by
    then, or any process has already cancelled the instance, return
    [`Aborted] — trip the instance's arbiter register on the way out so
    every other waiting decider aborts promptly too. Never invents a
    value: the caller reroutes around the dead instance, per the §4
    cancel semantics. Pick [patience] comfortably above the owners'
    propose length so healthy instances are never aborted under a fair
    scheduler (an unfair scheduler can still starve an owner — an abort
    is then a liveness refusal, not a safety violation). *)

val cancel : t -> key:Svm.Op.key -> unit Svm.Prog.t
(** Declare the instance dead via the arbiter path: every current and
    future [decide_abortable] on it returns [`Aborted] within one scan. *)

val subsets : t -> int list list
(** The SET_LIST this instance family scans (for tests). *)

val peek_decided : Svm.Env.t -> t -> key:Svm.Op.key -> Svm.Univ.t option
