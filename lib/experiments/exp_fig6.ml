open Svm
open Svm.Prog.Syntax

let m = 5 (* participants *)
let x = 2

let participant xsa i =
  let v = Codec.int.Codec.inj (200 + i) in
  let* () = Shared_objects.X_safe_agreement.propose xsa ~key:[] ~pid:i v in
  Shared_objects.X_safe_agreement.decide xsa ~key:[] ~pid:i

let make () = Shared_objects.X_safe_agreement.make ~fam:"XSA" ~participants:m ~x ()

let sweep ~max_crashes ~label ~expect_all_live =
  let ok = ref true and detail = ref "" in
  let blocked_seen = ref 0 in
  List.iter
    (fun seed ->
      let xsa = make () in
      let adversary =
        if max_crashes = 0 then Adversary.random ~seed
        else
          Adversary.random_crashes ~within:25 ~seed ~max_crashes ~nprocs:m
            (Adversary.random ~seed)
      in
      let r, _ =
        Harness.run_objects ~budget:50_000 ~nprocs:m ~x ~adversary
          (participant xsa)
      in
      let ds = Harness.int_results r in
      let agreement = Harness.all_equal ds in
      let validity = List.for_all (fun d -> d >= 200 && d < 200 + m) ds in
      let crashed = List.length r.Exec.crashed in
      let live = Exec.decided_count r = m - crashed in
      if not live then incr blocked_seen;
      if (not agreement) || not validity then begin
        ok := false;
        detail := Printf.sprintf "seed %d: agreement=%b validity=%b" seed
            agreement validity
      end;
      if expect_all_live && not live then begin
        ok := false;
        detail := Printf.sprintf "seed %d: %d correct processes blocked" seed
            (m - crashed - Exec.decided_count r)
      end)
    (Harness.seeds 40);
  Report.check ~label ~ok:!ok
    ~detail:
      (if !ok then
         Printf.sprintf "agreement+validity in all runs; %d runs with blocking"
           !blocked_seen
       else !detail)

(* Crash one owner inside propose, after it won the competition but
   before it publishes: the other owner must still carry the object. *)
let one_owner_crash () =
  let xsa = make () in
  let adversary =
    Adversary.with_crashes
      (Adversary.priority [ 0; 1 ])
      [ Harness.crash_before_fam ~pid:0 ~prefix:"XSA.val" ~nth:0 ]
  in
  let r, _ =
    Harness.run_objects ~budget:50_000 ~nprocs:m ~x ~adversary
      (participant xsa)
  in
  let ds = Harness.int_results r in
  Report.check
    ~label:"x-1 owner crashes inside propose: object stays live"
    ~ok:(List.length ds = m - 1 && Harness.all_equal ds)
    ~detail:
      (Printf.sprintf "%d/%d correct decided, agreement=%b" (List.length ds)
         (m - 1) (Harness.all_equal ds))

(* Crash both owners inside propose: the object may (and here does)
   block every remaining process. *)
let all_owners_crash () =
  let xsa = make () in
  let adversary =
    Adversary.with_crashes
      (Adversary.priority [ 0; 1 ])
      [
        Harness.crash_before_fam ~pid:0 ~prefix:"XSA.val" ~nth:0;
        Harness.crash_before_fam ~pid:1 ~prefix:"XSA.val" ~nth:0;
      ]
  in
  let r, _ =
    Harness.run_objects ~budget:50_000 ~nprocs:m ~x ~adversary
      (participant xsa)
  in
  let blocked = List.length (Exec.blocked r) in
  Report.check ~label:"x owner crashes inside propose: object blocks"
    ~ok:(blocked = m - x && Exec.decided_count r = 0)
    ~detail:
      (Printf.sprintf "blocked=%d/%d decided=%d" blocked (m - x)
         (Exec.decided_count r))

let run () =
  {
    Report.id = "F6";
    title = "x_safe_agreement (Figure 6, Theorem 2)";
    paper =
      "Termination if at most x-1 processes crash during x_sa_propose; \
       agreement; validity (Section 4.2).";
    metrics = [];
    checks =
      [
        sweep ~max_crashes:0 ~label:"40 crash-free schedules (m=5, x=2)"
          ~expect_all_live:true;
        sweep ~max_crashes:1
          ~label:"40 schedules, 1 crash: object must stay live"
          ~expect_all_live:true;
        (match Scenario.find ~nprocs:m "x_safe_agreement" with
        | Error msg ->
            Report.check ~label:"systematic crash sweep" ~ok:false ~detail:msg
        | Ok s ->
            Harness.sweep_check ~max_faults:2 ~op_window:5
              ~label:
                "agreement+validity under every <=2-crash schedule swept, m=5"
              s);
        (match Scenario.find ~nprocs:m "x_safe_agreement_first_subset" with
        | Error msg ->
            Report.check ~label:"seeded-bug sweep" ~ok:false ~detail:msg
        | Ok s ->
            Harness.sweep_check ~max_faults:2 ~op_window:5
              ~label:
                "seeded first-subset ablation: sweeper catches disagreement"
              s);
        one_owner_crash ();
        all_owners_crash ();
      ];
  }
