open Svm
open Svm.Prog.Syntax

let n = 5

let participant sa i =
  let v = Codec.int.Codec.inj (100 + i) in
  let* () = Shared_objects.Safe_agreement.propose sa ~key:[] v in
  Shared_objects.Safe_agreement.decide sa ~key:[]

let sweep_no_crash () =
  let ok = ref true and detail = ref "" in
  List.iter
    (fun seed ->
      let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
      let r, _ =
        Harness.run_objects ~nprocs:n ~x:1
          ~adversary:(Adversary.random ~seed) (participant sa)
      in
      let ds = Harness.int_results r in
      let agreement = Harness.all_equal ds in
      let validity = List.for_all (fun d -> d >= 100 && d < 100 + n) ds in
      let termination = List.length ds = n in
      if not (agreement && validity && termination) then begin
        ok := false;
        detail :=
          Printf.sprintf "seed %d: agreement=%b validity=%b termination=%b"
            seed agreement validity termination
      end)
    (Harness.seeds 50);
  Report.check ~label:"agreement+validity+termination, 50 crash-free schedules"
    ~ok:!ok
    ~detail:(if !ok then "all runs: one value, proposed, all decide" else !detail)

(* Crash p0 before its 2nd operation: it has written (v, 1) — level
   unstable — and dies before it can stabilize or cancel. *)
let crash_inside_propose () =
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let adversary =
    Adversary.with_crashes
      (Adversary.priority [ 0 ])
      [ Adversary.Crash_at_local { pid = 0; step = 1 } ]
  in
  let r, _ =
    Harness.run_objects ~budget:20_000 ~nprocs:n ~x:1 ~adversary
      (participant sa)
  in
  let blocked = Exec.blocked r in
  Report.check ~label:"crash inside propose blocks every decide"
    ~ok:(List.length blocked = n - 1 && Exec.decided_count r = 0)
    ~detail:
      (Printf.sprintf "blocked=%d/%d decided=%d" (List.length blocked) (n - 1)
         (Exec.decided_count r))

(* Crash p0 after its 3rd operation: its propose is complete, so the
   object must stay live. *)
let crash_after_propose () =
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let adversary =
    Adversary.with_crashes
      (Adversary.priority [ 0 ])
      [ Adversary.Crash_at_local { pid = 0; step = 3 } ]
  in
  let r, _ =
    Harness.run_objects ~budget:20_000 ~nprocs:n ~x:1 ~adversary
      (participant sa)
  in
  let ds = Harness.int_results r in
  Report.check ~label:"crash after propose blocks nobody"
    ~ok:(List.length ds = n - 1 && Harness.all_equal ds)
    ~detail:
      (Printf.sprintf "%d/%d correct processes decided, agreement=%b"
         (List.length ds) (n - 1) (Harness.all_equal ds))

(* Systematic fault sweep (not a random sample): every <=1-crash
   placement within the op window, under every stock scheduler, with the
   agreement/validity monitors watching online. *)
let sweep_one_crash () =
  match Scenario.find ~nprocs:n "safe_agreement" with
  | Error m -> Report.check ~label:"systematic one-crash sweep" ~ok:false ~detail:m
  | Ok s ->
      Harness.sweep_check ~max_faults:1 ~op_window:8
        ~label:"agreement+validity under every <=1-crash schedule swept" s

let run () =
  {
    Report.id = "F1";
    title = "safe agreement (Figure 1)";
    paper =
      "Termination if no crash during propose; agreement; validity \
       (Section 3.1).";
    metrics = [];
    checks =
      [
        sweep_no_crash ();
        sweep_one_crash ();
        crash_inside_propose ();
        crash_after_propose ();
      ];
  }
