open Svm

type chaos = Kill | Torn | Bitflip

let chaos_of_name = function
  | "kill" -> Some Kill
  | "torn" -> Some Torn
  | "bitflip" -> Some Bitflip
  | _ -> None

let chaos_name = function Kill -> "kill" | Torn -> "torn" | Bitflip -> "bitflip"

type config = {
  seed : int;
  schedules : int option;
  until : int option;
  duration : float option;
  batch : int;
  jobs : int;
  kinds : Adversary.fault_kind list;
  max_faults : int;
  within : int;
  budget : int;
  resume : bool;
  chaos : chaos option;
  chaos_at : int;
  gc_tune : bool;
  log : Svm.Log.t;
  metrics : Metrics.t option;
}

let default_config =
  {
    seed = 1;
    schedules = None;
    until = None;
    duration = None;
    batch = 256;
    jobs = 1;
    kinds = [ Adversary.Crash_stop ];
    max_faults = 2;
    within = 30;
    budget = 20_000;
    resume = false;
    chaos = None;
    chaos_at = 3;
    gc_tune = true;
    log = Svm.Log.null;
    metrics = None;
  }

type outcome = {
  o_executed : int;
  o_first_index : int;
  o_next_index : int;
  o_clean : int;
  o_deadlocks : int;
  o_new_findings : string list;
  o_dup_findings : int;
  o_batches : int;
  o_heap_growth_words : int;
  o_corpus_records : int;
  o_stop : [ `Schedules | `Duration | `Sigterm ];
}

let logf cfg fmt = Svm.Log.infof cfg.log fmt

let bump cfg = Metrics.bump cfg.metrics

(* ------------------------------------------------------------------ *)
(* Deterministic schedule derivation                                   *)
(* ------------------------------------------------------------------ *)

(* Schedule [k] of a soak seeded [seed] is a pure function of the pair:
   one splitmix stream per index yields the scheduler seed and the
   fault-plan seed. Any schedule can be re-derived years later — which
   is what lets findings re-run, shrink, and resume without storing the
   schedules themselves. *)
let derive cfg k =
  let r = Rng.create ((cfg.seed * 1_000_003) + k) in
  let sched_seed = Rng.int r 1_000_000_000 in
  let fault_seed = Rng.int r 1_000_000_000 in
  let nfaults = Rng.int r (cfg.max_faults + 1) in
  (sched_seed, fault_seed, nfaults)

let fault_plan cfg ~nprocs k =
  let _, fault_seed, nfaults = derive cfg k in
  List.map
    (fun (victim, op, kind) -> { Explore.victim; op; kind })
    (Adversary.random_fault_plan ~within:cfg.within ~seed:fault_seed
       ~max_faults:nfaults ~kinds:cfg.kinds ~nprocs ())

let adversary cfg ~nprocs k =
  let sched_seed, fault_seed, nfaults = derive cfg k in
  Adversary.random_faults ~within:cfg.within ~seed:fault_seed
    ~max_faults:nfaults ~kinds:cfg.kinds ~nprocs
    (Adversary.random ~seed:sched_seed)

(* ------------------------------------------------------------------ *)
(* The hot loop                                                        *)
(* ------------------------------------------------------------------ *)

type verdict = V_clean | V_deadlock | V_violation

(* One schedule against a reused arena: checkpoint, run, roll back —
   the environment is bit-identical before and after, so thousands of
   schedules share one store with zero per-run copying. The verdict
   classification mirrors [Explore.run_fault]. *)
let run_one cfg ~env ~progs ~monitors ~adv =
  Env.with_rollback env (fun () ->
      match
        Exec.run ~budget:cfg.budget ~monitors:(monitors ()) ~env
          ~adversary:adv progs
      with
      | r ->
          let halted =
            Array.for_all
              (function
                | Exec.Crashed | Exec.Stuck -> true
                | Exec.Decided _ | Exec.Blocked -> false)
              r.Exec.outcomes
          in
          if halted && r.Exec.stuck <> [] then V_deadlock else V_clean
      | exception Monitor.Violation _ -> V_violation
      | exception Adversary.Deadlock -> V_deadlock)

(* Run schedules [lo, hi) on a fresh arena; returns interesting indices
   (violating or deadlocked) in index order plus the clean count. *)
let run_slice cfg (s : Scenario.t) ~stop ~lo ~hi =
  let env, progs = s.Scenario.make () in
  Env.enable_journal env;
  let nprocs = s.Scenario.nprocs in
  let interesting = ref [] in
  let clean = ref 0 in
  let k = ref lo in
  while !k < hi && not (Atomic.get stop) do
    let adv = adversary cfg ~nprocs !k in
    (match run_one cfg ~env ~progs ~monitors:s.Scenario.monitors ~adv with
    | V_clean -> incr clean
    | (V_deadlock | V_violation) as v -> interesting := (!k, v) :: !interesting);
    incr k
  done;
  (List.rev !interesting, !clean, !k - lo)

(* ------------------------------------------------------------------ *)
(* Findings → corpus records                                           *)
(* ------------------------------------------------------------------ *)

let scenario_meta (s : Scenario.t) =
  [
    ("scenario", s.Scenario.name);
    ("nprocs", string_of_int s.Scenario.nprocs);
    ("x", string_of_int s.Scenario.x);
  ]

(* A violating schedule is re-run deterministically with the trace
   recorder on, shrunk through the standard delta-debugger (the soak's
   own scheduler plus round-robin as collapse target), and serialized
   exactly like a sweep finding — [asmsim replay] replays soak
   artifacts unchanged. Shrinking is also what makes corpus dedup
   bite: many random schedules reduce to the same minimal one. *)
let finding_record cfg (s : Scenario.t) k =
  let nprocs = s.Scenario.nprocs in
  let sched_seed, _, _ = derive cfg k in
  let sched_name = Printf.sprintf "random(%d)" sched_seed in
  let plan = fault_plan cfg ~nprocs k in
  let scheduler () = Adversary.random ~seed:sched_seed in
  let make = s.Scenario.make and monitors = s.Scenario.monitors in
  match
    Explore.run_fault ~budget:cfg.budget ~make ~monitors ~scheduler plan
  with
  | Explore.Clean -> None
  | Explore.Deadlocked ->
      let fault = { Explore.scheduler = sched_name; faults = plan } in
      let payload =
        Format.asprintf "deadlock %a@." Explore.pp_fault_schedule fault
      in
      Some
        (Corpus.Record.make ~kind:Corpus.Record.Finding
           ~meta:(("verdict", "deadlock") :: scenario_meta s)
           ~payload)
  | Explore.Violating v ->
      let schedulers =
        [
          (sched_name, scheduler);
          ("round-robin", fun () -> Adversary.round_robin ());
        ]
      in
      let fault = { Explore.scheduler = sched_name; faults = plan } in
      let shrunk, violation, _runs =
        Explore.shrink ~budget:cfg.budget ~make ~monitors ~schedulers fault v
      in
      let t =
        match violation.Monitor.trace with
        | Some t -> t
        | None -> Trace.create ()
      in
      let payload =
        Trace.to_replay
          ~meta:
            (scenario_meta s
            @ [
                ("monitor", violation.Monitor.monitor);
                ("message", violation.Monitor.message);
                ("step", string_of_int violation.Monitor.step);
                ("pid", string_of_int violation.Monitor.pid);
                ( "schedule",
                  Format.asprintf "%a" Explore.pp_fault_schedule shrunk );
              ])
          t
      in
      Some
        (Corpus.Record.make ~kind:Corpus.Record.Finding
           ~meta:
             (("verdict", "violation")
             :: ("monitor", violation.Monitor.monitor)
             :: scenario_meta s)
           ~payload)

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let state_record cfg (s : Scenario.t) ~next =
  Corpus.Record.make ~kind:Corpus.Record.State
    ~meta:(("seed", string_of_int cfg.seed) :: scenario_meta s)
    ~payload:(Printf.sprintf "next %d\n" next)

let checkpoint_next cfg (s : Scenario.t) store =
  Corpus.Store.fold store ~init:0 ~f:(fun acc ~digest:_ r ->
      if
        r.Corpus.Record.kind = Corpus.Record.State
        && Corpus.Record.meta_find r "scenario" = Some s.Scenario.name
        && Corpus.Record.meta_find r "seed" = Some (string_of_int cfg.seed)
      then
        match r.Corpus.Record.payload with
        | p -> (
            match String.split_on_char ' ' (String.trim p) with
            | [ "next"; n ] -> (
                match int_of_string_opt n with
                | Some n -> max acc n
                | None -> acc)
            | _ -> acc)
      else acc)

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

let run cfg ~corpus_dir (s : Scenario.t) =
  if not s.Scenario.explorable then
    Error
      (Printf.sprintf
         "scenario %s is not explorable (program state outside the \
          environment); the soak driver cannot reuse its arena"
         s.Scenario.name)
  else if cfg.batch < 1 then Error "batch must be at least 1"
  else if cfg.jobs < 1 then Error "jobs must be at least 1"
  else
    let store_chaos =
      match cfg.chaos with
      | None -> None
      | Some Kill -> Some (Corpus.Store.Kill_at_append cfg.chaos_at)
      | Some Torn -> Some (Corpus.Store.Torn_at_append cfg.chaos_at)
      | Some Bitflip -> Some Corpus.Store.Bitflip_after_cement
    in
    match Corpus.Store.open_ ~log:cfg.log ?chaos:store_chaos corpus_dir with
    | Error m -> Error m
    | Ok store ->
        if cfg.gc_tune then
          (* The hot loop allocates short-lived run state at a furious
             rate; a wider minor heap keeps it out of the major heap. *)
          Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22 };
        let stop = Atomic.make false in
        let old_handler =
          Sys.signal Sys.sigterm
            (Sys.Signal_handle (fun _ -> Atomic.set stop true))
        in
        Fun.protect
          ~finally:(fun () ->
            Sys.set_signal Sys.sigterm old_handler;
            Corpus.Store.close store)
          (fun () ->
            let first =
              if cfg.resume then checkpoint_next cfg s store else 0
            in
            if cfg.resume && first > 0 then
              logf cfg "resuming at schedule %d" first;
            let deadline =
              Option.map (fun d -> Unix.gettimeofday () +. d) cfg.duration
            in
            let executed = ref 0 in
            let clean = ref 0 in
            let deadlocks = ref 0 in
            let new_findings = ref [] in
            let dups = ref 0 in
            let batches = ref 0 in
            let baseline_heap = ref 0 in
            let peak_heap = ref 0 in
            let next = ref first in
            let stop_reason = ref `Schedules in
            let out_of_budget () =
              (match cfg.schedules with
              | Some n -> !executed >= n
              | None -> false)
              ||
              match cfg.until with Some u -> !next >= u | None -> false
            in
            let past_deadline () =
              match deadline with
              | Some d when Unix.gettimeofday () >= d ->
                  stop_reason := `Duration;
                  true
              | _ -> false
            in
            let record_finding k v =
              (* Re-derive outside the arena: fresh env, trace on. *)
              (match v with
              | V_deadlock -> incr deadlocks
              | _ -> ());
              match finding_record cfg s k with
              | None -> ()
              | Some r -> (
                  match Corpus.Store.add store r with
                  | `Added d ->
                      bump cfg "soak.findings.new";
                      logf cfg "schedule %d: new finding %s" k d;
                      new_findings := d :: !new_findings
                  | `Duplicate _ ->
                      bump cfg "soak.findings.dup";
                      incr dups)
            in
            while
              (not (Atomic.get stop))
              && (not (out_of_budget ()))
              && not (past_deadline ())
            do
              let size =
                match cfg.schedules with
                | None -> cfg.batch
                | Some n -> min cfg.batch (n - !executed)
              in
              let size =
                (* [until] is an absolute index: a resume after a crash
                   runs exactly up to it, so two corpora soaked to the
                   same index hold the same findings — crash or not. *)
                match cfg.until with
                | None -> size
                | Some u -> min size (u - !next)
              in
              let lo = !next and hi = !next + size in
              (* Contiguous slices, one per domain; results merge in
                 slice order, so the outcome is jobs-independent. *)
              let per = (size + cfg.jobs - 1) / cfg.jobs in
              let bounds =
                List.init cfg.jobs (fun j ->
                    (lo + (j * per), min hi (lo + ((j + 1) * per))))
                |> List.filter (fun (a, b) -> a < b)
              in
              let slices =
                if cfg.jobs = 1 then
                  List.map
                    (fun (a, b) -> Some (run_slice cfg s ~stop ~lo:a ~hi:b))
                    bounds
                else
                  Par.run ~jobs:cfg.jobs ~tasks:(List.length bounds) (fun j ->
                      let a, b = List.nth bounds j in
                      run_slice cfg s ~stop ~lo:a ~hi:b)
                  |> Array.to_list
              in
              (* A SIGTERM can stop slices at different points; only the
                 longest contiguous prefix is durably "executed" — the
                 resume index must never skip an unexecuted schedule.
                 Work past a gap is not wasted: its findings dedup. *)
              let contiguous =
                List.fold_left2
                  (fun acc (a, b) slice ->
                    match (acc, slice) with
                    | `Gap n, _ -> `Gap n
                    | `Upto _, None -> `Gap a
                    | `Upto _, Some (_, _, n) ->
                        if n = b - a then `Upto b else `Gap (a + n)
                  )
                  (`Upto lo) bounds slices
              in
              let next' =
                match contiguous with `Upto n | `Gap n -> n
              in
              let ran = next' - lo in
              List.iter
                (function
                  | None -> ()
                  | Some (interesting, cl, _) ->
                      clean := !clean + cl;
                      List.iter (fun (k, v) -> record_finding k v) interesting)
                slices;
              executed := !executed + ran;
              next := next';
              bump cfg "soak.batches";
              Metrics.record cfg.metrics "soak.schedules" !executed;
              incr batches;
              (* Cement the batch, then checkpoint where to resume:
                 losing the checkpoint record costs only re-running an
                 already-deduplicated batch. *)
              ignore (Corpus.Store.add store (state_record cfg s ~next:!next));
              Corpus.Store.cement store;
              let heap = (Gc.quick_stat ()).Gc.heap_words in
              if !batches = 1 then baseline_heap := heap;
              peak_heap := max !peak_heap heap;
              logf cfg
                "batch %d: %d schedule(s), %d finding(s) new, %d dup, %d \
                 clean, heap %d words"
                !batches ran
                (List.length !new_findings)
                !dups !clean heap
            done;
            if Atomic.get stop then stop_reason := `Sigterm;
            Ok
              {
                o_executed = !executed;
                o_first_index = first;
                o_next_index = !next;
                o_clean = !clean;
                o_deadlocks = !deadlocks;
                o_new_findings = List.rev !new_findings;
                o_dup_findings = !dups;
                o_batches = !batches;
                o_heap_growth_words =
                  max 0 (!peak_heap - !baseline_heap);
                o_corpus_records = Corpus.Store.count store;
                o_stop = !stop_reason;
              })
