type check = { label : string; ok : bool; detail : string }

type t = {
  id : string;
  title : string;
  paper : string;
  metrics : (string * string) list;
  checks : check list;
}

let check ~label ~ok ~detail = { label; ok; detail }

let check_eq ~label ~pp ~expected ~actual =
  {
    label;
    ok = expected = actual;
    detail = Printf.sprintf "expected %s, got %s" (pp expected) (pp actual);
  }

let all_ok t = List.for_all (fun c -> c.ok) t.checks

let pp ppf t =
  Format.fprintf ppf "=== %s: %s ===@." t.id t.title;
  Format.fprintf ppf "paper: %s@." t.paper;
  List.iter
    (fun c ->
      Format.fprintf ppf "  [%s] %-52s %s@."
        (if c.ok then "PASS" else "FAIL")
        c.label c.detail)
    t.checks;
  List.iter
    (fun (name, json) ->
      Format.fprintf ppf "  metrics snapshot %s (%d bytes)@." name
        (String.length json))
    t.metrics

let pp_summary_line ppf t =
  let pass = List.length (List.filter (fun c -> c.ok) t.checks) in
  Format.fprintf ppf "%-4s %-46s %d/%d checks pass" t.id t.title pass
    (List.length t.checks)

let to_markdown t =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "### %s — %s\n\n" t.id t.title);
  Buffer.add_string b (Printf.sprintf "**Paper claim.** %s\n\n" t.paper);
  Buffer.add_string b "| check | status | measured |\n|---|---|---|\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %s |\n" c.label
           (if c.ok then "pass" else "FAIL")
           c.detail))
    t.checks;
  Buffer.add_string b "\n";
  List.iter
    (fun (name, json) ->
      Buffer.add_string b
        (Printf.sprintf
           "<details><summary>metrics snapshot: %s</summary>\n\n\
            ```json\n\
            %s\n\
            ```\n\n\
            </details>\n\n"
           name json))
    t.metrics;
  Buffer.contents b
