open Svm

(* PROF: telemetry profiles of the three headline simulations.

   Each profile runs one simulation config under a metrics registry and
   a recorded trace, folds the BG engine stats into the same registry,
   and derives the timeline's causality summary (critical path, hottest
   object instances, contention). The checks pin the properties the
   telemetry is supposed to guarantee: byte-identical snapshots across
   identical runs (the determinism rule), the online mutex1 reading
   (bg.max_engaged = 1), per-instance contention bounded by the process
   count, and a critical path that is a genuine lower bound on the
   run's sequential steps. *)

type profile = {
  pname : string;
  simulation : string;  (** which theorem's simulation is profiled *)
  result : int Exec.result;
  metrics : Metrics.t;
  timeline : Timeline.t;
  caus : Timeline.causality;
}

let run_config ~alg ~stats ~inputs ~budget =
  let metrics = Metrics.create () in
  let r =
    Core.Run.run_ints ~budget ~record_trace:true ~metrics ~alg ~inputs
      ~adversary:(Adversary.round_robin ()) ()
  in
  Core.Bg_engine.fold_metrics metrics stats;
  (r, metrics)

(* The three configs; each builder returns a fresh algorithm + stats so
   a config can be run twice for the determinism check. *)

let config_f4 () =
  let stats = Core.Bg_engine.new_stats () in
  let source = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  let target = Core.Model.read_write ~n:6 ~t:2 in
  let alg = Core.Bg_engine.simulate ~stats ~source ~target ~mode:`Colorless () in
  (alg, stats, [ 6; 5; 4; 3; 2; 1 ], 600_000)

let config_s4 ~t' ~x () =
  let stats = Core.Bg_engine.new_stats () in
  let source = Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:3 in
  let target = Core.Model.make ~n:6 ~t:t' ~x in
  let alg = Core.Bg_engine.simulate ~stats ~source ~target ~mode:`Colorless () in
  (alg, stats, [ 9; 8; 7; 6; 5; 4 ], 900_000)

let configs =
  [
    ( "F4",
      "Theorem 1: ASM(6,4,2) in ASM(6,2,1), 3-set agreement",
      config_f4 );
    ( "S4a",
      "Theorem 3: ASM(6,2,1) in ASM(6,4,2), 3-set agreement",
      config_s4 ~t':4 ~x:2 );
    ( "S4b",
      "Theorem 3: ASM(6,2,1) in ASM(6,5,3), 3-set agreement",
      config_s4 ~t':5 ~x:3 );
  ]

let profile (pname, simulation, config) =
  let alg, stats, inputs, budget = config () in
  let result, metrics = run_config ~alg ~stats ~inputs ~budget in
  let timeline =
    match result.Exec.trace with
    | Some t -> Timeline.of_trace ~nprocs:(List.length inputs) t
    | None -> assert false (* record_trace was set *)
  in
  let caus = Timeline.causality ~top:5 timeline in
  { pname; simulation; result; metrics; timeline; caus }

(* -------------------------- checks -------------------------------- *)

let determinism_check (pname, _, config) p =
  (* Same config, fresh registry: the snapshot must be byte-identical —
     nothing in the telemetry may depend on wall clock or identity. *)
  let alg, stats, inputs, budget = config () in
  let _, m2 = run_config ~alg ~stats ~inputs ~budget in
  let s1 = Metrics.snapshot_string p.metrics
  and s2 = Metrics.snapshot_string m2 in
  Report.check
    ~label:(pname ^ ": two identical runs, byte-identical snapshots")
    ~ok:(String.equal s1 s2)
    ~detail:
      (Printf.sprintf "%d bytes each, equal=%b" (String.length s1)
         (String.equal s1 s2))

let mutex1_check p =
  let engaged = Metrics.gauge_value p.metrics "bg.max_engaged" in
  Report.check
    ~label:(p.pname ^ ": online mutex1 reading (bg.max_engaged)")
    ~ok:(engaged = 1)
    ~detail:
      (Printf.sprintf "max agreements in flight per simulator = %d" engaged)

let contention_check p =
  let nprocs = p.timeline.Timeline.nprocs in
  let worst =
    List.fold_left
      (fun acc (name, v) ->
        if String.length name > 9 && String.sub name 0 9 = "obj.pids." then
          max acc v
        else acc)
      0
      (Metrics.gauges p.metrics)
  in
  let hottest =
    match p.caus.Timeline.hot with
    | h :: _ -> h
    | [] -> assert false (* simulations always touch objects *)
  in
  Report.check
    ~label:(p.pname ^ ": contention bounded by process count")
    ~ok:(worst >= 1 && worst <= nprocs)
    ~detail:
      (Printf.sprintf "max distinct pids on one instance = %d/%d; hottest %s (%d accesses)"
         worst nprocs hottest.Timeline.instance hottest.Timeline.accesses)

let critical_path_check p =
  let c = p.caus in
  let ok =
    c.Timeline.critical_path >= 1
    && c.Timeline.critical_path <= c.Timeline.span_count
    && c.Timeline.parallelism >= 1.0
  in
  Report.check
    ~label:(p.pname ^ ": critical path bounds the schedule")
    ~ok
    ~detail:
      (Printf.sprintf "%d spans, critical path %d steps, parallelism %.2f%s"
         c.Timeline.span_count c.Timeline.critical_path c.Timeline.parallelism
         (if p.timeline.Timeline.dropped > 0 then
            Printf.sprintf " (trace truncated: %d dropped)"
              p.timeline.Timeline.dropped
          else ""))

(* ---------------------- snapshot summaries ------------------------- *)

let summary_json p =
  let counters_with prefix =
    List.filter_map
      (fun (name, v) ->
        let l = String.length prefix in
        if String.length name > l && String.sub name 0 l = prefix then
          Some (String.sub name l (String.length name - l), Json.Int v)
        else None)
      (Metrics.counters p.metrics)
  in
  let hot =
    List.map
      (fun (h : Timeline.hot_instance) ->
        Json.Obj
          [
            ("instance", Json.String h.Timeline.instance);
            ("accesses", Json.Int h.Timeline.accesses);
            ("distinct_pids", Json.Int h.Timeline.distinct_pids);
            ("on_critical_path", Json.Int h.Timeline.on_critical_path);
          ])
      p.caus.Timeline.hot
  in
  Json.Obj
    [
      ("simulation", Json.String p.simulation);
      ("steps", Json.Int p.result.Exec.total_steps);
      ("ops", Json.Obj (counters_with "op."));
      ("outcomes", Json.Obj (counters_with "outcome."));
      ( "bg",
        Json.Obj
          [
            ( "max_engaged",
              Json.Int (Metrics.gauge_value p.metrics "bg.max_engaged") );
            ( "decided_processes",
              Json.Int (Metrics.counter_value p.metrics "bg.decided_processes")
            );
          ] );
      ("spans", Json.Int p.caus.Timeline.span_count);
      ("critical_path", Json.Int p.caus.Timeline.critical_path);
      ("parallelism", Json.Float p.caus.Timeline.parallelism);
      ("dropped_events", Json.Int p.timeline.Timeline.dropped);
      ("hottest", Json.List hot);
    ]

let run () =
  let profiles = List.map profile configs in
  {
    Report.id = "PROF";
    title = "telemetry profile of the simulations";
    paper =
      "No claim in the paper; instruments the Theorem 1 and Theorem 3 \
       simulations with the metrics registry and timeline causality \
       pass: snapshots are replay-deterministic, the mutex1 invariant \
       is read online (one agreement in flight per simulator), and \
       per-object contention and the critical path are on record.";
    metrics =
      List.map
        (fun p -> (p.pname, Json.to_string ~pretty:true (summary_json p)))
        profiles;
    checks =
      List.concat
        (List.map2
           (fun cfg p ->
             [
               determinism_check cfg p;
               mutex1_check p;
               contention_check p;
               critical_path_check p;
             ])
           configs profiles);
  }
