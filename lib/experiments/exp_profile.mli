(** Experiment PROF — telemetry profiles of the headline simulations.

    Runs the Theorem 1 simulation (F4: [ASM(6,4,2)] in [ASM(6,2,1)])
    and two Theorem 3 simulations (S4a: [ASM(6,2,1)] in [ASM(6,4,2)];
    S4b: [ASM(6,2,1)] in [ASM(6,5,3)]) under a {!Svm.Metrics} registry
    and a recorded trace, folds the BG engine stats into the registry,
    and derives the {!Svm.Timeline} causality summary.

    Checks, per profile: two identical runs snapshot byte-identically
    (the determinism rule), the online mutex1 reading [bg.max_engaged]
    is 1, per-instance contention ([obj.pids.*]) stays within the
    process count, and the happens-before critical path is a genuine
    lower bound ([1 <= critical path <= spans], parallelism [>= 1]).
    The report carries one compact metrics snapshot per profile with
    the hottest-instances contention table. *)

val run : unit -> Report.t
