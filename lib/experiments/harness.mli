(** Shared plumbing for the object-level experiments. *)

val run_objects :
  ?budget:int ->
  nprocs:int ->
  x:int ->
  adversary:Svm.Adversary.t ->
  (int -> Svm.Univ.t Svm.Prog.t) ->
  Svm.Univ.t Svm.Exec.result * Svm.Env.t
(** [run_objects ~nprocs ~x ~adversary make] runs [make pid] for each
    process in a fresh environment and returns the result together with
    the environment (for peeking at object state). *)

val int_results : Svm.Univ.t Svm.Exec.result -> int list
(** Decided values decoded as ints, pid order. *)

val all_equal : int list -> bool

val seeds : int -> int list
(** [seeds n] = [1; 2; ...; n] — canonical seed list for sweeps. *)

val blocked_simulated :
  n_simulated:int -> Core.Bg_engine.stats -> int list
(** Simulated processes decided by no simulator: [{0..n-1}] minus
    {!Core.Bg_engine.decided_processes}. *)

val sweep_scenario :
  ?kinds:Svm.Adversary.fault_kind list ->
  ?max_faults:int ->
  ?op_window:int ->
  ?max_runs:int ->
  ?budget:int ->
  ?metrics:Svm.Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  ?jobs:int ->
  Scenario.t ->
  Svm.Explore.sweep_outcome
(** Run the systematic fault-point sweeper over a scenario, tagging any
    replay artifact with the scenario's {!Scenario.sweep_meta}. [kinds]
    defaults to crash-stop only, like {!Svm.Explore.sweep_faults};
    [metrics], [on_progress] and [jobs] are handed through to the
    sweeper (outcomes are identical at any job count). *)

val explore_scenario :
  ?max_crashes:int ->
  ?max_runs:int ->
  ?max_steps:int ->
  ?metrics:Svm.Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  ?jobs:int ->
  ?dedup:bool ->
  Scenario.t ->
  (Svm.Univ.t Svm.Explore.result, string) result
(** Exhaustively explore a scenario against its
    {!Scenario.exhaustive_property}, at depth [max_steps] (default: the
    scenario's [explore_steps]). [Error] when the scenario is not
    {!Scenario.t.explorable}. *)

val sweep_check :
  ?kinds:Svm.Adversary.fault_kind list ->
  ?max_faults:int ->
  ?op_window:int ->
  ?max_runs:int ->
  ?budget:int ->
  ?expect_violation:bool ->
  label:string ->
  Scenario.t ->
  Report.check
(** {!sweep_scenario} as a report check: ok iff a violation was found
    exactly when expected — by default when the scenario has a seeded
    bug; [expect_violation] overrides, e.g. for a healthy object whose
    safety provably degrades under a Byzantine tier. The detail carries
    the shrunk fault schedule, the violation message (or the number of
    runs swept clean), and any deadlock finding. *)

(** {1 Distributed execution}

    The glue between the scenario registry and [Dist]: building jobs
    (with every default resolved to a concrete value, so a worker
    re-expanding the job cannot disagree with the coordinator),
    resolving jobs back to worker instances, and coordinator-side
    wrappers mirroring {!sweep_scenario} / {!explore_scenario}. *)

val sweep_job :
  ?kinds:Svm.Adversary.fault_kind list ->
  ?max_faults:int ->
  ?op_window:int ->
  ?max_runs:int ->
  ?budget:int ->
  Scenario.t ->
  Dist.Proto.job
(** Same defaults as {!sweep_scenario}. *)

val explore_job :
  ?max_crashes:int ->
  ?max_runs:int ->
  ?dedup:bool ->
  ?max_steps:int ->
  Scenario.t ->
  Dist.Proto.job
(** Same defaults as {!explore_scenario} (in particular [max_steps]
    defaults to the scenario's [explore_steps]). *)

val dist_instance : Dist.Proto.job -> (Dist.Worker.instance, string) result
(** Resolve a job to a worker instance: look the scenario up (with the
    job's process-count override), expand the plan. This is the [lookup]
    the [asmsim work] subcommand passes to {!Dist.Worker.serve}, and
    the coordinator wrappers below derive their own plan through it too
    — both sides of the wire expand the same job the same way. *)

type dist_result =
  [ `Sweep of
    Svm.Explore.sweep_outcome Dist.Coordinator.outcome
    * Dist.Coordinator.stats
  | `Explore of
    Svm.Univ.t Svm.Explore.result Dist.Coordinator.outcome
    * Dist.Coordinator.stats ]

val run_job_dist :
  ?metrics:Svm.Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  Dist.Coordinator.config ->
  Dist.Proto.job ->
  (dist_result, string) result
(** Run any job under the coordinator — the entry point for resuming a
    journalled job whose mode is only known at run time. *)

val sweep_scenario_dist :
  ?kinds:Svm.Adversary.fault_kind list ->
  ?max_faults:int ->
  ?op_window:int ->
  ?max_runs:int ->
  ?budget:int ->
  ?metrics:Svm.Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  Dist.Coordinator.config ->
  Scenario.t ->
  ( Svm.Explore.sweep_outcome Dist.Coordinator.outcome
    * Dist.Coordinator.stats,
    string )
  result
(** {!sweep_scenario} across worker processes: same outcome, same
    replay artifact, same metrics increments — bit for bit. *)

val explore_scenario_dist :
  ?max_crashes:int ->
  ?max_runs:int ->
  ?max_steps:int ->
  ?dedup:bool ->
  ?metrics:Svm.Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  Dist.Coordinator.config ->
  Scenario.t ->
  ( Svm.Univ.t Svm.Explore.result Dist.Coordinator.outcome
    * Dist.Coordinator.stats,
    string )
  result
(** {!explore_scenario} across worker processes. *)

val registry_fingerprint : unit -> string
(** Digest of the scenario registry and the network protocol version,
    exchanged in the {!Dist.Net} handshake: two binaries that could
    expand a job into different plans disagree on it and are rejected
    at connect time instead of corrupting a job mid-flight. *)

val submit_job_net :
  ?metrics:Svm.Metrics.t ->
  ?resume:string ->
  Dist.Client.config ->
  Dist.Proto.job ->
  Unix.sockaddr ->
  (Dist.Client.submission * Dist.Client.stats, string) result
(** Submit a job to an [asmsim serve] daemon: expand the plan locally
    (via {!dist_instance}, so the server's cell count is cross-checked)
    and merge the shard stream with {!Dist.Client.submit} — output is
    byte-identical to the in-process run. *)

val crash_before_fam :
  pid:int -> prefix:string -> nth:int -> Svm.Adversary.crash_spec
(** Crash [pid] just before its [nth] operation on any object family
    whose name starts with [prefix]. *)
