open Svm

let competitor xc i () =
  Svm.Prog.map
    (fun won -> Codec.bool.Codec.inj won)
    (Shared_objects.X_compete.compete xc ~key:[] ~pid:i)

let winners r =
  List.filter (fun b -> b) (List.map Codec.bool.Codec.prj (Exec.decided r))

let sweep ~m ~x ~max_crashes ~label =
  let ok = ref true and detail = ref "" in
  let max_winners = ref 0 in
  List.iter
    (fun seed ->
      let xc = Shared_objects.X_compete.make ~fam:"XC" ~participants:m ~x in
      let adversary =
        if max_crashes = 0 then Adversary.random ~seed
        else
          Adversary.random_crashes ~within:25 ~seed ~max_crashes ~nprocs:m
            (Adversary.random ~seed)
      in
      let r, _ =
        Harness.run_objects ~budget:50_000 ~nprocs:m ~x:2 ~adversary
          (fun i -> competitor xc i ())
      in
      let w = List.length (winners r) in
      if w > !max_winners then max_winners := w;
      let crashed = List.length r.Exec.crashed in
      let returned = Exec.decided_count r in
      let all_return = returned = m - crashed in
      if w > x || not all_return then begin
        ok := false;
        detail :=
          Printf.sprintf "seed %d: %d winners (x=%d), %d/%d returned" seed w
            x returned (m - crashed)
      end)
    (Harness.seeds 40);
  Report.check ~label ~ok:!ok
    ~detail:
      (if !ok then
         Printf.sprintf "max winners observed %d (bound %d), all correct \
                         callers returned"
           !max_winners x
       else !detail)

(* With at most x callers and no crashes, every caller must win. *)
let few_callers ~m ~x =
  let xc = Shared_objects.X_compete.make ~fam:"XC" ~participants:m ~x in
  let env = Env.create ~nprocs:m ~x:2 () in
  (* Only processes 0..x-1 compete; the rest decide immediately. *)
  let progs =
    Array.init m (fun i ->
        if i < x then competitor xc i ()
        else Prog.return (Codec.bool.Codec.inj false))
  in
  let r = Exec.run ~env ~adversary:(Adversary.random ~seed:5) progs in
  let w = List.length (winners r) in
  Report.check ~label:"with <= x callers, every caller wins"
    ~ok:(w = x)
    ~detail:(Printf.sprintf "%d callers, %d winners" x w)

let run () =
  {
    Report.id = "F5";
    title = "x_compete (Figure 5)";
    paper =
      "X_T&S returns true to at most x simulators; if x or fewer invoke \
       it, the ones that do not crash all obtain true (Section 4.3).";
    metrics = [];
    checks =
      [
        sweep ~m:5 ~x:2 ~max_crashes:0
          ~label:"40 crash-free schedules, m=5 x=2";
        sweep ~m:6 ~x:3 ~max_crashes:0
          ~label:"40 crash-free schedules, m=6 x=3";
        (match Scenario.find ~nprocs:5 "x_compete" with
        | Error msg ->
            Report.check ~label:"systematic crash sweep" ~ok:false ~detail:msg
        | Ok s ->
            Harness.sweep_check ~max_faults:2 ~op_window:5
              ~label:"<= x winners under every <=2-crash schedule swept, m=5"
              s);
        few_callers ~m:5 ~x:2;
      ];
  }
