let all =
  [
    ("S0", "substrate: Afek snapshot, tournament test&set", Exp_substrate.run);
    ("F1", "safe agreement (Figure 1)", Exp_fig1.run);
    ("F2-F3", "BG simulation core (Figures 2-3)", Exp_fig23.run);
    ("F4", "Section 3 simulation (Figure 4)", Exp_fig4.run);
    ("F5", "x_compete (Figure 5)", Exp_fig5.run);
    ("F6", "x_safe_agreement (Figure 6)", Exp_fig6.run);
    ("S4", "Section 4 simulation", Exp_sec4.run);
    ("F7", "Figure 7 equivalence chain", Exp_fig7.run);
    ("T54", "Section 5.4 classes and boundary", Exp_sec54.run);
    ("MP", "multiplicative power window", Exp_mp.run);
    ("F8", "Section 5.5 colored tasks (Figure 8)", Exp_sec55.run);
    ("AB", "ablations: necessity of each ingredient", Exp_ablation.run);
    ("UC", "consensus numbers: universality and hierarchy", Exp_universal.run);
    ("EX", "exhaustive schedule exploration", Exp_explore.run);
    ("FT", "generalized fault model (scenario family F8)", Exp_faults.run);
    ("SA", "k-set from (m,l)-set objects", Exp_mlset.run);
    ("FD", "failure-detector boosting (Omega)", Exp_omega.run);
    ("SC", "cost shape of the simulations", Exp_scale.run);
    ("PROF", "telemetry profile of the simulations", Exp_profile.run);
    ("DIST", "multi-process distribution: identity, crash-tolerance, resume",
     Exp_dist.run);
  ]

let find id =
  List.find_map
    (fun (id', _, run) -> if String.equal id id' then Some run else None)
    all

let ids () = List.map (fun (id, _, _) -> id) all
