let classes_table ~t' ~x_max =
  let classes = Core.Model.classes_for_t' ~t' ~x_max in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "equivalence classes of ASM(n, %d, x) for x = 1..%d:\n"
       t' x_max);
  List.iter
    (fun (power, xs) ->
      Buffer.add_string b
        (Printf.sprintf "  x in {%s}  ->  power %d  ~  ASM(n, %d, 1)\n"
           (String.concat ", " (List.map string_of_int xs))
           power power))
    classes;
  Buffer.contents b

(* The paper's t' = 8 example, verbatim (Section 5.4). *)
let paper_t8_expected =
  [
    (8, [ 1 ]);
    (4, [ 2 ]);
    (2, [ 3; 4 ]);
    (1, [ 5; 6; 7; 8 ]);
    (0, [ 9 ]);
  ]

let t8_classes () =
  let actual = Core.Model.classes_for_t' ~t':8 ~x_max:9 in
  let sorted l = List.sort compare l in
  Report.check ~label:"t'=8 partitions into the paper's five classes"
    ~ok:(sorted actual = sorted paper_t8_expected)
    ~detail:
      (String.concat "; "
         (List.map
            (fun (p, xs) ->
              Printf.sprintf "power %d: x in {%s}" p
                (String.concat "," (List.map string_of_int xs)))
            actual))

(* The general statement "if t'/t >= x > t'/(t+1) then
   ASM(n,t',x) ~ ASM(n,t,1)" on a grid. *)
let general_rule () =
  let ok = ref true and counter = ref 0 in
  for t' = 1 to 12 do
    for x = 1 to 12 do
      for t = 0 to 12 do
        let rule_holds =
          if t = 0 then x > t' else t' >= x * t && x * (t + 1) > t'
        in
        let equivalent = t' / x = t in
        incr counter;
        if rule_holds <> equivalent then ok := false
      done
    done
  done;
  Report.check ~label:"rule t'/t >= x > t'/(t+1) <=> floor(t'/x) = t"
    ~ok:!ok
    ~detail:(Printf.sprintf "checked %d (t', x, t) triples" !counter)

(* Empirical boundary probe: (floor(t'/x)+1)-set agreement is solvable in
   ASM(t'+2, t', x) via the Section 4 simulation, under t' crashes. *)
let probe ~t' ~x =
  let n = t' + 2 in
  let t = t' / x in
  let k = t + 1 in
  let source = Tasks.Algorithms.kset_read_write ~n ~t ~k in
  let alg =
    if x = 1 then Core.Bg.to_model ~source ~target:(Core.Model.read_write ~n ~t:t')
    else Core.Bg.sim_up ~source ~t' ~x
  in
  let task = Tasks.Task.kset ~k in
  let s =
    Runner.sweep ~budget:2_000_000 ~task ~alg ~seeds:(Harness.seeds 3)
      ~max_crashes:t' ()
  in
  let ok = s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs in
  Report.check
    ~label:
      (Printf.sprintf "%d-set agreement solvable in ASM(%d,%d,%d)" k n t' x)
    ~ok
    ~detail:(Format.asprintf "%a" Runner.pp_summary s)

let run () =
  {
    Report.id = "T54";
    title = "Section 5.4: equivalence classes and the k-set boundary";
    paper =
      "All models ASM(n, t', x) with floor(t'/x) = t form one class with \
       canonical form ASM(n, t, 1); for t' = 8 there are exactly 5 \
       classes; a task with set consensus number k is solvable in \
       ASM(n, t, x) iff k > floor(t/x).";
    metrics = [];
    checks =
      [
        t8_classes ();
        general_rule ();
        probe ~t':2 ~x:1;
        probe ~t':2 ~x:2;
        probe ~t':3 ~x:2;
        probe ~t':4 ~x:2;
        probe ~t':4 ~x:3;
        probe ~t':3 ~x:3;
      ];
  }
