(** Named fault-injection scenarios: what [asmsim sweep] sweeps and what
    a replay artifact rebuilds.

    A scenario binds a system under test — fresh environment + programs —
    to the online safety monitors that define "broken" for it. The
    registry includes the healthy agreement objects (the sweeper proving
    their safety over the whole fault box), deliberately seeded bugs
    (the sweeper finding, shrinking and replaying the violation — the
    regression harness for the sweeper itself), the abortable
    x_safe_agreement variant ([x_safe_agreement_abortable], graceful
    degradation against hung ports), and the paper's simulations run
    whole under fault injection ([bg_sec3], [bg_sec4] — the §3 and §4
    BG simulations of a 2-set-agreement task; their monitors check
    k-agreement, decided-value integrity, and the per-instance
    [stall_bound] blocking account, which is sound for sweeps with at
    most one injected fault).

    Replay artifacts produced by {!Svm.Explore.sweep_crashes} via
    {!sweep_meta} carry the scenario name and size, so
    [asmsim replay file] can rebuild the exact system and re-drive the
    recorded schedule against it. *)

type origin =
  | Builtin  (** hand-written in this module *)
  | Sdl_source of { source : string; path : string option }
      (** compiled from DSL source text (the [path] is the .sdl file it
          was loaded from, when there is one) *)

type t = {
  name : string;
  doc : string;
  seeded_bug : bool;  (** a violation is expected to exist *)
  nprocs : int;
  x : int;  (** the model's consensus-object arity *)
  make : unit -> Svm.Env.t * Svm.Univ.t Svm.Prog.t array;
  monitors : unit -> Svm.Univ.t Svm.Monitor.t list;
  explorable : bool;
      (** whether {!Svm.Explore.exhaustive} applies: the programs must be
          closed (state in the environment and continuations only) — the
          BG simulations keep simulator state in refs and are not *)
  explore_steps : int;
      (** default depth bound for exhaustive exploration of this
          scenario (0 when not [explorable]) *)
  exhaustive_property :
    Svm.Univ.t Svm.Explore.run -> (unit, string) Stdlib.result;
      (** the scenario's safety property as a pure function of the run
          record (never of [schedule]), safe on truncated runs — the
          contract {!Svm.Explore.exhaustive}'s prunings require *)
  origin : origin;
}

val all : unit -> t list
(** Every scenario at its default size. *)

val names : unit -> string list

val find : ?nprocs:int -> string -> (t, string) result
(** Look up by name, optionally resized to [nprocs] processes —
    registered DSL scenarios first (recompiled at the requested size),
    then the builtins. An out-of-range [nprocs] error names the valid
    range; an unknown name lists the known names. *)

(** {1 DSL scenarios}

    Compiled from {!Sdl} source text. [names ()] stays builtins-only
    (the network registry fingerprint folds it); DSL jobs carry their
    source over the wire in {!Dist.Proto.job.source} instead. *)

val of_compiled : origin:origin -> Sdl.Compile.t -> t
(** Wrap a compiled DSL scenario. Always [explorable]: compiled
    programs are closed by construction. *)

val of_source : ?nprocs:int -> ?path:string -> string -> (t, string) result
(** Parse + validate + compile DSL source text (size-capped). *)

val register_source : ?path:string -> string -> (t, string) result
(** [of_source] at the default size, then remember the source under its
    declared name so {!find} resolves it (shadowing a builtin of the
    same name — the twin-file case). *)

val registered_names : unit -> string list

val registered_scenarios : unit -> t list
(** Every registered DSL scenario at its default size. *)

val sweep_meta : t -> (string * string) list
(** Replay-artifact metadata identifying the scenario ([scenario],
    [nprocs], [x]) — pass as {!Svm.Explore.sweep_crashes}'s [meta]. *)

val of_replay_meta : (string * string) list -> (t, string) result
(** Rebuild the scenario a replay artifact was recorded against. *)
