(** Named fault-injection scenarios: what [asmsim sweep] sweeps and what
    a replay artifact rebuilds.

    A scenario binds a system under test — fresh environment + programs —
    to the online safety monitors that define "broken" for it. The
    registry includes the healthy agreement objects (the sweeper proving
    their safety over the whole fault box), deliberately seeded bugs
    (the sweeper finding, shrinking and replaying the violation — the
    regression harness for the sweeper itself), the abortable
    x_safe_agreement variant ([x_safe_agreement_abortable], graceful
    degradation against hung ports), and the paper's simulations run
    whole under fault injection ([bg_sec3], [bg_sec4] — the §3 and §4
    BG simulations of a 2-set-agreement task; their monitors check
    k-agreement, decided-value integrity, and the per-instance
    [stall_bound] blocking account, which is sound for sweeps with at
    most one injected fault).

    Replay artifacts produced by {!Svm.Explore.sweep_crashes} via
    {!sweep_meta} carry the scenario name and size, so
    [asmsim replay file] can rebuild the exact system and re-drive the
    recorded schedule against it. *)

type t = {
  name : string;
  doc : string;
  seeded_bug : bool;  (** a violation is expected to exist *)
  nprocs : int;
  x : int;  (** the model's consensus-object arity *)
  make : unit -> Svm.Env.t * Svm.Univ.t Svm.Prog.t array;
  monitors : unit -> Svm.Univ.t Svm.Monitor.t list;
  explorable : bool;
      (** whether {!Svm.Explore.exhaustive} applies: the programs must be
          closed (state in the environment and continuations only) — the
          BG simulations keep simulator state in refs and are not *)
  explore_steps : int;
      (** default depth bound for exhaustive exploration of this
          scenario (0 when not [explorable]) *)
  exhaustive_property :
    Svm.Univ.t Svm.Explore.run -> (unit, string) Stdlib.result;
      (** the scenario's safety property as a pure function of the run
          record (never of [schedule]), safe on truncated runs — the
          contract {!Svm.Explore.exhaustive}'s prunings require *)
}

val all : unit -> t list
(** Every scenario at its default size. *)

val names : unit -> string list

val find : ?nprocs:int -> string -> (t, string) result
(** Look up by name, optionally resized to [nprocs] processes. The error
    lists the known names. *)

val sweep_meta : t -> (string * string) list
(** Replay-artifact metadata identifying the scenario ([scenario],
    [nprocs], [x]) — pass as {!Svm.Explore.sweep_crashes}'s [meta]. *)

val of_replay_meta : (string * string) list -> (t, string) result
(** Rebuild the scenario a replay artifact was recorded against. *)
