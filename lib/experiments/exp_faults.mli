(** Experiment FT — scenario family F8: the generalized fault model.

    Sweeps every simulation-bearing scenario (the agreement objects, the
    abortable x_safe_agreement, and the whole §3/§4 BG simulations)
    under each fault tier systematically, with expected verdicts:

    - {e omission}: zero safety violations — hangs degrade liveness
      only;
    - {e crash-recovery}: zero safety violations for the
      consensus-funneled constructions (x_safe_agreement and both BG
      simulations) — but an {e expected} agreement violation for plain
      safe_agreement, whose Figure 1 cancel mechanism is not idempotent
      under re-proposal (the sweeper finds and shrinks it);
    - {e Byzantine} on safe_agreement: contained — forged values poison
      readers (stuck on decode), no honest process adopts one;
    - {e Byzantine} on x_safe_agreement: expected violation — the
      any-coded publish register lets a forged value reach honest
      deciders, and the decided-value-integrity monitor must catch,
      shrink and replay it. *)

val run : unit -> Report.t
