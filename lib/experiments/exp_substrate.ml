open Svm
open Svm.Prog.Syntax

let n = 4

let views_codec = Codec.list (Codec.list (Codec.pair Codec.int Codec.int))

(* Each process does [rounds] update+scan cycles and decides the encoded
   list of all views it collected. A view is encoded as the list of
   (writer, value) pairs it contains. *)
let snap_worker snap rounds i =
  let rec go r acc =
    if r = rounds then Prog.return (views_codec.Codec.inj (List.rev acc))
    else
      let* () =
        Shared_objects.Afek_snapshot.update snap ~pid:i
          (Codec.int.Codec.inj ((100 * i) + r))
      in
      let* view = Shared_objects.Afek_snapshot.scan snap ~pid:i in
      let decoded =
        Array.to_list view
        |> List.mapi (fun j v ->
               Option.map (fun u -> (j, Codec.int.Codec.prj u)) v)
        |> List.filter_map Fun.id
      in
      go (r + 1) (decoded :: acc)
  in
  go 0 []

let view_leq v1 v2 =
  (* v1 <= v2 pointwise on the per-writer value (values encode write
     counts, monotonically increasing). *)
  List.for_all
    (fun (j, value) ->
      match List.assoc_opt j v2 with
      | None -> false
      | Some value' -> value' >= value)
    v1

let afek_checks () =
  
  let ok_order = ref true and ok_self = ref true in
  List.iter
    (fun seed ->
      let snap = Shared_objects.Afek_snapshot.make ~fam:"AFEK" ~nprocs:n in
      let env = Env.create ~nprocs:n ~x:1 () in
      let progs = Array.init n (snap_worker snap 4) in
      let r = Exec.run ~env ~adversary:(Adversary.random ~seed) progs in
      let all_views =
        Exec.decided r |> List.concat_map (fun u -> views_codec.Codec.prj u)
      in
      (* Total order by containment. *)
      List.iteri
        (fun a va ->
          List.iteri
            (fun b vb ->
              if a < b && (not (view_leq va vb)) && not (view_leq vb va) then
                ok_order := false)
            all_views)
        all_views;
      (* Self-inclusion: process i's r-th scan contains its r-th update. *)
      List.iteri
        (fun i u ->
          let views = views_codec.Codec.prj u in
          List.iteri
            (fun r view ->
              match List.assoc_opt i view with
              | Some v when v >= (100 * i) + r -> ()
              | Some _ | None -> ok_self := false)
            views)
        (Exec.decided r))
    (Harness.seeds 25);
  [
    Report.check ~label:"Afek views totally ordered by containment"
      ~ok:!ok_order
      ~detail:"25 schedules x 4 processes x 4 update/scan rounds";
    Report.check ~label:"Afek scans contain the scanner's own last update"
      ~ok:!ok_self ~detail:"every scan reflects the preceding update";
  ]

let ts_checks () =
  let ok = ref true and detail = ref "" in
  List.iter
    (fun seed ->
      let ts = Shared_objects.Ts_from_cons.make ~fam:"TS" ~participants:n in
      let env = Env.create ~nprocs:n ~x:2 () in
      let progs =
        Array.init n (fun i ->
            Prog.map Codec.bool.Codec.inj
              (Shared_objects.Ts_from_cons.compete ts ~key:[] ~pid:i))
      in
      let adversary =
        Adversary.random_crashes ~within:6 ~seed ~max_crashes:1 ~nprocs:n
          (Adversary.random ~seed)
      in
      let r = Exec.run ~budget:20_000 ~env ~adversary progs in
      let winners =
        Exec.decided r |> List.map Codec.bool.Codec.prj
        |> List.filter (fun b -> b)
        |> List.length
      in
      let crashed = List.length r.Exec.crashed in
      let returned = Exec.decided_count r in
      if winners > 1 || returned <> n - crashed then begin
        ok := false;
        detail :=
          Printf.sprintf "seed %d: %d winners, %d/%d returned" seed winners
            returned (n - crashed)
      end)
    (Harness.seeds 40);
  Report.check ~label:"tournament test&set: <= 1 winner, wait-free" ~ok:!ok
    ~detail:(if !ok then "40 schedules with up to 1 crash" else !detail)

(* ------------------------------------------------------------------ *)
(* Immediate snapshot: self-inclusion, containment, immediacy          *)
(* ------------------------------------------------------------------ *)

let immediate_snapshot_checks () =
  let ok = ref true and detail = ref "" in
  let views_codec = Codec.list (Codec.pair Codec.int Codec.int) in
  List.iter
    (fun seed ->
      let is = Shared_objects.Immediate_snapshot.make ~fam:"IS" ~nprocs:n in
      let env = Env.create ~nprocs:n ~x:1 () in
      let progs =
        Array.init n (fun i ->
            Shared_objects.Immediate_snapshot.write_and_snapshot is ~key:[]
              ~pid:i (Codec.int.Codec.inj (500 + i))
            |> Prog.map (fun view ->
                   views_codec.Codec.inj
                     (List.map (fun (j, w) -> (j, Codec.int.Codec.prj w)) view)))
      in
      let r = Exec.run ~env ~adversary:(Adversary.random ~seed) progs in
      let views =
        Array.to_list r.Exec.outcomes
        |> List.mapi (fun i o -> (i, o))
        |> List.filter_map (fun (i, o) ->
               match o with
               | Exec.Decided u -> Some (i, views_codec.Codec.prj u)
               | Exec.Crashed | Exec.Blocked | Exec.Stuck -> None)
      in
      let contains view j = List.mem_assoc j view in
      let subset v1 v2 = List.for_all (fun (j, _) -> contains v2 j) v1 in
      List.iter
        (fun (i, vi) ->
          if not (contains vi i) then begin
            ok := false;
            detail := Printf.sprintf "seed %d: self-inclusion broken" seed
          end;
          List.iter
            (fun (j, vj) ->
              if not (subset vi vj || subset vj vi) then begin
                ok := false;
                detail := Printf.sprintf "seed %d: containment broken" seed
              end;
              (* immediacy: if pj's view contains pi, then vi <= vj *)
              if contains vj i && not (subset vi vj) then begin
                ok := false;
                detail := Printf.sprintf "seed %d: immediacy broken (%d,%d)" seed i j
              end)
            views)
        views)
    (Harness.seeds 40);
  Report.check
    ~label:"immediate snapshot: self-inclusion, containment, immediacy"
    ~ok:!ok
    ~detail:(if !ok then "40 schedules x 4 processes" else !detail)

(* ------------------------------------------------------------------ *)
(* Adopt-commit                                                        *)
(* ------------------------------------------------------------------ *)

let adopt_commit_checks () =
  let ok = ref true and detail = ref "" in
  let res_codec = Codec.pair Codec.bool Codec.int in
  List.iter
    (fun seed ->
      (* Random proposals drawn from two values so both the convergence
         and the conflict cases occur. *)
      let rng = Rng.create seed in
      let proposals = Array.init n (fun _ -> 800 + Rng.int rng 2) in
      let ac = Shared_objects.Adopt_commit.make ~fam:"AC" in
      let env = Env.create ~nprocs:n ~x:1 () in
      let progs =
        Array.init n (fun i ->
            Shared_objects.Adopt_commit.propose ac ~key:[] ~pid:i
              (Codec.int.Codec.inj proposals.(i))
            |> Prog.map (fun (verdict, u) ->
                   res_codec.Codec.inj
                     ( (match verdict with
                       | Shared_objects.Adopt_commit.Commit -> true
                       | Shared_objects.Adopt_commit.Adopt -> false),
                       Codec.int.Codec.prj u )))
      in
      let r = Exec.run ~env ~adversary:(Adversary.random ~seed) progs in
      let results = List.map res_codec.Codec.prj (Exec.decided r) in
      let all_decided = List.length results = n in
      let valid =
        List.for_all (fun (_, v) -> Array.exists (Int.equal v) proposals) results
      in
      let commits = List.filter_map (fun (c, v) -> if c then Some v else None) results in
      let commit_agreement =
        match commits with
        | [] -> true
        | w :: _ -> List.for_all (fun (_, v) -> v = w) results
      in
      let all_same = Array.for_all (Int.equal proposals.(0)) proposals in
      let convergence = (not all_same) || List.for_all fst results in
      if not (all_decided && valid && commit_agreement && convergence) then begin
        ok := false;
        detail :=
          Printf.sprintf
            "seed %d: decided=%b valid=%b commit-agreement=%b convergence=%b"
            seed all_decided valid commit_agreement convergence
      end)
    (Harness.seeds 60);
  Report.check
    ~label:"adopt-commit: validity, commit-agreement, convergence, wait-free"
    ~ok:!ok
    ~detail:(if !ok then "60 schedules x 4 processes" else !detail)

let run () =
  {
    Report.id = "S0";
    title = "substrate: snapshot from registers, test&set from consensus";
    paper =
      "The base model's snapshot memory is implementable from read/write \
       registers (reference [1]); test&set is implementable from \
       consensus number 2 objects (reference [19]).";
    metrics = [];
    checks =
      afek_checks ()
      @ [ ts_checks (); immediate_snapshot_checks (); adopt_commit_checks () ];
  }
