open Svm
open Svm.Prog.Syntax

(* ------------------------------------------------------------------ *)
(* 1. Safe agreement without the cancel rule: disagreement             *)
(* ------------------------------------------------------------------ *)

(* p1 proposes and decides first (seeing only itself stable); then p2
   proposes-and-decides (still v1, min id among {1,2}); finally p0 — with
   the SMALLEST id — stabilizes unconditionally and decides its own
   value. With the real rule p0 would have cancelled. *)
let no_cancel_disagrees () =
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let participant i =
    let* () =
      Shared_objects.Ablations.sa_propose_no_cancel ~fam:"SA" ~key:[]
        (Codec.int.Codec.inj (100 + i))
    in
    Shared_objects.Safe_agreement.decide sa ~key:[]
  in
  let env = Env.create ~nprocs:3 ~x:1 () in
  let r =
    Exec.run ~budget:20_000 ~env
      ~adversary:(Adversary.priority [ 1; 2; 0 ])
      (Array.init 3 participant)
  in
  let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
  let distinct = List.sort_uniq compare ds in
  Report.check ~label:"without the cancel rule, agreement breaks"
    ~ok:(List.length distinct > 1)
    ~detail:
      (Printf.sprintf "decisions [%s]: %d distinct values"
         (String.concat ";" (List.map string_of_int ds))
         (List.length distinct))

let with_cancel_agrees () =
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let participant i =
    let* () =
      Shared_objects.Safe_agreement.propose sa ~key:[]
        (Codec.int.Codec.inj (100 + i))
    in
    Shared_objects.Safe_agreement.decide sa ~key:[]
  in
  let env = Env.create ~nprocs:3 ~x:1 () in
  let r =
    Exec.run ~budget:20_000 ~env
      ~adversary:(Adversary.priority [ 1; 2; 0 ])
      (Array.init 3 participant)
  in
  let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
  Report.check ~label:"same schedule, real rule: agreement holds"
    ~ok:(List.length (List.sort_uniq compare ds) = 1 && List.length ds = 3)
    ~detail:
      (Printf.sprintf "decisions [%s]"
         (String.concat ";" (List.map string_of_int ds)))

(* ------------------------------------------------------------------ *)
(* 2. The simulation without mutex1                                    *)
(* ------------------------------------------------------------------ *)

let source = Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:3
let target = Core.Model.read_write ~n:6 ~t:2

let run_mutex_variant ~ablate =
  let stats = Core.Bg_engine.new_stats () in
  let alg =
    Core.Bg_engine.simulate ~ablate_mutex1:ablate ~stats ~source ~target
      ~mode:`Exhaustive ()
  in
  (* Crash simulator 0 after 11 local steps: without mutex1 its six
     threads are all mid-propose on their input agreements. *)
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [ Adversary.Crash_at_local { pid = 0; step = 11 } ]
  in
  let inputs = Array.init 6 (fun i -> Codec.int.Codec.inj i) in
  let r = Core.Run.run ~budget:600_000 ~alg ~inputs ~adversary () in
  let blocked = Harness.blocked_simulated ~n_simulated:6 stats in
  (List.length r.Exec.crashed, blocked)

let no_mutex1_overblocks () =
  let crashed, blocked = run_mutex_variant ~ablate:true in
  Report.check
    ~label:"without mutex1, ONE crash blocks many simulated processes"
    ~ok:(crashed = 1 && List.length blocked > 1)
    ~detail:
      (Printf.sprintf "crashed=%d blocked=[%s] (Lemma 1 bound would be 1)"
         crashed
         (String.concat ";" (List.map string_of_int blocked)))

let with_mutex1_bounded () =
  let crashed, blocked = run_mutex_variant ~ablate:false in
  Report.check ~label:"same crash with mutex1: at most 1 blocked"
    ~ok:(crashed = 1 && List.length blocked <= 1)
    ~detail:
      (Printf.sprintf "crashed=%d blocked=[%s]" crashed
         (String.concat ";" (List.map string_of_int blocked)))

(* ------------------------------------------------------------------ *)
(* 3. Static owners: the same x crashes kill every instance            *)
(* ------------------------------------------------------------------ *)

(* 5 processes, x = 2, TWO instances used back to back. Static owners
   are always {0, 1}; crash p0 inside its propose on instance [0] and
   p1 inside its propose on instance [1]: both instances are dead and
   every other process blocks on instance [0] already. Dynamically owned
   instances survive the same crash pattern. *)
let two_instances xsa i =
  let* () =
    Shared_objects.X_safe_agreement.propose xsa ~key:[ 0 ] ~pid:i
      (Codec.int.Codec.inj (10 + i))
  in
  let* a = Shared_objects.X_safe_agreement.decide xsa ~key:[ 0 ] ~pid:i in
  let* () =
    Shared_objects.X_safe_agreement.propose xsa ~key:[ 1 ] ~pid:i a
  in
  let* b = Shared_objects.X_safe_agreement.decide xsa ~key:[ 1 ] ~pid:i in
  Prog.return b

let run_owner_variant ~static =
  let xsa =
    Shared_objects.X_safe_agreement.make ~static_owners:static ~fam:"XSA"
      ~participants:5 ~x:2 ()
  in
  let adversary =
    Adversary.with_crashes
      (Adversary.priority [ 0; 1 ])
      [
        (* p0 dies mid-propose on instance [0], p1 mid-propose on [1]
           (p1 completes [0] first, which is also the static-owner worst
           case the paper describes). *)
        Harness.crash_before_fam ~pid:0 ~prefix:"XSA.val" ~nth:0;
        Harness.crash_before_fam ~pid:1 ~prefix:"XSA.val" ~nth:1;
      ]
  in
  let env = Env.create ~nprocs:5 ~x:2 () in
  let r =
    Exec.run ~budget:60_000 ~env ~adversary (Array.init 5 (two_instances xsa))
  in
  (List.length r.Exec.crashed, Exec.decided_count r, List.length (Exec.blocked r))

let static_owners_collapse () =
  let crashed, decided, blocked = run_owner_variant ~static:true in
  Report.check
    ~label:"static owners: x crashes spread over 2 instances block everyone"
    ~ok:(crashed = 2 && decided = 0 && blocked = 3)
    ~detail:(Printf.sprintf "crashed=%d decided=%d blocked=%d" crashed decided blocked)

let dynamic_owners_survive () =
  let crashed, decided, blocked = run_owner_variant ~static:false in
  Report.check
    ~label:"dynamic owners: the same crash pattern blocks nobody"
    ~ok:(crashed = 2 && decided = 3 && blocked = 0)
    ~detail:(Printf.sprintf "crashed=%d decided=%d blocked=%d" crashed decided blocked)

let run () =
  {
    Report.id = "AB";
    title = "ablations: why each ingredient is necessary";
    paper =
      "Design choices the paper motivates: Figure 1's cancellation, the \
       single-propose mutex (Section 3.2.3), and dynamic owners for \
       x_safe_agreement (Section 4.3).";
    metrics = [];
    checks =
      [
        no_cancel_disagrees ();
        with_cancel_agrees ();
        no_mutex1_overblocks ();
        with_mutex1_bounded ();
        static_owners_collapse ();
        dynamic_owners_survive ();
      ];
  }
