(** Experiment reports: a named list of checks, printable as the tables
    of EXPERIMENTS.md. *)

type check = { label : string; ok : bool; detail : string }

type t = {
  id : string;  (** e.g. "F1" *)
  title : string;
  paper : string;  (** the paper's claim being reproduced *)
  metrics : (string * string) list;
      (** named {!Svm.Metrics} snapshots ([name, JSON]) gathered while the
          experiment ran; rendered as collapsible blocks in Markdown *)
  checks : check list;
}

val check : label:string -> ok:bool -> detail:string -> check

val check_eq :
  label:string -> pp:('a -> string) -> expected:'a -> actual:'a -> check

val all_ok : t -> bool
val pp : Format.formatter -> t -> unit
val pp_summary_line : Format.formatter -> t -> unit
val to_markdown : t -> string
