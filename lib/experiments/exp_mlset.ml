let formula_specializations () =
  let ok = ref true in
  (* l = 1, m = x: consensus objects give floor(t/x) + 1. *)
  for t = 0 to 12 do
    for x = 1 to 6 do
      if Tasks.Set_agreement.herlihy_rajsbaum_k ~t ~m:x ~l:1 <> (t / x) + 1
      then ok := false
    done;
    (* m = l = 1: registers give t + 1 (Chaudhuri). *)
    if Tasks.Set_agreement.herlihy_rajsbaum_k ~t ~m:1 ~l:1 <> t + 1 then
      ok := false
  done;
  Report.check
    ~label:"formula specializes to floor(t/x)+1 (consensus) and t+1 (registers)"
    ~ok:!ok ~detail:"checked t = 0..12, x = 1..6"

let probe ~n ~t ~m ~l =
  let k = Tasks.Set_agreement.herlihy_rajsbaum_k ~t ~m ~l in
  let alg = Tasks.Set_agreement.algorithm ~n ~t ~m ~l ~k in
  let task = Tasks.Task.kset ~k in
  let s =
    Runner.sweep ~allow_kset:true ~budget:300_000 ~task ~alg
      ~seeds:(Harness.seeds 30) ~max_crashes:t ()
  in
  let ok =
    s.Runner.valid = s.Runner.runs
    && s.Runner.live = s.Runner.runs
    && s.Runner.max_distinct_decisions <= k
  in
  Report.check
    ~label:
      (Printf.sprintf "(m=%d,l=%d) objects, n=%d t=%d: k=%d-set agreement" m l
         n t k)
    ~ok
    ~detail:
      (Printf.sprintf "30 sweeps, max distinct decisions %d (bound %d)"
         s.Runner.max_distinct_decisions k)

let threshold_enforced () =
  let refused =
    match
      Tasks.Set_agreement.algorithm ~n:6 ~t:4 ~m:3 ~l:2
        ~k:(Tasks.Set_agreement.herlihy_rajsbaum_k ~t:4 ~m:3 ~l:2 - 1)
    with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true
  in
  Report.check ~label:"k below the threshold is rejected" ~ok:refused
    ~detail:
      (if refused then "Invalid_argument, as the impossibility half demands"
       else "wrongly accepted")

let run () =
  {
    Report.id = "SA";
    title = "k-set agreement from (m,l)-set objects (Section 1.3)";
    paper =
      "With (m,l)-set agreement objects, k-set agreement is solvable iff \
       k >= l*floor((t+1)/m) + min(l, (t+1) mod m) (Herlihy & Rajsbaum, \
       the paper's reference [22]).";
    metrics = [];
    checks =
      [
        formula_specializations ();
        probe ~n:6 ~t:3 ~m:3 ~l:2;
        probe ~n:6 ~t:5 ~m:3 ~l:2;
        probe ~n:8 ~t:5 ~m:4 ~l:2;
        probe ~n:8 ~t:6 ~m:2 ~l:1;
        probe ~n:6 ~t:4 ~m:2 ~l:2;
        threshold_enforced ();
      ];
  }
