open Svm
open Svm.Prog.Syntax

(* Universal fetch&add counter: 4 processes, 3 increments each, under a
   random crash. The multiset of fetch&add results of the processes that
   finished must be duplicate-free and consistent with atomicity. *)
let universal_counter () =
  let open Universal.Seq_spec in
  let n = 4 in
  let ok = ref true and detail = ref "" in
  List.iter
    (fun seed ->
      let env = Env.create ~nprocs:n ~x:n () in
      let obj = Universal.Herlihy.make counter ~fam:"U" in
      let codec = Codec.list counter.res_codec in
      let prog pid =
        let session = Universal.Herlihy.session obj ~pid in
        let rec go acc = function
          | [] -> Prog.return (codec.Codec.inj (List.rev acc))
          | op :: rest ->
              let* res = Universal.Herlihy.invoke session op in
              go (res :: acc) rest
        in
        go [] [ Add 1; Add 1; Add 1 ]
      in
      let adversary =
        Adversary.random_crashes ~within:40 ~seed ~max_crashes:1 ~nprocs:n
          (Adversary.random ~seed)
      in
      let r = Exec.run ~budget:300_000 ~env ~adversary (Array.init n prog) in
      let crashed = List.length r.Exec.crashed in
      let previous =
        Exec.decided r |> List.concat_map (fun u -> codec.Codec.prj u)
      in
      let distinct = List.sort_uniq compare previous in
      let live = Exec.decided_count r = n - crashed in
      if (not live) || List.length distinct <> List.length previous then begin
        ok := false;
        detail := Printf.sprintf "seed %d: live=%b duplicates=%b" seed live
            (List.length distinct <> List.length previous)
      end)
    (Harness.seeds 20);
  Report.check
    ~label:"universal fetch&add from n-consensus: atomic, wait-free"
    ~ok:!ok
    ~detail:
      (if !ok then "20 schedules with up to 1 crash: no duplicate tickets"
       else !detail)

let gallery ~label ~nprocs ~x ~allow_cas ~setup ~protocol =
  let ok = ref true and detail = ref "" in
  List.iter
    (fun seed ->
      let env = Env.create ~nprocs ~x ~allow_cas () in
      setup env;
      let progs =
        Array.init nprocs (fun pid ->
            Prog.map Codec.int.Codec.inj (protocol ~pid (40 + pid)))
      in
      let r = Exec.run ~env ~adversary:(Adversary.random ~seed) progs in
      let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
      let good =
        List.length ds = nprocs
        && List.for_all (fun d -> d = List.hd ds) ds
        && List.hd ds >= 40
        && List.hd ds < 40 + nprocs
      in
      if not good then begin
        ok := false;
        detail := Printf.sprintf "seed %d: agreement/validity broken" seed
      end)
    (Harness.seeds 25);
  Report.check ~label ~ok:!ok
    ~detail:(if !ok then "25 schedules: agreement + validity" else !detail)

let cas_refused () =
  let env = Env.create ~nprocs:2 ~x:2 () in
  let progs =
    Array.init 2 (fun pid ->
        Prog.map Codec.int.Codec.inj
          (Universal.From_objects.consn_from_cas ~fam:"G" ~key:[] ~pid pid))
  in
  let refused =
    match Exec.run ~env ~adversary:(Adversary.round_robin ()) progs with
    | (_ : Univ.t Exec.result) -> false
    | exception Env.Violation _ -> true
  in
  Report.check ~label:"compare&swap refused in a finite-x model" ~ok:refused
    ~detail:
      (if refused then "Env.Violation raised: CN(CAS) = infinity > any x"
       else "CAS was wrongly hosted")

let run () =
  {
    Report.id = "UC";
    title = "consensus numbers: universality and the hierarchy (Section 1.1)";
    paper =
      "Objects with consensus number >= x are universal in systems of at \
       most x processes (Herlihy); test&set and queues have consensus \
       number 2; compare&swap has consensus number infinity.";
    metrics = [];
    checks =
      [
        universal_counter ();
        gallery ~label:"2-process consensus from one test&set" ~nprocs:2 ~x:2
          ~allow_cas:false
          ~setup:(fun _ -> ())
          ~protocol:(fun ~pid v ->
            Universal.From_objects.cons2_from_ts ~fam:"G" ~key:[] ~pid v);
        gallery ~label:"2-process consensus from one queue" ~nprocs:2 ~x:2
          ~allow_cas:false
          ~setup:(fun env ->
            Universal.From_objects.setup_queue env ~fam:"G" ~key:[])
          ~protocol:(fun ~pid v ->
            Universal.From_objects.cons2_from_queue ~fam:"G" ~key:[] ~pid v);
        gallery ~label:"6-process consensus from one compare&swap" ~nprocs:6
          ~x:1 ~allow_cas:true
          ~setup:(fun _ -> ())
          ~protocol:(fun ~pid v ->
            Universal.From_objects.consn_from_cas ~fam:"G" ~key:[] ~pid v);
        cas_refused ();
      ];
  }
