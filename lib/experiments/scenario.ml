open Svm
open Svm.Prog.Syntax

type origin = Builtin | Sdl_source of { source : string; path : string option }

type t = {
  name : string;
  doc : string;
  seeded_bug : bool;
  nprocs : int;
  x : int;
  make : unit -> Env.t * Univ.t Prog.t array;
  monitors : unit -> Univ.t Monitor.t list;
  explorable : bool;
  explore_steps : int;
  exhaustive_property : Univ.t Explore.run -> (unit, string) Stdlib.result;
  origin : origin;
}

(* ------------------------------------------------------------------ *)
(* Exhaustive-exploration properties (pure functions of the run record) *)
(* ------------------------------------------------------------------ *)

let decided_ints run =
  Array.to_list run.Explore.outcomes
  |> List.filter_map (function
       | Exec.Decided u -> Some (Codec.int.Codec.prj u)
       | Exec.Crashed | Exec.Blocked | Exec.Stuck -> None)

let agreement_property ~lo ~hi run =
  let ds = decided_ints run in
  if List.exists (fun v -> v < lo || v > hi) ds then
    Error "validity: decided value outside the proposed range"
  else
    match ds with
    | [] -> Ok ()
    | d :: rest ->
        if List.for_all (fun v -> v = d) rest then Ok ()
        else Error "agreement: two distinct values decided"

let agreement_except_property ~sentinel ~lo ~hi run =
  let ds = decided_ints run in
  if List.exists (fun v -> v <> sentinel && (v < lo || v > hi)) ds then
    Error "validity: decided value outside the proposed range"
  else
    match List.filter (fun v -> v <> sentinel) ds with
    | [] -> Ok ()
    | d :: rest ->
        if List.for_all (fun v -> v = d) rest then Ok ()
        else Error "agreement: two distinct values decided"

let winners_property ~bound run =
  let wins =
    Array.to_list run.Explore.outcomes
    |> List.filter (function
         | Exec.Decided u -> (
             match Codec.bool.Codec.prj u with
             | w -> w
             | exception Codec.Type_error _ -> false)
         | Exec.Crashed | Exec.Blocked | Exec.Stuck -> false)
    |> List.length
  in
  if wins <= bound then Ok ()
  else Error (Printf.sprintf "%d processes won (bound %d)" wins bound)

(* ------------------------------------------------------------------ *)
(* Monitor kits over int-coded decisions                                *)
(* ------------------------------------------------------------------ *)

let pp_int u =
  match Codec.int.Codec.prj u with
  | v -> string_of_int v
  | exception Codec.Type_error _ -> "<univ>"

let int_in ~lo ~hi u =
  match Codec.int.Codec.prj u with
  | v -> v >= lo && v <= hi
  | exception Codec.Type_error _ -> false

(* [decided_value_integrity] instead of plain [validity]: identical on
   crash-only runs (no Corrupted events), and under Byzantine sweeps it
   checks exactly the degradation claim — no honest process adopts a
   forged value — without charging a Byzantine pid's own "decision". *)
let agreement_monitors ~lo ~hi () =
  [
    Monitor.agreement ~pp:pp_int ();
    Monitor.decided_value_integrity ~pp:pp_int ~allowed:(int_in ~lo ~hi) ();
  ]

(* At most [bound] processes decide [true]. *)
let winners_monitor ~bound () =
  let wins = ref 0 in
  Monitor.make ~name:(Printf.sprintf "winners(<=%d)" bound) (function
    | Monitor.Decided { value; _ }
      when (match Codec.bool.Codec.prj value with
           | w -> w
           | exception Codec.Type_error _ -> false) ->
        incr wins;
        if !wins <= bound then Ok ()
        else Error (Printf.sprintf "%d processes won (bound %d)" !wins bound)
    | Monitor.Decided _ | Monitor.Op_applied _ | Monitor.Crashed _
    | Monitor.Stalled _ | Monitor.Restarted _ | Monitor.Corrupted _ ->
        Ok ())

(* Agreement among the processes that actually decided a value, with a
   designated sentinel meaning "aborted / rerouted" excluded: an abort
   is an explicit refusal, not a decision, so it must never count as a
   disagreement — that is the graceful-degradation contract of
   [X_safe_agreement.decide_abortable]. Byzantine deciders are excluded
   like in [decided_value_integrity]. *)
let agreement_except ~sentinel () =
  let byz : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let first = ref None in
  Monitor.make ~name:(Printf.sprintf "agreement-except(%d)" sentinel)
    (function
    | Monitor.Op_applied _ | Monitor.Crashed _ | Monitor.Stalled _
    | Monitor.Restarted _ ->
        Ok ()
    | Monitor.Corrupted { pid; _ } ->
        Hashtbl.replace byz pid ();
        Ok ()
    | Monitor.Decided { pid; value; _ } -> (
        match Codec.int.Codec.prj value with
        | exception Codec.Type_error _ -> Ok ()
        | v when v = sentinel -> Ok ()
        | _ when Hashtbl.mem byz pid -> Ok ()
        | v -> (
            match !first with
            | None ->
                first := Some (pid, v);
                Ok ()
            | Some (pid0, v0) ->
                if v0 = v then Ok ()
                else
                  Error
                    (Printf.sprintf "p%d decided %d but p%d decided %d" pid v
                       pid0 v0))))

(* ------------------------------------------------------------------ *)
(* The systems under test                                               *)
(* ------------------------------------------------------------------ *)

let safe_agreement ~ablate_no_cancel n =
  let make () =
    let env = Env.create ~nprocs:n ~x:1 () in
    let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
    let prog i =
      let* () =
        if ablate_no_cancel then
          Shared_objects.Ablations.sa_propose_no_cancel ~fam:"SA" ~key:[]
            (Codec.int.Codec.inj i)
        else
          Shared_objects.Safe_agreement.propose sa ~key:[]
            (Codec.int.Codec.inj i)
      in
      Shared_objects.Safe_agreement.decide sa ~key:[]
    in
    (env, Array.init n prog)
  in
  (make, agreement_monitors ~lo:0 ~hi:(n - 1))

let x_safe_agreement ~first_subset_only ~x n =
  let make () =
    let env = Env.create ~nprocs:n ~x () in
    let xsa =
      Shared_objects.X_safe_agreement.make ~first_subset_only ~fam:"XSA"
        ~participants:n ~x ()
    in
    let prog i =
      let* () =
        Shared_objects.X_safe_agreement.propose xsa ~key:[] ~pid:i
          (Codec.int.Codec.inj (10 + i))
      in
      Shared_objects.X_safe_agreement.decide xsa ~key:[] ~pid:i
    in
    (env, Array.init n prog)
  in
  (make, agreement_monitors ~lo:10 ~hi:(10 + n - 1))

let ts_from_cons n =
  let make () =
    let env = Env.create ~nprocs:n ~x:2 () in
    let ts = Shared_objects.Ts_from_cons.make ~fam:"TS" ~participants:n in
    let prog i =
      Prog.map Codec.bool.Codec.inj
        (Shared_objects.Ts_from_cons.compete ts ~key:[] ~pid:i)
    in
    (env, Array.init n prog)
  in
  (make, fun () -> [ winners_monitor ~bound:1 () ])

let abort_sentinel = 999

let x_safe_agreement_abortable ~x n =
  let lo = 10 and hi = 10 + n - 1 in
  let make () =
    let env = Env.create ~nprocs:n ~x () in
    let xsa =
      Shared_objects.X_safe_agreement.make ~fam:"XSA" ~participants:n ~x ()
    in
    let prog i =
      let* () =
        Shared_objects.X_safe_agreement.propose xsa ~key:[] ~pid:i
          (Codec.int.Codec.inj (10 + i))
      in
      let* r =
        (* Patience well above an owner's propose length (competition +
           full SET_LIST scan), so under a fair scheduler healthy
           instances never abort; a hung owner makes every decider
           abort within [patience] scans instead of spinning forever. *)
        Shared_objects.X_safe_agreement.decide_abortable xsa ~key:[] ~pid:i
          ~patience:60
      in
      match r with
      | `Decided v -> Prog.return v
      | `Aborted -> Prog.return (Codec.int.Codec.inj abort_sentinel)
    in
    (env, Array.init n prog)
  in
  let monitors () =
    [
      agreement_except ~sentinel:abort_sentinel ();
      Monitor.decided_value_integrity ~pp:pp_int
        ~allowed:(fun u ->
          int_in ~lo ~hi u
          ||
          match Codec.int.Codec.prj u with
          | v -> v = abort_sentinel
          | exception Codec.Type_error _ -> false)
        ();
    ]
  in
  (make, monitors)

(* BG simulations as sweepable scenarios (§3 sim_down, §4 sim_up). The
   simulator keeps its local state in refs allocated when [code] is
   applied, so the program handed to the executor is built behind a
   leading [Yield]: a crash-recovery restart re-executes the Yield and
   re-applies [code], rebuilding the simulator's local state from
   scratch — local state lost, shared memory kept, which is exactly the
   restart contract. *)
let bg_scenario ~mk_alg ~k () =
  let make () =
    let alg = mk_alg () in
    let n = Core.Algorithm.n alg in
    let env =
      Env.create ~nprocs:n ~x:alg.Core.Algorithm.model.Core.Model.x ()
    in
    let prog pid =
      let* () = Prog.yield in
      alg.Core.Algorithm.code ~pid ~input:(Codec.int.Codec.inj (10 + pid))
    in
    (env, Array.init n prog)
  in
  let monitors n () =
    [
      Monitor.k_agreement ~pp:pp_int ~k ();
      Monitor.decided_value_integrity ~pp:pp_int
        ~allowed:(int_in ~lo:10 ~hi:(10 + n - 1))
        ();
      Monitor.stall_bound ~fam_prefix:"SA" ();
      Monitor.stall_bound ~fam_prefix:"XSA:" ();
    ]
  in
  (make, monitors)

let x_compete ~x n =
  let make () =
    let env = Env.create ~nprocs:n ~x:2 () in
    let xc = Shared_objects.X_compete.make ~fam:"XC" ~participants:n ~x in
    let prog i =
      Prog.map Codec.bool.Codec.inj
        (Shared_objects.X_compete.compete xc ~key:[] ~pid:i)
    in
    (env, Array.init n prog)
  in
  (make, fun () -> [ winners_monitor ~bound:x () ])

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let scenario ~name ~doc ?(seeded_bug = false) ~nprocs ~x ~explore_steps
    ~property build =
  let make, monitors = build nprocs in
  {
    name;
    doc;
    seeded_bug;
    nprocs;
    x;
    make;
    monitors;
    explorable = true;
    explore_steps;
    exhaustive_property = property nprocs;
    origin = Builtin;
  }

let build ?nprocs name =
  let sized default = match nprocs with Some n -> n | None -> default in
  let check_min ~min n k =
    if n < min then
      Error
        (Printf.sprintf
           "scenario %s needs at least %d processes (valid nprocs: %d and \
            up; got %d)"
           name min min n)
    else Ok (k n)
  in
  match name with
  | "safe_agreement" ->
      check_min ~min:2 (sized 3) (fun n ->
          scenario ~name ~doc:"Figure 1 safe agreement: agreement + validity"
            ~nprocs:n ~x:1 ~explore_steps:12
            ~property:(fun n -> agreement_property ~lo:0 ~hi:(n - 1))
            (fun n ->
              let make, ms = safe_agreement ~ablate_no_cancel:false n in
              (make, fun () -> ms ())))
  | "safe_agreement_no_cancel" ->
      check_min ~min:2 (sized 2) (fun n ->
          scenario ~name
            ~doc:
              "SEEDED BUG: safe agreement stabilizing unconditionally — \
               disagrees without any crash under an adversarial order"
            ~seeded_bug:true ~nprocs:n ~x:1 ~explore_steps:10
            ~property:(fun n -> agreement_property ~lo:0 ~hi:(n - 1))
            (fun n ->
              let make, ms = safe_agreement ~ablate_no_cancel:true n in
              (make, fun () -> ms ())))
  | "x_safe_agreement" ->
      check_min ~min:3 (sized 4) (fun n ->
          scenario ~name
            ~doc:"Figure 6 x_safe_agreement (x=2): agreement + validity"
            ~nprocs:n ~x:2 ~explore_steps:10
            ~property:(fun n -> agreement_property ~lo:10 ~hi:(10 + n - 1))
            (fun n ->
              let make, ms = x_safe_agreement ~first_subset_only:false ~x:2 n in
              (make, fun () -> ms ())))
  | "x_safe_agreement_first_subset" ->
      check_min ~min:4 (sized 4) (fun n ->
          scenario ~name
            ~doc:
              "SEEDED BUG: x_safe_agreement owners funnel through only \
               their first subset — two values once crashes displace the \
               low-pid owners"
            ~seeded_bug:true ~nprocs:n ~x:2 ~explore_steps:10
            ~property:(fun n -> agreement_property ~lo:10 ~hi:(10 + n - 1))
            (fun n ->
              let make, ms = x_safe_agreement ~first_subset_only:true ~x:2 n in
              (make, fun () -> ms ())))
  | "x_safe_agreement_abortable" ->
      check_min ~min:3 (sized 4) (fun n ->
          scenario ~name
            ~doc:
              "x_safe_agreement with abortable decide: a hung instance is \
               detected via the arbiter register and refused, never decided"
            ~nprocs:n ~x:2 ~explore_steps:10
            ~property:(fun n ->
              agreement_except_property ~sentinel:abort_sentinel ~lo:10
                ~hi:(10 + n - 1))
            (fun n ->
              let make, ms = x_safe_agreement_abortable ~x:2 n in
              (make, fun () -> ms ())))
  | "bg_sec3" ->
      let mk_alg () =
        Core.Bg.sim_down
          ~source:(Tasks.Algorithms.kset_grouped ~n:4 ~t:2 ~x:2 ~k:2)
          ~t:1
      in
      let alg = mk_alg () in
      let make, monitors = bg_scenario ~mk_alg ~k:2 () in
      Ok
        {
          name;
          doc =
            "Section 3 simulation: 2-set agreement of ASM(4,2,2) run \
             through sim_down in ASM(4,1,1)";
          seeded_bug = false;
          nprocs = Core.Algorithm.n alg;
          x = alg.Core.Algorithm.model.Core.Model.x;
          make;
          monitors = monitors (Core.Algorithm.n alg);
          (* simulator state lives in refs, not the environment: the
             explorer's closed-program requirement does not hold *)
          explorable = false;
          explore_steps = 0;
          exhaustive_property = (fun _ -> Ok ());
          origin = Builtin;
        }
  | "bg_sec4" ->
      let mk_alg () =
        Core.Bg.sim_up
          ~source:(Tasks.Algorithms.kset_read_write ~n:3 ~t:1 ~k:2)
          ~t':2 ~x:2
      in
      let alg = mk_alg () in
      let make, monitors = bg_scenario ~mk_alg ~k:2 () in
      Ok
        {
          name;
          doc =
            "Section 4 simulation: 2-set agreement of ASM(3,1,1) run \
             through sim_up (x_safe_agreement based) in ASM(3,2,2)";
          seeded_bug = false;
          nprocs = Core.Algorithm.n alg;
          x = alg.Core.Algorithm.model.Core.Model.x;
          make;
          monitors = monitors (Core.Algorithm.n alg);
          explorable = false;
          explore_steps = 0;
          exhaustive_property = (fun _ -> Ok ());
          origin = Builtin;
        }
  | "ts_from_cons" ->
      check_min ~min:2 (sized 3) (fun n ->
          scenario ~name
            ~doc:"tournament test&set from 2-cons: at most one winner"
            ~nprocs:n ~x:2 ~explore_steps:12
            ~property:(fun _ -> winners_property ~bound:1)
            (fun n ->
              let make, ms = ts_from_cons n in
              (make, fun () -> ms ())))
  | "x_compete" ->
      check_min ~min:3 (sized 4) (fun n ->
          scenario ~name ~doc:"Figure 5 x_compete (x=2): at most x winners"
            ~nprocs:n ~x:2 ~explore_steps:12
            ~property:(fun _ -> winners_property ~bound:2)
            (fun n ->
              let make, ms = x_compete ~x:2 n in
              (make, fun () -> ms ())))
  | _ -> Error (Printf.sprintf "unknown scenario %S" name)

let known =
  [
    "safe_agreement";
    "safe_agreement_no_cancel";
    "x_safe_agreement";
    "x_safe_agreement_first_subset";
    "x_safe_agreement_abortable";
    "bg_sec3";
    "bg_sec4";
    "ts_from_cons";
    "x_compete";
  ]

let names () = known

(* ------------------------------------------------------------------ *)
(* DSL scenarios (lib/sdl)                                              *)
(* ------------------------------------------------------------------ *)

(* [names ()] stays builtins-only on purpose: the network handshake's
   registry fingerprint folds it, and registering a local .sdl file
   must not make a binary unable to talk to its peers. DSL jobs carry
   their source in the job itself instead ({!Dist.Proto.job.source}),
   so both sides compile the identical program. *)

let of_compiled ~origin (c : Sdl.Compile.t) =
  {
    name = c.Sdl.Compile.c_name;
    doc = c.Sdl.Compile.c_doc;
    seeded_bug = c.Sdl.Compile.c_seeded_bug;
    nprocs = c.Sdl.Compile.c_nprocs;
    x = c.Sdl.Compile.c_x;
    make = c.Sdl.Compile.c_make;
    monitors = c.Sdl.Compile.c_monitors;
    (* compiled programs are closed by construction (DESIGN §15) *)
    explorable = true;
    explore_steps = c.Sdl.Compile.c_explore_steps;
    exhaustive_property = c.Sdl.Compile.c_property;
    origin;
  }

let of_source ?nprocs ?path source =
  match Sdl.Compile.load ?nprocs source with
  | Error m -> Error m
  | Ok c -> Ok (of_compiled ~origin:(Sdl_source { source; path }) c)

(* name -> (source, path); registered by [--scenario-file]/
   [--scenario-dir]. A registered name shadows a builtin — that is the
   point of twin files — and lookups recompile at the requested size. *)
let registered : (string, string * string option) Hashtbl.t = Hashtbl.create 8

let register_source ?path source =
  match of_source ?path source with
  | Error m -> Error m
  | Ok s ->
      Hashtbl.replace registered s.name (source, path);
      Ok s

let registered_names () =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registered [])

let find ?nprocs name =
  match Hashtbl.find_opt registered name with
  | Some (source, path) -> of_source ?nprocs ?path source
  | None -> (
      match build ?nprocs name with
      | Ok s -> Ok s
      | Error e ->
          if List.mem name known then Error e
          else
            let all_known = known @ registered_names () in
            Error
              (Printf.sprintf "%s (known: %s)" e
                 (String.concat ", " all_known)))

let all () =
  List.map
    (fun n -> match build n with Ok s -> s | Error e -> failwith e)
    known

let registered_scenarios () =
  List.filter_map
    (fun n -> match find n with Ok s -> Some s | Error _ -> None)
    (registered_names ())

let sweep_meta s =
  [
    ("scenario", s.name);
    ("nprocs", string_of_int s.nprocs);
    ("x", string_of_int s.x);
  ]

let of_replay_meta meta =
  match List.assoc_opt "scenario" meta with
  | None -> Error "replay artifact has no scenario metadata"
  | Some name ->
      let nprocs =
        Option.bind (List.assoc_opt "nprocs" meta) int_of_string_opt
      in
      find ?nprocs name
