open Svm

let n = 5

let run_consensus ~seed ~crash_pids ~oracle =
  let env = Env.create ~nprocs:n ~x:1 () in
  Env.set_oracle env "OMEGA" oracle;
  let paxos = Shared_objects.Paxos.make ~fam:"PAX" ~nprocs:n in
  let progs =
    Array.init n (fun pid ->
        Shared_objects.Paxos.consensus paxos ~oracle_fam:"OMEGA" ~pid
          (Codec.int.Codec.inj (70 + pid)))
  in
  let adversary =
    Adversary.with_crashes (Adversary.random ~seed)
      (List.map
         (fun (pid, step) -> Adversary.Crash_at_local { pid; step })
         crash_pids)
  in
  Exec.run ~budget:60_000 ~env ~adversary progs

let agreement_of r =
  let ds = List.map Codec.int.Codec.prj (Exec.decided r) in
  match ds with
  | [] -> true
  | d :: rest -> List.for_all (Int.equal d) rest && d >= 70 && d < 70 + n

let boosted_consensus () =
  let ok = ref true and detail = ref "" in
  List.iter
    (fun seed ->
      (* Crash everyone but process 3 (n-1 = 4 crashes!); the oracle
         stabilizes on 3 after a few queries. *)
      let crash_pids =
        [ (0, 3 + (seed mod 5)); (1, 6); (2, 2 + (seed mod 3)); (4, 9) ]
      in
      let oracle =
        Shared_objects.Paxos.leader_oracle ~stabilize_after:(2 + (seed mod 4))
          ~leader:3 ~nprocs:n
      in
      let r = run_consensus ~seed ~crash_pids ~oracle in
      let crashed = List.length r.Exec.crashed in
      let live = Exec.decided_count r = n - crashed in
      if not (agreement_of r && live) then begin
        ok := false;
        detail :=
          Printf.sprintf "seed %d: agreement=%b live=%b" seed (agreement_of r)
            live
      end)
    (Harness.seeds 25);
  Report.check
    ~label:"consensus in ASM(5,4,1)+Omega: n-1 crashes, all correct decide"
    ~ok:!ok
    ~detail:(if !ok then "25 runs, 4 crashes each: agreement+validity+liveness"
             else !detail)

let no_crash_any_leader () =
  let ok = ref true in
  List.iter
    (fun seed ->
      let oracle =
        Shared_objects.Paxos.leader_oracle ~stabilize_after:(seed mod 6)
          ~leader:(seed mod n) ~nprocs:n
      in
      let r = run_consensus ~seed ~crash_pids:[] ~oracle in
      if not (agreement_of r && Exec.decided_count r = n) then ok := false)
    (Harness.seeds 25);
  Report.check ~label:"crash-free runs for every stabilized leader" ~ok:!ok
    ~detail:"25 runs across leaders and stabilization times"

(* An oracle that never stabilizes: safety must still hold; liveness may
   fail (processes block at the budget), never disagreement. *)
let adversarial_oracle_safe () =
  let ok = ref true and blocked_runs = ref 0 in
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let oracle ~pid:_ ~query:_ = Codec.int.Codec.inj (Rng.int rng n) in
      let r = run_consensus ~seed ~crash_pids:[] ~oracle in
      if Exec.blocked r <> [] then incr blocked_runs;
      if not (agreement_of r) then ok := false)
    (Harness.seeds 25);
  Report.check
    ~label:"never-stabilizing oracle: agreement still holds (safety != Omega)"
    ~ok:!ok
    ~detail:
      (Printf.sprintf "25 runs, %d blocked at budget, zero disagreements"
         !blocked_runs)

let engine_refuses_oracles () =
  let model = Core.Model.read_write ~n:2 ~t:1 in
  let alg =
    Core.Algorithm.make ~name:"uses-oracle" ~model (fun ~pid:_ ~input ->
        Svm.Prog.bind (Svm.Prog.perform (Op.Oracle_query ("OMEGA", []))) (fun _ ->
            Svm.Prog.return input))
  in
  let sim = Core.Bg.classic ~source:alg in
  let env = Env.create ~nprocs:2 ~x:1 () in
  Env.set_oracle env "OMEGA" (fun ~pid:_ ~query:_ -> Codec.int.Codec.inj 0);
  let refused =
    match
      Exec.run ~env
        ~adversary:(Adversary.round_robin ())
        (Array.init 2 (fun pid ->
             sim.Core.Algorithm.code ~pid ~input:(Codec.int.Codec.inj pid)))
    with
    | (_ : Univ.t Exec.result) -> false
    | exception Core.Bg_engine.Unsupported_op _ -> true
  in
  Report.check ~label:"the BG engine refuses to simulate oracle queries"
    ~ok:refused
    ~detail:
      (if refused then
         "Unsupported_op: failure detectors are not shared-memory objects"
       else "oracle query was wrongly simulated")

let run () =
  {
    Report.id = "FD";
    title = "failure-detector boosting: consensus from Omega (Section 1.3)";
    paper =
      "Omega_x is the weakest failure detector to boost ASM(n, n-1, x) \
       to consensus number x+1 (Guerraoui & Kuznetsov); for x = 1, \
       Omega = Omega_1 makes consensus solvable wait-free from registers.";
    metrics = [];
    checks =
      [
        boosted_consensus ();
        no_crash_any_leader ();
        adversarial_oracle_safe ();
        engine_refuses_oracles ();
      ];
  }
