(** Experiment DIST — the multi-process coordinator changes nothing.

    Distribution is an implementation detail, so the report's rows are
    identity claims: a sweep or exploration dealt out to 1, 2 or 4
    forked worker processes produces the outcome, replay artifact and
    metrics of the in-process run, byte for byte — including while
    workers are being SIGKILLed mid-shard (the degradation rows show
    kills cost only respawns and reassignments), with a hostile shard
    reported as a typed error instead of an unbounded retry loop, and
    across a coordinator stop/resume through the job journal. *)

val run : unit -> Report.t
