open Svm

(* Scenario family F8: every simulation-bearing scenario swept under
   each fault tier, with its expected verdict. The sweeps are systematic
   (every <= 1 fault placement in the op window, under every stock
   scheduler), so a "clean" row is a fact about the whole box, not a
   sample. [max_faults] stays at 1 throughout: the BG scenarios attach
   the per-instance [stall_bound] blocking account, which is only sound
   when a single fault is injected (several victims may legitimately
   halt inside one instance). *)

let tier_label kind scenario =
  Printf.sprintf "%s under %s" scenario (Adversary.fault_kind_name kind)

let sweep ~kind ?expect_violation ?(budget = 40_000) name =
  match Scenario.find name with
  | Error m -> Report.check ~label:(tier_label kind name) ~ok:false ~detail:m
  | Ok s ->
      Harness.sweep_check ~kinds:[ kind ] ~max_faults:1 ~budget
        ?expect_violation ~label:(tier_label kind name) s

(* The graceful-degradation claims of the taxonomy, one per tier. *)

let omission_clean name = sweep ~kind:Adversary.Omission name

let recovery_clean name = sweep ~kind:Adversary.Crash_recovery name

let recovery_breaks name =
  (* Figure 1's cancel mechanism is not idempotent: a recovered process
     re-runs propose from scratch and can demote (cancel) the value it
     had already stabilized — an early decider kept it, later deciders
     see it cancelled, agreement breaks. This is a genuine property of
     the protocol under restart, found and shrunk by the sweeper; the
     consensus-funneled x_safe_agreement does not share it (re-proposing
     to consensus returns the already-decided value). *)
  sweep ~kind:Adversary.Crash_recovery ~expect_violation:true name

let byzantine_breaks name =
  (* x_safe_agreement publishes through [Codec.any], so a forged value
     flows to honest deciders undetected by the codec layer: the
     integrity monitor must catch it. This row gates that the sweeper
     still *finds* the documented degradation — it is expected red. *)
  sweep ~kind:Adversary.Byzantine ~expect_violation:true name

let byzantine_contained name =
  (* safe_agreement's cells are pair-coded: a forged raw int poisons
     readers (they get stuck on the decode), it never becomes an honest
     decision — degradation contained to liveness. *)
  sweep ~kind:Adversary.Byzantine name

let run () =
  {
    Report.id = "FT";
    title = "generalized fault model (scenario family F8)";
    paper =
      "The simulations' safety claims are crash-stop claims; the sweeps \
       show where they degrade gracefully (omission, crash-recovery, \
       Byzantine-contained) and where they provably cannot \
       (Byzantine values past an any-coded register).";
    metrics = [];
    checks =
      [
        omission_clean "safe_agreement";
        omission_clean "x_safe_agreement";
        omission_clean "x_safe_agreement_abortable";
        omission_clean "bg_sec3";
        omission_clean "bg_sec4";
        recovery_breaks "safe_agreement";
        recovery_clean "x_safe_agreement";
        recovery_clean "x_safe_agreement_abortable";
        recovery_clean "bg_sec3";
        recovery_clean "bg_sec4";
        byzantine_contained "safe_agreement";
        byzantine_breaks "x_safe_agreement";
      ];
  }
