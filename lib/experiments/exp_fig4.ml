open Svm

let n = 6
let x_src = 2
let t' = 4
let source = Tasks.Algorithms.kset_grouped ~n ~t:t' ~x:x_src ~k:3
let task = Tasks.Task.kset ~k:3
let target = Core.Model.read_write ~n ~t:2

let sweeps ~max_crashes ~label =
  let s =
    Runner.sweep ~budget:500_000 ~task
      ~alg:(Core.Bg.sim_down ~source ~t:2)
      ~seeds:(Harness.seeds 12) ~max_crashes ()
  in
  let ok = s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs in
  Report.check ~label ~ok ~detail:(Format.asprintf "%a" Runner.pp_summary s)

let exhaustive_run ~adversary ~stats =
  let alg =
    Core.Bg_engine.simulate ~stats ~source ~target ~mode:`Exhaustive ()
  in
  let inputs =
    Array.of_list (List.map Codec.int.Codec.inj [ 6; 5; 4; 3; 2; 1 ])
  in
  Core.Run.run ~budget:600_000 ~alg ~inputs ~adversary ()

(* Crash one simulator exactly while it is inside the safe agreement
   serving a simulated consensus object (family "XSA:gcons"): the x = 2
   processes of that group block, nobody else. *)
let targeted_cons_crash () =
  let stats = Core.Bg_engine.new_stats () in
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [ Harness.crash_before_fam ~pid:0 ~prefix:"XSA:" ~nth:2 ]
  in
  let r = exhaustive_run ~adversary ~stats in
  let blocked = Harness.blocked_simulated ~n_simulated:n stats in
  let nb = List.length blocked in
  let crashed = List.length r.Exec.crashed in
  let same_group =
    match blocked with
    | [] -> true
    | j :: rest -> List.for_all (fun j' -> j' / x_src = j / x_src) rest
  in
  Report.check
    ~label:"crash inside a consensus agreement blocks <= x, same group"
    ~ok:(crashed = 1 && nb <= x_src && same_group)
    ~detail:
      (Printf.sprintf "crashed=%d blocked=%d (bound %d), same group=%b"
         crashed nb x_src same_group)

let lemma_bounds ~crashes ~label =
  let ok = ref true and detail = ref "" in
  let max_blocked = ref 0 in
  List.iter
    (fun seed ->
      let stats = Core.Bg_engine.new_stats () in
      let adversary =
        Adversary.random_crashes ~within:400 ~seed ~max_crashes:crashes
          ~nprocs:n (Adversary.random ~seed)
      in
      let r = exhaustive_run ~adversary ~stats in
      let c = List.length r.Exec.crashed in
      let blocked = List.length (Harness.blocked_simulated ~n_simulated:n stats) in
      if blocked > !max_blocked then max_blocked := blocked;
      if blocked > c * x_src then begin
        ok := false;
        detail :=
          Printf.sprintf "seed %d: %d crashes blocked %d > c*x" seed c blocked
      end;
      (* Lemma 2: at least n - t' simulated processes decide. *)
      if n - blocked < n - t' then begin
        ok := false;
        detail := Printf.sprintf "seed %d: only %d simulated decided" seed
            (n - blocked)
      end)
    (Harness.seeds 8);
  Report.check ~label ~ok:!ok
    ~detail:
      (if !ok then
         Printf.sprintf "max blocked simulated = %d (bound c*x, c<=%d, x=%d)"
           !max_blocked crashes x_src
       else !detail)

let run () =
  {
    Report.id = "F4";
    title = "Section 3: ASM(n,t',x) in ASM(n,t,1) (Figure 4)";
    paper =
      "Theorem 1: for t <= floor(t'/x), the extended BG simulation runs \
       any t'-resilient algorithm using consensus-number-x objects in \
       the t-resilient read/write model; a simulator crash blocks at \
       most x simulated processes (Lemma 1) and each correct simulator \
       computes decisions of at least n - t' simulated processes \
       (Lemma 2).";
    metrics = [];
    checks =
      [
        sweeps ~max_crashes:0 ~label:"12 crash-free schedules: valid + live";
        sweeps ~max_crashes:2
          ~label:"12 schedules, <= 2 = t simulator crashes: valid + live";
        targeted_cons_crash ();
        lemma_bounds ~crashes:1 ~label:"Lemma 1/2 bounds, 1 random crash";
        lemma_bounds ~crashes:2 ~label:"Lemma 1/2 bounds, 2 random crashes";
      ];
  }
