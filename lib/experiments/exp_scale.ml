let steps_of ~alg ~task ~budget =
  let s =
    Runner.sweep ~budget ~task ~alg ~seeds:(Harness.seeds 3) ~max_crashes:0 ()
  in
  (s, int_of_float s.Runner.avg_steps)

let native_steps ~n =
  let task = Tasks.Task.kset ~k:3 in
  let alg = Tasks.Algorithms.kset_read_write ~n ~t:2 ~k:3 in
  snd (steps_of ~alg ~task ~budget:100_000)

let simulated_steps ~n ~t' ~x =
  let task = Tasks.Task.kset ~k:3 in
  let source = Tasks.Algorithms.kset_read_write ~n ~t:2 ~k:3 in
  let alg =
    if x = 1 then
      Core.Bg.to_model ~source ~target:(Core.Model.read_write ~n ~t:t')
    else Core.Bg.sim_up ~source ~t' ~x
  in
  snd (steps_of ~alg ~task ~budget:8_000_000)

let overhead_table () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "steps per complete run (3-seed average, crash-free, 3-set agreement):\n";
  Buffer.add_string b
    "  n   native   x'=1 hop   x'=2 hop   x'=3 hop\n";
  List.iter
    (fun n ->
      let native = native_steps ~n in
      let hop1 = simulated_steps ~n ~t':2 ~x:1 in
      let hop2 = simulated_steps ~n ~t':(min (n - 1) 4) ~x:2 in
      let hop3 = simulated_steps ~n ~t':(min (n - 1) 5) ~x:3 in
      Buffer.add_string b
        (Printf.sprintf "  %d  %7d  %9d  %9d  %9d\n" n native hop1 hop2 hop3))
    [ 4; 6; 8 ];
  Buffer.contents b

let growth_checks () =
  let n = 6 in
  let native = native_steps ~n in
  let hop1 = simulated_steps ~n ~t':2 ~x:1 in
  let hop2 = simulated_steps ~n ~t':4 ~x:2 in
  let hop3 = simulated_steps ~n ~t':5 ~x:3 in
  [
    Report.check ~label:"one hop costs at least 10x native"
      ~ok:(hop1 > 10 * native)
      ~detail:
        (Printf.sprintf "native %d steps, one x'=1 hop %d steps (%.0fx)" native
           hop1
           (float_of_int hop1 /. float_of_int native));
    Report.check ~label:"cost grows with x' (subset scans)"
      ~ok:(hop3 > hop2 && hop2 > hop1)
      ~detail:(Printf.sprintf "x'=1: %d, x'=2: %d, x'=3: %d steps" hop1 hop2 hop3);
  ]

let composition_check () =
  let task = Tasks.Task.trivial in
  let source = Tasks.Algorithms.trivial ~n:4 ~t:2 in
  let one =
    Core.Bg.to_model ~source ~target:(Core.Model.read_write ~n:3 ~t:2)
  in
  let two =
    Core.Bg.to_model ~source:one ~target:(Core.Model.read_write ~n:4 ~t:2)
  in
  let _, s0 = steps_of ~alg:source ~task ~budget:100_000 in
  let _, s1 = steps_of ~alg:one ~task ~budget:1_000_000 in
  let _, s2 = steps_of ~alg:two ~task ~budget:20_000_000 in
  Report.check ~label:"hops compose multiplicatively"
    ~ok:(s1 > 2 * s0 && s2 > 2 * s1)
    ~detail:
      (Printf.sprintf "native %d -> 1 hop %d -> 2 hops %d steps" s0 s1 s2)

let run () =
  {
    Report.id = "SC";
    title = "cost shape of the simulations";
    paper =
      "No claim in the paper (the reductions are computability tools); \
       measured so the blow-up per simulation level is on record.";
    metrics = [];
    checks = growth_checks () @ [ composition_check () ];
  }
