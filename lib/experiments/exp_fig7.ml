let task = Tasks.Task.kset ~k:3

let arrow ~label ~alg ~max_crashes ~budget =
  let s =
    Runner.sweep ~budget ~task ~alg ~seeds:(Harness.seeds 6) ~max_crashes ()
  in
  let ok = s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs in
  Report.check ~label ~ok ~detail:(Format.asprintf "%a" Runner.pp_summary s)

(* The four arrows of Figure 7, each run separately on its natural
   source algorithm. *)
let arrows () =
  let grouped = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3 in
  let rw6 = Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:3 in
  let rw3 = Tasks.Algorithms.kset_read_write ~n:3 ~t:2 ~k:3 in
  let rw5 = Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3 in
  [
    arrow ~label:"ASM(6,4,2) -> ASM(6,2,1)  [Section 3]"
      ~alg:(Core.Bg.sim_down ~source:grouped ~t:2)
      ~max_crashes:2 ~budget:500_000;
    arrow ~label:"ASM(6,2,1) -> ASM(3,2,1)  [BG]"
      ~alg:(Core.Bg.classic ~source:rw6) ~max_crashes:2 ~budget:500_000;
    arrow ~label:"ASM(3,2,1) -> ASM(5,2,1)  [BG generalization]"
      ~alg:
        (Core.Bg.to_model ~source:rw3
           ~target:(Core.Model.read_write ~n:5 ~t:2))
      ~max_crashes:2 ~budget:500_000;
    arrow ~label:"ASM(5,2,1) -> ASM(5,4,2)  [Section 4]"
      ~alg:(Core.Bg.sim_up ~source:rw5 ~t':4 ~x:2)
      ~max_crashes:4 ~budget:800_000;
  ]

(* Full end-to-end composition of all four arrows on the trivial task. *)
let composition () =
  let source = Tasks.Algorithms.trivial ~n:4 ~t:2 in
  let target = Core.Model.make ~n:5 ~t:4 ~x:2 in
  let via = Core.Bg.figure7_chain ~source ~target in
  let chained = Core.Bg.chain ~source ~via in
  let task = Tasks.Task.trivial in
  let s =
    Runner.sweep ~budget:30_000_000 ~task ~alg:chained ~seeds:[ 1 ]
      ~max_crashes:0 ()
  in
  let hops =
    String.concat " -> "
      (Core.Model.to_string source.Core.Algorithm.model
      :: List.map Core.Model.to_string via)
  in
  Report.check
    ~label:"4-deep composed simulation decides correctly"
    ~ok:(s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs)
    ~detail:(Printf.sprintf "%s; %s" hops (Format.asprintf "%a" Runner.pp_summary s))

let run () =
  {
    Report.id = "F7";
    title = "Figure 7: the equivalence chain";
    paper =
      "ASM(n1,t1,x1) ~ ASM(n2,t2,x2) when floor(t1/x1) = floor(t2/x2), \
       via ASM(n1,t,1), ASM(t+1,t,1) and ASM(n2,t,1) (Section 5.3).";
    metrics = [];
    checks = arrows () @ [ composition () ];
  }
