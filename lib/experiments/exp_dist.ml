open Svm

(* The claims worth a report: the coordinator's outputs are the
   in-process outputs (bit for bit — outcome, replay artifact, metrics),
   worker deaths degrade only the bookkeeping, a shard that keeps
   killing workers is reported rather than retried forever, and a
   journalled job resumes without re-running finished shards. All runs
   fork real worker processes of this very binary. *)

let scenario name =
  match Scenario.find name with
  | Ok s -> Ok s
  | Error e -> Error e

let config ?(workers = 2) ?journal_dir ?resume ?chaos ?stop_after
    ?(max_retries = 2) () =
  {
    (Dist.Coordinator.default_config ~workers ()) with
    Dist.Coordinator.shard_size = Some 7;
    backoff = 0.01;
    journal_dir;
    resume;
    chaos_kill_shard = chaos;
    stop_after_shards = stop_after;
    max_retries;
  }

(* One string capturing everything the sweep produced, replay artifact
   included: equality of these strings is the identity claim. *)
let sweep_repr (o : Explore.sweep_outcome) =
  let found =
    match o.Explore.found with
    | None -> "clean"
    | Some f ->
        Format.asprintf "%s@%d, artifact %d bytes"
          f.Explore.violation.Monitor.monitor f.Explore.violation.Monitor.step
          (String.length f.Explore.replay)
  in
  Printf.sprintf "%d runs, %s" o.Explore.runs found

let sweep_pair s cfg =
  let metrics = Metrics.create ~wall_clock:false () in
  let base = Harness.sweep_scenario ~metrics s in
  let base_snap = Metrics.snapshot_string metrics in
  let metrics' = Metrics.create ~wall_clock:false () in
  match Harness.sweep_scenario_dist ~metrics:metrics' cfg s with
  | Error m -> Error m
  | Ok (Dist.Coordinator.Suspended _, _) -> Error "suspended unexpectedly"
  | Ok (Dist.Coordinator.Complete o, stats) ->
      let identical =
        (* The full artifact strings are compared, not just the summary. *)
        base.Explore.found = o.Explore.found
        && sweep_repr base = sweep_repr o
        && String.equal base_snap (Metrics.snapshot_string metrics')
      in
      Ok (base, o, stats, identical)

let identity_at workers =
  let label =
    Printf.sprintf "identity: %d worker process(es) vs in-process" workers
  in
  match scenario "safe_agreement_no_cancel" with
  | Error e -> Report.check ~label ~ok:false ~detail:e
  | Ok s -> (
      match sweep_pair s (config ~workers ()) with
      | Error m -> Report.check ~label ~ok:false ~detail:m
      | Ok (base, _, stats, identical) ->
          Report.check ~label ~ok:identical
            ~detail:
              (Printf.sprintf
                 "%s; outcome, replay artifact and metrics byte-identical \
                  across %d shard(s)"
                 (sweep_repr base) stats.Dist.Coordinator.shards))

let explore_identity () =
  let label = "identity: exhaustive explorer, 2 workers vs in-process" in
  match scenario "safe_agreement_no_cancel" with
  | Error e -> Report.check ~label ~ok:false ~detail:e
  | Ok s -> (
      let metrics = Metrics.create ~wall_clock:false () in
      match Harness.explore_scenario ~max_crashes:1 ~metrics s with
      | Error m -> Report.check ~label ~ok:false ~detail:m
      | Ok base -> (
          let base_snap = Metrics.snapshot_string metrics in
          let metrics' = Metrics.create ~wall_clock:false () in
          match
            Harness.explore_scenario_dist ~max_crashes:1 ~metrics:metrics'
              { (config ()) with Dist.Coordinator.shard_size = Some 9 }
              s
          with
          | Error m -> Report.check ~label ~ok:false ~detail:m
          | Ok (Dist.Coordinator.Suspended _, _) ->
              Report.check ~label ~ok:false ~detail:"suspended unexpectedly"
          | Ok (Dist.Coordinator.Complete r, _) ->
              Report.check ~label
                ~ok:
                  (base.Explore.counterexample = r.Explore.counterexample
                  && base.Explore.explored = r.Explore.explored
                  && String.equal base_snap (Metrics.snapshot_string metrics'))
                ~detail:
                  (Printf.sprintf
                     "%d runs, counterexample and metrics identical"
                     base.Explore.explored)))

(* The degradation table: SIGKILL the worker holding shard 0, k times
   in a row. The outcome must never change; only the stats may. *)
let degradation k =
  let label = Printf.sprintf "crash-tolerance: %d worker kill(s) mid-shard" k in
  match scenario "safe_agreement_no_cancel" with
  | Error e -> Report.check ~label ~ok:false ~detail:e
  | Ok s -> (
      match
        sweep_pair s (config ~chaos:(0, k) ~max_retries:k ())
      with
      | Error m -> Report.check ~label ~ok:false ~detail:m
      | Ok (_, _, stats, identical) ->
          let enough = stats.Dist.Coordinator.killed >= k in
          Report.check ~label
            ~ok:(identical && enough)
            ~detail:
              (Printf.sprintf
                 "outcome identical; %d spawned, %d killed, %d reassignment(s)"
                 stats.Dist.Coordinator.spawned stats.Dist.Coordinator.killed
                 stats.Dist.Coordinator.reassigned))

let hostile () =
  let label = "hostile shard: reported after max_retries, never retried forever" in
  match scenario "safe_agreement_no_cancel" with
  | Error e -> Report.check ~label ~ok:false ~detail:e
  | Ok s -> (
      match
        Harness.sweep_scenario_dist
          (config ~chaos:(0, 99) ~max_retries:1 ())
          s
      with
      | Ok _ ->
          Report.check ~label ~ok:false
            ~detail:"a shard that kills every worker succeeded"
      | Error m ->
          let mentions =
            let n = String.length m in
            let rec go i =
              i + 7 <= n && (String.equal (String.sub m i 7) "hostile" || go (i + 1))
            in
            go 0
          in
          Report.check ~label ~ok:mentions ~detail:m)

let fresh_dir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "asmsim-exp-dist-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let resume () =
  let label = "resume: journalled job restarts without re-running shards" in
  match scenario "safe_agreement_no_cancel" with
  | Error e -> Report.check ~label ~ok:false ~detail:e
  | Ok s -> (
      let dir = fresh_dir () in
      match
        Harness.sweep_scenario_dist
          (config ~journal_dir:dir ~stop_after:1 ())
          s
      with
      | Ok (Dist.Coordinator.Suspended id, _) -> (
          match
            sweep_pair s (config ~journal_dir:dir ~resume:id ())
          with
          | Error m -> Report.check ~label ~ok:false ~detail:m
          | Ok (_, _, stats, identical) ->
              Report.check ~label
                ~ok:(identical && stats.Dist.Coordinator.resumed >= 1)
                ~detail:
                  (Printf.sprintf
                     "%d shard(s) restored from the journal, %d executed; \
                      outcome identical to in-process"
                     stats.Dist.Coordinator.resumed
                     stats.Dist.Coordinator.executed))
      | Ok _ -> Report.check ~label ~ok:false ~detail:"session 1 did not suspend"
      | Error m -> Report.check ~label ~ok:false ~detail:m)

let run () =
  {
    Report.id = "DIST";
    title = "multi-process distribution: identity, crash-tolerance, resume";
    paper =
      "No paper claim. Infrastructure validation: sharding the sweeps \
       and explorations across worker processes is an implementation \
       detail, so every distributed run must produce exactly the \
       artifacts of the in-process run — under worker crashes and \
       across coordinator restarts included.";
    metrics = [];
    checks =
      [
        identity_at 1;
        identity_at 2;
        identity_at 4;
        explore_identity ();
        degradation 1;
        degradation 2;
        degradation 3;
        hostile ();
        resume ();
      ];
  }
