open Svm

let source = Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3
let task = Tasks.Task.kset ~k:3
let target = Core.Model.read_write ~n:3 ~t:2

let sweeps ~max_crashes ~label =
  let s =
    Runner.sweep ~budget:400_000 ~task ~alg:(Core.Bg.classic ~source)
      ~seeds:(Harness.seeds 15) ~max_crashes ()
  in
  let ok = s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs in
  Report.check ~label ~ok
    ~detail:(Format.asprintf "%a" Runner.pp_summary s)

(* Exhaustive mode: crash c of the 3 simulators at random points; count
   the simulated processes that no simulator ever finished. *)
let lemma_bounds ~crashes ~label =
  let n_sim = 5 in
  let ok = ref true and detail = ref "" in
  let max_blocked = ref 0 in
  List.iter
    (fun seed ->
      let stats = Core.Bg_engine.new_stats () in
      let alg =
        Core.Bg_engine.simulate ~stats ~source ~target ~mode:`Exhaustive ()
      in
      let adversary =
        Adversary.random_crashes ~within:150 ~seed ~max_crashes:crashes
          ~nprocs:3 (Adversary.random ~seed)
      in
      let inputs = Array.of_list (List.map Codec.int.Codec.inj [ 3; 1; 4 ]) in
      let r = Core.Run.run ~budget:400_000 ~alg ~inputs ~adversary () in
      let c = List.length r.Exec.crashed in
      let blocked = Harness.blocked_simulated ~n_simulated:n_sim stats in
      let nb = List.length blocked in
      if nb > !max_blocked then max_blocked := nb;
      (* Lemma 1 (x = 1 agreements only): <= c simulated blocked. *)
      if nb > c then begin
        ok := false;
        detail :=
          Printf.sprintf "seed %d: %d crashes blocked %d simulated" seed c nb
      end)
    (Harness.seeds 10);
  Report.check ~label ~ok:!ok
    ~detail:
      (if !ok then
         Printf.sprintf
           "max blocked simulated = %d across 10 runs (bound = crashes)"
           !max_blocked
       else !detail)

let run () =
  {
    Report.id = "F2-F3";
    title = "BG simulation core: sim_write/sim_snapshot (Figures 2-3)";
    paper =
      "ASM(n, t, 1) and ASM(t+1, t, 1) are equivalent for colorless \
       tasks: a 2-resilient 5-process 3-set algorithm runs wait-free on \
       3 simulators; a crashed simulator blocks at most one simulated \
       process (Lemmas 1-2 with x = 1).";
    metrics = [];
    checks =
      [
        sweeps ~max_crashes:0 ~label:"15 crash-free schedules: valid + live";
        sweeps ~max_crashes:2
          ~label:"15 schedules, <= 2 simulator crashes: valid + live";
        lemma_bounds ~crashes:1 ~label:"Lemma 1: 1 crash blocks <= 1 simulated";
        lemma_bounds ~crashes:2
          ~label:"Lemma 1: 2 crashes block <= 2 simulated";
      ];
  }
