(** Continuous randomized soak runs against a corpus.

    Where [Svm.Explore.sweep_faults] enumerates a bounded fault box
    exhaustively, the soak driver samples an {e unbounded} one: schedule
    after schedule, each a seeded random scheduler plus a seeded random
    fault plan, derived deterministically from [(seed, schedule index)]
    — so any schedule can be re-derived, re-run and shrunk long after
    the soak that first executed it.

    Findings (monitor violations, shrunk and serialized exactly as
    sweep replay artifacts, and whole-system deadlocks) are written to
    a {!Corpus.Store} and deduplicated by content address: re-finding a
    known counterexample — in this run, a previous run, or a resumed
    run — is counted but not re-reported. Each batch ends with a
    cement, so a crash loses at most the current batch, and a [State]
    checkpoint record, so [resume] continues at the next unexecuted
    schedule index.

    Throughput posture: for explorable scenarios one journaled
    environment arena serves every schedule of a slice
    ({!Svm.Env.with_rollback} — no per-run allocation of the store),
    programs are reused (they are immutable values), batches bound the
    working set, and [jobs] fans slices out over domains with
    index-deterministic results. *)

type chaos = Kill | Torn | Bitflip

val chaos_of_name : string -> chaos option
val chaos_name : chaos -> string

type config = {
  seed : int;
  schedules : int option;  (** stop after this many (this invocation) *)
  until : int option;
      (** stop at this absolute schedule index — a resumed run stops
          where the interrupted one would have, making the two corpora
          content-identical *)
  duration : float option;  (** stop after this many wall seconds *)
  batch : int;  (** schedules per batch; a cement per batch *)
  jobs : int;  (** domains; slices merge index-deterministically *)
  kinds : Svm.Adversary.fault_kind list;  (** fault tiers to sample *)
  max_faults : int;  (** faults per schedule drawn from [0..max] *)
  within : int;  (** local-step window faults land in *)
  budget : int;  (** step budget per schedule *)
  resume : bool;  (** continue from the corpus's last checkpoint *)
  chaos : chaos option;  (** store-level crash/corruption injection *)
  chaos_at : int;  (** which corpus append the chaos strikes *)
  gc_tune : bool;  (** widen the minor heap for the hot loop *)
  log : Svm.Log.t;
      (** leveled diagnostics: batch and finding progress at [Info] *)
  metrics : Svm.Metrics.t option;
}

val default_config : config
(** seed 1, unbounded schedules, batch 256, 1 job, crash-stop tier,
    up to 2 faults within 30 local steps, budget 20_000, no resume, no
    chaos, GC tuning on. *)

type outcome = {
  o_executed : int;  (** schedules run by this invocation *)
  o_first_index : int;  (** first schedule index of this invocation *)
  o_next_index : int;  (** where a resume would continue *)
  o_clean : int;
  o_deadlocks : int;  (** deadlocked schedules (deduped into findings) *)
  o_new_findings : string list;  (** content addresses, discovery order *)
  o_dup_findings : int;  (** findings already in the corpus *)
  o_batches : int;
  o_heap_growth_words : int;
      (** major-heap words grown after the first batch — the unbounded-
          memory detector: batch-independent work must not accumulate *)
  o_corpus_records : int;  (** valid records in the corpus afterwards *)
  o_stop : [ `Schedules | `Duration | `Sigterm ];
}

val run :
  config -> corpus_dir:string -> Scenario.t -> (outcome, string) result
(** Soak one scenario. Installs a SIGTERM handler for the duration of
    the call (restored on exit): on SIGTERM the current batch finishes,
    cements, checkpoints, and the run returns [`Sigterm] — the caller
    exits 0 and a later [resume] continues. [Error] for a non-explorable
    scenario, an unopenable corpus, or a bad configuration. *)
