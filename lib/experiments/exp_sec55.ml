let n_src = 6
let source = Tasks.Algorithms.renaming_read_write ~n:n_src ~t:2
let task = Tasks.Task.renaming ~slots:((2 * n_src) - 1)

let native () =
  let s =
    Runner.sweep ~budget:100_000 ~task ~alg:source ~seeds:(Harness.seeds 25)
      ~max_crashes:2 ()
  in
  let ok = s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs in
  Report.check ~label:"native renaming in ASM(6,2,1), 25 schedules" ~ok
    ~detail:(Format.asprintf "%a" Runner.pp_summary s)

let simulated ~n' ~t' ~x' ~max_crashes =
  let target = Core.Model.make ~n:n' ~t:t' ~x:x' in
  let alg = Core.Bg.colored ~source ~target in
  let s =
    Runner.sweep ~budget:2_000_000 ~task ~alg ~seeds:(Harness.seeds 8)
      ~max_crashes ()
  in
  let ok = s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs in
  Report.check
    ~label:
      (Printf.sprintf "colored simulation in ASM(%d,%d,%d): distinct names"
         n' t' x')
    ~ok
    ~detail:(Format.asprintf "%a" Runner.pp_summary s)

let rejected ~label ~target =
  let refused =
    match Core.Bg.colored ~source ~target with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true
  in
  Report.check ~label ~ok:refused
    ~detail:(if refused then "rejected as required" else "wrongly accepted")

let run () =
  {
    Report.id = "F8";
    title = "Section 5.5: colored tasks (Figure 8)";
    paper =
      "An algorithm solving a colored task in ASM(n,t,x) can be \
       simulated in ASM(n',t',x') when x' > 1, floor(t/x) >= \
       floor(t'/x') and n >= max(n', (n'-t')+t); test&set objects let \
       each simulator decide the value of a different simulated process.";
    metrics = [];
    checks =
      [
        native ();
        simulated ~n':4 ~t':2 ~x':2 ~max_crashes:0;
        simulated ~n':4 ~t':2 ~x':2 ~max_crashes:2;
        simulated ~n':5 ~t':3 ~x':2 ~max_crashes:3;
        rejected ~label:"x' = 1 is rejected"
          ~target:(Core.Model.read_write ~n:4 ~t:2);
        rejected ~label:"n too small for (n'-t')+t is rejected"
          ~target:(Core.Model.make ~n:6 ~t:1 ~x:2);
      ];
  }
