open Svm

let n = 6
let t_src = 2
let t' = 5
let x = 2
let source = Tasks.Algorithms.kset_read_write ~n ~t:t_src ~k:3
let task = Tasks.Task.kset ~k:3
let target = Core.Model.make ~n ~t:t' ~x

let sweeps ~max_crashes ~label =
  let s =
    Runner.sweep ~budget:800_000 ~task
      ~alg:(Core.Bg.sim_up ~source ~t' ~x)
      ~seeds:(Harness.seeds 12) ~max_crashes ()
  in
  let ok = s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs in
  Report.check ~label ~ok ~detail:(Format.asprintf "%a" Runner.pp_summary s)

let exhaustive_run ~adversary ~stats ~budget =
  let alg =
    Core.Bg_engine.simulate ~stats ~source ~target ~mode:`Exhaustive ()
  in
  let inputs =
    Array.of_list (List.map Codec.int.Codec.inj [ 9; 8; 7; 6; 5; 4 ])
  in
  Core.Run.run ~budget ~alg ~inputs ~adversary ()

(* One simulator crashes while inside an agreement propose (just before
   publishing on "SA.val"): with x = 2 the co-owner completes the
   object, so NO simulated process blocks. Contrast with Figure 1 /
   x = 1 where one such crash blocks a simulated process. *)
let single_crash_blocks_nothing () =
  let stats = Core.Bg_engine.new_stats () in
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [ Harness.crash_before_fam ~pid:0 ~prefix:"SA.val" ~nth:0 ]
  in
  let r = exhaustive_run ~adversary ~stats ~budget:900_000 in
  let blocked = Harness.blocked_simulated ~n_simulated:n stats in
  let crashed = List.length r.Exec.crashed in
  Report.check
    ~label:"1 crash inside propose blocks NO simulated process (x=2)"
    ~ok:(crashed = 1 && blocked = [])
    ~detail:
      (Printf.sprintf "crashed=%d blocked simulated=%d" crashed
         (List.length blocked))

(* Both owners of the same agreement instance crash inside propose: that
   costs x = 2 crashes and blocks exactly one simulated process
   (Lemma 7's floor(t'/x) accounting). *)
let double_crash_blocks_one () =
  let stats = Core.Bg_engine.new_stats () in
  let adversary =
    Adversary.with_crashes
      (Adversary.priority [ 0; 1 ])
      [
        Harness.crash_before_fam ~pid:0 ~prefix:"SA.val" ~nth:0;
        Harness.crash_before_fam ~pid:1 ~prefix:"SA.val" ~nth:0;
      ]
  in
  let r = exhaustive_run ~adversary ~stats ~budget:900_000 in
  let blocked = Harness.blocked_simulated ~n_simulated:n stats in
  let crashed = List.length r.Exec.crashed in
  Report.check
    ~label:"x=2 owner crashes inside one propose block exactly 1 simulated"
    ~ok:(crashed = 2 && List.length blocked <= 1)
    ~detail:
      (Printf.sprintf "crashed=%d blocked simulated=%d (bound floor(2/2)=1)"
         crashed (List.length blocked))

let lemma7_bounds ~crashes ~label =
  let ok = ref true and detail = ref "" in
  let max_blocked = ref 0 in
  List.iter
    (fun seed ->
      let stats = Core.Bg_engine.new_stats () in
      let adversary =
        Adversary.random_crashes ~within:700 ~seed ~max_crashes:crashes
          ~nprocs:n (Adversary.random ~seed)
      in
      let r = exhaustive_run ~adversary ~stats ~budget:1_200_000 in
      let c = List.length r.Exec.crashed in
      let blocked =
        List.length (Harness.blocked_simulated ~n_simulated:n stats)
      in
      if blocked > !max_blocked then max_blocked := blocked;
      if blocked > c / x then begin
        ok := false;
        detail :=
          Printf.sprintf "seed %d: %d crashes blocked %d > floor(c/x)" seed c
            blocked
      end)
    (Harness.seeds 8);
  Report.check ~label ~ok:!ok
    ~detail:
      (if !ok then
         Printf.sprintf "max blocked simulated = %d (bound floor(c/%d))"
           !max_blocked x
       else !detail)

(* A second colorless task rides the same simulation: wait-free
   approximate agreement (eps-close midpoints), natively wait-free in
   the read/write model, simulated into ASM(6,5,2). *)
let approximate_through_simulation () =
  let scale = 1024 and rounds = 17 in
  let source =
    Tasks.Algorithms.approximate_agreement ~n ~t:t_src ~rounds ~scale
  in
  let task = Tasks.Task.approximate ~scale ~eps:4 in
  let alg = Core.Bg.sim_up ~source ~t' ~x in
  let s =
    Runner.sweep ~budget:3_000_000 ~task ~alg ~seeds:(Harness.seeds 5)
      ~max_crashes:t' ()
  in
  let ok = s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs in
  Report.check
    ~label:"approximate agreement rides the simulation (5 crashes)"
    ~ok
    ~detail:(Format.asprintf "%a" Runner.pp_summary s)

let run () =
  {
    Report.id = "S4";
    title = "Section 4: ASM(n,t,1) in ASM(n,t',x)";
    paper =
      "Theorem 3: for floor(t'/x) <= t, any t-resilient read/write \
       algorithm runs t'-resiliently with consensus-number-x objects; \
       blocking one simulated process costs x simulator crashes \
       (Lemma 7), and at least n - t simulated processes decide \
       (Lemma 8).";
    metrics = [];
    checks =
      [
        sweeps ~max_crashes:0 ~label:"12 crash-free schedules: valid + live";
        sweeps ~max_crashes:5
          ~label:"12 schedules, up to t'=5 crashes: valid + live";
        single_crash_blocks_nothing ();
        double_crash_blocks_one ();
        lemma7_bounds ~crashes:2 ~label:"Lemma 7 bound, 2 random crashes";
        lemma7_bounds ~crashes:4 ~label:"Lemma 7 bound, 4 random crashes";
        approximate_through_simulation ();
      ];
  }
