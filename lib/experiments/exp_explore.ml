open Svm
open Svm.Prog.Syntax

let decided_ints (run : 'a Explore.run) =
  Array.to_list run.Explore.outcomes
  |> List.filter_map (function
       | Exec.Decided u -> Some (Codec.int.Codec.prj u)
       | Exec.Crashed | Exec.Blocked | Exec.Stuck -> None)

(* Scope line for a clean result: how many representative runs were
   checked and how much of the tree the prunings discharged. *)
let scope (r : 'a Explore.result) =
  Printf.sprintf "%d runs (pruned %d states, %d commutes)" r.Explore.explored
    r.Explore.pruned_states r.Explore.pruned_commutes

let agreement_validity ~lo ~hi run =
  let ds = decided_ints run in
  match ds with
  | [] -> Ok ()
  | d :: rest ->
      if not (List.for_all (Int.equal d) rest) then
        Error
          (Printf.sprintf "disagreement: [%s]"
             (String.concat ";" (List.map string_of_int ds)))
      else if d < lo || d > hi then Error (Printf.sprintf "invalid value %d" d)
      else Ok ()

(* ------------------------------------------------------------------ *)
(* Safe agreement                                                       *)
(* ------------------------------------------------------------------ *)

let sa_make ~nprocs () =
  let env = Env.create ~nprocs ~x:1 () in
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let prog i =
    let* () =
      Shared_objects.Safe_agreement.propose sa ~key:[] (Codec.int.Codec.inj i)
    in
    Shared_objects.Safe_agreement.decide sa ~key:[]
  in
  (env, Array.init nprocs prog)

let sa_safety ~nprocs ~max_crashes ~max_steps () =
  let r =
    Explore.exhaustive ~max_crashes ~max_steps ~make:(sa_make ~nprocs)
      ~property:(agreement_validity ~lo:0 ~hi:(nprocs - 1))
      ()
  in
  Report.check
    ~label:
      (Printf.sprintf
         "safe agreement: ALL schedules, %d procs, <=%d crashes, depth %d"
         nprocs max_crashes max_steps)
    ~ok:(r.Explore.counterexample = None && not r.Explore.exhausted_budget)
    ~detail:
      (match r.Explore.counterexample with
      | None -> Printf.sprintf "%s, agreement+validity hold" (scope r)
      | Some (run, msg) ->
          Printf.sprintf "COUNTEREXAMPLE %s: %s" run.Explore.schedule msg)

let sa_termination () =
  (* Crash-free complete runs: everyone decides. *)
  let property run =
    if run.Explore.truncated then Ok ()
    else if
      Array.for_all
        (function Exec.Decided _ -> true | Exec.Crashed | Exec.Blocked | Exec.Stuck -> false)
        run.Explore.outcomes
    then Ok ()
    else Error "complete crash-free run without full termination"
  in
  let r =
    Explore.exhaustive ~max_steps:14 ~make:(sa_make ~nprocs:2) ~property ()
  in
  Report.check
    ~label:"safe agreement: crash-free termination in all complete runs"
    ~ok:(r.Explore.counterexample = None)
    ~detail:(scope r)

(* The explorer finds the ablation's bug on its own. The minimal
   counterexample needs a process with a smaller id to propose after
   another has already decided: two processes and eight steps suffice. *)
let sa_no_cancel_found () =
  let make () =
    let env = Env.create ~nprocs:2 ~x:1 () in
    let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
    let prog i =
      let* () =
        Shared_objects.Ablations.sa_propose_no_cancel ~fam:"SA" ~key:[]
          (Codec.int.Codec.inj i)
      in
      Shared_objects.Safe_agreement.decide sa ~key:[]
    in
    (env, Array.init 2 prog)
  in
  let r =
    Explore.exhaustive ~max_steps:10 ~make
      ~property:(agreement_validity ~lo:0 ~hi:1)
      ()
  in
  Report.check ~label:"explorer finds the no-cancel disagreement"
    ~ok:(r.Explore.counterexample <> None)
    ~detail:
      (match r.Explore.counterexample with
      | Some (run, msg) ->
          Printf.sprintf "found after %d schedules: %s (%s)"
            r.Explore.explored msg run.Explore.schedule
      | None -> "no counterexample found (bug in the explorer?)")

(* ------------------------------------------------------------------ *)
(* Winner bounds                                                        *)
(* ------------------------------------------------------------------ *)

let winners run =
  Array.to_list run.Explore.outcomes
  |> List.filter_map (function
       | Exec.Decided u -> Some (Codec.bool.Codec.prj u)
       | Exec.Crashed | Exec.Blocked | Exec.Stuck -> None)
  |> List.filter Fun.id |> List.length

let ts_exhaustive () =
  let make () =
    let env = Env.create ~nprocs:3 ~x:2 () in
    let ts = Shared_objects.Ts_from_cons.make ~fam:"TS" ~participants:3 in
    let prog i =
      Prog.map Codec.bool.Codec.inj
        (Shared_objects.Ts_from_cons.compete ts ~key:[] ~pid:i)
    in
    (env, Array.init 3 prog)
  in
  let property run =
    if winners run <= 1 then Ok ()
    else Error (Printf.sprintf "%d winners" (winners run))
  in
  let r =
    Explore.exhaustive ~max_crashes:1 ~max_steps:12 ~make ~property ()
  in
  Report.check
    ~label:"tournament test&set: <=1 winner in ALL schedules (3 procs, 1 crash)"
    ~ok:(r.Explore.counterexample = None && not r.Explore.exhausted_budget)
    ~detail:(scope r)

let x_compete_exhaustive () =
  let make () =
    let env = Env.create ~nprocs:3 ~x:2 () in
    let xc = Shared_objects.X_compete.make ~fam:"XC" ~participants:3 ~x:2 in
    let prog i =
      Prog.map Codec.bool.Codec.inj
        (Shared_objects.X_compete.compete xc ~key:[] ~pid:i)
    in
    (env, Array.init 3 prog)
  in
  let property run =
    if winners run <= 2 then Ok ()
    else Error (Printf.sprintf "%d winners" (winners run))
  in
  let r = Explore.exhaustive ~max_steps:14 ~make ~property () in
  Report.check ~label:"x_compete: <=x winners in ALL schedules (3 procs, x=2)"
    ~ok:(r.Explore.counterexample = None && not r.Explore.exhausted_budget)
    ~detail:(scope r)

let cons2_from_ts_exhaustive () =
  let make () =
    let env = Env.create ~nprocs:2 ~x:2 () in
    let prog pid =
      Prog.map Codec.int.Codec.inj
        (Universal.From_objects.cons2_from_ts ~fam:"G" ~key:[] ~pid (10 + pid))
    in
    (env, Array.init 2 prog)
  in
  let r =
    Explore.exhaustive ~max_crashes:1 ~max_steps:12 ~make
      ~property:(agreement_validity ~lo:10 ~hi:11)
      ()
  in
  Report.check
    ~label:"2-cons from test&set: agreement in ALL schedules (<=1 crash)"
    ~ok:(r.Explore.counterexample = None && not r.Explore.exhausted_budget)
    ~detail:(scope r)

(* ------------------------------------------------------------------ *)
(* Deeper bounds through the scenario registry                          *)
(* ------------------------------------------------------------------ *)

(* The pruned engine pays for itself in scope: bounds that were out of
   reach for the copy-per-branch explorer. Both rows drive the
   registered scenarios through [Harness.explore_scenario], i.e. the
   exact path [asmsim explore] uses. *)

let scenario_deeper ~label ~name ?nprocs ~extra_steps ?(max_crashes = 0) () =
  match Scenario.find ?nprocs name with
  | Error e -> Report.check ~label ~ok:false ~detail:e
  | Ok s -> (
      let max_steps = s.Scenario.explore_steps + extra_steps in
      match
        Harness.explore_scenario ~max_crashes ~max_steps s
      with
      | Error e -> Report.check ~label ~ok:false ~detail:e
      | Ok r ->
          Report.check ~label
            ~ok:(r.Explore.counterexample = None && not r.Explore.exhausted_budget)
            ~detail:
              (match r.Explore.counterexample with
              | None -> Printf.sprintf "depth %d: %s" max_steps (scope r)
              | Some (run, msg) ->
                  Printf.sprintf "COUNTEREXAMPLE %s: %s" run.Explore.schedule
                    msg))

let xsa_deeper () =
  scenario_deeper
    ~label:"x_safe_agreement: ALL schedules two steps past the default bound"
    ~name:"x_safe_agreement" ~extra_steps:2 ()

let sa_two_crash_budget () =
  scenario_deeper
    ~label:"safe agreement: ALL schedules, 3 procs, 2-crash budget, depth 12"
    ~name:"safe_agreement" ~nprocs:3 ~extra_steps:0 ~max_crashes:2 ()

let run () =
  {
    Report.id = "EX";
    title = "exhaustive schedule exploration (bounded model checking)";
    paper =
      "The agreement/validity properties of Figures 1, 5 and 6's \
       building blocks are universally quantified over schedules; within \
       a bounded scope we check them against every schedule, not a \
       sample.";
    metrics = [];
    checks =
      [
        sa_safety ~nprocs:2 ~max_crashes:1 ~max_steps:12 ();
        sa_safety ~nprocs:3 ~max_crashes:0 ~max_steps:12 ();
        sa_termination ();
        sa_no_cancel_found ();
        ts_exhaustive ();
        x_compete_exhaustive ();
        cons2_from_ts_exhaustive ();
        xsa_deeper ();
        sa_two_crash_budget ();
      ];
  }
