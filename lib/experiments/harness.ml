open Svm

let run_objects ?budget ~nprocs ~x ~adversary make =
  let env = Env.create ~nprocs ~x () in
  let progs = Array.init nprocs make in
  let result = Exec.run ?budget ~env ~adversary progs in
  (result, env)

let int_results r = List.map Codec.int.Codec.prj (Exec.decided r)

let all_equal = function
  | [] -> true
  | v :: rest -> List.for_all (Int.equal v) rest

let seeds n = List.init n (fun i -> i + 1)

let blocked_simulated ~n_simulated stats =
  let decided = Core.Bg_engine.decided_processes stats in
  List.filter (fun j -> not (List.mem j decided)) (List.init n_simulated Fun.id)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let sweep_scenario ?kinds ?max_faults ?op_window ?max_runs ?budget ?metrics
    ?on_progress ?jobs (s : Scenario.t) =
  Explore.sweep_faults ?kinds ?max_faults ?op_window ?max_runs ?budget ?metrics
    ?on_progress ?jobs ~meta:(Scenario.sweep_meta s) ~make:s.Scenario.make
    ~monitors:s.Scenario.monitors ()

let explore_scenario ?max_crashes ?max_runs ?max_steps ?metrics ?on_progress
    ?jobs ?dedup (s : Scenario.t) =
  if not s.Scenario.explorable then
    Error
      (Printf.sprintf
         "scenario %s is not explorable: its programs keep state in refs \
          outside the environment"
         s.Scenario.name)
  else
    let max_steps =
      match max_steps with Some d -> d | None -> s.Scenario.explore_steps
    in
    Ok
      (Explore.exhaustive ?max_crashes ?max_runs ?metrics ?on_progress ?jobs
         ?dedup ~max_steps ~make:s.Scenario.make
         ~property:s.Scenario.exhaustive_property ())

let sweep_check ?kinds ?max_faults ?op_window ?max_runs ?budget
    ?expect_violation ~label (s : Scenario.t) =
  let outcome =
    sweep_scenario ?kinds ?max_faults ?op_window ?max_runs ?budget s
  in
  let expected =
    match expect_violation with
    | Some e -> e
    | None -> s.Scenario.seeded_bug
  in
  let deadlock_note =
    match outcome.Explore.deadlock with
    | None -> ""
    | Some d ->
        Fmt.str "; deadlock finding under [%a]" Explore.pp_fault_schedule d
  in
  match outcome.Explore.found with
  | None ->
      Report.check ~label ~ok:(not expected)
        ~detail:
          (Printf.sprintf "no violation in %d runs%s%s" outcome.Explore.runs
             (if outcome.Explore.exhausted then " (budget hit)"
              else ", fault box covered")
             deadlock_note)
  | Some f ->
      let v = f.Explore.violation in
      Report.check ~label ~ok:expected
        ~detail:
          (Fmt.str "%s: %s at step %d [%a] (%d runs + %d shrink)%s"
             v.Monitor.monitor v.Monitor.message v.Monitor.step
             Explore.pp_fault_schedule f.Explore.shrunk outcome.Explore.runs
             f.Explore.shrink_runs deadlock_note)

let crash_before_fam ~pid ~prefix ~nth =
  Adversary.Crash_before_op
    {
      pid;
      nth;
      matches = (fun (info : Op.info) -> starts_with ~prefix info.Op.fam);
    }
