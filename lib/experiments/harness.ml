open Svm

let run_objects ?budget ~nprocs ~x ~adversary make =
  let env = Env.create ~nprocs ~x () in
  let progs = Array.init nprocs make in
  let result = Exec.run ?budget ~env ~adversary progs in
  (result, env)

let int_results r = List.map Codec.int.Codec.prj (Exec.decided r)

let all_equal = function
  | [] -> true
  | v :: rest -> List.for_all (Int.equal v) rest

let seeds n = List.init n (fun i -> i + 1)

let blocked_simulated ~n_simulated stats =
  let decided = Core.Bg_engine.decided_processes stats in
  List.filter (fun j -> not (List.mem j decided)) (List.init n_simulated Fun.id)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let sweep_scenario ?kinds ?max_faults ?op_window ?max_runs ?budget ?metrics
    ?on_progress ?jobs (s : Scenario.t) =
  Explore.sweep_faults ?kinds ?max_faults ?op_window ?max_runs ?budget ?metrics
    ?on_progress ?jobs ~meta:(Scenario.sweep_meta s) ~make:s.Scenario.make
    ~monitors:s.Scenario.monitors ()

let explore_scenario ?max_crashes ?max_runs ?max_steps ?metrics ?on_progress
    ?jobs ?dedup (s : Scenario.t) =
  if not s.Scenario.explorable then
    Error
      (Printf.sprintf
         "scenario %s is not explorable: its programs keep state in refs \
          outside the environment"
         s.Scenario.name)
  else
    let max_steps =
      match max_steps with Some d -> d | None -> s.Scenario.explore_steps
    in
    Ok
      (Explore.exhaustive ?max_crashes ?max_runs ?metrics ?on_progress ?jobs
         ?dedup ~max_steps ~make:s.Scenario.make
         ~property:s.Scenario.exhaustive_property ())

let sweep_check ?kinds ?max_faults ?op_window ?max_runs ?budget
    ?expect_violation ~label (s : Scenario.t) =
  let outcome =
    sweep_scenario ?kinds ?max_faults ?op_window ?max_runs ?budget s
  in
  let expected =
    match expect_violation with
    | Some e -> e
    | None -> s.Scenario.seeded_bug
  in
  let deadlock_note =
    match outcome.Explore.deadlock with
    | None -> ""
    | Some d ->
        Fmt.str "; deadlock finding under [%a]" Explore.pp_fault_schedule d
  in
  match outcome.Explore.found with
  | None ->
      Report.check ~label ~ok:(not expected)
        ~detail:
          (Printf.sprintf "no violation in %d runs%s%s" outcome.Explore.runs
             (if outcome.Explore.exhausted then " (budget hit)"
              else ", fault box covered")
             deadlock_note)
  | Some f ->
      let v = f.Explore.violation in
      Report.check ~label ~ok:expected
        ~detail:
          (Fmt.str "%s: %s at step %d [%a] (%d runs + %d shrink)%s"
             v.Monitor.monitor v.Monitor.message v.Monitor.step
             Explore.pp_fault_schedule f.Explore.shrunk outcome.Explore.runs
             f.Explore.shrink_runs deadlock_note)

(* {2 Distributed execution}

   A job must round-trip through {!Dist.Proto} carrying everything the
   plan depends on, so both helpers resolve every default to a concrete
   value here, at job-build time — a worker re-expanding the job on the
   other side of the wire cannot then disagree with the coordinator. *)

(* A DSL-backed scenario ships its source inside the job, so the
   server/worker on the other side compiles the identical program even
   though its binary never registered the name. *)
let job_source (s : Scenario.t) =
  match s.Scenario.origin with
  | Scenario.Builtin -> None
  | Scenario.Sdl_source { source; _ } -> Some source

let sweep_job ?(kinds = [ Adversary.Crash_stop ]) ?(max_faults = 1)
    ?(op_window = 6) ?(max_runs = 5_000) ?budget (s : Scenario.t) =
  {
    Dist.Proto.scenario = s.Scenario.name;
    nprocs = Some s.Scenario.nprocs;
    source = job_source s;
    mode =
      Dist.Proto.Sweep
        {
          sw_tiers = List.map Adversary.fault_kind_name kinds;
          sw_max_faults = max_faults;
          sw_op_window = op_window;
          sw_max_runs = max_runs;
          sw_budget = budget;
        };
  }

let explore_job ?(max_crashes = 0) ?(max_runs = 2_000_000) ?(dedup = true)
    ?max_steps (s : Scenario.t) =
  let max_steps =
    match max_steps with Some d -> d | None -> s.Scenario.explore_steps
  in
  {
    Dist.Proto.scenario = s.Scenario.name;
    nprocs = Some s.Scenario.nprocs;
    source = job_source s;
    mode =
      Dist.Proto.Explore
        {
          ex_max_steps = max_steps;
          ex_max_crashes = max_crashes;
          ex_max_runs = max_runs;
          ex_dedup = dedup;
        };
  }

(* Resolve a job to its scenario: an embedded DSL source wins (parsed,
   validated and compiled right here — declarative data, no code
   execution; the decoder already size-capped it), otherwise the
   registry. The declared name must match the job's, or the shard
   bookkeeping and replay metadata would lie about what ran. *)
let scenario_of_job (job : Dist.Proto.job) =
  match job.Dist.Proto.source with
  | Some src -> (
      match Scenario.of_source ?nprocs:job.Dist.Proto.nprocs src with
      | Error m -> Error (Printf.sprintf "scenario source: %s" m)
      | Ok s ->
          if String.equal s.Scenario.name job.Dist.Proto.scenario then Ok s
          else
            Error
              (Printf.sprintf
                 "job names scenario %S but the submitted source declares %S"
                 job.Dist.Proto.scenario s.Scenario.name))
  | None -> Scenario.find ?nprocs:job.Dist.Proto.nprocs job.Dist.Proto.scenario

let dist_instance (job : Dist.Proto.job) =
  match scenario_of_job job with
  | Error m -> Error m
  | Ok s -> (
      match job.Dist.Proto.mode with
      | Dist.Proto.Sweep p -> (
          let kinds =
            List.fold_left
              (fun acc name ->
                match (acc, Adversary.fault_kind_of_name name) with
                | Error m, _ -> Error m
                | Ok _, None ->
                    Error (Printf.sprintf "unknown fault tier %s" name)
                | Ok ks, Some k -> Ok (k :: ks))
              (Ok []) p.Dist.Proto.sw_tiers
          in
          match kinds with
          | Error m -> Error m
          | Ok kinds_rev ->
              Ok
                (Dist.Worker.Sweep_instance
                   (Explore.sweep_plan ~kinds:(List.rev kinds_rev)
                      ~max_faults:p.Dist.Proto.sw_max_faults
                      ~op_window:p.Dist.Proto.sw_op_window
                      ~max_runs:p.Dist.Proto.sw_max_runs
                      ?budget:p.Dist.Proto.sw_budget
                      ~meta:(Scenario.sweep_meta s) ~make:s.Scenario.make
                      ~monitors:s.Scenario.monitors ())))
      | Dist.Proto.Explore p ->
          if not s.Scenario.explorable then
            Error
              (Printf.sprintf
                 "scenario %s is not explorable: its programs keep state in \
                  refs outside the environment"
                 s.Scenario.name)
          else
            Ok
              (Dist.Worker.Explore_instance
                 (Explore.plan ~max_crashes:p.Dist.Proto.ex_max_crashes
                    ~max_runs:p.Dist.Proto.ex_max_runs
                    ~dedup:p.Dist.Proto.ex_dedup
                    ~max_steps:p.Dist.Proto.ex_max_steps ~make:s.Scenario.make
                    ~property:s.Scenario.exhaustive_property ())))

type dist_result =
  [ `Sweep of
    Explore.sweep_outcome Dist.Coordinator.outcome * Dist.Coordinator.stats
  | `Explore of
    Univ.t Explore.result Dist.Coordinator.outcome * Dist.Coordinator.stats ]

let run_job_dist ?metrics ?on_progress config (job : Dist.Proto.job) :
    (dist_result, string) result =
  match dist_instance job with
  | Error m -> Error m
  | Ok (Dist.Worker.Sweep_instance plan) ->
      Result.map
        (fun (o, st) -> `Sweep (o, st))
        (Dist.Coordinator.sweep ?metrics ?on_progress config ~job ~plan ())
  | Ok (Dist.Worker.Explore_instance plan) ->
      Result.map
        (fun (o, st) -> `Explore (o, st))
        (Dist.Coordinator.explore ?metrics ?on_progress config ~job ~plan ())

let sweep_scenario_dist ?kinds ?max_faults ?op_window ?max_runs ?budget
    ?metrics ?on_progress config (s : Scenario.t) =
  let job = sweep_job ?kinds ?max_faults ?op_window ?max_runs ?budget s in
  match run_job_dist ?metrics ?on_progress config job with
  | Error m -> Error m
  | Ok (`Sweep r) -> Ok r
  | Ok (`Explore _) -> Error "internal: sweep job resolved to an explore plan"

let explore_scenario_dist ?max_crashes ?max_runs ?max_steps ?dedup ?metrics
    ?on_progress config (s : Scenario.t) =
  let job = explore_job ?max_crashes ?max_runs ?dedup ?max_steps s in
  match run_job_dist ?metrics ?on_progress config job with
  | Error m -> Error m
  | Ok (`Explore r) -> Ok r
  | Ok (`Sweep _) -> Error "internal: explore job resolved to a sweep plan"

(* {2 Network service}

   The handshake fingerprint digests the scenario registry (plus the
   protocol version): two binaries that would expand some job into
   different plans must disagree on it, so they are rejected at the
   door instead of corrupting a job mid-flight. *)

let registry_fingerprint () =
  let h =
    List.fold_left
      (fun acc name -> Hashtbl.hash (acc, name))
      (Hashtbl.hash ("asmsim-net", Dist.Proto.net_version))
      (Scenario.names ())
  in
  Printf.sprintf "v%d:%08x" Dist.Proto.net_version (h land 0xffffffff)

let submit_job_net ?metrics ?resume cfg (job : Dist.Proto.job) addr =
  match dist_instance job with
  | Error m -> Error m
  | Ok instance -> Dist.Client.submit ?metrics ?resume cfg ~instance ~job addr

let crash_before_fam ~pid ~prefix ~nth =
  Adversary.Crash_before_op
    {
      pid;
      nth;
      matches = (fun (info : Op.info) -> starts_with ~prefix info.Op.fam);
    }
