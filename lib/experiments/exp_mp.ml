let t = 1
let x = 3
let n = 8
let lo, hi = Core.Model.window_bounds ~t ~x (* (3, 5) *)

let algebra () =
  let ok = ref true in
  let canon = Core.Model.read_write ~n ~t in
  for t' = 0 to n - 1 do
    let m = Core.Model.make ~n ~t:t' ~x in
    let inside = t' >= lo && t' <= hi in
    if Core.Model.equivalent m canon <> inside then ok := false
  done;
  Report.check
    ~label:
      (Printf.sprintf "ASM(%d,t',%d) ~ ASM(%d,%d,1) iff %d <= t' <= %d" n x n
         t lo hi)
    ~ok:!ok
    ~detail:(Printf.sprintf "checked t' = 0..%d" (n - 1))

let edge ~t' =
  let source = Tasks.Algorithms.kset_read_write ~n ~t ~k:(t + 1) in
  let alg = Core.Bg.sim_up ~source ~t' ~x in
  let task = Tasks.Task.kset ~k:(t + 1) in
  let s =
    Runner.sweep ~budget:3_000_000 ~task ~alg ~seeds:(Harness.seeds 3)
      ~max_crashes:t' ()
  in
  let ok = s.Runner.valid = s.Runner.runs && s.Runner.live = s.Runner.runs in
  Report.check
    ~label:
      (Printf.sprintf
         "window edge t'=%d: consensus-like %d-set runs under %d crashes" t'
         (t + 1) t')
    ~ok
    ~detail:(Format.asprintf "%a" Runner.pp_summary s)

let beyond_window () =
  let source = Tasks.Algorithms.kset_read_write ~n ~t ~k:(t + 1) in
  let rejected =
    match Core.Bg.sim_up ~source ~t':(hi + 1) ~x with
    | (_ : Core.Algorithm.t) -> false
    | exception Invalid_argument _ -> true
  in
  Report.check
    ~label:(Printf.sprintf "t'=%d (past the window) is rejected" (hi + 1))
    ~ok:rejected
    ~detail:
      (if rejected then "sim_up raised Invalid_argument as required"
       else "simulation was wrongly accepted")

let useless_boost () =
  let m3 = Core.Model.make ~n:10 ~t:8 ~x:3 in
  let m4 = Core.Model.make ~n:10 ~t:8 ~x:4 in
  Report.check
    ~label:"ASM(n,8,3) ~ ASM(n,8,4): stronger objects, same power"
    ~ok:
      (Core.Model.equivalent m3 m4
      && Core.Model.power m3 = 2
      && not (Core.Model.equivalent m3 (Core.Model.make ~n:10 ~t:8 ~x:2)))
    ~detail:
      (Printf.sprintf "power(8,3)=%d power(8,4)=%d power(8,2)=%d"
         (Core.Model.power m3) (Core.Model.power m4)
         (Core.Model.power (Core.Model.make ~n:10 ~t:8 ~x:2)))

let run () =
  {
    Report.id = "MP";
    title = "the multiplicative power window";
    paper =
      "ASM(n, t', x) ~ ASM(n, t, 1) iff t*x <= t' <= t*x + (x - 1); \
       increasing x without crossing a floor boundary adds no power \
       (Section 5.4).";
    metrics = [];
    checks =
      [ algebra (); edge ~t':lo; edge ~t':hi; beyond_window (); useless_boost () ];
  }
