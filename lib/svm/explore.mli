(** Bounded exhaustive exploration of schedules (a small model checker).

    Random sweeps sample the schedule space; for the small agreement
    objects at the heart of the paper we can do better and enumerate
    {e every} interleaving (and every crash placement) up to a depth
    bound, so safety properties hold for all schedules within scope, not
    just the sampled ones.

    The explorer branches, at every step, over which live process
    executes its next operation and — if the crash budget allows — over
    crashing a process instead. The engine explores copy-free: one
    environment is mutated in place and rolled back through an undo
    journal ({!Env.checkpoint}/{!Env.rollback}) when backtracking, and
    two prunings cut the tree without changing what it proves:

    - {b state-fingerprint deduplication} — a canonical key of the
      store ({!Env.canonical}), each process's op-result history (a
      stand-in for its continuation), the crash order and the remaining
      depth budget; a revisited key re-proves nothing and is skipped
      ([pruned_states]);
    - {b sleep-set commutation} — two enabled operations touching
      different instances (or only reading the same one) commute, so
      only one order of each commuting pair is explored
      ([pruned_commutes]).

    Both prunings preserve the set of {e run records} reachable up to
    reordering of commuting steps. They are sound for properties that
    are functions of the run record only — outcomes, crash list,
    truncation — and do {b not} inspect [schedule] (the one field that
    distinguishes equivalent interleavings). Pass [~dedup:false] to get
    the plain full enumeration.

    Requirement: programs must be {e closed} — all their state lives in
    the environment or in the continuation, never in captured mutable
    refs (all the object protocols of this repository qualify; the BG
    simulator processes do not, as their simulator state is in refs).
    Oracle handlers must likewise be pure functions of [(pid, query)] —
    every handler in this repository is — since the dedup key tracks
    only the per-process query counts, not handler closure state.

    Runs that exceed [max_steps] are reported with [Blocked] outcomes for
    the still-running processes; the property is consulted on them too,
    so use properties that are safety-only on truncated runs (e.g.
    "decided values agree", not "everyone decided") or inspect
    [truncated]. *)

type 'a run = {
  outcomes : 'a Exec.outcome array;
  crashed : int list;
  truncated : bool;  (** hit [max_steps] with processes still running *)
  schedule : string;  (** human-readable choice sequence *)
}

type 'a result = {
  explored : int;  (** complete runs checked *)
  counterexample : ('a run * string) option;  (** run + property failure *)
  exhausted_budget : bool;
      (** stopped early because [max_runs] was reached — coverage is then
          partial, like a random sweep *)
  pruned_states : int;
      (** subtrees skipped because their root state was already visited *)
  pruned_commutes : int;
      (** transitions skipped by the sleep-set commutation rule *)
  pruned_source : int;
      (** transitions skipped by the refined (state-conditional)
          commutation rules — sleep entries that only survived a filter
          because, at the state in question, two same-instance
          operations commute (sibling snapshot writes, equal register
          writes, a won test&set, ...). Always [0] from the plan engine
          and the reference engine, which use the coarse relation. *)
}

val exhaustive :
  ?max_crashes:int ->
  ?max_runs:int ->
  ?metrics:Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  ?jobs:int ->
  ?oversubscribe:bool ->
  ?dedup:bool ->
  ?frontier_depth:int ->
  max_steps:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  property:('a run -> (unit, string) Stdlib.result) ->
  unit ->
  'a result
(** [exhaustive ~max_steps ~make ~property ()] enumerates schedules
    depth-first. [make] builds a fresh environment and programs (called
    once per engine pass — see below). Defaults: [max_crashes = 0],
    [max_runs = 2_000_000], [jobs = 1], [dedup = true].

    Passing [frontier_depth] explicitly selects the static-split plan
    engine outright (it is that engine's phase-A parameter; the
    work-stealing engine has no frontier). Leave it unset to get the
    work-stealing engine with plan-engine fallback described below.

    {b Two engines, one contract.} The first pass runs the
    work-stealing engine: one {!Visited} table shared by all [jobs]
    domains (a state fingerprinted anywhere is never re-expanded
    anywhere), subtree items split off dynamically whenever a sibling
    domain is starving ({!Par.run_dynamic}), and sleep-set pruning
    upgraded with state-conditional commutation rules toward source
    sets ([pruned_source]). If that pass runs clean — no
    counterexample, budget untouched, no exception — its result is
    returned: by the closure argument (DESIGN §14) the expanded-state
    set, and hence [explored], every pruned count and every
    deterministic metric, is a function of the reachable state graph
    alone, identical at {e every} job count and steal schedule. The
    moment a counterexample, the [max_runs] budget, or an exception
    enters the picture, the pass aborts, discards everything (no
    metrics recorded), and defers to the plan engine — phase-A
    frontier slicing, indexed fan-out, strict in-order merge (the same
    machinery {!plan}/{!task_outcome}/{!merge_plan} expose to [Dist])
    — whose merge defines the documented semantics: the DFS-first
    counterexample, the sequential budget behaviour, the original
    exception. Either way the verdict is byte-identical for every
    value of [jobs].

    [dedup:false] disables the visited table and both sleep-set tiers —
    the engine then enumerates exactly the runs of the reference engine
    {!exhaustive_copy}.

    [metrics] counts completed runs ([explore.runs]), truncated runs
    ([explore.truncated]), counterexamples found, the three pruning
    tallies ([explore.pruned_states], [explore.pruned_commutes],
    [explore.pruned_source]) and the shared-table traffic
    ([explore.visited.hits]/[explore.visited.misses]) — all
    deterministic. Timing-dependent tallies (steals, splits, bloom
    false positives, per-domain breakdowns) are recorded only into
    wall-clock registries ({!Metrics.create}'s [wall_clock]), so
    snapshot-compared runs stay byte-identical. [on_progress ~runs]
    fires from the calling domain — heartbeat timing is not part of
    the determinism contract. *)

val exhaustive_plan :
  ?max_crashes:int ->
  ?max_runs:int ->
  ?metrics:Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  ?jobs:int ->
  ?oversubscribe:bool ->
  ?dedup:bool ->
  ?frontier_depth:int ->
  max_steps:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  property:('a run -> (unit, string) Stdlib.result) ->
  unit ->
  'a result
(** The plan engine alone: phase-A frontier slicing, indexed fan-out
    over {!Par.run}, strict in-order merge — exactly what {!exhaustive}
    falls back to, and what a [Dist] coordinator distributes. Exposed
    so the bench can pin the static-split engine as its serial
    baseline; [pruned_source] is always [0] here. *)

val exhaustive_copy :
  ?max_crashes:int ->
  ?max_runs:int ->
  max_steps:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  property:('a run -> (unit, string) Stdlib.result) ->
  unit ->
  'a result
(** The original copy-per-branch engine, kept as the measured baseline
    of the bench's [EX] row and as a differential oracle for the journal
    engine: no journal, no pruning, no parallelism — every branch deep
    copies the environment and the state array. Its [pruned_states] and
    [pruned_commutes] are always 0. *)

(** {1 Systematic fault-box sweeping}

    Where {!exhaustive} branches over every interleaving (and so only
    scales to a dozen steps), the sweeper keeps complete runs cheap and
    enumerates the {e fault dimension} systematically: every set of at
    most [max_faults] victims × every fault kind in [kinds] × every
    per-victim op-index below [op_window] × every scheduler, each run
    under online monitors ({!Exec.run}'s [monitors]). This replaces
    sampling faults at random: within the swept box, absence of
    violations is a fact, not a statistic. *)

type fault_point = {
  victim : int;
  op : int;  (** local op-index, as [Adversary.Crash_at_local] trigger *)
  kind : Adversary.fault_kind;
}

type fault_schedule = { scheduler : string; faults : fault_point list }

val pp_fault_point : Format.formatter -> fault_point -> unit
val pp_fault_schedule : Format.formatter -> fault_schedule -> unit

type found = {
  fault : fault_schedule;  (** as first encountered by the sweep *)
  shrunk : fault_schedule;  (** after delta-debugging *)
  violation : Monitor.violation;
      (** the violation of the {e shrunk} schedule's run, trace included *)
  shrink_runs : int;  (** re-runs the shrinker spent *)
  replay : string;
      (** replay artifact of the shrunk run ({!Trace.to_replay}), with
          the violation recorded in its metadata *)
}

type sweep_outcome = {
  runs : int;
  found : found option;
  deadlock : fault_schedule option;
      (** first schedule, if any, under which {e every} process halted
          without deciding (all crashed or stuck, at least one stuck) —
          a typed finding of the omission tier, not a checker failure;
          the sweep continues past it *)
  exhausted : bool;  (** hit [max_runs] before covering the box *)
}

type verdict = Clean | Deadlocked | Violating of Monitor.violation

val run_fault :
  ?budget:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  scheduler:(unit -> Adversary.t) ->
  fault_point list ->
  verdict
(** One run under one fault schedule: the monitors' verdict, with
    "everybody halted without deciding" reported as [Deadlocked]. *)

val default_schedulers : nprocs:int -> (string * (unit -> Adversary.t)) list
(** Round-robin, both priority orders, and two seeded random policies —
    fresh adversaries per call, as scheduling state is per-run. *)

val sweep_faults :
  ?kinds:Adversary.fault_kind list ->
  ?max_faults:int ->
  ?op_window:int ->
  ?max_runs:int ->
  ?budget:int ->
  ?schedulers:(string * (unit -> Adversary.t)) list ->
  ?meta:(string * string) list ->
  ?metrics:Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  ?jobs:int ->
  ?oversubscribe:bool ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  unit ->
  sweep_outcome
(** Sweep the product fault box until a monitor violation is found or
    the box (or [max_runs]) is exhausted. The first violating schedule
    is shrunk — fault points dropped, kinds weakened toward crash-stop,
    op-indices pulled toward 0, scheduler collapsed toward round-robin,
    each candidate validated by a re-run — and serialized as a replay
    artifact extended with [meta]. Defaults: [kinds = \[Crash_stop\]],
    [max_faults = 1], [op_window = 6], [max_runs = 5_000], per-run
    [budget = 20_000] steps, [schedulers = default_schedulers],
    [jobs = 1].

    {b Parallelism and determinism.} Each (scheduler, fault-set) cell is
    one independent run — fresh environment, programs, monitors and
    adversary — so runs execute concurrently on [jobs] domains and
    verdicts are read back in sweep order. The reported outcome, the
    found/shrunk schedules, the replay artifact and every [metrics]
    increment are identical for every value of [jobs]; shrinking always
    happens sequentially after the merge. Only [on_progress] timing
    differs (fired per run live when [jobs = 1], at merge otherwise) —
    heartbeat timing is not part of the determinism contract.

    [make] must build a fresh environment {e and fresh programs} per
    call (it is called once per run); [monitors] likewise builds fresh
    monitors.

    [metrics] tallies runs per verdict ([sweep.runs],
    [sweep.verdict.clean/deadlocked/violating]) and the shrinker's
    validation re-runs ([sweep.shrink_runs]); [on_progress ~runs] is
    the sweep's heartbeat, fired once per run so long sweeps are never
    silent. *)

val sweep_crashes :
  ?max_crashes:int ->
  ?op_window:int ->
  ?max_runs:int ->
  ?budget:int ->
  ?schedulers:(string * (unit -> Adversary.t)) list ->
  ?meta:(string * string) list ->
  ?metrics:Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  ?jobs:int ->
  ?oversubscribe:bool ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  unit ->
  sweep_outcome
(** {!sweep_faults} over the crash-stop tier only. *)

val shrink :
  ?budget:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  schedulers:(string * (unit -> Adversary.t)) list ->
  fault_schedule ->
  Monitor.violation ->
  fault_schedule * Monitor.violation * int
(** Delta-debug a known-violating fault schedule down to a minimal one;
    returns the shrunk schedule, the violation of the shrunk schedule's
    run, and the number of validation re-runs. The schedule's
    [scheduler] must name an entry of [schedulers] (resolved once up
    front, [Invalid_argument] otherwise); the violation passed in is
    the one its own run produced. *)

val replay :
  ?budget:int ->
  ?metrics:Metrics.t ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  Trace.decision list ->
  ('a Exec.result, Monitor.violation) Stdlib.result
(** Re-execute a recorded decision log ({!Adversary.of_replay}) under
    fresh monitors: [Error] iff the replayed run violates again, with
    the same step and message when the programs are unchanged.
    [metrics] is handed to {!Exec.run} — replaying one artifact twice
    into two fresh registries snapshots byte-identically. *)

(** {1 Sharding hooks}

    {!exhaustive} and {!sweep_faults} are thin compositions of three
    stages exposed here so other executors — in particular the
    multi-process coordinator in [Dist] — can run the middle stage
    elsewhere while sharing the first and last verbatim:

    + {b plan}: slice the work into indexed units (frontier tasks, or
      sweep cells). Planning is a deterministic function of the
      parameters alone — two processes given the same parameters build
      the same plan, so an index fully identifies a unit of work across
      a process boundary.
    + {b execute}: run units by index, anywhere, in any order, any
      number of times ({!task_outcome} and {!sweep_cell} are
      deterministic and re-runnable — the property a coordinator leans
      on when a worker dies mid-shard and the shard is reassigned).
    + {b merge}: fold outcomes strictly in index order. All cut-offs
      (budget, first counterexample) and all [metrics] accounting
      happen here, from plain-data summaries, so the merged outcome is
      a pure function of the plan — identical for in-process domains,
      worker processes, or any mix, at any concurrency. *)

type 'a plan
(** A sliced exploration: frontier tasks in DFS order plus the merge
    parameters. *)

val plan :
  ?max_crashes:int ->
  ?max_runs:int ->
  ?dedup:bool ->
  ?frontier_depth:int ->
  max_steps:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  property:('a run -> (unit, string) Stdlib.result) ->
  unit ->
  'a plan
(** Phase A of {!exhaustive}: walk the tree to [frontier_depth] and
    capture tasks. Same defaults as {!exhaustive}. *)

val plan_tasks : 'a plan -> int
(** Number of tasks in the plan. *)

type task_summary = {
  ts_leaf : bool;  (** resolved during planning, above the frontier *)
  ts_runs : int;
  ts_truncated : int;
  ts_cex : bool;  (** this task found the (DFS-first) counterexample *)
  ts_pruned_states : int;
  ts_pruned_commutes : int;
  ts_exhausted : bool;  (** hit the per-task run cap *)
}
(** Plain-data result of one task — everything the merge needs except
    the counterexample record itself, and exactly what [Dist] workers
    ship over the wire. *)

val task_outcome : 'a plan -> int -> task_summary * ('a run * string) option
(** Execute task [i]: its summary, plus the full counterexample when
    [ts_cex]. Deterministic and re-runnable — subtrees never consume
    their captured root state. *)

val merge_plan :
  ?metrics:Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  'a plan ->
  outcome_of:(int -> task_summary * ('a run * string) option) ->
  'a result
(** Fold task outcomes in task order into a {!result} — the exact merge
    {!exhaustive} performs. [outcome_of] is consulted once per task, in
    order, until a cut-off; if it returns [ts_cex = true] with no
    counterexample record (a summary from a remote worker), the merge
    recovers the record by re-running that task locally. *)

type 'a sweep_plan
(** A sliced fault sweep: the scheduler × fault-set grid in sweep order
    plus the merge parameters. *)

val sweep_plan :
  ?kinds:Adversary.fault_kind list ->
  ?max_faults:int ->
  ?op_window:int ->
  ?max_runs:int ->
  ?budget:int ->
  ?schedulers:(string * (unit -> Adversary.t)) list ->
  ?meta:(string * string) list ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  unit ->
  'a sweep_plan
(** Enumerate the sweep grid. Same defaults as {!sweep_faults}. *)

val sweep_cells : 'a sweep_plan -> int
(** Number of cells actually dispatched: the grid size capped at
    [max_runs]. *)

val sweep_cell : 'a sweep_plan -> int -> verdict
(** Run cell [i] (fresh environment, programs, monitors, adversary).
    Deterministic and re-runnable. *)

val sweep_cell_schedule : 'a sweep_plan -> int -> fault_schedule
(** The (scheduler, fault-set) pair of cell [i], for display. *)

val sweep_merge :
  ?metrics:Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  'a sweep_plan ->
  verdict_of:(int -> verdict) ->
  sweep_outcome
(** Fold per-cell verdicts in sweep order into a {!sweep_outcome} — the
    exact merge {!sweep_faults} performs, including shrinking the first
    violation and serializing its replay artifact (always locally,
    after the merge). A caller holding only a remote [Violating] tag
    must map it through {!sweep_cell} to recover the violation before
    handing it to [verdict_of]. *)
