(** Bounded exhaustive exploration of schedules (a small model checker).

    Random sweeps sample the schedule space; for the small agreement
    objects at the heart of the paper we can do better and enumerate
    {e every} interleaving (and every crash placement) up to a depth
    bound, so safety properties hold for all schedules within scope, not
    just the sampled ones.

    The explorer branches, at every step, over which live process
    executes its next operation and — if the crash budget allows — over
    crashing a process instead. Branches share nothing: the environment
    is deep-copied ({!Env.copy}) and program continuations are pure
    values.

    Requirement: programs must be {e closed} — all their state lives in
    the environment or in the continuation, never in captured mutable
    refs (all the object protocols of this repository qualify; the BG
    simulator processes do not, as their simulator state is in refs).

    Runs that exceed [max_steps] are reported with [Blocked] outcomes for
    the still-running processes; the property is consulted on them too,
    so use properties that are safety-only on truncated runs (e.g.
    "decided values agree", not "everyone decided") or inspect
    [truncated]. *)

type 'a run = {
  outcomes : 'a Exec.outcome array;
  crashed : int list;
  truncated : bool;  (** hit [max_steps] with processes still running *)
  schedule : string;  (** human-readable choice sequence *)
}

type 'a result = {
  explored : int;  (** complete runs checked *)
  counterexample : ('a run * string) option;  (** run + property failure *)
  exhausted_budget : bool;
      (** stopped early because [max_runs] was reached — coverage is then
          partial, like a random sweep *)
}

val exhaustive :
  ?max_crashes:int ->
  ?max_runs:int ->
  ?metrics:Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  max_steps:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  property:('a run -> (unit, string) Stdlib.result) ->
  unit ->
  'a result
(** [exhaustive ~max_steps ~make ~property ()] enumerates schedules
    depth-first. [make] builds a fresh environment and programs (called
    once; branching copies the environment). Defaults: [max_crashes = 0],
    [max_runs = 2_000_000].

    [metrics] counts completed runs ([explore.runs]), truncated runs
    ([explore.truncated]) and counterexamples found;
    [on_progress ~runs] fires after every completed run — throttle in
    the callback (e.g. [if runs mod 1000 = 0 then ...]). *)

(** {1 Systematic fault-box sweeping}

    Where {!exhaustive} branches over every interleaving (and so only
    scales to a dozen steps), the sweeper keeps complete runs cheap and
    enumerates the {e fault dimension} systematically: every set of at
    most [max_faults] victims × every fault kind in [kinds] × every
    per-victim op-index below [op_window] × every scheduler, each run
    under online monitors ({!Exec.run}'s [monitors]). This replaces
    sampling faults at random: within the swept box, absence of
    violations is a fact, not a statistic. *)

type fault_point = {
  victim : int;
  op : int;  (** local op-index, as [Adversary.Crash_at_local] trigger *)
  kind : Adversary.fault_kind;
}

type fault_schedule = { scheduler : string; faults : fault_point list }

val pp_fault_point : Format.formatter -> fault_point -> unit
val pp_fault_schedule : Format.formatter -> fault_schedule -> unit

type found = {
  fault : fault_schedule;  (** as first encountered by the sweep *)
  shrunk : fault_schedule;  (** after delta-debugging *)
  violation : Monitor.violation;
      (** the violation of the {e shrunk} schedule's run, trace included *)
  shrink_runs : int;  (** re-runs the shrinker spent *)
  replay : string;
      (** replay artifact of the shrunk run ({!Trace.to_replay}), with
          the violation recorded in its metadata *)
}

type sweep_outcome = {
  runs : int;
  found : found option;
  deadlock : fault_schedule option;
      (** first schedule, if any, under which {e every} process halted
          without deciding (all crashed or stuck, at least one stuck) —
          a typed finding of the omission tier, not a checker failure;
          the sweep continues past it *)
  exhausted : bool;  (** hit [max_runs] before covering the box *)
}

type verdict = Clean | Deadlocked | Violating of Monitor.violation

val run_fault :
  ?budget:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  scheduler:(unit -> Adversary.t) ->
  fault_point list ->
  verdict
(** One run under one fault schedule: the monitors' verdict, with
    "everybody halted without deciding" reported as [Deadlocked]. *)

val default_schedulers : nprocs:int -> (string * (unit -> Adversary.t)) list
(** Round-robin, both priority orders, and two seeded random policies —
    fresh adversaries per call, as scheduling state is per-run. *)

val sweep_faults :
  ?kinds:Adversary.fault_kind list ->
  ?max_faults:int ->
  ?op_window:int ->
  ?max_runs:int ->
  ?budget:int ->
  ?schedulers:(string * (unit -> Adversary.t)) list ->
  ?meta:(string * string) list ->
  ?metrics:Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  unit ->
  sweep_outcome
(** Sweep the product fault box until a monitor violation is found or
    the box (or [max_runs]) is exhausted. The first violating schedule
    is shrunk — fault points dropped, kinds weakened toward crash-stop,
    op-indices pulled toward 0, scheduler collapsed toward round-robin,
    each candidate validated by a re-run — and serialized as a replay
    artifact extended with [meta]. Defaults: [kinds = \[Crash_stop\]],
    [max_faults = 1], [op_window = 6], [max_runs = 5_000], per-run
    [budget = 20_000] steps, [schedulers = default_schedulers].

    [make] must build a fresh environment {e and fresh programs} per
    call (it is called once per run); [monitors] likewise builds fresh
    monitors.

    [metrics] tallies runs per verdict ([sweep.runs],
    [sweep.verdict.clean/deadlocked/violating]) and the shrinker's
    validation re-runs ([sweep.shrink_runs]); [on_progress ~runs] is
    the sweep's heartbeat, fired once per run so long sweeps are never
    silent. *)

val sweep_crashes :
  ?max_crashes:int ->
  ?op_window:int ->
  ?max_runs:int ->
  ?budget:int ->
  ?schedulers:(string * (unit -> Adversary.t)) list ->
  ?meta:(string * string) list ->
  ?metrics:Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  unit ->
  sweep_outcome
(** {!sweep_faults} over the crash-stop tier only. *)

val shrink :
  ?budget:int ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  schedulers:(string * (unit -> Adversary.t)) list ->
  fault_schedule ->
  Monitor.violation ->
  fault_schedule * Monitor.violation * int
(** Delta-debug a known-violating fault schedule (its [scheduler] must
    name an entry of [schedulers]; the violation is the one its own run
    produced) down to a minimal one; returns the shrunk schedule, the
    violation of the shrunk schedule's run, and the number of validation
    re-runs. *)

val replay :
  ?budget:int ->
  ?metrics:Metrics.t ->
  make:(unit -> Env.t * 'a Prog.t array) ->
  monitors:(unit -> 'a Monitor.t list) ->
  Trace.decision list ->
  ('a Exec.result, Monitor.violation) Stdlib.result
(** Re-execute a recorded decision log ({!Adversary.of_replay}) under
    fresh monitors: [Error] iff the replayed run violates again, with
    the same step and message when the programs are unchanged.
    [metrics] is handed to {!Exec.run} — replaying one artifact twice
    into two fresh registries snapshots byte-identically. *)
