(* Telemetry registry. Determinism rule: every value stored here derives
   from step counts, op counts and run outcomes — never from wall-clock
   time — unless the registry was created with [~wall_clock:true]. Replay
   comparisons ("two replays of one artifact snapshot identically") rely
   on this, so the wall section is opt-in and clearly separated. *)

type counter = int ref

type gauge = int ref

(* Log-bucketed histogram: bucket 0 holds values <= 0, bucket i >= 1
   holds [2^(i-1), 2^i). An OCaml int never exceeds 2^62 - 1, so 63
   buckets cover the whole range. *)
let nbuckets = 63

type histogram = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;
}

type t = {
  wall_clock : bool;
  created_at : float; (* Sys.time at creation; read only when wall_clock *)
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create ?(wall_clock = false) () =
  {
    wall_clock;
    created_at = (if wall_clock then Sys.time () else 0.);
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let wall_clock t = t.wall_clock

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.add t.counters name c;
      c

let incr ?(by = 1) c = c := !c + by

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> !c | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = ref 0 in
      Hashtbl.add t.gauges name g;
      g

let set g v = g := v

let set_max g v = if v > !g then g := v

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> !g | None -> 0

(* Optional-registry conveniences, for producers (the network service)
   whose instrumentation is a [?metrics] that is usually [None]. *)

let bump ?(by = 1) t name =
  match t with None -> () | Some t -> incr ~by (counter t name)

let record t name v =
  match t with None -> () | Some t -> set (gauge t name) v

let record_max t name v =
  match t with None -> () | Some t -> set_max (gauge t name) v

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec go v i = if v = 0 then i else go (v lsr 1) (i + 1) in
    let b = go v 0 in
    if b >= nbuckets then nbuckets - 1 else b
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          count = 0;
          sum = 0;
          min_v = max_int;
          max_v = min_int;
          buckets = Array.make nbuckets 0;
        }
      in
      Hashtbl.add t.histograms name h;
      h

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let sample t name v =
  match t with None -> () | Some t -> observe (histogram t name) v

let histogram_count t name =
  match Hashtbl.find_opt t.histograms name with Some h -> h.count | None -> 0

let histogram_sum t name =
  match Hashtbl.find_opt t.histograms name with Some h -> h.sum | None -> 0

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let sorted_assoc tbl value =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (k, v) -> (k, value v))

let counters t = sorted_assoc t.counters (fun c -> !c)
let gauges t = sorted_assoc t.gauges (fun g -> !g)

let histograms t =
  sorted_assoc t.histograms (fun h ->
      let buckets = ref [] in
      for i = nbuckets - 1 downto 0 do
        if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
      done;
      ( (h.count, h.sum),
        (if h.count = 0 then (0, 0) else (h.min_v, h.max_v)),
        !buckets ))

let hist_json ((count, sum), (min_v, max_v), buckets) =
  Json.Obj
    [
      ("count", Json.Int count);
      ("sum", Json.Int sum);
      ("min", Json.Int min_v);
      ("max", Json.Int max_v);
      ( "buckets",
        Json.Obj
          (List.map
             (fun (i, n) -> (string_of_int (bucket_lo i), Json.Int n))
             buckets) );
    ]

let snapshot t =
  let base =
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (gauges t)));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) (histograms t)) );
    ]
  in
  let wall =
    if t.wall_clock then
      [
        ( "wall",
          Json.Obj
            [
              ( "elapsed_ns",
                Json.Int
                  (int_of_float ((Sys.time () -. t.created_at) *. 1e9)) );
            ] );
      ]
    else []
  in
  Json.Obj (base @ wall)

let snapshot_string ?pretty t = Json.to_string ?pretty (snapshot t)

(* Decode a snapshot back into a registry, so a server can [merge]
   registries pushed over the wire by its workers. Inverse of
   [snapshot] up to the "wall" section (ignored: a reconstructed
   registry is wall-clock-free). Total on untrusted input. *)
let of_snapshot json =
  let ( let* ) = Result.bind in
  let obj_members name =
    match Json.member name json with
    | None -> Ok []
    | Some (Json.Obj kvs) -> Ok kvs
    | Some _ -> Error (Printf.sprintf "snapshot: %S is not an object" name)
  in
  let int_of name = function
    | Json.Int n -> Ok n
    | _ -> Error (Printf.sprintf "snapshot: %S is not an int" name)
  in
  let t = create () in
  let* cs = obj_members "counters" in
  let* () =
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        let* n = int_of k v in
        incr ~by:n (counter t k);
        Ok ())
      (Ok ()) cs
  in
  let* gs = obj_members "gauges" in
  let* () =
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        let* n = int_of k v in
        set (gauge t k) n;
        Ok ())
      (Ok ()) gs
  in
  let* hs = obj_members "histograms" in
  let* () =
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        let field name =
          match Json.member name v with
          | Some (Json.Int n) -> Ok n
          | _ ->
              Error
                (Printf.sprintf "snapshot: histogram %S lacks int %S" k name)
        in
        let* count = field "count" in
        let* sum = field "sum" in
        let* min_v = field "min" in
        let* max_v = field "max" in
        let* buckets =
          match Json.member "buckets" v with
          | Some (Json.Obj kvs) -> Ok kvs
          | _ ->
              Error (Printf.sprintf "snapshot: histogram %S lacks buckets" k)
        in
        let h = histogram t k in
        h.count <- count;
        h.sum <- sum;
        if count > 0 then begin
          h.min_v <- min_v;
          h.max_v <- max_v
        end;
        List.fold_left
          (fun acc (lo, n) ->
            let* () = acc in
            let* n = int_of lo n in
            match int_of_string_opt lo with
            | None ->
                Error (Printf.sprintf "snapshot: bad bucket key %S" lo)
            | Some lo ->
                let i = bucket_of lo in
                h.buckets.(i) <- h.buckets.(i) + n;
                Ok ())
          (Ok ()) buckets)
      (Ok ()) hs
  in
  Ok t

(* Fold a worker registry into an accumulator: counters and histogram
   mass add, gauges keep the max (every gauge producer in this codebase
   is high-watermark shaped). Merge order therefore cannot change the
   result, which is what makes parallel sweeps snapshot-identical to
   sequential ones. *)
let merge ~into src =
  Hashtbl.iter (fun name c -> incr ~by:!c (counter into name)) src.counters;
  Hashtbl.iter (fun name g -> set_max (gauge into name) !g) src.gauges;
  Hashtbl.iter
    (fun name h ->
      let dst = histogram into name in
      dst.count <- dst.count + h.count;
      dst.sum <- dst.sum + h.sum;
      if h.count > 0 then begin
        if h.min_v < dst.min_v then dst.min_v <- h.min_v;
        if h.max_v > dst.max_v then dst.max_v <- h.max_v
      end;
      Array.iteri
        (fun i n -> if n > 0 then dst.buckets.(i) <- dst.buckets.(i) + n)
        h.buckets)
    src.histograms

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms
