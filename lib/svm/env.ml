exception Violation of string

module Key = struct
  type t = Op.fam * Op.key

  let equal (f1, k1) (f2, k2) = String.equal f1 f2 && k1 = k2
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

type cons_state = {
  mutable decided : Univ.t option;
  mutable accessors : int list; (* distinct pids, unsorted *)
}

type kset_state = {
  k : int;
  ports : int option; (* (m, l)-set objects: at most m distinct accessors *)
  mutable values : Univ.t list; (* decided values, |values| <= k *)
  mutable accessors : int list;
}

type instance =
  | I_register of Univ.t option ref
  | I_snapshot of Univ.t option array
  | I_ts of bool ref
  | I_cons of cons_state
  | I_kset of kset_state
  | I_queue of Univ.t list ref (* front of queue = head of list *)

type oracle = pid:int -> query:int -> Univ.t

(* One logged mutation. Each entry carries the pre-mutation value and a
   direct pointer to the mutated cell, so undoing is a single store. *)
type undo =
  | U_reg of Univ.t option ref * Univ.t option
  | U_snap of Univ.t option array * int * Univ.t option
  | U_ts of bool ref * bool
  | U_cons_decided of cons_state * Univ.t option
  | U_cons_accessors of cons_state * int list
  | U_kset_values of kset_state * Univ.t list
  | U_kset_accessors of kset_state * int list
  | U_queue of Univ.t list ref * Univ.t list
  | U_create of Key.t (* instance lazily created; undo removes it *)
  | U_oracle of (Op.fam * int, int) Hashtbl.t * (Op.fam * int) * int option
  | U_oracle_tbl (* oracle_queries table materialised; undo drops it *)

type t = {
  nprocs : int;
  x : int;
  allow_kset : bool;
  allow_cas : bool;
  instances : instance Tbl.t;
  oracles : (Op.fam, oracle) Hashtbl.t;
  mutable oracle_queries : (Op.fam * int, int) Hashtbl.t option;
  mutable journaling : bool;
  mutable journal : undo list;
}

let create ~nprocs ~x ?(allow_kset = false) ?(allow_cas = false) () =
  if nprocs <= 0 then invalid_arg "Env.create: nprocs must be positive";
  if x <= 0 then invalid_arg "Env.create: x must be positive";
  {
    nprocs;
    x;
    allow_kset;
    allow_cas;
    instances = Tbl.create 64;
    oracles = Hashtbl.create 4;
    oracle_queries = None;
    journaling = false;
    journal = [];
  }

let nprocs t = t.nprocs
let x t = t.x

(* ------------------------------------------------------------------ *)
(* Undo journal                                                        *)
(* ------------------------------------------------------------------ *)

(* The journal is a cons-list that only ever grows at the head while
   journaling is on. A checkpoint is the list value at that moment, so
   rollback pops (undoing each mutation) until the current list is
   physically the checkpoint again — rolling back k steps costs O(k)
   instead of the O(store) deep copy it replaces. *)
type checkpoint = undo list

let log t u = if t.journaling then t.journal <- u :: t.journal

let enable_journal t =
  t.journaling <- true;
  t.journal <- []

let disable_journal t =
  t.journaling <- false;
  t.journal <- []

let checkpoint t =
  if not t.journaling then invalid_arg "Env.checkpoint: journaling is off";
  t.journal

let undo1 t = function
  | U_reg (r, v) -> r := v
  | U_snap (a, i, v) -> a.(i) <- v
  | U_ts (r, v) -> r := v
  | U_cons_decided (c, v) -> c.decided <- v
  | U_cons_accessors (c, l) -> c.accessors <- l
  | U_kset_values (s, l) -> s.values <- l
  | U_kset_accessors (s, l) -> s.accessors <- l
  | U_queue (q, l) -> q := l
  | U_create key -> Tbl.remove t.instances key
  | U_oracle (tbl, k, None) -> Hashtbl.remove tbl k
  | U_oracle (tbl, k, Some v) -> Hashtbl.replace tbl k v
  | U_oracle_tbl -> t.oracle_queries <- None

let rollback t (cp : checkpoint) =
  if not t.journaling then invalid_arg "Env.rollback: journaling is off";
  let rec go () =
    if t.journal != cp then
      match t.journal with
      | [] ->
          invalid_arg "Env.rollback: checkpoint is not a suffix of the journal"
      | u :: rest ->
          undo1 t u;
          t.journal <- rest;
          go ()
  in
  go ()

let with_rollback t f =
  let cp = checkpoint t in
  Fun.protect ~finally:(fun () -> rollback t cp) f

let violation fmt = Format.kasprintf (fun s -> raise (Violation s)) fmt

let kind_mismatch info =
  violation "object %a accessed with mismatched kind" Op.pp_info info

let find t (info : Op.info) (make : unit -> instance) =
  let key = (info.fam, info.key) in
  match Tbl.find_opt t.instances key with
  | Some i -> i
  | None ->
      let i = make () in
      Tbl.add t.instances key i;
      log t (U_create key);
      i

let register t info =
  match find t info (fun () -> I_register (ref None)) with
  | I_register r -> r
  | I_snapshot _ | I_ts _ | I_cons _ | I_kset _ | I_queue _ ->
      kind_mismatch info

let snapshot t info =
  match find t info (fun () -> I_snapshot (Array.make t.nprocs None)) with
  | I_snapshot a -> a
  | I_register _ | I_ts _ | I_cons _ | I_kset _ | I_queue _ ->
      kind_mismatch info

let ts t info =
  if t.x < 2 then
    violation "test&set %a requires consensus number >= 2 (model has x = %d)"
      Op.pp_info info t.x;
  match find t info (fun () -> I_ts (ref false)) with
  | I_ts r -> r
  | I_register _ | I_snapshot _ | I_cons _ | I_kset _ | I_queue _ ->
      kind_mismatch info

let cons t info =
  match find t info (fun () -> I_cons { decided = None; accessors = [] }) with
  | I_cons c -> c
  | I_register _ | I_snapshot _ | I_ts _ | I_kset _ | I_queue _ ->
      kind_mismatch info

(* Key convention: [l] or [l; m; ...] — head is the object's l (how many
   distinct values it may decide), the optional second component is its
   port count m. *)
let kset t (info : Op.info) =
  if not t.allow_kset then
    violation "k-set object %a is not allowed in this model" Op.pp_info info;
  let k, ports =
    match info.key with
    | k :: m :: _ -> (k, Some m)
    | [ k ] -> (k, None)
    | [] -> (1, None)
  in
  if k <= 0 then violation "k-set object %a has non-positive k" Op.pp_info info;
  (match ports with
  | Some m when m <= 0 ->
      violation "k-set object %a has non-positive port count" Op.pp_info info
  | Some _ | None -> ());
  match find t info (fun () -> I_kset { k; ports; values = []; accessors = [] }) with
  | I_kset s -> s
  | I_register _ | I_snapshot _ | I_ts _ | I_cons _ | I_queue _ ->
      kind_mismatch info

(* A queue has consensus number 2 (like test&set), so it is legal in any
   model with x >= 2 regardless of how many processes share it. *)
let queue t info =
  if t.x < 2 then
    violation "queue %a requires consensus number >= 2 (model has x = %d)"
      Op.pp_info info t.x;
  match find t info (fun () -> I_queue (ref [])) with
  | I_queue q -> q
  | I_register _ | I_snapshot _ | I_ts _ | I_cons _ | I_kset _ ->
      kind_mismatch info

let check_pid t pid =
  if pid < 0 || pid >= t.nprocs then
    violation "pid %d out of range [0, %d)" pid t.nprocs

let the_info op =
  match Op.info op with
  | Some i -> i
  | None -> assert false (* only called for non-Yield ops *)

let apply (type r) t ~pid (op : r Op.t) : r =
  check_pid t pid;
  match op with
  | Op.Yield -> ()
  | Op.Reg_read _ -> !(register t (the_info op))
  | Op.Reg_write (_, _, v) ->
      let r = register t (the_info op) in
      log t (U_reg (r, !r));
      r := Some v
  | Op.Snap_set (_, _, v) ->
      let a = snapshot t (the_info op) in
      log t (U_snap (a, pid, a.(pid)));
      a.(pid) <- Some v
  | Op.Snap_scan _ -> Array.copy (snapshot t (the_info op))
  | Op.Ts _ ->
      let r = ts t (the_info op) in
      if !r then false
      else begin
        log t (U_ts (r, false));
        r := true;
        true
      end
  | Op.Cons_propose (_, _, v) ->
      let info = the_info op in
      let c = cons t info in
      if not (List.mem pid c.accessors) then begin
        if List.length c.accessors >= t.x then
          violation
            "consensus %a: port discipline violated (pid %d is the %dth \
             distinct accessor but x = %d)"
            Op.pp_info info pid
            (List.length c.accessors + 1)
            t.x;
        log t (U_cons_accessors (c, c.accessors));
        c.accessors <- pid :: c.accessors
      end;
      (match c.decided with
      | Some d -> d
      | None ->
          log t (U_cons_decided (c, None));
          c.decided <- Some v;
          v)
  | Op.Kset_propose (_, _, v) ->
      let info = the_info op in
      let s = kset t info in
      (match s.ports with
      | None -> ()
      | Some m ->
          if not (List.mem pid s.accessors) then begin
            if List.length s.accessors >= m then
              violation
                "(m,l)-set object %a: port discipline violated (m = %d)"
                Op.pp_info info m;
            log t (U_kset_accessors (s, s.accessors));
            s.accessors <- pid :: s.accessors
          end);
      if List.length s.values < s.k then begin
        log t (U_kset_values (s, s.values));
        s.values <- v :: s.values;
        v
      end
      else begin
        match s.values with decided :: _ -> decided | [] -> assert false
      end
  | Op.Queue_enq (_, _, v) ->
      let q = queue t (the_info op) in
      log t (U_queue (q, !q));
      q := !q @ [ v ]
  | Op.Queue_deq _ -> (
      let q = queue t (the_info op) in
      match !q with
      | [] -> None
      | head :: rest ->
          log t (U_queue (q, !q));
          q := rest;
          Some head)
  | Op.Oracle_query (fam, _) -> (
      match Hashtbl.find_opt t.oracles fam with
      | None ->
          violation "oracle %s queried but no handler is installed" fam
      | Some f ->
          let counts =
            match t.oracle_queries with
            | Some c -> c
            | None ->
                let c = Hashtbl.create 8 in
                t.oracle_queries <- Some c;
                log t U_oracle_tbl;
                c
          in
          let k = (fam, pid) in
          let q = Hashtbl.find_opt counts k in
          log t (U_oracle (counts, k, q));
          Hashtbl.replace counts k (Option.value ~default:0 q + 1);
          f ~pid ~query:(Option.value ~default:0 q))
  | Op.Cas (_, _, expected, desired) ->
      if not t.allow_cas then
        violation
          "compare&swap %a: consensus number is infinite, not allowed in \
           this model (pass ~allow_cas:true to host it)"
          Op.pp_info (the_info op);
      let r = register t (the_info op) in
      if !r = expected then begin
        log t (U_reg (r, !r));
        r := Some desired;
        true
      end
      else false

let peek_register t fam key =
  match Tbl.find_opt t.instances (fam, key) with
  | Some (I_register r) -> !r
  | Some _ | None -> None

let peek_snapshot t fam key =
  match Tbl.find_opt t.instances (fam, key) with
  | Some (I_snapshot a) -> Some (Array.copy a)
  | Some _ | None -> None

let cons_accessors t fam key =
  match Tbl.find_opt t.instances (fam, key) with
  | Some (I_cons c) -> List.sort compare c.accessors
  | Some _ | None -> []

let peek_ts t fam key =
  match Tbl.find_opt t.instances (fam, key) with
  | Some (I_ts r) -> !r
  | Some _ | None -> false

let cons_decided t fam key =
  match Tbl.find_opt t.instances (fam, key) with
  | Some (I_cons c) -> c.decided <> None
  | Some _ | None -> false

let queue_length t fam key =
  match Tbl.find_opt t.instances (fam, key) with
  | Some (I_queue q) -> List.length !q
  | Some _ | None -> 0

let instance_count t = Tbl.length t.instances

let copy_instance = function
  | I_register r -> I_register (ref !r)
  | I_snapshot a -> I_snapshot (Array.copy a)
  | I_ts r -> I_ts (ref !r)
  | I_cons c -> I_cons { decided = c.decided; accessors = c.accessors }
  | I_kset s ->
      I_kset
        { k = s.k; ports = s.ports; values = s.values; accessors = s.accessors }
  | I_queue q -> I_queue (ref !q)

let copy t =
  let instances = Tbl.create (Tbl.length t.instances) in
  Tbl.iter (fun k i -> Tbl.add instances k (copy_instance i)) t.instances;
  let oracle_queries = Option.map Hashtbl.copy t.oracle_queries in
  (* The journal references the *original* store's cells; a copy starts
     with journaling off rather than share (or replay) those pointers. *)
  { t with instances; oracle_queries; journaling = false; journal = [] }

(* ------------------------------------------------------------------ *)
(* Canonical state (fingerprinting)                                     *)
(* ------------------------------------------------------------------ *)

(* A pure value determining the store's future behaviour. Two soundness
   rules make fingerprints insensitive to access history:

   - instances still in their default state are dropped, because a
     default instance is observationally identical to one not yet
     created (lazy creation order cannot split equivalent states);
   - accessor lists are sorted: the store only ever asks "is pid a
     member" / "how many", i.e. set semantics.

   k-set [values] keep their order: the head decides once the object is
   full, so order is real state. *)

type canonical_instance =
  | C_register of Univ.t
  | C_snapshot of Univ.t option list
  | C_ts
  | C_cons of Univ.t option * int list
  | C_kset of Univ.t list * int list
  | C_queue of Univ.t list

type canonical = {
  c_instances : ((Op.fam * Op.key) * canonical_instance) list;
  c_oracle_queries : ((Op.fam * int) * int) list;
}

let canon_instance = function
  | I_register { contents = None } -> None
  | I_register { contents = Some v } -> Some (C_register v)
  | I_snapshot a ->
      if Array.for_all Option.is_none a then None
      else Some (C_snapshot (Array.to_list a))
  | I_ts { contents = false } -> None
  | I_ts { contents = true } -> Some C_ts
  | I_cons { decided = None; accessors = [] } -> None
  | I_cons { decided; accessors } ->
      Some (C_cons (decided, List.sort compare accessors))
  | I_kset { values = []; accessors = []; _ } -> None
  | I_kset { values; accessors; _ } ->
      Some (C_kset (values, List.sort compare accessors))
  | I_queue { contents = [] } -> None
  | I_queue { contents = vs } -> Some (C_queue vs)

let canonical t =
  let c_instances =
    Tbl.fold
      (fun key i acc ->
        match canon_instance i with None -> acc | Some c -> (key, c) :: acc)
      t.instances []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let c_oracle_queries =
    match t.oracle_queries with
    | None -> []
    | Some tbl ->
        Hashtbl.fold
          (fun k v acc -> if v = 0 then acc else (k, v) :: acc)
          tbl []
        |> List.sort compare
  in
  { c_instances; c_oracle_queries }

let state_hash t = Hashtbl.hash_param 1000 1000 (canonical t)
let observationally_equal a b = canonical a = canonical b

type instance_sig = canonical_instance

let instance_sig t fam key =
  match Tbl.find_opt t.instances (fam, key) with
  | None -> None
  | Some i -> canon_instance i

let canonical_parts c = (c.c_instances, c.c_oracle_queries)

let prewarm t infos =
  List.iter
    (fun (info : Op.info) ->
      match info.kind with
      | Op.Register -> ignore (register t info)
      | Op.Snapshot -> ignore (snapshot t info)
      | Op.Test_and_set -> ignore (ts t info)
      | Op.Consensus -> ignore (cons t info)
      | Op.Kset -> ignore (kset t info)
      | Op.Queue -> ignore (queue t info)
      | Op.Oracle -> ())
    infos

let set_oracle t fam f = Hashtbl.replace t.oracles fam f

let preload_queue t fam key vs =
  let info = { Op.kind = Op.Queue; fam; key } in
  if t.x < 2 then violation "queue %a requires x >= 2" Op.pp_info info;
  match Tbl.find_opt t.instances (fam, key) with
  | Some _ -> invalid_arg "Env.preload_queue: instance already exists"
  | None -> Tbl.add t.instances (fam, key) (I_queue (ref vs))
