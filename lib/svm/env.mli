(** The shared-object store of one run.

    Instances are created lazily on first access, keyed by (family, key).
    The environment enforces the communication model of
    [ASM(nprocs, t, x)]:

    - registers and snapshot objects are always allowed (consensus
      number 1);
    - each snapshot component is writable only by the process with the
      same index (the single-writer snapshot memory of the paper);
    - test&set requires [x >= 2] (its consensus number is 2);
    - each consensus instance may be accessed by at most [x] distinct
      processes (port discipline, checked dynamically);
    - k-set objects are refused unless [allow_kset] (they are not part of
      the base models; key convention: the head of the key is [k]);
    - queues (consensus number 2) require [x >= 2], like test&set;
    - compare&swap (consensus number infinity) is refused unless
      [allow_cas] — no finite-x model can host it.

    The crash bound [t] is the adversary's side of the model and is
    enforced by {!Exec}, not here. *)

type t

exception Violation of string
(** A program broke the model (port discipline, writer discipline, ...).
    This is a bug in the algorithm under test, never normal behaviour. *)

val create :
  nprocs:int -> x:int -> ?allow_kset:bool -> ?allow_cas:bool -> unit -> t

val nprocs : t -> int
val x : t -> int

val apply : t -> pid:int -> 'r Op.t -> 'r
(** [apply t ~pid op] atomically executes [op] on behalf of process
    [pid]. Called by the scheduler, one call per step. *)

(** {1 Inspection (for tests and experiments; not available to programs)} *)

val peek_register : t -> Op.fam -> Op.key -> Univ.t option
val peek_snapshot : t -> Op.fam -> Op.key -> Univ.t option array option
val cons_accessors : t -> Op.fam -> Op.key -> int list
(** Distinct pids that accessed the given consensus instance (sorted). *)

val peek_ts : t -> Op.fam -> Op.key -> bool
(** Whether the test&set instance has been won ([false] if untouched).
    Once set, a [Ts] operation is a pure read — the explorer's refined
    commutation rules lean on this. *)

val cons_decided : t -> Op.fam -> Op.key -> bool
(** Whether the consensus instance has decided ([false] if untouched). *)

val queue_length : t -> Op.fam -> Op.key -> int
(** Current length of the queue instance ([0] if untouched). *)

val instance_count : t -> int

val copy : t -> t
(** A deep copy of the whole object store. Journaling state is not
    copied: the copy starts with journaling off. *)

(** {1 Undo journal}

    Copy-free backtracking for the exhaustive explorer: with journaling
    on, every mutation performed by {!apply} (including lazy instance
    creation) is logged, and {!rollback} undoes back to a checkpoint in
    time proportional to the steps taken since — not to the size of the
    store. *)

type checkpoint

val enable_journal : t -> unit
(** Start journaling mutations (clears any previous journal). *)

val disable_journal : t -> unit
(** Stop journaling and drop the journal. Outstanding checkpoints
    become invalid. *)

val checkpoint : t -> checkpoint
(** The current journal position. Raises [Invalid_argument] if
    journaling is off. *)

val rollback : t -> checkpoint -> unit
(** Undo every mutation logged since the checkpoint was taken.
    Checkpoints must be rolled back innermost-first; rolling back to a
    checkpoint invalidates all checkpoints taken after it. *)

val with_rollback : t -> (unit -> 'r) -> 'r
(** Checkpoint, run, roll back — on normal return {e and} on exception.
    The arena-reuse idiom: one journaled environment serves many runs,
    each leaving it exactly as it found it, with no per-run copy.
    Raises [Invalid_argument] if journaling is off. *)

(** {1 Canonical state (fingerprinting)}

    A pure value capturing everything that determines the store's
    future behaviour. Instances still in their default state are
    dropped (a default instance is observationally identical to one not
    yet created, so lazy creation order cannot split equivalent
    states), and accessor sets are sorted. Supports polymorphic
    equality and [Hashtbl.hash]. *)

type canonical

val canonical : t -> canonical

type instance_sig
(** The canonical form of one instance — a pure value supporting
    polymorphic equality, comparison and [Hashtbl.hash]. *)

val instance_sig : t -> Op.fam -> Op.key -> instance_sig option
(** The canonical form of the given instance right now, [None] if the
    instance does not exist or is still in its default state (the same
    dropping rule {!canonical} applies). The explorer uses this to
    maintain a store fingerprint incrementally: each operation touches
    exactly one instance, so re-reading that one signature after a step
    is enough to update a whole-store signature. *)

val canonical_parts :
  canonical ->
  ((Op.fam * Op.key) * instance_sig) list * ((Op.fam * int) * int) list
(** The two sorted association lists a {!canonical} consists of:
    non-default instance signatures keyed by (family, key), and nonzero
    oracle query counts keyed by (family, pid). Both sorted by
    polymorphic compare on the key. *)

val state_hash : t -> int
(** [Hashtbl.hash] of {!canonical}, with depth limits large enough to
    cover the whole store. Stable within a process run. *)

val observationally_equal : t -> t -> bool
(** Equality of {!canonical} forms. *)

val prewarm : t -> Op.info list -> unit
(** Eagerly create the instances the given ops would touch. Not needed
    for fingerprint stability (default-state instances are dropped from
    {!canonical}), but lets a scenario pin its object set up front.
    Oracle infos are ignored. *)

val set_oracle : t -> Op.fam -> (pid:int -> query:int -> Univ.t) -> unit
(** Install a failure-detector oracle: [Oracle_query] operations on
    [fam] call the handler with the querying process and its per-process
    query index (so "eventually stable" oracles are expressed as
    functions of the query count). Oracles model Section 1.3's failure
    detectors; they are environment-level, not shared objects. *)

val preload_queue : t -> Op.fam -> Op.key -> Univ.t list -> unit
(** Create a queue instance with initial content (several classic
    consensus-from-queue protocols need a pre-filled queue). Must be
    called before any operation touches the instance. *)
