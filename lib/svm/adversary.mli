(** Adversaries: scheduling policies plus crash plans.

    The adversary chooses which runnable process takes the next atomic
    step, and decides when processes crash. All built-in policies are fair
    (every runnable process is scheduled infinitely often), as required
    for the liveness claims of the paper; crashes are how the adversary
    exercises its power. *)

type t

val name : t -> string

val pick : t -> runnable:int list -> global_step:int -> int
(** [pick t ~runnable ~global_step] chooses the pid to step next.
    [runnable] is non-empty and sorted. *)

val crash_now :
  t -> pid:int -> local_step:int -> global_step:int -> next:Op.info option -> bool
(** Asked just before [pid] would execute its next operation; [true]
    crashes the process instead (the operation does not execute). *)

(** {1 Scheduling policies} *)

val round_robin : unit -> t
(** Cycles through runnable pids in index order. *)

val random : seed:int -> t
(** Uniform choice among runnable pids, deterministic from [seed]. *)

val priority : int list -> t
(** Prefers pids earlier in the list; unlisted pids come after, in index
    order. Runs the favourite until it finishes — fair only because
    processes terminate or crash; use with crash plans to build targeted
    worst cases. *)

val biased : seed:int -> favourite:int -> weight:int -> t
(** Random, but the favourite is [weight] times more likely. *)

val of_replay : ?fallback:t -> Trace.decision list -> t
(** Re-drive a recorded run: each scheduler iteration consumes one
    decision — schedule the recorded pid, or crash it. Replaying the
    decision log of a run against the same programs and a fresh
    environment reproduces that run bit-for-bit ({!Trace.decisions}).
    When the log runs out, or a recorded pid is no longer runnable (the
    programs changed), control falls back to [fallback] (default
    {!round_robin}) — crash decisions are consumed but not re-applied in
    that divergent regime. *)

(** {1 Crash plans} *)

type crash_spec =
  | Crash_at_local of { pid : int; step : int }
      (** Crash [pid] just before its [step]-th operation (0-based). *)
  | Crash_at_global of { pid : int; step : int }
      (** Crash [pid] at the first opportunity once the global step
          counter reaches [step]. *)
  | Crash_before_op of { pid : int; nth : int; matches : Op.info -> bool }
      (** Crash [pid] just before the [nth] (0-based) of its operations
          matching [matches]. *)

val with_crashes : t -> crash_spec list -> t
(** Layer a crash plan over a policy. Each spec fires at most once. *)

val random_crashes :
  ?within:int -> seed:int -> max_crashes:int -> nprocs:int -> t -> t
(** Layer a random crash plan: up to [max_crashes] distinct victims, each
    crashing at a local step drawn uniformly from [\[0, within)] (default
    300; pick [within] near the run's expected per-process step count so
    crashes actually land), deterministic from [seed]. *)

val crash_count : t -> int
(** Crashes this adversary has inflicted so far in the current run. *)
