(** Adversaries: scheduling policies plus fault plans.

    The adversary chooses which runnable process takes the next atomic
    step, and decides when and {e how} processes fail. All built-in
    policies are fair (every runnable process is scheduled infinitely
    often), as required for the liveness claims of the paper; faults are
    how the adversary exercises its power.

    The fault model is a three-tier taxonomy on top of crash-stop:

    - {e responsive omission} ([Omission]): the designated operation
      hangs forever — the process is stuck, not crashed. This is exactly
      the adversary the paper's [cancel]/arbiter machinery exists to
      survive.
    - {e crash-recovery} ([Crash_recovery]): the process restarts at a
      step boundary, losing its local program state but not shared
      memory, and re-runs its program from the top.
    - {e Byzantine value faults} ([Byzantine]): from the trigger on,
      every value-carrying operation of the process (snapshot/register
      writes, consensus/k-set proposals, enqueues) carries an
      adversarially chosen value instead. The corrupt value is derived
      deterministically from the schedule position ({!byz_value}), so
      Byzantine runs replay bit-for-bit like every other run. *)

type t

exception Deadlock
(** Raised by {!pick} when no process is runnable — every process is
    finished, stuck, or crashed. Callers that sweep fault boxes should
    treat this as a finding ("the whole system is stuck"), not a checker
    crash. *)

val name : t -> string

val pick : t -> runnable:int list -> global_step:int -> int
(** [pick t ~runnable ~global_step] chooses the pid to step next.
    [runnable] is sorted; raises {!Deadlock} when it is empty. *)

(** {1 Fault kinds} *)

type fault_kind =
  | Crash_stop  (** the process halts; classic BG fault *)
  | Omission  (** the next operation hangs forever; the process is stuck *)
  | Crash_recovery
      (** local state lost at a step boundary; re-runs from the top *)
  | Byzantine  (** value-carrying operations corrupted from here on *)

val fault_kind_name : fault_kind -> string
val fault_kind_of_name : string -> fault_kind option
val pp_fault_kind : Format.formatter -> fault_kind -> unit

val fault_now :
  t ->
  pid:int ->
  local_step:int ->
  global_step:int ->
  next:Op.info option ->
  fault_kind option
(** Asked just before [pid] would execute its next operation: [None]
    executes it normally, [Some kind] inflicts that fault instead (for
    [Byzantine], the operation executes with a corrupted value). Asked
    exactly once per scheduler iteration. *)

val crash_now :
  t -> pid:int -> local_step:int -> global_step:int -> next:Op.info option -> bool
(** [crash_now] is [fault_now = Some Crash_stop]; kept as the crash-stop
    view of the fault query (consumes the same per-iteration budget —
    ask one of the two, not both). *)

val byz_value : pid:int -> global_step:int -> Univ.t
(** The corrupt value a Byzantine [pid] writes at [global_step]:
    deterministic in the schedule position, and far outside the input
    ranges used by the scenarios (an int ≥ 10^9). *)

(** {1 Scheduling policies} *)

val round_robin : unit -> t
(** Cycles through runnable pids in index order. *)

val random : seed:int -> t
(** Uniform choice among runnable pids, deterministic from [seed]. *)

val priority : int list -> t
(** Prefers pids earlier in the list; unlisted pids come after, in index
    order. Runs the favourite until it finishes — fair only because
    processes terminate or crash; use with fault plans to build targeted
    worst cases. *)

val biased : seed:int -> favourite:int -> weight:int -> t
(** Random, but the favourite is [weight] times more likely. *)

val of_replay : ?fallback:t -> Trace.decision list -> t
(** Re-drive a recorded run: each scheduler iteration consumes one
    decision — schedule the recorded pid, and re-inflict the recorded
    fault ([Crash]/[Omit]/[Restart]/[Byz]), if any. Replaying the
    decision log of a run against the same programs and a fresh
    environment reproduces that run bit-for-bit ({!Trace.decisions}) —
    Byzantine corrupt values included, as they derive from the schedule
    position. When the log runs out, or a recorded pid is no longer
    runnable (the programs changed), control falls back to [fallback]
    (default {!round_robin}) — fault decisions are consumed but not
    re-applied in that divergent regime. *)

(** {1 Fault plans} *)

type crash_spec =
  | Crash_at_local of { pid : int; step : int }
      (** Fire just before [pid]'s [step]-th operation (0-based). *)
  | Crash_at_global of { pid : int; step : int }
      (** Fire at [pid]'s first opportunity once the global step counter
          reaches [step]. *)
  | Crash_before_op of { pid : int; nth : int; matches : Op.info -> bool }
      (** Fire just before the [nth] (0-based) of [pid]'s operations
          matching [matches]. *)

type fault_spec = { kind : fault_kind; trigger : crash_spec }
(** One fault of [kind], fired by [trigger]. A [Byzantine] spec latches:
    once triggered, the pid stays Byzantine for the rest of the run. *)

val with_faults : t -> fault_spec list -> t
(** Layer a fault plan over a policy. Each spec fires at most once; when
    several fire on the same query the most severe kind wins
    (crash > omission > recovery > Byzantine). *)

val with_crashes : t -> crash_spec list -> t
(** [with_faults] with every spec at [Crash_stop]. *)

val random_crashes :
  ?within:int -> seed:int -> max_crashes:int -> nprocs:int -> t -> t
(** Layer a random crash plan: up to [max_crashes] distinct victims, each
    crashing at a local step drawn uniformly from [\[0, within)] (default
    300; pick [within] near the run's expected per-process step count so
    crashes actually land), deterministic from [seed]. *)

val random_fault_plan :
  ?within:int ->
  seed:int ->
  max_faults:int ->
  kinds:fault_kind list ->
  nprocs:int ->
  unit ->
  (int * int * fault_kind) list
(** The raw random plan behind {!random_faults}: up to [max_faults]
    distinct victims as [(pid, local step, kind)] triples, steps drawn
    uniformly from [\[0, within)] (default 300), kinds uniformly from
    [kinds], deterministic from [seed]. Exposed so randomized drivers
    (the soak runner) can both inflict a plan and hand the {e same}
    plan to the shrinker. *)

val random_faults :
  ?within:int ->
  seed:int ->
  max_faults:int ->
  kinds:fault_kind list ->
  nprocs:int ->
  t ->
  t
(** {!with_faults} over {!random_fault_plan}, every trigger a
    [Crash_at_local]. [random_crashes] is the [kinds = \[Crash_stop\]]
    special case (and draws the identical plan for a given seed). *)

val crash_count : t -> int
(** Crash-stop faults this adversary has inflicted so far in the current
    run (other fault kinds are not counted here). *)
