(** Trace timelines: convert a recorded {!Trace.t} into loadable
    profiles — Chrome [trace_event] JSON (one track per process, one
    span per operation, instant markers for faults), plain text, or CSV
    — plus a causality pass deriving happens-before order and the run's
    critical path.

    The happens-before relation is the union of program order (spans of
    one pid) and per-object access order (operations are atomic, so the
    trace's linearization order per instance is exactly the order they
    took effect). With every span costing one step, the longest chain is
    the minimum number of {e sequential} steps any schedule of this run
    must spend — the measurable face of the step-complexity claims. *)

type span = {
  step : int;  (** global step (one scheduler iteration = 1 time unit) *)
  pid : int;
  info : Op.info;
  corrupted : bool;  (** executed under a Byzantine value fault *)
}

type fault = Crash | Omit | Restart

type instant = { step : int; pid : int; fault : fault }

type t = {
  spans : span list;  (** in step order *)
  instants : instant list;  (** fault markers, in step order *)
  nprocs : int;
  dropped : int;  (** events lost to trace truncation ({!Trace.dropped}) *)
  decisions : int;
}

val of_trace : ?nprocs:int -> Trace.t -> t
(** Build a timeline from a recorded trace. Fault kinds come from the
    decision log (never truncated); [nprocs] overrides the inferred
    process count (max pid + 1) when the run has silent processes. *)

val pids : t -> int list
(** Distinct pids with at least one span or instant, sorted. *)

val fault_name : fault -> string
val instance_name : Op.info -> string

(** {1 Causality} *)

type hot_instance = {
  instance : string;
  accesses : int;
  distinct_pids : int;  (** contention: how many processes touched it *)
  on_critical_path : int;
      (** spans whose happens-before depth ran through this instance *)
}

type causality = {
  span_count : int;
  critical_path : int;  (** longest happens-before chain, in steps *)
  parallelism : float;  (** span_count / critical_path *)
  hot : hot_instance list;  (** by accesses, descending; bounded *)
}

val causality : ?top:int -> t -> causality
(** [top] bounds the hottest-instances list (default 8). *)

(** {1 Exports} *)

val to_chrome : ?meta:(string * string) list -> t -> Json.t
(** Chrome [trace_event] JSON (load in chrome://tracing or Perfetto):
    thread-name metadata for all [nprocs] tracks, one ["X"] complete
    event per span ([ts] = step, [dur] = 1), one ["i"] instant per
    fault. [otherData] carries span/instant/dropped counts, the
    critical-path length and any extra [meta] strings — a truncated
    trace is thereby {e annotated}, never silently completed. *)

val to_text : t -> string
(** Human timeline plus the causality summary and hottest-instances
    table; truncation is flagged in the header. *)

val to_csv : t -> string
(** [step,pid,event,kind,instance,corrupted] rows; truncation becomes a
    leading comment line. *)

(** {1 Cross-process spans}

    Every process of a fleet run (queue, workers, submitting client)
    can stamp wall-clock spans tagged with a job fingerprint digest and
    shard index; {!merge_processes} fuses any number of such logs into
    one Chrome trace with one lane per OS process. Correlation is by
    (job, shard): the life of a shard — admit → dispatch → receive →
    execute → reply → merge — chains across lanes, which is what lets
    the critical path extend across the wire. *)

type pspan = {
  ps_proc : string;  (** OS-process label, e.g. ["serve"], ["worker-1"] *)
  ps_phase : string;  (** [admit|dispatch|receive|execute|reply|merge] *)
  ps_job : string;  (** job fingerprint digest *)
  ps_shard : int;  (** shard index; [-1] for job-level spans *)
  ps_ts : int;  (** wall-clock µs *)
  ps_dur : int;  (** µs; clamped to at least 1 on export *)
}

val pspan_to_json : pspan -> Json.t
val pspan_of_json : Json.t -> (pspan, string) result

val merge_processes : pspan list -> Json.t
(** A Chrome trace over all given spans: one [tid] lane per distinct
    [ps_proc] (in first-appearance order), timestamps normalized to the
    earliest span, and [otherData.critical_path] the heaviest
    happens-before chain in µs (lane order ∪ shard-correlation order).
    The output passes {!validate_chrome}: every declared lane has a
    span, and there are no fault instants. *)

(** {1 Validation} *)

type chrome_summary = {
  events : int;
  spans_per_pid : (int * int) list;
  instants : int;
  recorded_faults : int;
  dropped : int;
}

val validate_chrome : Json.t -> (chrome_summary, string) result
(** The CI-side check of a Chrome export: structurally well-formed
    events, instant count matching [otherData], and — on untruncated
    traces — at least one span for every live (never-faulted) pid. *)
