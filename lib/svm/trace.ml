type event = { step : int; pid : int; info : Op.info option }

type decision = Sched of int | Crash of int

type t = {
  limit : int;
  mutable rev_events : event list;
  mutable count : int;
  mutable dropped : int;
  mutable rev_decisions : decision list;
  mutable decision_count : int;
}

let create ?(limit = 100_000) () =
  {
    limit;
    rev_events = [];
    count = 0;
    dropped = 0;
    rev_decisions = [];
    decision_count = 0;
  }

let add t e =
  if t.count >= t.limit then begin
    (* Drop the oldest half in one amortized pass. *)
    let keep = t.limit / 2 in
    let kept = ref [] in
    let n = ref 0 in
    List.iter
      (fun e ->
        if !n < keep then begin
          kept := e :: !kept;
          incr n
        end)
      t.rev_events;
    t.dropped <- t.dropped + (t.count - !n);
    t.rev_events <- List.rev !kept;
    t.count <- !n
  end;
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events
let dropped t = t.dropped
let length t = t.count

let pp_event ppf { step; pid; info } =
  match info with
  | Some i -> Format.fprintf ppf "%6d  q%-3d %a" step pid Op.pp_info i
  | None -> Format.fprintf ppf "%6d  q%-3d (yield)" step pid

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)

(* ------------------------------------------------------------------ *)
(* Decisions and replay artifacts                                       *)
(* ------------------------------------------------------------------ *)

let record_decision t d =
  t.rev_decisions <- d :: t.rev_decisions;
  t.decision_count <- t.decision_count + 1

let decisions t = List.rev t.rev_decisions
let decision_count t = t.decision_count

let pp_decision ppf = function
  | Sched p -> Format.fprintf ppf "%d" p
  | Crash p -> Format.fprintf ppf "X%d" p

let decision_token = function
  | Sched p -> string_of_int p
  | Crash p -> "X" ^ string_of_int p

let decision_of_token s =
  let num s =
    match int_of_string_opt s with
    | Some p when p >= 0 -> Ok p
    | Some _ | None -> Error (Printf.sprintf "bad pid %S" s)
  in
  if String.length s > 1 && s.[0] = 'X' then
    Result.map (fun p -> Crash p)
      (num (String.sub s 1 (String.length s - 1)))
  else Result.map (fun p -> Sched p) (num s)

(* Artifact format (line-oriented, trailing newline):

     asmsim-replay 1
     meta <key> <value>          (zero or more)
     schedule <tok> <tok> ...    (zero or more lines, in order)

   Tokens are [pid] for a scheduling decision and [Xpid] for a crash.
   Schedule lines are wrapped for readability; concatenation order is
   the decision order. *)

let magic = "asmsim-replay 1"

let meta_key_ok k =
  k <> ""
  && String.for_all
       (fun c -> not (c = ' ' || c = '\t' || c = '\n' || c = '=' ))
       k

let to_replay ?(meta = []) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun (k, v) ->
      if not (meta_key_ok k) then
        invalid_arg (Printf.sprintf "Trace.to_replay: bad meta key %S" k);
      if String.contains v '\n' then
        invalid_arg (Printf.sprintf "Trace.to_replay: newline in meta %S" k);
      Buffer.add_string buf (Printf.sprintf "meta %s %s\n" k v))
    meta;
  let on_line = ref 0 in
  List.iter
    (fun d ->
      if !on_line = 0 then Buffer.add_string buf "schedule"
      ;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (decision_token d);
      incr on_line;
      if !on_line >= 25 then begin
        Buffer.add_char buf '\n';
        on_line := 0
      end)
    (decisions t);
  if !on_line > 0 then Buffer.add_char buf '\n';
  Buffer.contents buf

let parse_replay s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty replay artifact"
  | first :: rest ->
      if String.trim first <> magic then
        Error (Printf.sprintf "not a replay artifact (expected %S)" magic)
      else
        let rec go meta rev_ds = function
          | [] -> Ok (List.rev meta, List.rev rev_ds)
          | line :: rest -> (
              match String.split_on_char ' ' line with
              | "meta" :: k :: vs -> go ((k, String.concat " " vs) :: meta) rev_ds rest
              | "schedule" :: toks ->
                  let rec add rev_ds = function
                    | [] -> Ok rev_ds
                    | "" :: toks -> add rev_ds toks
                    | tok :: toks -> (
                        match decision_of_token tok with
                        | Ok d -> add (d :: rev_ds) toks
                        | Error e -> Error e)
                  in
                  (match add rev_ds toks with
                  | Ok rev_ds -> go meta rev_ds rest
                  | Error e -> Error e)
              | _ -> Error (Printf.sprintf "unrecognized line %S" line))
        in
        go [] [] rest
