type event = { step : int; pid : int; info : Op.info option }

type decision =
  | Sched of int
  | Crash of int
  | Omit of int
  | Restart of int
  | Byz of int

type t = {
  limit : int;
  mutable rev_events : event list;
  mutable count : int;
  mutable dropped : int;
  mutable rev_decisions : decision list;
  mutable decision_count : int;
}

let create ?(limit = 100_000) () =
  {
    limit;
    rev_events = [];
    count = 0;
    dropped = 0;
    rev_decisions = [];
    decision_count = 0;
  }

let add t e =
  if t.count >= t.limit then begin
    (* Drop the oldest half in one amortized pass. *)
    let keep = t.limit / 2 in
    let kept = ref [] in
    let n = ref 0 in
    List.iter
      (fun e ->
        if !n < keep then begin
          kept := e :: !kept;
          incr n
        end)
      t.rev_events;
    t.dropped <- t.dropped + (t.count - !n);
    t.rev_events <- List.rev !kept;
    t.count <- !n
  end;
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events
let dropped t = t.dropped
let length t = t.count

let pp_event ppf { step; pid; info } =
  match info with
  | Some i -> Format.fprintf ppf "%6d  q%-3d %a" step pid Op.pp_info i
  | None -> Format.fprintf ppf "%6d  q%-3d (yield)" step pid

let pp ppf t =
  (* Truncation must be visible: a trace that silently renders only its
     tail reads as a complete (and wrong) timeline. *)
  if t.dropped > 0 then
    Format.fprintf ppf
      "[trace truncated: %d earlier events dropped, %d kept]@." t.dropped
      t.count;
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)

(* ------------------------------------------------------------------ *)
(* Decisions and replay artifacts                                       *)
(* ------------------------------------------------------------------ *)

let record_decision t d =
  t.rev_decisions <- d :: t.rev_decisions;
  t.decision_count <- t.decision_count + 1

let decisions t = List.rev t.rev_decisions
let decision_count t = t.decision_count

let decision_token = function
  | Sched p -> string_of_int p
  | Crash p -> "X" ^ string_of_int p
  | Omit p -> "H" ^ string_of_int p
  | Restart p -> "R" ^ string_of_int p
  | Byz p -> "B" ^ string_of_int p

let pp_decision ppf d = Format.pp_print_string ppf (decision_token d)

let decision_of_token s =
  let num s =
    match int_of_string_opt s with
    | Some p when p >= 0 -> Ok p
    | Some _ | None -> Error (Printf.sprintf "bad pid %S" s)
  in
  let tagged mk = Result.map mk (num (String.sub s 1 (String.length s - 1))) in
  if String.length s > 1 then
    match s.[0] with
    | 'X' -> tagged (fun p -> Crash p)
    | 'H' -> tagged (fun p -> Omit p)
    | 'R' -> tagged (fun p -> Restart p)
    | 'B' -> tagged (fun p -> Byz p)
    | _ -> Result.map (fun p -> Sched p) (num s)
  else Result.map (fun p -> Sched p) (num s)

(* Artifact format (line-oriented, trailing newline):

     asmsim-replay 2
     meta <key> <value>          (zero or more)
     schedule <tok> <tok> ...    (zero or more lines, in order)
     end <count>

   Tokens are [pid] for a scheduling decision and [Xpid] / [Hpid] /
   [Rpid] / [Bpid] for a crash / omission hang / restart / Byzantine
   step of that pid. Schedule lines are wrapped for readability;
   concatenation order is the decision order. The [end] trailer carries
   the decision count so a truncated artifact is detected rather than
   silently replayed short. Version-1 artifacts (crash-stop only, no
   trailer) are still accepted. *)

let magic = "asmsim-replay 2"
let magic_v1 = "asmsim-replay 1"

let meta_key_ok k =
  k <> ""
  && String.for_all
       (fun c -> not (c = ' ' || c = '\t' || c = '\n' || c = '=' ))
       k

let to_replay ?(meta = []) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun (k, v) ->
      if not (meta_key_ok k) then
        invalid_arg (Printf.sprintf "Trace.to_replay: bad meta key %S" k);
      if String.contains v '\n' then
        invalid_arg (Printf.sprintf "Trace.to_replay: newline in meta %S" k);
      Buffer.add_string buf (Printf.sprintf "meta %s %s\n" k v))
    meta;
  let on_line = ref 0 in
  List.iter
    (fun d ->
      if !on_line = 0 then Buffer.add_string buf "schedule"
      ;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (decision_token d);
      incr on_line;
      if !on_line >= 25 then begin
        Buffer.add_char buf '\n';
        on_line := 0
      end)
    (decisions t);
  if !on_line > 0 then Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "end %d\n" (decision_count t));
  Buffer.contents buf

type parse_error = { line : int; message : string }

let pp_parse_error ppf e =
  Format.fprintf ppf "line %d: %s" e.line e.message

let parse_replay s =
  (* Keep 1-based line numbers through the blank-line filter so errors
     point into the artifact as the user sees it. *)
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  let last_line = List.fold_left (fun _ (n, _) -> n) 1 lines in
  match lines with
  | [] -> Error { line = 1; message = "empty replay artifact" }
  | (ln, first) :: rest ->
      let header = String.trim first in
      if header <> magic && header <> magic_v1 then
        Error
          {
            line = ln;
            message =
              Printf.sprintf "not a replay artifact (expected %S)" magic;
          }
      else
        let v2 = header = magic in
        let rec go meta rev_ds count = function
          | [] ->
              if v2 then
                Error
                  {
                    line = last_line;
                    message =
                      "truncated artifact: missing \"end <count>\" trailer";
                  }
              else Ok (List.rev meta, List.rev rev_ds)
          | (ln, line) :: rest -> (
              match String.split_on_char ' ' (String.trim line) with
              | "meta" :: k :: vs ->
                  go ((k, String.concat " " vs) :: meta) rev_ds count rest
              | "schedule" :: toks ->
                  let rec add rev_ds count = function
                    | [] -> Ok (rev_ds, count)
                    | "" :: toks -> add rev_ds count toks
                    | tok :: toks -> (
                        match decision_of_token tok with
                        | Ok d -> add (d :: rev_ds) (count + 1) toks
                        | Error e -> Error { line = ln; message = e })
                  in
                  (match add rev_ds count toks with
                  | Ok (rev_ds, count) -> go meta rev_ds count rest
                  | Error e -> Error e)
              | [ "end"; n ] -> (
                  match int_of_string_opt n with
                  | None ->
                      Error
                        {
                          line = ln;
                          message = Printf.sprintf "bad end count %S" n;
                        }
                  | Some n when n <> count ->
                      Error
                        {
                          line = ln;
                          message =
                            Printf.sprintf
                              "truncated artifact: end says %d decisions, \
                               found %d"
                              n count;
                        }
                  | Some _ -> (
                      match rest with
                      | [] -> Ok (List.rev meta, List.rev rev_ds)
                      | (ln, line) :: _ ->
                          Error
                            {
                              line = ln;
                              message =
                                Printf.sprintf
                                  "trailing line after end trailer: %S" line;
                            }))
              | _ ->
                  Error
                    {
                      line = ln;
                      message = Printf.sprintf "unrecognized line %S" line;
                    })
        in
        go [] [] 0 rest
