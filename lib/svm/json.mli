(** Minimal zero-dependency JSON: just enough for metrics snapshots,
    Chrome trace exports and the CI-side validation of both.

    Emission is deterministic — object members print in the order given,
    so building snapshots from sorted associations yields byte-stable
    output ({!Metrics.snapshot} relies on this). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [pretty] indents by two spaces (stable layout,
    suitable for committed artifacts). *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON value; [Error] carries the byte
    offset of the failure. Numbers parse as [Int] when they are exact
    OCaml ints, [Float] otherwise. *)

val member : string -> t -> t option
(** First member of that name, on objects. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_str : t -> string option
