(** Minimal zero-dependency JSON: just enough for metrics snapshots,
    Chrome trace exports and the CI-side validation of both.

    Emission is deterministic — object members print in the order given,
    so building snapshots from sorted associations yields byte-stable
    output ({!Metrics.snapshot} relies on this). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [pretty] indents by two spaces (stable layout,
    suitable for committed artifacts). Non-finite [Float]s emit as
    [null] — JSON has no literal for them and emission must be total. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON value; [Error] carries the byte
    offset of the failure. Numbers parse as [Int] when they are exact
    OCaml ints, [Float] otherwise; non-finite literals (["1e999"]) are
    rejected. Total on arbitrary input: nesting deeper than
    {!max_depth} is a parse error, never a [Stack_overflow], so the
    parser is safe on untrusted wire bytes (the [Dist] frame layer
    bounds input {e size} before it reaches here). *)

val max_depth : int
(** Maximum container nesting accepted by {!of_string} (512). *)

val member : string -> t -> t option
(** First member of that name, on objects. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_str : t -> string option
