(** Structured, leveled logging: the fleet's diagnostic channel.

    Zero-dependency by design, like {!Metrics}: a logger is a severity
    threshold, a subsystem tag and a sink. Sinks render either the
    human form (["[net] message"], the historical stderr format every
    smoke check greps) or deterministic JSON lines (one compact object
    per record, stable member order, monotone sequence numbers — no
    wall clock, so two identical runs log byte-identically).

    {b Honesty rule.} The bounded {!ring} never lies about what it
    forgot: {!ring_flush} appends an explicit drop-count record
    whenever records were evicted, mirroring the [--allow-partial]
    discipline of truncated traces. A consumer of a flushed ring can
    always distinguish "nothing happened" from "the buffer was too
    small". *)

type level = Debug | Info | Warn | Error

val severity : level -> int
(** [Debug = 0] up to [Error = 3]; a logger emits records whose
    severity is at least its threshold. *)

val level_name : level -> string
val level_of_string : string -> level option

type record = {
  seq : int;  (** monotone per logger root, shared across {!sub}s *)
  level : level;
  sub : string;  (** subsystem tag, ["a.b"] after nested {!sub}s *)
  msg : string;
}

val render_human : record -> string
(** ["[sub] msg"] for [Info] (byte-compatible with the pre-logger
    stderr format), ["[sub] level: msg"] otherwise. *)

val render_json : record -> string
(** One compact JSON object: [{"seq":..,"level":..,"sub":..,"msg":..}].
    Deterministic member order; no timestamps. *)

(** {1 Sinks} *)

type sink

val null_sink : sink
val human_sink : (string -> unit) -> sink
(** Feeds {!render_human} of each record to the writer (no newline). *)

val json_sink : (string -> unit) -> sink
(** Feeds {!render_json} of each record to the writer (no newline). *)

val tee : sink -> sink -> sink

(** {1 Bounded ring}

    A crash-box: keep the last [capacity] records in memory (e.g. to
    ship inside a stats reply) while counting, not hiding, evictions. *)

type ring

val ring : int -> ring
(** Capacity is clamped to at least 1. *)

val ring_sink : ring -> sink
val ring_records : ring -> record list
(** Oldest first; at most [capacity] records. *)

val ring_dropped : ring -> int
(** Records evicted since the last {!ring_flush}. *)

val ring_flush : ring -> into:sink -> unit
(** Emit the buffered records into [into] (oldest first), then — if any
    were evicted — one extra [Warn] record stating exactly how many,
    so truncation is visible in the output. Clears the ring. *)

(** {1 Loggers} *)

type t

val make : ?level:level -> sink -> t
(** Threshold defaults to [Info]. *)

val null : t
(** Drops everything; the default for library configs. *)

val sub : t -> string -> t
(** A child logger tagged with a subsystem name; shares the parent's
    sink, threshold and sequence counter. *)

val level : t -> level
val enabled : t -> level -> bool
(** False for {!null}; use to skip expensive message construction. *)

val log : t -> level -> string -> unit

val logf : t -> level -> ('a, unit, string, unit) format4 -> 'a

val debugf : t -> ('a, unit, string, unit) format4 -> 'a
val infof : t -> ('a, unit, string, unit) format4 -> 'a
val warnf : t -> ('a, unit, string, unit) format4 -> 'a
val errorf : t -> ('a, unit, string, unit) format4 -> 'a
