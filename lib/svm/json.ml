type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                             *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f when not (Float.is_finite f) ->
      (* JSON has no nan/infinity literal; null keeps emission total. *)
      Buffer.add_string b "null"
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        vs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          emit b v)
        kvs;
      Buffer.add_char b '}'

(* Pretty printing with two-space indentation: the exports are meant to
   be diffed and committed, so the layout must be stable. *)
let rec emit_pretty b ~indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> emit b v
  | List [] -> Buffer.add_string b "[]"
  | List vs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          emit_pretty b ~indent:(indent + 2) v)
        vs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          emit_pretty b ~indent:(indent + 2) v)
        kvs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string ?(pretty = false) v =
  let b = Buffer.create 1024 in
  if pretty then emit_pretty b ~indent:0 v else emit b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; errors carry the byte offset)            *)
(* ------------------------------------------------------------------ *)

exception Parse of int * string

(* Wire inputs are untrusted (Dist workers feed us raw frames), so the
   parser must stay total: nesting is capped rather than letting the
   recursive descent exhaust the OCaml stack. *)
let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the code point as UTF-8 (surrogates are kept
                      as-is bytes; the emitter only produces control-char
                      escapes, which are ASCII). *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char b
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f when Float.is_finite f -> Float f
        | Some _ -> fail (Printf.sprintf "non-finite number %S" lit)
        | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
      Error (Printf.sprintf "offset %d: %s" at msg)
  | exception Stack_overflow -> Error "offset 0: input too deeply nested"

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list = function List vs -> Some vs | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function String s -> Some s | _ -> None
