type 'a event =
  | Op_applied of { pid : int; step : int; info : Op.info option }
  | Decided of { pid : int; step : int; value : 'a }
  | Crashed of { pid : int; step : int }

type 'a t = { name : string; check : 'a event -> (unit, string) result }

let make ~name check = { name; check }
let name t = t.name
let check t ev = t.check ev

type violation = {
  monitor : string;
  message : string;
  step : int;
  pid : int;
  trace : Trace.t option;
}

exception Violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "[%s] step %d, p%d: %s" v.monitor v.step v.pid v.message

let () =
  Printexc.register_printer (function
    | Violation v -> Some (Format.asprintf "Monitor.Violation (%a)" pp_violation v)
    | _ -> None)

let opaque _ = "<value>"

let agreement ?(eq = ( = )) ?(pp = opaque) () =
  let first = ref None in
  make ~name:"agreement" (function
    | Op_applied _ | Crashed _ -> Ok ()
    | Decided { pid; value; _ } -> (
        match !first with
        | None ->
            first := Some (pid, value);
            Ok ()
        | Some (pid0, v0) ->
            if eq v0 value then Ok ()
            else
              Error
                (Printf.sprintf "p%d decided %s but p%d decided %s" pid
                   (pp value) pid0 (pp v0))))

let k_agreement ?(eq = ( = )) ?(pp = opaque) ~k () =
  let seen = ref [] in
  make ~name:(Printf.sprintf "%d-agreement" k) (function
    | Op_applied _ | Crashed _ -> Ok ()
    | Decided { value; _ } ->
        if List.exists (fun v -> eq v value) !seen then Ok ()
        else begin
          seen := value :: !seen;
          if List.length !seen <= k then Ok ()
          else
            Error
              (Printf.sprintf "%d distinct decisions (bound %d): [%s]"
                 (List.length !seen) k
                 (String.concat "; " (List.rev_map pp !seen)))
        end)

let validity ?(pp = opaque) ~allowed () =
  make ~name:"validity" (function
    | Op_applied _ | Crashed _ -> Ok ()
    | Decided { value; _ } ->
        if allowed value then Ok ()
        else Error (Printf.sprintf "decided %s, not a permitted value" (pp value)))

let crash_bound ~bound () =
  let crashes = ref 0 in
  make ~name:(Printf.sprintf "crash-bound(%d)" bound) (function
    | Op_applied _ | Decided _ -> Ok ()
    | Crashed _ ->
        incr crashes;
        if !crashes <= bound then Ok ()
        else Error (Printf.sprintf "%d crashes exceed the bound %d" !crashes bound))

let pp_instance (fam, key) =
  Printf.sprintf "%s[%s]" fam (String.concat ";" (List.map string_of_int key))

let port_discipline ?(kind = Op.Consensus) ~bound () =
  let accessors : (Op.fam * Op.key, int list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  make
    ~name:(Printf.sprintf "port-discipline(%s<=%d)" (Op.kind_name kind) bound)
    (function
      | Decided _ | Crashed _ | Op_applied { info = None; _ } -> Ok ()
      | Op_applied { pid; info = Some i; _ } ->
          if i.Op.kind <> kind then Ok ()
          else
            let inst = (i.Op.fam, i.Op.key) in
            let pids =
              match Hashtbl.find_opt accessors inst with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.add accessors inst r;
                  r
            in
            if List.mem pid !pids then Ok ()
            else begin
              pids := pid :: !pids;
              if List.length !pids <= bound then Ok ()
              else
                Error
                  (Printf.sprintf "%s accessed by %d distinct processes (x=%d)"
                     (pp_instance inst) (List.length !pids) bound)
            end)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let crashed_inside ~fam_prefix ?(bound = 1) () =
  (* Where each live process currently "is": the instance of its latest
     executed operation. A crash is charged to that instance. *)
  let at : (int, Op.fam * Op.key) Hashtbl.t = Hashtbl.create 8 in
  let dead : (Op.fam * Op.key, int ref) Hashtbl.t = Hashtbl.create 8 in
  make
    ~name:(Printf.sprintf "crashed-inside(%s<=%d)" fam_prefix bound)
    (function
      | Decided _ -> Ok ()
      | Op_applied { pid; info; _ } ->
          (match info with
          | Some i when starts_with ~prefix:fam_prefix i.Op.fam ->
              Hashtbl.replace at pid (i.Op.fam, i.Op.key)
          | Some _ -> Hashtbl.remove at pid
          | None -> ());
          Ok ()
      | Crashed { pid; _ } -> (
          match Hashtbl.find_opt at pid with
          | None -> Ok ()
          | Some inst ->
              let r =
                match Hashtbl.find_opt dead inst with
                | Some r -> r
                | None ->
                    let r = ref 0 in
                    Hashtbl.add dead inst r;
                    r
              in
              incr r;
              if !r <= bound then Ok ()
              else
                Error
                  (Printf.sprintf "%d processes crashed inside %s (bound %d)"
                     !r (pp_instance inst) bound)))
