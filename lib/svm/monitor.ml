type 'a event =
  | Op_applied of { pid : int; step : int; info : Op.info option }
  | Decided of { pid : int; step : int; value : 'a }
  | Crashed of { pid : int; step : int }
  | Stalled of { pid : int; step : int; info : Op.info option }
  | Restarted of { pid : int; step : int }
  | Corrupted of { pid : int; step : int; info : Op.info option }

type 'a t = { name : string; check : 'a event -> (unit, string) result }

let make ~name check = { name; check }
let name t = t.name
let check t ev = t.check ev

type violation = {
  monitor : string;
  message : string;
  step : int;
  pid : int;
  trace : Trace.t option;
}

exception Violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "[%s] step %d, p%d: %s" v.monitor v.step v.pid v.message

let () =
  Printexc.register_printer (function
    | Violation v -> Some (Format.asprintf "Monitor.Violation (%a)" pp_violation v)
    | _ -> None)

let opaque _ = "<value>"

let agreement ?(eq = ( = )) ?(pp = opaque) () =
  let first = ref None in
  make ~name:"agreement" (function
    | Op_applied _ | Crashed _ | Stalled _ | Restarted _ | Corrupted _ -> Ok ()
    | Decided { pid; value; _ } -> (
        match !first with
        | None ->
            first := Some (pid, value);
            Ok ()
        | Some (pid0, v0) ->
            if eq v0 value then Ok ()
            else
              Error
                (Printf.sprintf "p%d decided %s but p%d decided %s" pid
                   (pp value) pid0 (pp v0))))

let k_agreement ?(eq = ( = )) ?(pp = opaque) ~k () =
  let seen = ref [] in
  make ~name:(Printf.sprintf "%d-agreement" k) (function
    | Op_applied _ | Crashed _ | Stalled _ | Restarted _ | Corrupted _ -> Ok ()
    | Decided { value; _ } ->
        if List.exists (fun v -> eq v value) !seen then Ok ()
        else begin
          seen := value :: !seen;
          if List.length !seen <= k then Ok ()
          else
            Error
              (Printf.sprintf "%d distinct decisions (bound %d): [%s]"
                 (List.length !seen) k
                 (String.concat "; " (List.rev_map pp !seen)))
        end)

let validity ?(pp = opaque) ~allowed () =
  make ~name:"validity" (function
    | Op_applied _ | Crashed _ | Stalled _ | Restarted _ | Corrupted _ -> Ok ()
    | Decided { value; _ } ->
        if allowed value then Ok ()
        else Error (Printf.sprintf "decided %s, not a permitted value" (pp value)))

let decided_value_integrity ?(pp = opaque) ~allowed () =
  (* Validity restricted to honest processes: pids seen corrupting a
     value are Byzantine and their own "decisions" are excluded — what
     must hold is that no {e honest} process adopts a forged value. *)
  let byz : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  make ~name:"decided-value-integrity" (function
    | Op_applied _ | Crashed _ | Stalled _ | Restarted _ -> Ok ()
    | Corrupted { pid; _ } ->
        Hashtbl.replace byz pid ();
        Ok ()
    | Decided { pid; value; _ } ->
        if Hashtbl.mem byz pid then Ok ()
        else if allowed value then Ok ()
        else
          Error
            (Printf.sprintf
               "honest p%d decided %s, not a permitted value (Byzantine \
                writers: %s)"
               pid (pp value)
               (match Hashtbl.fold (fun p () acc -> p :: acc) byz [] with
               | [] -> "none"
               | ps ->
                   String.concat ","
                     (List.map (Printf.sprintf "p%d") (List.sort compare ps)))))

let crash_bound ~bound () =
  let crashes = ref 0 in
  make ~name:(Printf.sprintf "crash-bound(%d)" bound) (function
    | Op_applied _ | Decided _ | Stalled _ | Restarted _ | Corrupted _ -> Ok ()
    | Crashed _ ->
        incr crashes;
        if !crashes <= bound then Ok ()
        else Error (Printf.sprintf "%d crashes exceed the bound %d" !crashes bound))

let pp_instance (fam, key) =
  Printf.sprintf "%s[%s]" fam (String.concat ";" (List.map string_of_int key))

let port_discipline ?(kind = Op.Consensus) ~bound () =
  let accessors : (Op.fam * Op.key, int list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  make
    ~name:(Printf.sprintf "port-discipline(%s<=%d)" (Op.kind_name kind) bound)
    (function
      | Decided _ | Crashed _ | Stalled _ | Restarted _
      | Op_applied { info = None; _ }
      | Corrupted { info = None; _ } ->
          Ok ()
      | Op_applied { pid; info = Some i; _ }
      | Corrupted { pid; info = Some i; _ } ->
          if i.Op.kind <> kind then Ok ()
          else
            let inst = (i.Op.fam, i.Op.key) in
            let pids =
              match Hashtbl.find_opt accessors inst with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.add accessors inst r;
                  r
            in
            if List.mem pid !pids then Ok ()
            else begin
              pids := pid :: !pids;
              if List.length !pids <= bound then Ok ()
              else
                Error
                  (Printf.sprintf "%s accessed by %d distinct processes (x=%d)"
                     (pp_instance inst) (List.length !pids) bound)
            end)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Where each live process currently "is": the instance of its latest
   executed operation, when that instance's family matches the prefix.
   Shared by [crashed_inside] and [stall_bound]. *)
let position_tracker ~fam_prefix =
  let at : (int, Op.fam * Op.key) Hashtbl.t = Hashtbl.create 8 in
  let track = function
    | Op_applied { pid; info; _ } | Corrupted { pid; info; _ } -> (
        match info with
        | Some i when starts_with ~prefix:fam_prefix i.Op.fam ->
            Hashtbl.replace at pid (i.Op.fam, i.Op.key)
        | Some _ -> Hashtbl.remove at pid
        | None -> ())
    | Restarted { pid; _ } ->
        (* A restarted process re-runs from the top: it is no longer
           inside any instance. *)
        Hashtbl.remove at pid
    | Decided _ | Crashed _ | Stalled _ -> ()
  in
  (at, track)

let charge_instance dead ~bound ~what inst =
  let r =
    match Hashtbl.find_opt dead inst with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add dead inst r;
        r
  in
  incr r;
  if !r <= bound then Ok ()
  else
    Error
      (Printf.sprintf "%d processes %s inside %s (bound %d)" !r what
         (pp_instance inst) bound)

let crashed_inside ~fam_prefix ?(bound = 1) () =
  let at, track = position_tracker ~fam_prefix in
  let dead : (Op.fam * Op.key, int ref) Hashtbl.t = Hashtbl.create 8 in
  make
    ~name:(Printf.sprintf "crashed-inside(%s<=%d)" fam_prefix bound)
    (fun ev ->
      track ev;
      match ev with
      | Decided _ | Op_applied _ | Stalled _ | Restarted _ | Corrupted _ ->
          Ok ()
      | Crashed { pid; _ } -> (
          match Hashtbl.find_opt at pid with
          | None -> Ok ()
          | Some inst -> charge_instance dead ~bound ~what:"crashed" inst))

let stall_bound ~fam_prefix ?(bound = 1) () =
  (* The BG blocking account, generalized to omission: a process that
     halts — crash or stuck operation — while inside an instance of the
     family blocks it; at most [bound] processes may be lost to any one
     instance. For a [Stalled] process, the hanging operation itself
     names the instance when it matches the prefix. *)
  let at, track = position_tracker ~fam_prefix in
  let dead : (Op.fam * Op.key, int ref) Hashtbl.t = Hashtbl.create 8 in
  make
    ~name:(Printf.sprintf "stall-bound(%s<=%d)" fam_prefix bound)
    (fun ev ->
      match ev with
      | Decided _ | Op_applied _ | Restarted _ | Corrupted _ ->
          track ev;
          Ok ()
      | Crashed { pid; _ } -> (
          match Hashtbl.find_opt at pid with
          | None -> Ok ()
          | Some inst -> charge_instance dead ~bound ~what:"halted" inst)
      | Stalled { pid; info; _ } -> (
          let inst =
            match info with
            | Some i when starts_with ~prefix:fam_prefix i.Op.fam ->
                Some (i.Op.fam, i.Op.key)
            | Some _ -> None
            | None -> Hashtbl.find_opt at pid
          in
          match inst with
          | None -> Ok ()
          | Some inst -> charge_instance dead ~bound ~what:"halted" inst))
