type span = { step : int; pid : int; info : Op.info; corrupted : bool }

type fault = Crash | Omit | Restart

type instant = { step : int; pid : int; fault : fault }

type t = {
  spans : span list;
  instants : instant list;
  nprocs : int;
  dropped : int;
  decisions : int;
}

let fault_name = function
  | Crash -> "crash"
  | Omit -> "omission"
  | Restart -> "restart"

let of_trace ?nprocs trace =
  let decisions = Array.of_list (Trace.decisions trace) in
  let decision_at step =
    if step >= 0 && step < Array.length decisions then Some decisions.(step)
    else None
  in
  let spans = ref [] and instants = ref [] in
  let max_pid = ref (-1) in
  List.iter
    (fun { Trace.step; pid; info } ->
      if pid > !max_pid then max_pid := pid;
      match info with
      | Some info ->
          let corrupted =
            match decision_at step with
            | Some (Trace.Byz _) -> true
            | Some _ | None -> false
          in
          spans := { step; pid; info; corrupted } :: !spans
      | None ->
          (* Faults record an event without op info; the decision log
             names the fault kind. An info-less event whose decision is
             a plain [Sched] has no standard source — render it as a
             restart-free crash marker only when the log says so. *)
          let fault =
            match decision_at step with
            | Some (Trace.Crash _) -> Some Crash
            | Some (Trace.Omit _) -> Some Omit
            | Some (Trace.Restart _) -> Some Restart
            | Some (Trace.Sched _ | Trace.Byz _) | None -> None
          in
          Option.iter
            (fun fault -> instants := { step; pid; fault } :: !instants)
            fault)
    (Trace.events trace);
  (* Byzantine onset is a decision with an op event; surface the first
     corruption of each pid as an instant too so the fault is visible as
     a marker, not only as span shading. *)
  let nprocs =
    match nprocs with Some n -> n | None -> !max_pid + 1
  in
  {
    spans = List.rev !spans;
    instants = List.rev !instants;
    nprocs;
    dropped = Trace.dropped trace;
    decisions = Array.length decisions;
  }

let pids t =
  let seen = Hashtbl.create 8 in
  List.iter (fun (s : span) -> Hashtbl.replace seen s.pid ()) t.spans;
  List.iter (fun (i : instant) -> Hashtbl.replace seen i.pid ()) t.instants;
  Hashtbl.fold (fun p () acc -> p :: acc) seen [] |> List.sort compare

let instance_name (info : Op.info) =
  Printf.sprintf "%s[%s]" info.Op.fam
    (String.concat ";" (List.map string_of_int info.Op.key))

let span_name s =
  Printf.sprintf "%s %s"
    (Op.kind_name s.info.Op.kind)
    (instance_name s.info)

(* ------------------------------------------------------------------ *)
(* Causality: happens-before from program order + per-object access      *)
(* order; each span costs one step, so the critical path length is the   *)
(* minimum number of sequential steps any schedule must spend.           *)
(* ------------------------------------------------------------------ *)

type hot_instance = {
  instance : string;
  accesses : int;
  distinct_pids : int;
  on_critical_path : int;
}

type causality = {
  span_count : int;
  critical_path : int;
  parallelism : float;
  hot : hot_instance list;
}

let causality ?(top = 8) t =
  let by_pid : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let by_obj : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let acc : (string, int ref * (int, unit) Hashtbl.t * int ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let critical = ref 0 in
  let count = ref 0 in
  List.iter
    (fun (s : span) ->
      incr count;
      let obj = instance_name s.info in
      let d_pid = Option.value ~default:0 (Hashtbl.find_opt by_pid s.pid) in
      let d_obj = Option.value ~default:0 (Hashtbl.find_opt by_obj obj) in
      let d = 1 + max d_pid d_obj in
      Hashtbl.replace by_pid s.pid d;
      Hashtbl.replace by_obj obj d;
      if d > !critical then critical := d;
      let ops, pids, path =
        match Hashtbl.find_opt acc obj with
        | Some entry -> entry
        | None ->
            let entry = (ref 0, Hashtbl.create 4, ref 0) in
            Hashtbl.add acc obj entry;
            entry
      in
      Stdlib.incr ops;
      Hashtbl.replace pids s.pid ();
      (* A span extends the critical path through this object when its
         depth came from the object chain rather than program order. *)
      if d_obj >= d_pid && d_obj > 0 then Stdlib.incr path)
    t.spans;
  let hot =
    Hashtbl.fold
      (fun instance (ops, pids, path) l ->
        {
          instance;
          accesses = !ops;
          distinct_pids = Hashtbl.length pids;
          on_critical_path = !path;
        }
        :: l)
      acc []
    |> List.sort (fun a b ->
           match compare b.accesses a.accesses with
           | 0 -> String.compare a.instance b.instance
           | c -> c)
  in
  let hot = List.filteri (fun i _ -> i < top) hot in
  {
    span_count = !count;
    critical_path = !critical;
    parallelism =
      (if !critical = 0 then 1.
       else float_of_int !count /. float_of_int !critical);
    hot;
  }

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                            *)
(* ------------------------------------------------------------------ *)

let to_chrome ?(meta = []) t =
  let thread_meta pid =
    Json.Obj
      [
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int pid);
        ("name", Json.String "thread_name");
        ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "p%d" pid)) ]);
      ]
  in
  let span_event (s : span) =
    Json.Obj
      ([
         ("ph", Json.String "X");
         ("pid", Json.Int 0);
         ("tid", Json.Int s.pid);
         ("ts", Json.Int s.step);
         ("dur", Json.Int 1);
         ("name", Json.String (span_name s));
         ( "args",
           Json.Obj
             ([
                ("kind", Json.String (Op.kind_name s.info.Op.kind));
                ("instance", Json.String (instance_name s.info));
              ]
             @ if s.corrupted then [ ("corrupted", Json.Bool true) ] else []) );
       ]
      @ if s.corrupted then [ ("cname", Json.String "terrible") ] else [])
  in
  let instant_event (i : instant) =
    Json.Obj
      [
        ("ph", Json.String "i");
        ("pid", Json.Int 0);
        ("tid", Json.Int i.pid);
        ("ts", Json.Int i.step);
        ("s", Json.String "t");
        ("name", Json.String (Printf.sprintf "%s p%d" (fault_name i.fault) i.pid));
        ("args", Json.Obj [ ("fault", Json.String (fault_name i.fault)) ]);
      ]
  in
  let c = causality t in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.map thread_meta (List.init t.nprocs Fun.id)
          @ List.map span_event t.spans
          @ List.map instant_event t.instants) );
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          ([
             ("nprocs", Json.Int t.nprocs);
             ("spans", Json.Int c.span_count);
             ("fault_instants", Json.Int (List.length t.instants));
             ("dropped_events", Json.Int t.dropped);
             ("decisions", Json.Int t.decisions);
             ("critical_path", Json.Int c.critical_path);
           ]
          @ List.map (fun (k, v) -> (k, Json.String v)) meta) );
    ]

(* ------------------------------------------------------------------ *)
(* Cross-process spans                                                  *)
(* ------------------------------------------------------------------ *)

type pspan = {
  ps_proc : string;
  ps_phase : string;
  ps_job : string;
  ps_shard : int;
  ps_ts : int;
  ps_dur : int;
}

let pspan_to_json p =
  Json.Obj
    [
      ("proc", Json.String p.ps_proc);
      ("phase", Json.String p.ps_phase);
      ("job", Json.String p.ps_job);
      ("shard", Json.Int p.ps_shard);
      ("ts", Json.Int p.ps_ts);
      ("dur", Json.Int p.ps_dur);
    ]

let pspan_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int name = Option.bind (Json.member name j) Json.to_int in
  match (str "proc", str "phase", str "job", int "shard", int "ts", int "dur")
  with
  | Some ps_proc, Some ps_phase, Some ps_job, Some ps_shard, Some ps_ts,
    Some ps_dur ->
      Ok { ps_proc; ps_phase; ps_job; ps_shard; ps_ts; ps_dur }
  | _ -> Error "span record needs proc/phase/job strings and shard/ts/dur ints"

(* Fuse per-process span logs into one Chrome trace: one lane (tid) per
   OS process, wall-time µs on the x axis. The happens-before relation
   extends across the wire by shard correlation: within one lane spans
   order by time (program order), and spans sharing a (job, shard) key
   chain across lanes (admit → dispatch → receive → execute → reply →
   merge is the life of one shard, whichever processes it visits). The
   critical path is the heaviest such chain in µs — the part of the
   fleet's wall time no amount of extra workers can hide. *)
let merge_processes pspans =
  let lanes = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun p ->
      if not (Hashtbl.mem lanes p.ps_proc) then begin
        Hashtbl.add lanes p.ps_proc (Hashtbl.length lanes);
        order := p.ps_proc :: !order
      end)
    pspans;
  let procs = List.rev !order in
  let lane p = Hashtbl.find lanes p.ps_proc in
  let t0 =
    List.fold_left (fun acc p -> min acc p.ps_ts) max_int pspans
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let sorted =
    List.stable_sort
      (fun a b ->
        match compare a.ps_ts b.ps_ts with
        | 0 -> compare (lane a) (lane b)
        | c -> c)
      pspans
  in
  (* Longest-chain DP in timestamp order, mirroring [causality]: a
     span's depth is its duration plus the deepest predecessor in its
     lane (program order) or its shard chain (wire order). *)
  let by_lane : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let by_shard : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let critical = ref 0 in
  List.iter
    (fun p ->
      let key = Printf.sprintf "%s#%d" p.ps_job p.ps_shard in
      let d_lane =
        Option.value ~default:0 (Hashtbl.find_opt by_lane (lane p))
      in
      let d_shard = Option.value ~default:0 (Hashtbl.find_opt by_shard key) in
      let d = max 1 p.ps_dur + max d_lane d_shard in
      Hashtbl.replace by_lane (lane p) d;
      Hashtbl.replace by_shard key d;
      if d > !critical then critical := d)
    sorted;
  let thread_meta i name =
    Json.Obj
      [
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int i);
        ("name", Json.String "thread_name");
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  let short_job j = if String.length j > 8 then String.sub j 0 8 else j in
  let span_event p =
    Json.Obj
      [
        ("ph", Json.String "X");
        ("pid", Json.Int 0);
        ("tid", Json.Int (lane p));
        ("ts", Json.Int (p.ps_ts - t0));
        ("dur", Json.Int (max 1 p.ps_dur));
        ( "name",
          Json.String
            (if p.ps_shard < 0 then
               Printf.sprintf "%s %s" p.ps_phase (short_job p.ps_job)
             else
               Printf.sprintf "%s %s#%d" p.ps_phase (short_job p.ps_job)
                 p.ps_shard) );
        ( "args",
          Json.Obj
            [
              ("phase", Json.String p.ps_phase);
              ("job", Json.String p.ps_job);
              ("shard", Json.Int p.ps_shard);
              ("proc", Json.String p.ps_proc);
            ] );
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.mapi (fun i name -> thread_meta i name) procs
          @ List.map span_event sorted) );
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("nprocs", Json.Int (List.length procs));
            ("spans", Json.Int (List.length sorted));
            ("fault_instants", Json.Int 0);
            ("dropped_events", Json.Int 0);
            ("decisions", Json.Int 0);
            ("critical_path", Json.Int !critical);
            ( "processes",
              Json.String (String.concat "," procs) );
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Text and CSV                                                         *)
(* ------------------------------------------------------------------ *)

let to_text t =
  let b = Buffer.create 4096 in
  if t.dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "WARNING: trace truncated — %d earlier events dropped; timeline is \
          partial\n"
         t.dropped);
  Buffer.add_string b
    (Printf.sprintf "timeline: %d processes, %d spans, %d fault instants\n"
       t.nprocs (List.length t.spans)
       (List.length t.instants));
  let cells =
    List.map
      (fun (s : span) ->
        ( s.step,
          s.pid,
          Printf.sprintf "%s%s" (span_name s)
            (if s.corrupted then " [BYZ]" else "") ))
      t.spans
    @ List.map
        (fun (i : instant) ->
          (i.step, i.pid, Printf.sprintf "** %s **" (fault_name i.fault)))
        t.instants
    |> List.sort compare
  in
  List.iter
    (fun (step, pid, label) ->
      Buffer.add_string b (Printf.sprintf "%6d  p%-3d %s\n" step pid label))
    cells;
  let c = causality t in
  Buffer.add_string b
    (Printf.sprintf
       "\ncausality: %d spans, critical path %d steps, parallelism %.2fx\n"
       c.span_count c.critical_path c.parallelism);
  Buffer.add_string b "hottest instances (accesses, distinct pids, critical):\n";
  List.iter
    (fun h ->
      Buffer.add_string b
        (Printf.sprintf "  %-28s %6d %4d %6d\n" h.instance h.accesses
           h.distinct_pids h.on_critical_path))
    c.hot;
  Buffer.contents b

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let b = Buffer.create 4096 in
  if t.dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "# truncated: %d earlier events dropped\n" t.dropped);
  Buffer.add_string b "step,pid,event,kind,instance,corrupted\n";
  let rows =
    List.map
      (fun (s : span) ->
        ( s.step,
          s.pid,
          Printf.sprintf "%d,%d,op,%s,%s,%b" s.step s.pid
            (csv_escape (Op.kind_name s.info.Op.kind))
            (csv_escape (instance_name s.info))
            s.corrupted ))
      t.spans
    @ List.map
        (fun (i : instant) ->
          ( i.step,
            i.pid,
            Printf.sprintf "%d,%d,%s,,," i.step i.pid (fault_name i.fault) ))
        t.instants
    |> List.sort compare
  in
  List.iter (fun (_, _, row) -> Buffer.add_string b (row ^ "\n")) rows;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Chrome-export validation (the CI side)                               *)
(* ------------------------------------------------------------------ *)

type chrome_summary = {
  events : int;
  spans_per_pid : (int * int) list;  (** (tid, span count), sorted *)
  instants : int;
  recorded_faults : int;  (** otherData.fault_instants *)
  dropped : int;
}

let validate_chrome json =
  let ( let* ) r f = Result.bind r f in
  let require what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing %s" what)
  in
  let* events =
    require "traceEvents array"
      (Option.bind (Json.member "traceEvents" json) Json.to_list)
  in
  let spans : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let live : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let instants = ref 0 in
  let* () =
    List.fold_left
      (fun acc ev ->
        let* () = acc in
        let* ph =
          require "event ph" (Option.bind (Json.member "ph" ev) Json.to_str)
        in
        let* tid =
          require "event tid" (Option.bind (Json.member "tid" ev) Json.to_int)
        in
        let* _name =
          require "event name" (Option.bind (Json.member "name" ev) Json.to_str)
        in
        match ph with
        | "X" ->
            let* _ts =
              require "span ts" (Option.bind (Json.member "ts" ev) Json.to_int)
            in
            let* _dur =
              require "span dur"
                (Option.bind (Json.member "dur" ev) Json.to_int)
            in
            Hashtbl.replace spans tid
              (1 + Option.value ~default:0 (Hashtbl.find_opt spans tid));
            Hashtbl.replace live tid ();
            Ok ()
        | "i" ->
            Stdlib.incr instants;
            (* A faulted pid is not live: it need not have spans. *)
            Hashtbl.remove live tid;
            Ok ()
        | "M" -> Ok ()
        | ph -> Error (Printf.sprintf "unknown event phase %S" ph))
      (Ok ()) events
  in
  let other k =
    Option.value ~default:0
      (Option.bind
         (Option.bind (Json.member "otherData" json) (Json.member k))
         Json.to_int)
  in
  let nprocs = other "nprocs" in
  let recorded_faults = other "fault_instants" in
  let dropped = other "dropped_events" in
  let* () =
    if recorded_faults <> !instants then
      Error
        (Printf.sprintf "otherData says %d fault instants, found %d"
           recorded_faults !instants)
    else Ok ()
  in
  (* Every live pid — declared by metadata, never marked faulted — must
     have at least one span, unless the trace admits truncation. *)
  let* () =
    if dropped > 0 then Ok ()
    else
      let missing = ref [] in
      for pid = nprocs - 1 downto 0 do
        if Hashtbl.mem live pid && not (Hashtbl.mem spans pid) then
          missing := pid :: !missing
      done;
      (* [live] only contains pids with spans, so this can only trip for
         metadata-declared pids: re-derive liveness from metadata. *)
      let faulted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          match Option.bind (Json.member "ph" ev) Json.to_str with
          | Some "i" -> (
              match Option.bind (Json.member "tid" ev) Json.to_int with
              | Some tid -> Hashtbl.replace faulted tid ()
              | None -> ())
          | _ -> ())
        events;
      for pid = nprocs - 1 downto 0 do
        if
          (not (Hashtbl.mem faulted pid))
          && (not (Hashtbl.mem spans pid))
          && not (List.mem pid !missing)
        then missing := pid :: !missing
      done;
      match !missing with
      | [] -> Ok ()
      | pids ->
          Error
            (Printf.sprintf "live pid(s) without any span: %s"
               (String.concat ","
                  (List.map (Printf.sprintf "p%d") (List.sort compare pids))))
  in
  Ok
    {
      events = List.length events;
      spans_per_pid =
        Hashtbl.fold (fun tid n acc -> (tid, n) :: acc) spans []
        |> List.sort compare;
      instants = !instants;
      recorded_faults;
      dropped;
    }
