(** Online invariant monitors: safety predicates checked at every step.

    A monitor watches the event stream of one execution — every applied
    operation, every decision, every crash — and vetoes the run the
    moment a safety predicate breaks. {!Exec.run} consults its monitors
    after each step and aborts with {!Violation} carrying the live trace,
    so a broken invariant surfaces as the exact step that broke it plus a
    replayable schedule, instead of a post-hoc diff over a finished run.

    Monitors are stateful (they accumulate decided values, crash counts,
    instance access sets); every builder below returns a {e fresh}
    monitor, and one monitor must watch at most one run. *)

type 'a event =
  | Op_applied of { pid : int; step : int; info : Op.info option }
      (** One atomic operation executed ([info] is [None] for [Yield]). *)
  | Decided of { pid : int; step : int; value : 'a }
  | Crashed of { pid : int; step : int }
  | Stalled of { pid : int; step : int; info : Op.info option }
      (** The pid's next operation ([info]) hangs forever — responsive
          omission; the process is stuck from here on, not crashed. Also
          emitted when a process is poisoned by a Byzantine value it
          cannot decode. *)
  | Restarted of { pid : int; step : int }
      (** Crash-recovery: the pid lost its local program state and
          re-runs from the top; shared memory survives. *)
  | Corrupted of { pid : int; step : int; info : Op.info option }
      (** One atomic operation executed {e with a Byzantine value}: the
          written/proposed value was replaced by the adversary's. Emitted
          instead of [Op_applied] for that step. *)

type 'a t

val make : name:string -> ('a event -> (unit, string) result) -> 'a t
val name : 'a t -> string
val check : 'a t -> 'a event -> (unit, string) result

type violation = {
  monitor : string;
  message : string;
  step : int;  (** global step at which the invariant broke *)
  pid : int;  (** process whose event broke it *)
  trace : Trace.t option;  (** live trace up to the violation *)
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

(** {1 Built-in safety predicates}

    [pp] renders decided values in violation messages (default: opaque). *)

val agreement : ?eq:('a -> 'a -> bool) -> ?pp:('a -> string) -> unit -> 'a t
(** All decided values are equal ([eq] defaults to structural equality). *)

val k_agreement :
  ?eq:('a -> 'a -> bool) -> ?pp:('a -> string) -> k:int -> unit -> 'a t
(** At most [k] distinct decided values. *)

val validity : ?pp:('a -> string) -> allowed:('a -> bool) -> unit -> 'a t
(** Every decided value satisfies [allowed] (e.g. was somebody's input). *)

val crash_bound : bound:int -> unit -> 'a t
(** At most [bound] crashes — the model's [t]; a run that exceeds it is
    outside the adversary's contract. *)

val port_discipline : ?kind:Op.kind -> bound:int -> unit -> 'a t
(** No object instance of [kind] (default [Consensus]) is accessed by
    more than [bound] distinct processes — the x-concurrency bound of the
    paper's x-ported objects, checked per (family, key). *)

val crashed_inside : fam_prefix:string -> ?bound:int -> unit -> 'a t
(** At most [bound] (default 1) processes crash {e inside} any single
    object instance whose family starts with [fam_prefix] — a process is
    inside the instance its latest executed operation touched. This is
    the BG assumption that at most one simulator crashes per safe
    agreement; running it as a monitor turns "the assumption silently
    failed" into an abort naming the instance. *)

val stall_bound : fam_prefix:string -> ?bound:int -> unit -> 'a t
(** {!crashed_inside} generalized to the omission tier: at most [bound]
    (default 1) processes are {e halted} — crashed, or stuck on a hung
    operation — inside any single instance whose family starts with
    [fam_prefix]. For a stalled process the hanging operation itself
    names the instance. This is the BG blocking account under responsive
    omission: a blocked agreement instance stalls at most one simulator. *)

val decided_value_integrity :
  ?pp:('a -> string) -> allowed:('a -> bool) -> unit -> 'a t
(** {!validity} restricted to honest processes: every value decided by a
    process that never executed a corrupted operation must satisfy
    [allowed]. Byzantine writers (pids seen in [Corrupted] events) are
    excluded — their "decisions" are meaningless — so the monitor checks
    exactly the graceful-degradation claim: no honest process adopts a
    forged value. On fault-free runs it coincides with {!validity}. *)
