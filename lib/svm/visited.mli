(** A shared, domain-safe visited-state table for the explorer.

    One table is shared by every exploring domain, so a state
    fingerprinted by one domain is never re-expanded by a sibling — the
    cross-domain deduplication that makes parallel exploration pay for
    itself. The structure is a fixed array of lock-free buckets (chains
    updated by compare-and-set) fronted by a bloom filter, so the common
    "definitely new" answer skips the bucket walk entirely.

    {b Linearizability.} [seen_or_add] behaves as an atomic
    insert-if-absent: for any set of concurrent calls with the same key,
    exactly one returns [false] (the insertion) and every other returns
    [true]. The proof obligations are local:

    - the bucket head is read {e before} the bloom bits, so under
      sequentially-consistent atomics "bits clear" implies the key was
      not in the head just read (an inserter sets its bloom bits before
      publishing the bucket CAS);
    - a failed CAS re-reads the chain and re-walks it before retrying,
      so two racing inserters of the same key can never both link it.

    Memory ordering is OCaml's [Atomic] (sequentially consistent);
    bucket chains are immutable lists, so readers never observe a
    half-built node. *)

type 'k t

type stats = {
  mutable hits : int;  (** key was already present *)
  mutable misses : int;  (** key was inserted by this call *)
  mutable bloom_fp : int;
      (** bloom said "maybe present" but the exact walk said no — a
          false positive. Timing-dependent under concurrency (a racing
          insert can set the bits first), so not part of the
          determinism contract. *)
}

val fresh_stats : unit -> stats
(** A zeroed per-domain statistics record. Each domain mutates its own
    (plain, unsynchronised) record; fold them after joining. *)

val create : ?buckets:int -> unit -> 'k t
(** [create ()] builds an empty table. [buckets] (default [65536]) is
    rounded up to a power of two; chains grow without bound, so the
    table never refuses an insert, it only walks longer chains. *)

val seen_or_add : 'k t -> hash:int -> 'k -> stats -> bool
(** [seen_or_add t ~hash key stats] returns [true] if [key] was already
    present and inserts it (returning [false]) otherwise, atomically
    with respect to every other domain. [hash] must be a pure function
    of [key] (the same key must always arrive with the same hash); keys
    are compared with polymorphic equality after an exact hash match. *)

val distinct : 'k t -> int
(** Number of distinct keys inserted so far. O(buckets); meant for
    post-run reporting, not hot paths. Racy while inserts are in
    flight. *)

(** A concurrent hash-consing (interning) table.

    [id t key] names [key] with a small integer: the first caller to
    publish a key picks its id, every later caller — in any domain —
    gets that same id back. Within one table, id equality is exactly
    key equality, so a chain of keys can be summarised by one integer
    and compared in O(1). The explorer uses this to collapse per-process
    operation histories to ids, making visited-key hashing and equality
    independent of history length.

    The numeric id values depend on scheduling (a lost insertion race
    abandons its reserved id), so ids are process-local names: never
    compare them across tables, persist them, or let them reach
    deterministic output — only their {e equalities} are stable. *)
module Intern : sig
  type 'k t

  val create : ?buckets:int -> unit -> 'k t
  (** [buckets] (default [65536]) is rounded up to a power of two. Id 0
      is never allocated — callers may use it as a root/empty id. *)

  val id : 'k t -> hash:int -> 'k -> int
  (** Atomic find-or-name. [hash] must be a pure function of [key]. *)

  val count : 'k t -> int
  (** Upper bound on ids handed out (exact when no insert race was ever
      lost). Post-run reporting only. *)
end
