(* Leveled structured logging. Determinism rule, as for Metrics: records
   carry monotone sequence numbers, never wall-clock time, so identical
   runs produce identical logs and smoke-test byte-diffs cannot race
   against timestamps. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type record = { seq : int; level : level; sub : string; msg : string }

(* Info renders exactly as the historical ad-hoc stderr lines did
   ("[net] listening on port 4321"): the Makefile smoke recipes sed/grep
   that format, so it is part of the observable interface. *)
let render_human r =
  match r.level with
  | Info -> Printf.sprintf "[%s] %s" r.sub r.msg
  | l -> Printf.sprintf "[%s] %s: %s" r.sub (level_name l) r.msg

let render_json r =
  Json.to_string
    (Json.Obj
       [
         ("seq", Json.Int r.seq);
         ("level", Json.String (level_name r.level));
         ("sub", Json.String r.sub);
         ("msg", Json.String r.msg);
       ])

type sink = Null | Sink of (record -> unit)

let null_sink = Null
let human_sink write = Sink (fun r -> write (render_human r))
let json_sink write = Sink (fun r -> write (render_json r))

let emit sink r = match sink with Null -> () | Sink f -> f r

let tee a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Sink _, Sink _ -> Sink (fun r -> emit a r; emit b r)

(* ------------------------------------------------------------------ *)
(* Bounded ring                                                        *)
(* ------------------------------------------------------------------ *)

type ring = { cap : int; q : record Queue.t; mutable dropped : int }

let ring cap = { cap = max 1 cap; q = Queue.create (); dropped = 0 }

let ring_sink r =
  Sink
    (fun rec_ ->
      Queue.push rec_ r.q;
      if Queue.length r.q > r.cap then begin
        ignore (Queue.pop r.q);
        r.dropped <- r.dropped + 1
      end)

let ring_records r = List.of_seq (Queue.to_seq r.q)
let ring_dropped r = r.dropped

let ring_flush r ~into =
  Queue.iter (emit into) r.q;
  if r.dropped > 0 then begin
    let last_seq = Queue.fold (fun _ rec_ -> rec_.seq) 0 r.q in
    emit into
      {
        seq = last_seq + 1;
        level = Warn;
        sub = "log";
        msg =
          Printf.sprintf "%d earlier record(s) dropped by bounded ring"
            r.dropped;
      }
  end;
  Queue.clear r.q;
  r.dropped <- 0

(* ------------------------------------------------------------------ *)
(* Loggers                                                             *)
(* ------------------------------------------------------------------ *)

type t = { lvl : level; tag : string; sink : sink; next : int ref }

let make ?(level = Info) sink = { lvl = level; tag = ""; sink; next = ref 0 }
let null = { lvl = Error; tag = ""; sink = Null; next = ref 0 }

let sub t name =
  { t with tag = (if t.tag = "" then name else t.tag ^ "." ^ name) }

let level t = t.lvl

let enabled t l =
  (match t.sink with Null -> false | Sink _ -> true)
  && severity l >= severity t.lvl

let log t l msg =
  if enabled t l then begin
    let seq = !(t.next) in
    t.next := seq + 1;
    emit t.sink { seq; level = l; sub = t.tag; msg }
  end

let logf t l fmt = Printf.ksprintf (fun s -> log t l s) fmt
let debugf t fmt = logf t Debug fmt
let infof t fmt = logf t Info fmt
let warnf t fmt = logf t Warn fmt
let errorf t fmt = logf t Error fmt
