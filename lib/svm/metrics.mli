(** Run telemetry: a zero-dependency metrics registry.

    Counters (monotone), gauges (last value, with a max-tracking
    setter), and log-bucketed histograms, all addressed by name and
    snapshottable to JSON.

    {b Determinism rule.} Everything recorded here must derive from the
    run itself — step counts, op counts, outcomes — never from
    wall-clock time. Two replays of the same artifact then produce
    byte-identical snapshots ({!snapshot_string} sorts names). Wall
    time is available only behind the explicit [wall_clock] flag, which
    appends a separate ["wall"] section; registries used in replay
    comparisons must leave it off.

    Telemetry is pay-for-what-you-use: nothing in this module is
    consulted unless a registry is created and passed to a producer
    (e.g. {!Exec.run}'s [?metrics]); producers allocate no per-op state
    when no registry is given. *)

type t

val create : ?wall_clock:bool -> unit -> t
(** A fresh, empty registry. [wall_clock] (default false) opts into the
    non-deterministic ["wall"] snapshot section. *)

val wall_clock : t -> bool

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Find-or-create; the same name always yields the same counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : t -> string -> int
(** 0 when the counter was never created. *)

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** Keep the maximum of the current and given value. *)

val gauge_value : t -> string -> int

(** {1 Optional-registry conveniences}

    For producers whose instrumentation hangs off a [?metrics] that is
    usually [None] — the network service counts connections, retries
    and queue depth this way without forcing every caller to thread a
    registry. *)

val bump : ?by:int -> t option -> string -> unit
(** Increment a counter by name; no-op on [None]. *)

val record : t option -> string -> int -> unit
(** Set a gauge by name; no-op on [None]. *)

val record_max : t option -> string -> int -> unit
(** Max-set a gauge by name; no-op on [None]. *)

val sample : t option -> string -> int -> unit
(** Observe into a histogram by name; no-op on [None]. *)

(** {1 Histograms}

    Log-bucketed: bucket 0 holds values [<= 0]; bucket [i >= 1] holds
    [\[2^(i-1), 2^i)]. 63 buckets cover every OCaml int. *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> int -> unit
val histogram_count : t -> string -> int
val histogram_sum : t -> string -> int

val bucket_of : int -> int
(** The bucket index a value lands in. *)

val bucket_lo : int -> int
(** Smallest positive value of bucket [i] ([0] for bucket 0). *)

(** {1 Snapshots} *)

val counters : t -> (string * int) list
(** Name-sorted. *)

val gauges : t -> (string * int) list
(** Name-sorted. *)

val histograms : t -> (string * ((int * int) * (int * int) * (int * int) list)) list
(** Name-sorted [(name, ((count, sum), (min, max), bucket_counts))];
    bucket counts are [(bucket_index, count)] for non-empty buckets. *)

val snapshot : t -> Json.t
(** Deterministic: all sections sorted by name; the ["wall"] section is
    present only for [wall_clock] registries. *)

val snapshot_string : ?pretty:bool -> t -> string

val of_snapshot : Json.t -> (t, string) result
(** Decode a {!snapshot} back into a registry (the ["wall"] section is
    ignored; the result is never wall-clock). Round-trips byte-for-byte:
    [snapshot (of_snapshot (snapshot t)) = snapshot t] for wall-free
    registries. This is how a server rebuilds worker registries pushed
    over the wire before folding them with {!merge}. *)

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters and histograms add (count, sum,
    buckets; min/max combine), gauges keep the maximum. Commutative and
    associative, so merging per-worker registries in any order yields
    the same snapshot — parallel sweeps rely on this to match the
    sequential registry byte for byte. *)

val reset : t -> unit
