type fam = string
type key = int list

type kind =
  | Register
  | Snapshot
  | Test_and_set
  | Consensus
  | Kset
  | Queue
  | Oracle

type info = { kind : kind; fam : fam; key : key }

type _ t =
  | Reg_read : fam * key -> Univ.t option t
  | Reg_write : fam * key * Univ.t -> unit t
  | Snap_set : fam * key * Univ.t -> unit t
  | Snap_scan : fam * key -> Univ.t option array t
  | Ts : fam * key -> bool t
  | Cons_propose : fam * key * Univ.t -> Univ.t t
  | Kset_propose : fam * key * Univ.t -> Univ.t t
  | Queue_enq : fam * key * Univ.t -> unit t
  | Queue_deq : fam * key -> Univ.t option t
  | Cas : fam * key * Univ.t option * Univ.t -> bool t
  | Oracle_query : fam * key -> Univ.t t
  | Yield : unit t

let info (type a) (op : a t) =
  match op with
  | Reg_read (fam, key) -> Some { kind = Register; fam; key }
  | Reg_write (fam, key, _) -> Some { kind = Register; fam; key }
  | Snap_set (fam, key, _) -> Some { kind = Snapshot; fam; key }
  | Snap_scan (fam, key) -> Some { kind = Snapshot; fam; key }
  | Ts (fam, key) -> Some { kind = Test_and_set; fam; key }
  | Cons_propose (fam, key, _) -> Some { kind = Consensus; fam; key }
  | Kset_propose (fam, key, _) -> Some { kind = Kset; fam; key }
  | Queue_enq (fam, key, _) -> Some { kind = Queue; fam; key }
  | Queue_deq (fam, key) -> Some { kind = Queue; fam; key }
  | Cas (fam, key, _, _) -> Some { kind = Register; fam; key }
  | Oracle_query (fam, key) -> Some { kind = Oracle; fam; key }
  | Yield -> None

let corrupt (type a) (op : a t) (v : Univ.t) : a t option =
  match op with
  | Reg_write (fam, key, _) -> Some (Reg_write (fam, key, v))
  | Snap_set (fam, key, _) -> Some (Snap_set (fam, key, v))
  | Cons_propose (fam, key, _) -> Some (Cons_propose (fam, key, v))
  | Kset_propose (fam, key, _) -> Some (Kset_propose (fam, key, v))
  | Queue_enq (fam, key, _) -> Some (Queue_enq (fam, key, v))
  | Reg_read _ | Snap_scan _ | Ts _ | Queue_deq _ | Cas _ | Oracle_query _
  | Yield ->
      None

let kind_name = function
  | Register -> "register"
  | Snapshot -> "snapshot"
  | Test_and_set -> "test&set"
  | Consensus -> "consensus"
  | Kset -> "k-set"
  | Queue -> "queue"
  | Oracle -> "oracle"

let pp_info ppf { kind; fam; key } =
  Format.fprintf ppf "%s %s[%a]" (kind_name kind) fam
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    key
