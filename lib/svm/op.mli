(** Atomic shared-memory operations.

    Every shared object is addressed by a {e family} name plus an integer
    {e key}, so unbounded object families — such as the
    [SAFE_AG\[j, snapsn\]] array of the BG simulation — exist lazily
    without dynamic allocation inside programs.

    Operation semantics (all linearizable by construction — each operation
    executes as one atomic step of the scheduler):

    - registers: multi-writer multi-reader atomic registers;
    - snapshot objects: one component per process; [Snap_set] writes the
      calling process's own component, [Snap_scan] atomically reads the
      whole array (the single-writer snapshot object of the paper);
    - test&set: one-shot, first caller wins (consensus number 2);
    - consensus: one-shot x-ported consensus objects — the environment
      enforces that at most [x] distinct processes access each instance;
    - k-set agreement objects: at most [k] distinct values decided (used
      for the related-work experiments; not part of the base models);
    - queues: multi-shot FIFO queues (consensus number 2, like test&set
      — allowed when [x >= 2]); used by the consensus-number gallery;
    - compare&swap on registers: consensus number infinity, so never
      part of a finite-x model; the environment only hosts it when
      explicitly allowed ({!Env.create}'s [allow_cas]). *)

type fam = string
type key = int list

type kind =
  | Register
  | Snapshot
  | Test_and_set
  | Consensus
  | Kset
  | Queue
  | Oracle

type info = { kind : kind; fam : fam; key : key }

type _ t =
  | Reg_read : fam * key -> Univ.t option t
  | Reg_write : fam * key * Univ.t -> unit t
  | Snap_set : fam * key * Univ.t -> unit t
  | Snap_scan : fam * key -> Univ.t option array t
  | Ts : fam * key -> bool t
  | Cons_propose : fam * key * Univ.t -> Univ.t t
  | Kset_propose : fam * key * Univ.t -> Univ.t t
  | Queue_enq : fam * key * Univ.t -> unit t
  | Queue_deq : fam * key -> Univ.t option t
  | Cas : fam * key * Univ.t option * Univ.t -> bool t
      (** [Cas (f, k, expected, desired)] on the {e register} [(f, k)]:
          atomically, if the current content equals [expected]
          (structurally; [None] = unwritten), install [desired] and
          return [true]. *)
  | Oracle_query : fam * key -> Univ.t t
      (** Query a failure-detector oracle (Section 1.3's boosting
          experiments). The environment must have a handler installed
          ({!Env.set_oracle}); oracles are not shared-memory objects and
          cannot be carried through the simulations. *)
  | Yield : unit t

val info : 'a t -> info option
(** [info op] is the object the operation touches; [None] for [Yield]. *)

val corrupt : 'a t -> Univ.t -> 'a t option
(** [corrupt op v] is [op] with its written/proposed value replaced by
    [v] — the Byzantine value-fault transformation. [None] when [op]
    carries no value (reads, scans, test&set, CAS, oracle, yield): such
    operations execute unchanged even under a Byzantine process. *)

val kind_name : kind -> string
val pp_info : Format.formatter -> info -> unit
