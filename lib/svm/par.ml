(* A minimal work-sharing pool over stdlib [Domain] — no dependencies.
   Tasks are indexed [0 .. tasks-1] and handed out through one atomic
   counter; each worker loops "claim next index, run it" until the
   counter runs past the end. Results land in per-index slots (disjoint
   writes, so no synchronisation beyond the final joins is needed).

   Determinism note: the pool makes no ordering promises between tasks
   — callers that need deterministic output must make each task's
   result independent of the others and merge in task-index order, as
   [Explore] does. *)

let run (type a) ~jobs ?(oversubscribe = false)
    ?(skip = fun (_ : int) -> false) ~tasks (f : int -> a) : a option array =
  if jobs < 1 then invalid_arg "Par.run: jobs must be >= 1";
  if tasks < 0 then invalid_arg "Par.run: tasks must be >= 0";
  (* Never run more domains than the machine has cores: oversubscribed
     domains only add stop-the-world GC synchronisation. Callers' results
     cannot tell the difference (they must already be jobs-agnostic), so
     the cap is safe; [oversubscribe] bypasses it for tests that need the
     multi-domain code paths exercised regardless of the host. *)
  let jobs =
    if oversubscribe then jobs
    else min jobs (Domain.recommended_domain_count ())
  in
  let results : a option array = Array.make (max tasks 1) None in
  if tasks = 0 then [||]
  else if jobs = 1 || tasks = 1 then begin
    for i = 0 to tasks - 1 do
      if not (skip i) then results.(i) <- Some (f i)
    done;
    results
  end
  else begin
    let next = Atomic.make 0 in
    let failure : (int * exn) option Atomic.t = Atomic.make None in
    (* Keep the failure with the smallest task index so the exception
       that propagates does not depend on worker timing. *)
    let rec note_failure i exn =
      match Atomic.get failure with
      | Some (j, _) when j <= i -> ()
      | cur ->
          if not (Atomic.compare_and_set failure cur (Some (i, exn))) then
            note_failure i exn
    in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= tasks || Atomic.get failure <> None then continue := false
        else if not (skip i) then (
          match f i with
          | v -> results.(i) <- Some v
          | exception exn -> note_failure i exn)
      done
    in
    let n = min jobs tasks in
    let domains = Array.init (n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with Some (_, exn) -> raise exn | None -> ());
    results
  end
