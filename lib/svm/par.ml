(* A zero-dependency multicore pool over stdlib [Domain], in two
   flavours:

   - [run]: the original indexed task farm. Tasks [0 .. tasks-1] are
     handed out through one atomic counter and results land in
     per-index slots — still the right scheduler for pre-sliced,
     uniform work (sweep cells, dist shards, soak batches).

   - [run_dynamic]: a work-stealing pool for work that splits as it
     runs. Each worker owns a fixed-capacity circular deque
     (Chase-Lev style: owner pushes/pops at the bottom, thieves CAS
     the top); an idle worker steals from a random victim. The
     explorer feeds it subtree items and consults [want_work] to
     decide when to split — so splitting happens exactly when some
     domain is starving, not on a static pre-cut.

   Determinism note: neither pool promises anything about execution
   order. Callers needing deterministic output must make per-item
   results order-independent and merge canonically ([Explore] merges
   in task-index order under [run], and uses a closure argument — the
   set of expanded states is schedule-independent — under
   [run_dynamic]). *)

let run (type a) ~jobs ?(oversubscribe = false)
    ?(skip = fun (_ : int) -> false) ~tasks (f : int -> a) : a option array =
  if jobs < 1 then invalid_arg "Par.run: jobs must be >= 1";
  if tasks < 0 then invalid_arg "Par.run: tasks must be >= 0";
  if tasks = 0 then [||]
  else begin
    (* Never run more domains than the machine has cores: oversubscribed
       domains only add stop-the-world GC synchronisation. Callers' results
       cannot tell the difference (they must already be jobs-agnostic), so
       the cap is safe; [oversubscribe] bypasses it for tests that need the
       multi-domain code paths exercised regardless of the host. *)
    let jobs =
      if oversubscribe then jobs
      else min jobs (Domain.recommended_domain_count ())
    in
    let results : a option array = Array.make tasks None in
    (* Count the tasks the skip predicate admits right now: if none
       survive, spawning domains would be pure overhead (the snapshot
       may be stale — skip is consulted again at claim time — but a
       task skipped here and admitted later was equally claimable as
       "skipped" by a worker, which callers already tolerate). *)
    let live = ref 0 in
    for i = 0 to tasks - 1 do
      if not (skip i) then incr live
    done;
    if !live = 0 then results
    else if jobs = 1 || tasks = 1 then begin
      for i = 0 to tasks - 1 do
        if not (skip i) then results.(i) <- Some (f i)
      done;
      results
    end
    else begin
      let next = Atomic.make 0 in
      let failure : (int * exn) option Atomic.t = Atomic.make None in
      (* Keep the failure with the smallest task index so the exception
         that propagates does not depend on worker timing. *)
      let rec note_failure i exn =
        match Atomic.get failure with
        | Some (j, _) when j <= i -> ()
        | cur ->
            if not (Atomic.compare_and_set failure cur (Some (i, exn))) then
              note_failure i exn
      in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= tasks || Atomic.get failure <> None then continue := false
          else if not (skip i) then (
            match f i with
            | v -> results.(i) <- Some v
            | exception exn -> note_failure i exn)
        done
      in
      let n = min jobs tasks in
      let domains = Array.init (n - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      (match Atomic.get failure with Some (_, exn) -> raise exn | None -> ());
      results
    end
  end

(* ------------------------------------------------------------------ *)
(* Work-stealing deques                                                 *)
(* ------------------------------------------------------------------ *)

(* A fixed-capacity circular deque. The owner pushes and pops at
   [bottom]; thieves advance [top] by CAS. Slot reuse is safe because a
   push refuses to wrap onto an index a thief could still be reading:
   overwriting slot [t mod cap] requires [bottom - top >= cap], which
   requires [top] to have moved past [t] — and any thief still holding
   the old [t] then loses its CAS and discards what it read. *)
type 'w deque = {
  buf : 'w option Atomic.t array;
  dmask : int;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let deque_cap = 8192

let deque_create () =
  {
    buf = Array.init deque_cap (fun _ -> Atomic.make None);
    dmask = deque_cap - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let deque_push d w =
  let b = Atomic.get d.bottom and t = Atomic.get d.top in
  if b - t > d.dmask then false (* full: caller keeps the work inline *)
  else begin
    Atomic.set d.buf.(b land d.dmask) (Some w);
    Atomic.set d.bottom (b + 1);
    true
  end

let deque_pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    Atomic.set d.bottom t;
    None
  end
  else
    let slot = d.buf.(b land d.dmask) in
    let v = Atomic.get slot in
    if b > t then begin
      Atomic.set slot None;
      v
    end
    else begin
      (* Last element: race a thief for it through the top CAS. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then begin
        Atomic.set slot None;
        v
      end
      else None
    end

let deque_steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if b - t <= 0 then None
  else
    (* Publication order makes this non-[None]: the owner stores the
       slot before advancing [bottom], and we read the slot only after
       reading a [bottom] past it. *)
    let v = Atomic.get d.buf.(t land d.dmask) in
    if Atomic.compare_and_set d.top t (t + 1) then v else None

(* ------------------------------------------------------------------ *)
(* The dynamic pool                                                     *)
(* ------------------------------------------------------------------ *)

type 'w t = {
  deques : 'w deque array;
  pending : int Atomic.t;  (* items pushed but not yet fully executed *)
  starving : int Atomic.t;  (* workers currently looking for a steal *)
  stolen : int Atomic.t;
  first_exn : exn option Atomic.t;
  njobs : int;
}

let want_work p = p.njobs > 1 && Atomic.get p.starving > 0
let jobs p = p.njobs
let steals p = Atomic.get p.stolen

let push p ~worker w =
  Atomic.incr p.pending;
  if deque_push p.deques.(worker) w then true
  else begin
    Atomic.decr p.pending;
    false
  end

let note_exn p exn =
  let rec go () =
    match Atomic.get p.first_exn with
    | Some _ -> ()
    | None -> if not (Atomic.compare_and_set p.first_exn None (Some exn)) then go ()
  in
  go ()

(* xorshift: per-worker victim selection without [Random] (whose
   default state is domain-local but seeded identically — fine either
   way, this is cheaper and dependency-free). *)
let rng_next st =
  let x = !st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  st := x land max_int;
  !st

let worker_loop p f w =
  let my = p.deques.(w) in
  let rng = ref ((w + 1) * 0x9e3779b9) in
  let run_item it =
    (if Atomic.get p.first_exn = None then
       match f p ~worker:w it with
       | () -> ()
       | exception exn -> note_exn p exn);
    Atomic.decr p.pending
  in
  let rec main () =
    match deque_pop my with
    | Some it ->
        run_item it;
        main ()
    | None ->
        if Atomic.get p.pending > 0 then begin
          Atomic.incr p.starving;
          let got = steal_loop () in
          Atomic.decr p.starving;
          match got with
          | Some it ->
              Atomic.incr p.stolen;
              run_item it;
              main ()
          | None -> () (* pending hit 0: global quiescence *)
        end
  and steal_loop () =
    if Atomic.get p.pending = 0 then None
    else begin
      let v = rng_next rng mod p.njobs in
      match if v = w then None else deque_steal p.deques.(v) with
      | Some _ as got -> got
      | None ->
          (* Only the owner pushes to a deque, so ours cannot have
             refilled while we steal — just relax and try another
             victim until quiescence. *)
          Domain.cpu_relax ();
          steal_loop ()
    end
  in
  main ()

let run_dynamic (type w) ~jobs ?(oversubscribe = false) ~(roots : w list)
    (f : w t -> worker:int -> w -> unit) : w t =
  if jobs < 1 then invalid_arg "Par.run_dynamic: jobs must be >= 1";
  let njobs =
    if oversubscribe then jobs
    else min jobs (Domain.recommended_domain_count ())
  in
  let p =
    {
      deques = Array.init njobs (fun _ -> deque_create ());
      pending = Atomic.make 0;
      starving = Atomic.make 0;
      stolen = Atomic.make 0;
      first_exn = Atomic.make None;
      njobs;
    }
  in
  (* Seed worker 0: with the explorer's single root this preserves the
     sequential depth-first order exactly when [njobs = 1] (no thieves,
     [want_work] always false, so the caller never splits). *)
  List.iter
    (fun r ->
      Atomic.incr p.pending;
      if not (deque_push p.deques.(0) r) then
        invalid_arg "Par.run_dynamic: more roots than deque capacity")
    roots;
  if njobs = 1 then worker_loop p f 0
  else begin
    let domains =
      Array.init (njobs - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop p f (i + 1)))
    in
    worker_loop p f 0;
    Array.iter Domain.join domains
  end;
  (match Atomic.get p.first_exn with Some exn -> raise exn | None -> ());
  p
