(** A zero-dependency work-sharing pool over stdlib [Domain].

    Tasks are indexed [0 .. tasks-1] and claimed through one atomic
    counter; with [jobs = 1] (or a single task) everything runs inline
    on the calling domain in index order, so the sequential path spawns
    nothing.

    The pool promises nothing about the order tasks run in. Callers
    needing deterministic output must make each task independent and
    merge results in task-index order ({!Explore} does exactly this).

    Must not be called from inside one of its own workers. *)

val run :
  jobs:int ->
  ?oversubscribe:bool ->
  ?skip:(int -> bool) ->
  tasks:int ->
  (int -> 'a) ->
  'a option array
(** [run ~jobs ~tasks f] evaluates [f i] for each [i] in
    [0 .. tasks-1] on up to [jobs] domains (the caller counts as one)
    and returns the results slot-per-task. [jobs] is capped at
    [Domain.recommended_domain_count ()] — extra domains on a saturated
    machine only add GC synchronisation — unless [oversubscribe] is set
    (default false; meant for tests that must exercise the multi-domain
    paths on any host). A slot is [None] iff the task was skipped:
    [skip i] is consulted when the task is claimed — use it with an
    [Atomic.t] bound for cooperative early abort.

    If a task raises, workers stop claiming new tasks and the exception
    with the smallest task index is re-raised after all domains join,
    so the propagated exception does not depend on worker timing. *)
