(** A zero-dependency multicore pool over stdlib [Domain], in two
    flavours: an indexed task farm ({!run}) for pre-sliced uniform
    work, and a work-stealing pool ({!run_dynamic}) for work that
    splits as it runs.

    Neither pool promises anything about the order work runs in.
    Callers needing deterministic output must make per-item results
    order-independent and merge canonically ({!Explore} merges in
    task-index order under {!run}, and relies on a closure argument —
    the set of expanded states is schedule-independent — under
    {!run_dynamic}).

    Must not be called from inside one of its own workers. *)

val run :
  jobs:int ->
  ?oversubscribe:bool ->
  ?skip:(int -> bool) ->
  tasks:int ->
  (int -> 'a) ->
  'a option array
(** [run ~jobs ~tasks f] evaluates [f i] for each [i] in
    [0 .. tasks-1] on up to [jobs] domains (the caller counts as one)
    and returns the results slot-per-task. [jobs] is capped at
    [Domain.recommended_domain_count ()] — extra domains on a saturated
    machine only add GC synchronisation — unless [oversubscribe] is set
    (default false; meant for tests that must exercise the multi-domain
    paths on any host). A slot is [None] iff the task was skipped:
    [skip i] is consulted when the task is claimed — use it with an
    [Atomic.t] bound for cooperative early abort.

    [tasks = 0] returns the empty array without allocating or spawning;
    if [skip] admits no task at entry, the all-[None] array is returned
    without spawning domains.

    If a task raises, workers stop claiming new tasks and the exception
    with the smallest task index is re-raised after all domains join,
    so the propagated exception does not depend on worker timing. *)

(** {1 Work-stealing pool} *)

type 'w t
(** A running pool of work-stealing deques, passed to the worker
    function so it can split ({!push}) and probe saturation
    ({!want_work}). After {!run_dynamic} returns, the handle is inert
    and only good for reading {!steals}. *)

val run_dynamic :
  jobs:int ->
  ?oversubscribe:bool ->
  roots:'w list ->
  ('w t -> worker:int -> 'w -> unit) ->
  'w t
(** [run_dynamic ~jobs ~roots f] seeds worker 0's deque with [roots]
    and runs [f pool ~worker item] for every item until global
    quiescence (no queued items, none executing). Each worker owns a
    bounded Chase-Lev-style deque — the owner pushes and pops LIFO at
    the bottom, idle workers steal FIFO from a random victim's top —
    so with [jobs = 1] and a single root the items run in exact
    depth-first order and no domain is spawned. [jobs] is capped like
    {!run} unless [oversubscribe].

    [f] may call {!push} to add work and {!want_work} to learn whether
    any sibling is starving (the explorer's split heuristic). If [f]
    raises, the first exception (by wall clock — pair it with your own
    abort flag if you need a deterministic winner) is re-raised after
    every worker drains; remaining items are discarded unexecuted. *)

val push : 'w t -> worker:int -> 'w -> bool
(** [push pool ~worker w] queues [w] on [worker]'s own deque (call it
    only from that worker). [false] if the deque is full — the caller
    then keeps the work and runs it inline. *)

val want_work : 'w t -> bool
(** True when some worker is currently hunting for a steal — the cue to
    split off shareable work. Always false when [jobs = 1]. *)

val jobs : 'w t -> int
(** The effective worker count after capping. *)

val steals : 'w t -> int
(** Items obtained by stealing so far (total across workers). Timing-
    dependent; read it after {!run_dynamic} returns for reporting. *)
