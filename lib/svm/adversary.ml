type t = {
  name : string;
  pick : runnable:int list -> global_step:int -> int;
  crash_now :
    pid:int -> local_step:int -> global_step:int -> next:Op.info option -> bool;
  crashes : int ref;
}

let name t = t.name
let pick t = t.pick

let crash_now t ~pid ~local_step ~global_step ~next =
  let c = t.crash_now ~pid ~local_step ~global_step ~next in
  if c then incr t.crashes;
  c

let crash_count t = !(t.crashes)
let no_crash ~pid:_ ~local_step:_ ~global_step:_ ~next:_ = false

let round_robin () =
  let last = ref (-1) in
  let pick ~runnable ~global_step:_ =
    let after = List.filter (fun p -> p > !last) runnable in
    let chosen =
      match after with
      | p :: _ -> p
      | [] -> ( match runnable with p :: _ -> p | [] -> assert false)
    in
    last := chosen;
    chosen
  in
  { name = "round-robin"; pick; crash_now = no_crash; crashes = ref 0 }

let random ~seed =
  let rng = Rng.create seed in
  let pick ~runnable ~global_step:_ =
    List.nth runnable (Rng.int rng (List.length runnable))
  in
  {
    name = Printf.sprintf "random(%d)" seed;
    pick;
    crash_now = no_crash;
    crashes = ref 0;
  }

let priority order =
  let rank p =
    let rec idx i = function
      | [] -> List.length order + p
      | q :: rest -> if q = p then i else idx (i + 1) rest
    in
    idx 0 order
  in
  let pick ~runnable ~global_step:_ =
    match runnable with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun best p -> if rank p < rank best then p else best)
          first rest
  in
  { name = "priority"; pick; crash_now = no_crash; crashes = ref 0 }

let biased ~seed ~favourite ~weight =
  let rng = Rng.create seed in
  let pick ~runnable ~global_step:_ =
    let expanded =
      List.concat_map
        (fun p -> if p = favourite then List.init weight (fun _ -> p) else [ p ])
        runnable
    in
    List.nth expanded (Rng.int rng (List.length expanded))
  in
  {
    name = Printf.sprintf "biased(%d,fav=%d)" seed favourite;
    pick;
    crash_now = no_crash;
    crashes = ref 0;
  }

type crash_spec =
  | Crash_at_local of { pid : int; step : int }
  | Crash_at_global of { pid : int; step : int }
  | Crash_before_op of { pid : int; nth : int; matches : Op.info -> bool }

let with_crashes base specs =
  (* Mutable per-spec state: fired flag, and a match counter for
     [Crash_before_op]. *)
  let states = List.map (fun spec -> (spec, ref false, ref 0)) specs in
  let crash_now ~pid ~local_step ~global_step ~next =
    let fires (spec, fired, seen) =
      if !fired then false
      else
        let hit =
          match spec with
          | Crash_at_local c -> c.pid = pid && c.step = local_step
          | Crash_at_global c -> c.pid = pid && global_step >= c.step
          | Crash_before_op c -> (
              c.pid = pid
              &&
              match next with
              | Some info when c.matches info ->
                  let n = !seen in
                  incr seen;
                  n = c.nth
              | Some _ | None -> false)
        in
        if hit then fired := true;
        hit
    in
    (* Evaluate all specs so match counters advance even when another
       spec fires first. *)
    List.fold_left (fun acc st -> fires st || acc) false states
    || base.crash_now ~pid ~local_step ~global_step ~next
  in
  {
    name = base.name ^ "+crashes";
    pick = base.pick;
    crash_now;
    crashes = base.crashes;
  }

let of_replay ?fallback decisions =
  let fallback = match fallback with Some f -> f | None -> round_robin () in
  let remaining = ref decisions in
  let current () = match !remaining with [] -> None | d :: _ -> Some d in
  let pick ~runnable ~global_step =
    match current () with
    | Some (Trace.Sched p | Trace.Crash p) when List.mem p runnable -> p
    | Some _ | None -> fallback.pick ~runnable ~global_step
  in
  (* The scheduler asks [pick] then [crash_now] exactly once per
     iteration; the cursor advances in [crash_now], the second call. *)
  let crash_now ~pid ~local_step ~global_step ~next =
    match current () with
    | None -> fallback.crash_now ~pid ~local_step ~global_step ~next
    | Some d -> (
        remaining := List.tl !remaining;
        match d with
        | Trace.Crash p -> p = pid
        | Trace.Sched _ -> false)
  in
  { name = "replay"; pick; crash_now; crashes = ref 0 }

let random_crashes ?(within = 300) ~seed ~max_crashes ~nprocs base =
  let rng = Rng.create seed in
  let victims = ref [] in
  let n = min max_crashes nprocs in
  while List.length !victims < n do
    let v = Rng.int rng nprocs in
    if not (List.mem v !victims) then victims := v :: !victims
  done;
  let specs =
    List.map
      (fun pid -> Crash_at_local { pid; step = Rng.int rng within })
      !victims
  in
  with_crashes base specs
