exception Deadlock

type fault_kind = Crash_stop | Omission | Crash_recovery | Byzantine

let fault_kind_name = function
  | Crash_stop -> "crash"
  | Omission -> "omission"
  | Crash_recovery -> "recovery"
  | Byzantine -> "byzantine"

let fault_kind_of_name = function
  | "crash" | "crash-stop" -> Some Crash_stop
  | "omission" | "omit" -> Some Omission
  | "recovery" | "crash-recovery" | "restart" -> Some Crash_recovery
  | "byzantine" | "byz" -> Some Byzantine
  | _ -> None

let pp_fault_kind ppf k = Format.pp_print_string ppf (fault_kind_name k)

type t = {
  name : string;
  pick : runnable:int list -> global_step:int -> int;
  fault_now :
    pid:int ->
    local_step:int ->
    global_step:int ->
    next:Op.info option ->
    fault_kind option;
  crashes : int ref;
}

let name t = t.name

let pick t ~runnable ~global_step =
  if runnable = [] then raise Deadlock;
  t.pick ~runnable ~global_step

let fault_now t ~pid ~local_step ~global_step ~next =
  let f = t.fault_now ~pid ~local_step ~global_step ~next in
  (match f with Some Crash_stop -> incr t.crashes | Some _ | None -> ());
  f

let crash_now t ~pid ~local_step ~global_step ~next =
  match fault_now t ~pid ~local_step ~global_step ~next with
  | Some Crash_stop -> true
  | Some _ | None -> false

let crash_count t = !(t.crashes)
let no_fault ~pid:_ ~local_step:_ ~global_step:_ ~next:_ = None

(* The adversary's corrupt value for a Byzantine step: derived from the
   schedule position alone, so a replay of the same decision log
   reproduces identical corrupt values. The offset keeps it far outside
   any input range the scenarios use. *)
let byz_value ~pid ~global_step =
  Codec.int.Codec.inj (1_000_000_000 + (global_step * 1_000) + pid)

let round_robin () =
  let last = ref (-1) in
  let pick ~runnable ~global_step:_ =
    let after = List.filter (fun p -> p > !last) runnable in
    let chosen =
      match after with
      | p :: _ -> p
      | [] -> ( match runnable with p :: _ -> p | [] -> raise Deadlock)
    in
    last := chosen;
    chosen
  in
  { name = "round-robin"; pick; fault_now = no_fault; crashes = ref 0 }

let random ~seed =
  let rng = Rng.create seed in
  let pick ~runnable ~global_step:_ =
    List.nth runnable (Rng.int rng (List.length runnable))
  in
  {
    name = Printf.sprintf "random(%d)" seed;
    pick;
    fault_now = no_fault;
    crashes = ref 0;
  }

let priority order =
  let rank p =
    let rec idx i = function
      | [] -> List.length order + p
      | q :: rest -> if q = p then i else idx (i + 1) rest
    in
    idx 0 order
  in
  let pick ~runnable ~global_step:_ =
    match runnable with
    | [] -> raise Deadlock
    | first :: rest ->
        List.fold_left
          (fun best p -> if rank p < rank best then p else best)
          first rest
  in
  { name = "priority"; pick; fault_now = no_fault; crashes = ref 0 }

let biased ~seed ~favourite ~weight =
  let rng = Rng.create seed in
  let pick ~runnable ~global_step:_ =
    let expanded =
      List.concat_map
        (fun p -> if p = favourite then List.init weight (fun _ -> p) else [ p ])
        runnable
    in
    List.nth expanded (Rng.int rng (List.length expanded))
  in
  {
    name = Printf.sprintf "biased(%d,fav=%d)" seed favourite;
    pick;
    fault_now = no_fault;
    crashes = ref 0;
  }

type crash_spec =
  | Crash_at_local of { pid : int; step : int }
  | Crash_at_global of { pid : int; step : int }
  | Crash_before_op of { pid : int; nth : int; matches : Op.info -> bool }

type fault_spec = { kind : fault_kind; trigger : crash_spec }

let with_faults base specs =
  (* Mutable per-spec state: fired flag, and a match counter for
     [Crash_before_op] triggers. A fired Byzantine spec latches its pid:
     from the trigger on, every step of that pid is a Byzantine step. *)
  let states = List.map (fun spec -> (spec, ref false, ref 0)) specs in
  let byz : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let fault_now ~pid ~local_step ~global_step ~next =
    let fires ({ trigger; _ }, fired, seen) =
      if !fired then false
      else
        let hit =
          match trigger with
          | Crash_at_local c -> c.pid = pid && c.step = local_step
          | Crash_at_global c -> c.pid = pid && global_step >= c.step
          | Crash_before_op c -> (
              c.pid = pid
              &&
              match next with
              | Some info when c.matches info ->
                  let n = !seen in
                  incr seen;
                  n = c.nth
              | Some _ | None -> false)
        in
        if hit then fired := true;
        hit
    in
    (* Evaluate all specs so match counters advance even when another
       spec fires first. *)
    let fired_kinds =
      List.filter_map
        (fun ((spec, _, _) as st) -> if fires st then Some spec.kind else None)
        states
    in
    List.iter
      (function Byzantine -> Hashtbl.replace byz pid () | _ -> ())
      fired_kinds;
    let candidates =
      fired_kinds
      @ Option.to_list (base.fault_now ~pid ~local_step ~global_step ~next)
    in
    let has k = List.mem k candidates in
    if has Crash_stop then Some Crash_stop
    else if has Omission then Some Omission
    else if has Crash_recovery then Some Crash_recovery
    else if has Byzantine || Hashtbl.mem byz pid then Some Byzantine
    else None
  in
  {
    name = base.name ^ "+faults";
    pick = base.pick;
    fault_now;
    crashes = base.crashes;
  }

let with_crashes base specs =
  let adv =
    with_faults base
      (List.map (fun trigger -> { kind = Crash_stop; trigger }) specs)
  in
  { adv with name = base.name ^ "+crashes" }

let of_replay ?fallback decisions =
  let fallback = match fallback with Some f -> f | None -> round_robin () in
  let remaining = ref decisions in
  let current () = match !remaining with [] -> None | d :: _ -> Some d in
  let decision_pid = function
    | Trace.Sched p | Trace.Crash p | Trace.Omit p | Trace.Restart p
    | Trace.Byz p ->
        p
  in
  let pick ~runnable ~global_step =
    match current () with
    | Some d when List.mem (decision_pid d) runnable -> decision_pid d
    | Some _ | None -> fallback.pick ~runnable ~global_step
  in
  (* The scheduler asks [pick] then [fault_now] exactly once per
     iteration; the cursor advances in [fault_now], the second call. *)
  let fault_now ~pid ~local_step ~global_step ~next =
    match current () with
    | None -> fallback.fault_now ~pid ~local_step ~global_step ~next
    | Some d -> (
        remaining := List.tl !remaining;
        if decision_pid d <> pid then None
        else
          match d with
          | Trace.Sched _ -> None
          | Trace.Crash _ -> Some Crash_stop
          | Trace.Omit _ -> Some Omission
          | Trace.Restart _ -> Some Crash_recovery
          | Trace.Byz _ -> Some Byzantine)
  in
  { name = "replay"; pick; fault_now; crashes = ref 0 }

(* Shared derivation for the random fault planners: up to [max] distinct
   victims, each struck at a uniformly drawn local step, kinds drawn
   uniformly from [kinds]. Deterministic in [seed]. *)
let random_plan ?(within = 300) ~seed ~max ~kinds ~nprocs () =
  let rng = Rng.create seed in
  let victims = ref [] in
  let n = min max nprocs in
  while List.length !victims < n do
    let v = Rng.int rng nprocs in
    if not (List.mem v !victims) then victims := v :: !victims
  done;
  List.map
    (fun pid ->
      let kind =
        match kinds with
        | [] -> Crash_stop
        | [ k ] -> k
        | ks -> List.nth ks (Rng.int rng (List.length ks))
      in
      (pid, Rng.int rng within, kind))
    !victims

let random_fault_plan ?within ~seed ~max_faults ~kinds ~nprocs () =
  random_plan ?within ~seed ~max:max_faults ~kinds ~nprocs ()

let random_crashes ?within ~seed ~max_crashes ~nprocs base =
  let specs =
    List.map
      (fun (pid, step, _) -> Crash_at_local { pid; step })
      (random_plan ?within ~seed ~max:max_crashes ~kinds:[ Crash_stop ] ~nprocs
         ())
  in
  with_crashes base specs

let random_faults ?within ~seed ~max_faults ~kinds ~nprocs base =
  let specs =
    List.map
      (fun (pid, step, kind) ->
        { kind; trigger = Crash_at_local { pid; step } })
      (random_plan ?within ~seed ~max:max_faults ~kinds ~nprocs ())
  in
  with_faults base specs
