(** Event traces: the linearization order of a run, plus the decision log
    that makes the run replayable.

    Each executed operation is one event; the order of events is exactly
    the linearization of the run (operations are atomic steps).

    Separately from events (which may be truncated to a size limit), a
    trace records every {e scheduler decision} — which process was picked
    and whether it crashed — one per scheduler iteration. The decision
    log is never truncated: it is the complete seed of the run, and
    {!Adversary.of_replay} can re-drive the scheduler from it
    bit-for-bit. {!to_replay}/{!parse_replay} serialize it, with optional
    metadata, as a compact replay artifact. *)

type event = { step : int; pid : int; info : Op.info option }
(** [info] is [None] for [Yield] steps and for crash events. *)

type t

val create : ?limit:int -> unit -> t
(** Keeps at most [limit] events (default 100_000); older events are
    dropped, [dropped] reports how many. *)

val add : t -> event -> unit
val events : t -> event list
(** In execution order. *)

val dropped : t -> int
val length : t -> int
val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
(** Prints the kept events; a truncated trace is announced by a leading
    [\[trace truncated: ...\]] line rather than rendered as if it were
    complete. *)

(** {1 Scheduler decisions and replay artifacts} *)

type decision =
  | Sched of int  (** the pid executed (or harvested) one step *)
  | Crash of int  (** the pid was crashed instead *)
  | Omit of int
      (** responsive omission: the pid's next operation hangs forever —
          the process is stuck from this point on, not crashed *)
  | Restart of int
      (** crash-recovery: the pid lost its local program state at this
          step boundary and re-runs its program from the top; shared
          memory survives *)
  | Byz of int
      (** the pid executed one operation with its written/proposed value
          replaced by the adversary's (deterministic, schedule-derived)
          corrupt value *)

val record_decision : t -> decision -> unit
val decisions : t -> decision list
(** In execution order; one per scheduler iteration, never truncated. *)

val decision_count : t -> int

val to_replay : ?meta:(string * string) list -> t -> string
(** Serialize the decision log as a replay artifact. [meta] entries are
    free-form [(key, value)] pairs (keys must be non-empty and contain no
    whitespace or ['=']; values no newlines) recording how to rebuild the
    run — scenario name, model parameters, the violation reproduced. The
    artifact ends with an [end <count>] trailer so truncation is
    detectable. *)

type parse_error = { line : int; message : string }
(** A malformed artifact, pointing at the offending (1-based) line. *)

val pp_parse_error : Format.formatter -> parse_error -> unit

val parse_replay :
  string -> ((string * string) list * decision list, parse_error) result
(** Inverse of {!to_replay}: [(meta, decisions)], or a typed parse error
    with the line number. Rejects unknown lines, bad tokens, and
    truncated artifacts (missing or mismatching [end] trailer).
    Version-1 artifacts (no trailer) are still accepted. *)

val pp_decision : Format.formatter -> decision -> unit
