(** Event traces: the linearization order of a run, plus the decision log
    that makes the run replayable.

    Each executed operation is one event; the order of events is exactly
    the linearization of the run (operations are atomic steps).

    Separately from events (which may be truncated to a size limit), a
    trace records every {e scheduler decision} — which process was picked
    and whether it crashed — one per scheduler iteration. The decision
    log is never truncated: it is the complete seed of the run, and
    {!Adversary.of_replay} can re-drive the scheduler from it
    bit-for-bit. {!to_replay}/{!parse_replay} serialize it, with optional
    metadata, as a compact replay artifact. *)

type event = { step : int; pid : int; info : Op.info option }
(** [info] is [None] for [Yield] steps and for crash events. *)

type t

val create : ?limit:int -> unit -> t
(** Keeps at most [limit] events (default 100_000); older events are
    dropped, [dropped] reports how many. *)

val add : t -> event -> unit
val events : t -> event list
(** In execution order. *)

val dropped : t -> int
val length : t -> int
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

(** {1 Scheduler decisions and replay artifacts} *)

type decision =
  | Sched of int  (** the pid executed (or harvested) one step *)
  | Crash of int  (** the pid was crashed instead *)

val record_decision : t -> decision -> unit
val decisions : t -> decision list
(** In execution order; one per scheduler iteration, never truncated. *)

val decision_count : t -> int

val to_replay : ?meta:(string * string) list -> t -> string
(** Serialize the decision log as a replay artifact. [meta] entries are
    free-form [(key, value)] pairs (keys must be non-empty and contain no
    whitespace or ['=']; values no newlines) recording how to rebuild the
    run — scenario name, model parameters, the violation reproduced. *)

val parse_replay : string -> ((string * string) list * decision list, string) result
(** Inverse of {!to_replay}: [(meta, decisions)], or a parse error. *)

val pp_decision : Format.formatter -> decision -> unit
