type 'a outcome = Decided of 'a | Crashed | Blocked | Stuck

type 'a result = {
  outcomes : 'a outcome array;
  op_counts : int array;
  total_steps : int;
  crashed : int list;
  stuck : int list;
  restarts : int list;
  trace : Trace.t option;
}

type 'a state = Running of 'a Prog.t | Finished of 'a outcome

let next_op_info (p : 'a Prog.t) =
  match p with Prog.Done _ -> None | Prog.Step (op, _) -> Op.info op

let outcome_name = function
  | Decided _ -> "decided"
  | Crashed -> "crashed"
  | Blocked -> "blocked"
  | Stuck -> "stuck"

(* Per-object telemetry accumulated during one run when a metrics
   registry is present: access count and the distinct pids seen per
   instance. Flushed into registry counters/gauges at the end of the
   run, so the per-op cost is one hashtable upsert. *)
type obj_stat = { mutable ops : int; mutable pids : int list }

let instance_label (info : Op.info) =
  Printf.sprintf "%s[%s]" info.Op.fam
    (String.concat ";" (List.map string_of_int info.Op.key))

let run ?(budget = 2_000_000) ?(record_trace = false) ?(monitors = []) ?metrics
    ~env ~adversary progs =
  let n = Array.length progs in
  if n <> Env.nprocs env then
    invalid_arg
      (Printf.sprintf "Exec.run: %d programs for an environment of %d processes"
         n (Env.nprocs env));
  let states = Array.map (fun p -> Running p) progs in
  let op_counts = Array.make n 0 in
  let crashed = ref [] in
  let stuck = ref [] in
  let restarts = ref [] in
  let byz_active = ref false in
  let trace = if record_trace then Some (Trace.create ()) else None in
  (* Telemetry: all per-op state lives behind the [metrics] option — the
     metrics-off path allocates nothing per op (guarded by the same
     match that the trace recorder uses). *)
  let mstate =
    match metrics with
    | None -> None
    | Some m -> Some (m, Hashtbl.create 32, Array.make n 0)
  in
  let note_op pid info corrupted =
    match mstate with
    | None -> ()
    | Some (m, objs, _) -> (
        (match info with
        | None -> Metrics.incr (Metrics.counter m "op.yield")
        | Some i ->
            Metrics.incr
              (Metrics.counter m ("op." ^ Op.kind_name i.Op.kind));
            let s =
              match Hashtbl.find_opt objs (i.Op.fam, i.Op.key) with
              | Some s -> s
              | None ->
                  let s = { ops = 0; pids = [] } in
                  Hashtbl.add objs (i.Op.fam, i.Op.key) s;
                  s
            in
            s.ops <- s.ops + 1;
            if not (List.mem pid s.pids) then s.pids <- pid :: s.pids);
        if corrupted then Metrics.incr (Metrics.counter m "op.corrupted"))
  in
  let note_sched pid =
    match mstate with
    | None -> ()
    | Some (_, _, scheds) -> scheds.(pid) <- scheds.(pid) + 1
  in
  let note_fault kind =
    match mstate with
    | None -> ()
    | Some (m, _, _) ->
        Metrics.incr
          (Metrics.counter m ("fault." ^ Adversary.fault_kind_name kind))
  in
  let record step pid info =
    match trace with
    | None -> ()
    | Some t -> Trace.add t { Trace.step; pid; info }
  in
  let decided d =
    match trace with None -> () | Some t -> Trace.record_decision t d
  in
  let monitor pid step event =
    List.iter
      (fun m ->
        match Monitor.check m event with
        | Ok () -> ()
        | Error message ->
            raise
              (Monitor.Violation
                 { Monitor.monitor = Monitor.name m; message; step; pid; trace }))
      monitors
  in
  let runnable () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match states.(i) with
      | Running _ -> acc := i :: !acc
      | Finished _ -> ()
    done;
    !acc
  in
  let step = ref 0 in
  let continue = ref true in
  (* Flush the accumulated telemetry into the registry. Called on normal
     completion and before a monitor violation propagates, so a
     violating replay still snapshots its partial run (deterministically:
     the same replay violates at the same step with the same tallies). *)
  let flush_metrics () =
    match mstate with
    | None -> ()
    | Some (m, objs, scheds) ->
        Metrics.incr (Metrics.counter m "run.count");
        Metrics.observe (Metrics.histogram m "run.steps") !step;
        let ops_h = Metrics.histogram m "proc.ops" in
        let steps_h = Metrics.histogram m "proc.steps" in
        for pid = 0 to n - 1 do
          Metrics.observe ops_h op_counts.(pid);
          Metrics.observe steps_h scheds.(pid)
        done;
        Array.iter
          (fun s ->
            let o = match s with Running _ -> Blocked | Finished o -> o in
            Metrics.incr (Metrics.counter m ("outcome." ^ outcome_name o)))
          states;
        (* Deterministic flush order: instances sorted by label. *)
        Hashtbl.fold
          (fun (fam, key) s acc ->
            (instance_label { Op.kind = Op.Register; fam; key }, s) :: acc)
          objs []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.iter (fun (label, s) ->
               Metrics.incr ~by:s.ops (Metrics.counter m ("obj.ops." ^ label));
               Metrics.set_max
                 (Metrics.gauge m ("obj.pids." ^ label))
                 (List.length s.pids))
  in
  (* Advance [pid] past one executed operation. A continuation may choke
     decoding a Byzantine value planted earlier ([Codec.Type_error]); the
     poisoned process halts — stuck, deterministically — rather than
     aborting the run. Only tolerated once corruption happened: on
     fault-free runs a decode error is a real bug and propagates. *)
  let advance pid k r info =
    match k r with
    | next -> states.(pid) <- Running next
    | exception Codec.Type_error _ when !byz_active ->
        states.(pid) <- Finished Stuck;
        stuck := pid :: !stuck;
        monitor pid !step (Monitor.Stalled { pid; step = !step; info })
  in
  (try
     while !continue && !step < budget do
    match runnable () with
    | [] -> continue := false
    | live ->
        let pid = Adversary.pick adversary ~runnable:live ~global_step:!step in
        note_sched pid;
        (match states.(pid) with
        | Finished _ ->
            invalid_arg "Exec.run: adversary picked a non-runnable process"
        | Running prog -> (
            let next = next_op_info prog in
            let fault =
              Adversary.fault_now adversary ~pid ~local_step:op_counts.(pid)
                ~global_step:!step ~next
            in
            match fault with
            | Some Adversary.Crash_stop ->
                states.(pid) <- Finished Crashed;
                note_fault Adversary.Crash_stop;
                crashed := pid :: !crashed;
                decided (Trace.Crash pid);
                record !step pid None;
                monitor pid !step (Monitor.Crashed { pid; step = !step })
            | Some Adversary.Omission ->
                states.(pid) <- Finished Stuck;
                note_fault Adversary.Omission;
                stuck := pid :: !stuck;
                decided (Trace.Omit pid);
                record !step pid None;
                monitor pid !step
                  (Monitor.Stalled { pid; step = !step; info = next })
            | Some Adversary.Crash_recovery ->
                (* Local [Prog] state is lost; shared memory survives.
                   The pending operation does not execute. *)
                states.(pid) <- Running progs.(pid);
                note_fault Adversary.Crash_recovery;
                restarts := pid :: !restarts;
                decided (Trace.Restart pid);
                record !step pid None;
                monitor pid !step (Monitor.Restarted { pid; step = !step })
            | (Some Adversary.Byzantine | None) as fault -> (
                match prog with
                | Prog.Done v ->
                    decided (Trace.Sched pid);
                    states.(pid) <- Finished (Decided v);
                    monitor pid !step
                      (Monitor.Decided { pid; step = !step; value = v })
                | Prog.Step (op, k) -> (
                    let info = Op.info op in
                    let corrupted =
                      match fault with
                      | Some Adversary.Byzantine ->
                          Op.corrupt op
                            (Adversary.byz_value ~pid ~global_step:!step)
                      | _ -> None
                    in
                    match corrupted with
                    | Some op' ->
                        byz_active := true;
                        note_fault Adversary.Byzantine;
                        note_op pid info true;
                        decided (Trace.Byz pid);
                        let r = Env.apply env ~pid op' in
                        op_counts.(pid) <- op_counts.(pid) + 1;
                        record !step pid info;
                        monitor pid !step
                          (Monitor.Corrupted { pid; step = !step; info });
                        advance pid k r info
                    | None ->
                        note_op pid info false;
                        decided (Trace.Sched pid);
                        let r = Env.apply env ~pid op in
                        op_counts.(pid) <- op_counts.(pid) + 1;
                        record !step pid info;
                        monitor pid !step
                          (Monitor.Op_applied { pid; step = !step; info });
                        advance pid k r info))));
        incr step
     done
   with Monitor.Violation _ as e ->
     flush_metrics ();
     raise e);
  flush_metrics ();
  let outcomes =
    Array.map
      (function Running _ -> Blocked | Finished o -> o)
      states
  in
  {
    outcomes;
    op_counts;
    total_steps = !step;
    crashed = List.rev !crashed;
    stuck = List.rev !stuck;
    restarts = List.rev !restarts;
    trace;
  }

let decided r =
  Array.to_list r.outcomes
  |> List.filter_map (function
       | Decided v -> Some v
       | Crashed | Blocked | Stuck -> None)

let decided_count r = List.length (decided r)

let blocked r =
  let acc = ref [] in
  Array.iteri
    (fun i -> function
      | Blocked -> acc := i :: !acc
      | Decided _ | Crashed | Stuck -> ())
    r.outcomes;
  List.rev !acc
