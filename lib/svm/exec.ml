type 'a outcome = Decided of 'a | Crashed | Blocked

type 'a result = {
  outcomes : 'a outcome array;
  op_counts : int array;
  total_steps : int;
  crashed : int list;
  trace : Trace.t option;
}

type 'a state = Running of 'a Prog.t | Finished of 'a outcome

let next_op_info (p : 'a Prog.t) =
  match p with Prog.Done _ -> None | Prog.Step (op, _) -> Op.info op

let run ?(budget = 2_000_000) ?(record_trace = false) ?(monitors = []) ~env
    ~adversary progs =
  let n = Array.length progs in
  if n <> Env.nprocs env then
    invalid_arg
      (Printf.sprintf "Exec.run: %d programs for an environment of %d processes"
         n (Env.nprocs env));
  let states = Array.map (fun p -> Running p) progs in
  let op_counts = Array.make n 0 in
  let crashed = ref [] in
  let trace = if record_trace then Some (Trace.create ()) else None in
  let record step pid info =
    match trace with
    | None -> ()
    | Some t -> Trace.add t { Trace.step; pid; info }
  in
  let decided d =
    match trace with None -> () | Some t -> Trace.record_decision t d
  in
  let monitor pid step event =
    List.iter
      (fun m ->
        match Monitor.check m event with
        | Ok () -> ()
        | Error message ->
            raise
              (Monitor.Violation
                 { Monitor.monitor = Monitor.name m; message; step; pid; trace }))
      monitors
  in
  let runnable () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match states.(i) with
      | Running _ -> acc := i :: !acc
      | Finished _ -> ()
    done;
    !acc
  in
  let step = ref 0 in
  let continue = ref true in
  while !continue && !step < budget do
    match runnable () with
    | [] -> continue := false
    | live ->
        let pid = Adversary.pick adversary ~runnable:live ~global_step:!step in
        (match states.(pid) with
        | Finished _ ->
            invalid_arg "Exec.run: adversary picked a non-runnable process"
        | Running prog ->
            let next = next_op_info prog in
            if
              Adversary.crash_now adversary ~pid ~local_step:op_counts.(pid)
                ~global_step:!step ~next
            then begin
              states.(pid) <- Finished Crashed;
              crashed := pid :: !crashed;
              decided (Trace.Crash pid);
              record !step pid None;
              monitor pid !step (Monitor.Crashed { pid; step = !step })
            end
            else begin
              decided (Trace.Sched pid);
              match prog with
              | Prog.Done v ->
                  states.(pid) <- Finished (Decided v);
                  monitor pid !step
                    (Monitor.Decided { pid; step = !step; value = v })
              | Prog.Step (op, k) ->
                  let r = Env.apply env ~pid op in
                  op_counts.(pid) <- op_counts.(pid) + 1;
                  record !step pid (Op.info op);
                  states.(pid) <- Running (k r);
                  monitor pid !step
                    (Monitor.Op_applied
                       { pid; step = !step; info = Op.info op })
            end);
        incr step
  done;
  let outcomes =
    Array.map
      (function Running _ -> Blocked | Finished o -> o)
      states
  in
  {
    outcomes;
    op_counts;
    total_steps = !step;
    crashed = List.rev !crashed;
    trace;
  }

let decided r =
  Array.to_list r.outcomes
  |> List.filter_map (function Decided v -> Some v | Crashed | Blocked -> None)

let decided_count r = List.length (decided r)

let blocked r =
  let acc = ref [] in
  Array.iteri
    (fun i -> function Blocked -> acc := i :: !acc | Decided _ | Crashed -> ())
    r.outcomes;
  List.rev !acc

let outcome_name = function
  | Decided _ -> "decided"
  | Crashed -> "crashed"
  | Blocked -> "blocked"
