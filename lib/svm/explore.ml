type 'a run = {
  outcomes : 'a Exec.outcome array;
  crashed : int list;
  truncated : bool;
  schedule : string;
}

type 'a result = {
  explored : int;
  counterexample : ('a run * string) option;
  exhausted_budget : bool;
}

type 'a pstate = Running of 'a Prog.t | Done of 'a | Crashed

type choice = Step of int | Crash of int

let pp_choice = function
  | Step p -> string_of_int p
  | Crash p -> Printf.sprintf "X%d" p

let schedule_string rev_choices =
  String.concat "." (List.rev_map pp_choice rev_choices)

exception Found

let note metrics name =
  match metrics with
  | None -> ()
  | Some m -> Metrics.incr (Metrics.counter m name)

let heartbeat on_progress runs =
  match on_progress with None -> () | Some f -> f ~runs

let exhaustive ?(max_crashes = 0) ?(max_runs = 2_000_000) ?metrics ?on_progress
    ~max_steps ~make ~property () =
  let env0, progs = make () in
  let explored = ref 0 in
  let counterexample = ref None in
  let exhausted = ref false in
  let finish states crashed truncated rev_choices =
    let outcomes =
      Array.map
        (function
          | Running _ -> Exec.Blocked
          | Done v -> Exec.Decided v
          | Crashed -> Exec.Crashed)
        states
    in
    let run =
      {
        outcomes;
        crashed = List.rev crashed;
        truncated;
        schedule = schedule_string rev_choices;
      }
    in
    incr explored;
    note metrics "explore.runs";
    if truncated then note metrics "explore.truncated";
    heartbeat on_progress !explored;
    (match property run with
    | Ok () -> ()
    | Error msg ->
        counterexample := Some (run, msg);
        note metrics "explore.counterexamples";
        raise Found);
    if !explored >= max_runs then begin
      exhausted := true;
      raise Found
    end
  in
  (* Depth-first over choices. [states] is immutable per node (arrays are
     copied when branching); [env] is copied when branching. *)
  let rec dfs env states depth crashes crashed rev_choices =
    let live =
      Array.to_list states
      |> List.mapi (fun i s -> (i, s))
      |> List.filter_map (fun (i, s) ->
             match s with Running _ -> Some i | Done _ | Crashed -> None)
    in
    if live = [] then finish states crashed false rev_choices
    else if depth >= max_steps then finish states crashed true rev_choices
    else
      List.iter
        (fun pid ->
          (* Branch 1: pid executes one operation. *)
          (match states.(pid) with
          | Running prog ->
              let env' = Env.copy env in
              let states' = Array.copy states in
              (match prog with
              | Prog.Done v -> states'.(pid) <- Done v
              | Prog.Step (op, k) ->
                  let r = Env.apply env' ~pid op in
                  states'.(pid) <- Running (k r));
              dfs env' states' (depth + 1) crashes crashed
                (Step pid :: rev_choices)
          | Done _ | Crashed -> assert false);
          (* Branch 2: pid crashes instead. *)
          if crashes < max_crashes then begin
            let states' = Array.copy states in
            states'.(pid) <- Crashed;
            dfs (Env.copy env) states' (depth + 1) (crashes + 1)
              (pid :: crashed)
              (Crash pid :: rev_choices)
          end)
        live
  in
  (try dfs env0 (Array.map (fun p -> Running p) progs) 0 0 [] []
   with Found -> ());
  {
    explored = !explored;
    counterexample = !counterexample;
    exhausted_budget = !exhausted;
  }

(* ------------------------------------------------------------------ *)
(* Systematic fault-box sweeping under online monitors                  *)
(* ------------------------------------------------------------------ *)

type fault_point = { victim : int; op : int; kind : Adversary.fault_kind }

type fault_schedule = { scheduler : string; faults : fault_point list }

let pp_fault_point ppf { victim; op; kind } =
  Format.fprintf ppf "p%d@op%d%s" victim op
    (match kind with
    | Adversary.Crash_stop -> ""
    | k -> ":" ^ Adversary.fault_kind_name k)

let pp_fault_schedule ppf { scheduler; faults } =
  Format.fprintf ppf "%s + [%s]" scheduler
    (String.concat "; "
       (List.map (Format.asprintf "%a" pp_fault_point) faults))

type found = {
  fault : fault_schedule;
  shrunk : fault_schedule;
  violation : Monitor.violation;  (** from the run of the shrunk schedule *)
  shrink_runs : int;
  replay : string;
}

type sweep_outcome = {
  runs : int;
  found : found option;
  deadlock : fault_schedule option;
  exhausted : bool;
}

let default_schedulers ~nprocs =
  [
    ("round-robin", fun () -> Adversary.round_robin ());
    ("priority-asc", fun () -> Adversary.priority (List.init nprocs Fun.id));
    ( "priority-desc",
      fun () -> Adversary.priority (List.rev (List.init nprocs Fun.id)) );
    ("random(1)", fun () -> Adversary.random ~seed:1);
    ("random(2)", fun () -> Adversary.random ~seed:2);
  ]

type verdict = Clean | Deadlocked | Violating of Monitor.violation

let run_fault ?(budget = 20_000) ~make ~monitors ~scheduler faults =
  let env, progs = make () in
  let specs =
    List.map
      (fun { victim; op; kind } ->
        {
          Adversary.kind;
          trigger = Adversary.Crash_at_local { pid = victim; step = op };
        })
      faults
  in
  let adversary = Adversary.with_faults (scheduler ()) specs in
  match
    Exec.run ~budget ~record_trace:true ~monitors:(monitors ()) ~env ~adversary
      progs
  with
  | r ->
      (* "All processes stuck" is a finding of the omission tier, not a
         crash of the checker: the run ended with nobody decided and
         nobody even runnable. *)
      let halted =
        Array.for_all
          (function
            | Exec.Crashed | Exec.Stuck -> true
            | Exec.Decided _ | Exec.Blocked -> false)
          r.Exec.outcomes
      in
      if halted && r.Exec.stuck <> [] then Deadlocked else Clean
  | exception Monitor.Violation v -> Violating v
  | exception Adversary.Deadlock -> Deadlocked

(* Delta-debugging: drop fault points, then weaken surviving fault kinds
   toward plain crash-stop, then pull the op-indices toward 0, then
   collapse the scheduler to round-robin. Every candidate is validated by
   a full re-run and the last accepted (schedule, violation) pair is
   carried through, so the result is a genuine violating schedule with
   its own violation — no trailing re-run, no unreachable branch. *)
let shrink ?budget ~make ~monitors ~schedulers fault violation0 =
  let runs = ref 0 in
  let best = ref (fault, violation0) in
  let violates ~scheduler_name faults =
    incr runs;
    let scheduler = List.assoc scheduler_name schedulers in
    match run_fault ?budget ~make ~monitors ~scheduler faults with
    | Violating v ->
        best := ({ scheduler = scheduler_name; faults }, v);
        true
    | Clean | Deadlocked -> false
  in
  let sched = fault.scheduler in
  let rec drop_points faults =
    let rec attempt i =
      if i >= List.length faults then faults
      else
        let candidate = List.filteri (fun j _ -> j <> i) faults in
        if violates ~scheduler_name:sched candidate then drop_points candidate
        else attempt (i + 1)
    in
    attempt 0
  in
  let faults = drop_points fault.faults in
  let weaken_kinds faults =
    List.mapi
      (fun i p ->
        if p.kind = Adversary.Crash_stop then p
        else
          let weakened = { p with kind = Adversary.Crash_stop } in
          let candidate =
            List.mapi (fun j q -> if j = i then weakened else q) faults
          in
          if violates ~scheduler_name:sched candidate then weakened else p)
      faults
  in
  let faults = weaken_kinds faults in
  let lower_indices faults =
    List.mapi
      (fun i p ->
        let rec lowest cand =
          if cand >= p.op then p
          else
            let candidate =
              List.mapi
                (fun j q -> if j = i then { p with op = cand } else q)
                faults
            in
            if violates ~scheduler_name:sched candidate then { p with op = cand }
            else lowest (cand + 1)
        in
        lowest 0)
      faults
  in
  let faults = lower_indices faults in
  (if sched <> "round-robin" && List.mem_assoc "round-robin" schedulers then
     ignore (violates ~scheduler_name:"round-robin" faults : bool));
  let shrunk, violation = !best in
  (shrunk, violation, !runs)

let fault_sets ~nprocs ~kinds ~max_faults ~op_window =
  let kinds = match kinds with [] -> [ Adversary.Crash_stop ] | ks -> ks in
  let rec assignments = function
    | [] -> [ [] ]
    | pid :: rest ->
        let tails = assignments rest in
        List.concat_map
          (fun kind ->
            List.concat_map
              (fun op ->
                List.map (fun tl -> { victim = pid; op; kind } :: tl) tails)
              (List.init op_window Fun.id))
          kinds
  in
  let sizes = List.init (max 0 max_faults) (fun s -> s + 1) in
  [] (* the fault-free schedule first *)
  :: List.concat_map
       (fun size ->
         Combin.subsets ~n:nprocs ~size |> List.concat_map assignments)
       sizes

let sweep_faults ?(kinds = [ Adversary.Crash_stop ]) ?(max_faults = 1)
    ?(op_window = 6) ?(max_runs = 5_000) ?budget ?schedulers ?(meta = [])
    ?metrics ?on_progress ~make ~monitors () =
  let env0, _ = make () in
  let nprocs = Env.nprocs env0 in
  let schedulers =
    match schedulers with
    | Some s -> s
    | None -> default_schedulers ~nprocs
  in
  let fault_box = fault_sets ~nprocs ~kinds ~max_faults ~op_window in
  let runs = ref 0 in
  let found = ref None in
  let deadlock = ref None in
  let exhausted = ref false in
  (try
     List.iter
       (fun (sched_name, scheduler) ->
         List.iter
           (fun faults ->
             if !runs >= max_runs then begin
               exhausted := true;
               raise Found
             end;
             incr runs;
             note metrics "sweep.runs";
             heartbeat on_progress !runs;
             match run_fault ?budget ~make ~monitors ~scheduler faults with
             | Clean -> note metrics "sweep.verdict.clean"
             | Deadlocked ->
                 note metrics "sweep.verdict.deadlocked";
                 if !deadlock = None then
                   deadlock := Some { scheduler = sched_name; faults }
             | Violating v ->
                 note metrics "sweep.verdict.violating";
                 let fault = { scheduler = sched_name; faults } in
                 let shrunk, violation, shrink_runs =
                   shrink ?budget ~make ~monitors ~schedulers fault v
                 in
                 (match metrics with
                 | None -> ()
                 | Some m ->
                     Metrics.incr ~by:shrink_runs
                       (Metrics.counter m "sweep.shrink_runs"));
                 let replay =
                   let t =
                     match violation.Monitor.trace with
                     | Some t -> t
                     | None -> Trace.create () (* run_fault records traces *)
                   in
                   Trace.to_replay
                     ~meta:
                       (meta
                       @ [
                           ("monitor", violation.Monitor.monitor);
                           ("message", violation.Monitor.message);
                           ("step", string_of_int violation.Monitor.step);
                           ("pid", string_of_int violation.Monitor.pid);
                           ( "schedule",
                             Format.asprintf "%a" pp_fault_schedule shrunk );
                         ])
                     t
                 in
                 found := Some { fault; shrunk; violation; shrink_runs; replay };
                 raise Found)
           fault_box)
       schedulers
   with Found -> ());
  {
    runs = !runs;
    found = !found;
    deadlock = !deadlock;
    exhausted = !exhausted;
  }

let sweep_crashes ?max_crashes ?op_window ?max_runs ?budget ?schedulers ?meta
    ?metrics ?on_progress ~make ~monitors () =
  sweep_faults
    ~kinds:[ Adversary.Crash_stop ]
    ?max_faults:max_crashes ?op_window ?max_runs ?budget ?schedulers ?meta
    ?metrics ?on_progress ~make ~monitors ()

let replay ?budget ?metrics ~make ~monitors decisions =
  let env, progs = make () in
  let adversary = Adversary.of_replay decisions in
  match
    Exec.run ?budget ~record_trace:true ~monitors:(monitors ()) ?metrics ~env
      ~adversary progs
  with
  | r -> Ok r
  | exception Monitor.Violation v -> Error v
