type 'a run = {
  outcomes : 'a Exec.outcome array;
  crashed : int list;
  truncated : bool;
  schedule : string;
}

type 'a result = {
  explored : int;
  counterexample : ('a run * string) option;
  exhausted_budget : bool;
  pruned_states : int;
  pruned_commutes : int;
}

type 'a pstate = Running of 'a Prog.t | Done of 'a | Crashed

type choice = Step of int | Crash of int

let pp_choice = function
  | Step p -> string_of_int p
  | Crash p -> Printf.sprintf "X%d" p

let schedule_string rev_choices =
  String.concat "." (List.rev_map pp_choice rev_choices)

exception Found

let note metrics name =
  match metrics with
  | None -> ()
  | Some m -> Metrics.incr (Metrics.counter m name)

let note_by metrics name by =
  match metrics with
  | None -> ()
  | Some m -> Metrics.incr ~by (Metrics.counter m name)

let heartbeat on_progress runs =
  match on_progress with None -> () | Some f -> f ~runs

(* ------------------------------------------------------------------ *)
(* Fingerprints: op-result histories and canonical state keys           *)
(* ------------------------------------------------------------------ *)

(* A process's continuation is a closure, so it cannot be compared — but
   programs are deterministic values, so the continuation is a function
   of the sequence of op results the process has received. Histories of
   encoded results therefore stand in for continuations in state keys.
   The encoding is typed per op constructor: two histories can only
   compare equal position-by-position, and equal prefixes imply the next
   op (hence the next result's type) is the same, so the comparison
   never confuses values of different types. *)
type enc =
  | E_unit
  | E_bool of bool
  | E_univ of Univ.t
  | E_univ_opt of Univ.t option
  | E_scan of Univ.t option list

let encode_result : type r. r Op.t -> r -> enc =
 fun op r ->
  match op with
  | Op.Reg_read _ -> E_univ_opt r
  | Op.Reg_write _ -> E_unit
  | Op.Snap_set _ -> E_unit
  | Op.Snap_scan _ -> E_scan (Array.to_list r)
  | Op.Ts _ -> E_bool r
  | Op.Cons_propose _ -> E_univ r
  | Op.Kset_propose _ -> E_univ r
  | Op.Queue_enq _ -> E_unit
  | Op.Queue_deq _ -> E_univ_opt r
  | Op.Cas _ -> E_bool r
  | Op.Oracle_query _ -> E_univ r
  | Op.Yield -> E_unit

(* What a process's next operation touches; the basis of the
   commutation (independence) relation. Oracle queries are keyed by the
   querying pid because the environment tracks per-(family, pid) query
   counts — two different processes querying the same oracle touch
   different cells. *)
type footprint =
  | F_none
  | F_read of Op.fam * Op.key
  | F_write of Op.fam * Op.key
  | F_oracle of Op.fam * int

let footprint (type a) ~pid (prog : a Prog.t) =
  match prog with
  | Prog.Done _ -> F_none
  | Prog.Step (op, _) -> (
      match op with
      | Op.Yield -> F_none
      | Op.Reg_read (f, k) -> F_read (f, k)
      | Op.Snap_scan (f, k) -> F_read (f, k)
      | Op.Oracle_query (f, _) -> F_oracle (f, pid)
      | _ -> (
          match Op.info op with
          | Some i -> F_write (i.Op.fam, i.Op.key)
          | None -> F_none))

let fp_indep a b =
  match (a, b) with
  | F_none, _ | _, F_none -> true
  | F_oracle (f1, p1), F_oracle (f2, p2) -> not (String.equal f1 f2 && p1 = p2)
  | F_oracle _, _ | _, F_oracle _ -> true
  | F_read _, F_read _ -> true
  | (F_read (f1, k1) | F_write (f1, k1)), (F_read (f2, k2) | F_write (f2, k2))
    ->
      not (String.equal f1 f2 && k1 = k2)

(* Which sleeping transitions survive executing [Step t_pid] (whose
   pre-execution footprint is [fp_t])? A sleeping process has not moved
   since it entered the sleep set, so its footprint is read off its
   current state. Crashing commutes with another process's step (same
   final state, same crash order) but never with another crash (the
   [crashed] list records crash order, which properties may observe). *)
let sleep_filter states fp_t t_pid sleep =
  List.filter
    (fun u ->
      match u with
      | Crash q -> q <> t_pid
      | Step q -> (
          q <> t_pid
          &&
          match states.(q) with
          | Running p -> fp_indep (footprint ~pid:q p) fp_t
          | Done _ | Crashed -> false))
    sleep

let sleep_filter_crash t_pid sleep =
  List.filter
    (fun u -> match u with Crash _ -> false | Step q -> q <> t_pid)
    sleep

(* The visited-state key. Everything that determines the remainder of a
   run's record is in here: remaining depth budget (via [k_depth]),
   crash order so far, each process's status (with its op-result history
   standing in for its continuation), the canonical store, and the sleep
   set (a state revisited with a different sleep set explores a
   different transition subset, so it must not be deduplicated against
   the first visit — including the sleep set in the key is the standard
   conservative fix). Only the schedule string falls outside the key,
   which is why properties must not read it (see the .mli). *)
type 'a proc_key = K_running of enc list | K_done of 'a | K_crashed

type 'a vkey = {
  k_depth : int;
  k_crashed : int list;
  k_procs : 'a proc_key array;
  k_env : Env.canonical;
  k_sleep : choice list;
}

type 'a visited = (int, 'a vkey list) Hashtbl.t

(* Strong structural hash up front, exact (polymorphic) equality on the
   bucket — collisions cost a comparison, never a wrong answer. *)
let seen_or_add (tbl : 'a visited) (key : 'a vkey) =
  let h = Hashtbl.hash_param 1000 1000 key in
  match Hashtbl.find_opt tbl h with
  | Some keys when List.exists (fun k -> k = key) keys -> true
  | Some keys ->
      Hashtbl.replace tbl h (key :: keys);
      false
  | None ->
      Hashtbl.add tbl h [ key ];
      false

(* ------------------------------------------------------------------ *)
(* The DFS engine (undo-journal based, shared by all phases)            *)
(* ------------------------------------------------------------------ *)

type 'a ctx = {
  env : Env.t;
  states : 'a pstate array;
  histories : enc list array;
  max_steps : int;
  max_crashes : int;
  property : 'a run -> (unit, string) Stdlib.result;
  visited : 'a visited option; (* None = dedup and sleep sets off *)
  run_cap : int;
  mutable runs : int;
  mutable truncated : int;
  mutable cex : ('a run * string) option;
  mutable pruned_states : int;
  mutable pruned_commutes : int;
  mutable exhausted : bool;
}

exception Task_stop
exception Phase_stop

let make_key ctx depth rev_crashed sleep =
  {
    k_depth = depth;
    k_crashed = rev_crashed;
    k_procs =
      Array.mapi
        (fun i s ->
          match s with
          | Running _ -> K_running ctx.histories.(i)
          | Done v -> K_done v
          | Crashed -> K_crashed)
        ctx.states;
    k_env = Env.canonical ctx.env;
    k_sleep = List.sort compare sleep;
  }

let mk_run ctx ~truncated rev_crashed rev_choices =
  let outcomes =
    Array.map
      (function
        | Running _ -> Exec.Blocked
        | Done v -> Exec.Decided v
        | Crashed -> Exec.Crashed)
      ctx.states
  in
  {
    outcomes;
    crashed = List.rev rev_crashed;
    truncated;
    schedule = schedule_string rev_choices;
  }

(* Account one completed (or depth-truncated) run inside a task. Tasks
   carry no registry of their own — the merge accounts metrics from the
   per-task summaries, which is what lets a remote worker ship seven
   integers instead of a registry and still merge byte-identically. *)
let finish ctx ~truncated rev_crashed rev_choices =
  let run = mk_run ctx ~truncated rev_crashed rev_choices in
  ctx.runs <- ctx.runs + 1;
  if truncated then ctx.truncated <- ctx.truncated + 1;
  (match ctx.property run with
  | Ok () -> ()
  | Error msg ->
      ctx.cex <- Some (run, msg);
      raise Task_stop);
  if ctx.runs >= ctx.run_cap then begin
    ctx.exhausted <- true;
    raise Task_stop
  end

(* Depth-first over choices, mutating [ctx.env] in place and undoing via
   the journal. [frontier = Some (fd, capture)] stops expansion at depth
   [fd] and hands the node to [capture] instead (phase A); [on_run] is
   called for every terminal node that survives deduplication. *)
let rec dfs ctx ~frontier ~on_run depth crashes rev_crashed rev_choices sleep =
  let live =
    let rec go i acc =
      if i < 0 then acc
      else
        go (i - 1)
          (match ctx.states.(i) with
          | Running _ -> i :: acc
          | Done _ | Crashed -> acc)
    in
    go (Array.length ctx.states - 1) []
  in
  if live = [] || depth >= ctx.max_steps then begin
    (* Terminal. The sleep set is irrelevant here (no transitions), so
       key terminals with an empty one: equal end states reached under
       different sleep sets are still one run record. *)
    match ctx.visited with
    | Some tbl when seen_or_add tbl (make_key ctx depth rev_crashed []) ->
        ctx.pruned_states <- ctx.pruned_states + 1
    | _ -> on_run ~truncated:(live <> []) rev_crashed rev_choices
  end
  else
    match ctx.visited with
    | Some tbl when seen_or_add tbl (make_key ctx depth rev_crashed sleep) ->
        ctx.pruned_states <- ctx.pruned_states + 1
    | _ -> (
        match frontier with
        | Some (fd, capture) when depth >= fd ->
            capture ~depth ~crashes ~rev_crashed ~rev_choices ~sleep
        | _ ->
            let sleep = ref sleep in
            let sleeping t =
              ctx.visited <> None && List.mem t !sleep
            in
            List.iter
              (fun pid ->
                (* Branch 1: pid executes one operation. *)
                (match ctx.states.(pid) with
                | Running prog ->
                    let t = Step pid in
                    if sleeping t then
                      ctx.pruned_commutes <- ctx.pruned_commutes + 1
                    else begin
                      let fp_t = footprint ~pid prog in
                      let cp = Env.checkpoint ctx.env in
                      let saved_h = ctx.histories.(pid) in
                      (match prog with
                      | Prog.Done v -> ctx.states.(pid) <- Done v
                      | Prog.Step (op, k) ->
                          let r = Env.apply ctx.env ~pid op in
                          ctx.histories.(pid) <-
                            encode_result op r :: saved_h;
                          ctx.states.(pid) <- Running (k r));
                      let child_sleep =
                        if ctx.visited = None then []
                        else sleep_filter ctx.states fp_t pid !sleep
                      in
                      dfs ctx ~frontier ~on_run (depth + 1) crashes rev_crashed
                        (t :: rev_choices) child_sleep;
                      Env.rollback ctx.env cp;
                      ctx.states.(pid) <- Running prog;
                      ctx.histories.(pid) <- saved_h;
                      if ctx.visited <> None then sleep := t :: !sleep
                    end
                | Done _ | Crashed -> assert false);
                (* Branch 2: pid crashes instead. *)
                if crashes < ctx.max_crashes then begin
                  let t = Crash pid in
                  if sleeping t then
                    ctx.pruned_commutes <- ctx.pruned_commutes + 1
                  else begin
                    let saved = ctx.states.(pid) in
                    ctx.states.(pid) <- Crashed;
                    let child_sleep =
                      if ctx.visited = None then []
                      else sleep_filter_crash pid !sleep
                    in
                    dfs ctx ~frontier ~on_run (depth + 1) (crashes + 1)
                      (pid :: rev_crashed) (t :: rev_choices) child_sleep;
                    ctx.states.(pid) <- saved;
                    if ctx.visited <> None then sleep := t :: !sleep
                  end
                end)
              live)

(* ------------------------------------------------------------------ *)
(* Frontier tasks and deterministic merging                             *)
(* ------------------------------------------------------------------ *)

type 'a task_result = {
  t_runs : int;
  t_truncated : int;
  t_cex : ('a run * string) option;
  t_pruned_states : int;
  t_pruned_commutes : int;
  t_exhausted : bool;
}

(* A subtree root captured at the frontier: a private copy of the store
   plus everything needed to resume the DFS exactly where phase A left
   off. Workers own their subtree outright, so no cross-domain sharing
   of mutable state ever happens. *)
type 'a subtree = {
  s_env : Env.t;
  s_states : 'a pstate array;
  s_histories : enc list array;
  s_depth : int;
  s_crashes : int;
  s_rev_crashed : int list;
  s_rev_choices : choice list;
  s_sleep : choice list;
}

type 'a task = T_leaf of 'a task_result | T_subtree of 'a subtree

let fresh_ctx ~env ~states ~histories ~max_steps ~max_crashes ~property ~dedup
    ~run_cap =
  {
    env;
    states;
    histories;
    max_steps;
    max_crashes;
    property;
    visited = (if dedup then Some (Hashtbl.create 512) else None);
    run_cap;
    runs = 0;
    truncated = 0;
    cex = None;
    pruned_states = 0;
    pruned_commutes = 0;
    exhausted = false;
  }

let task_result_of_ctx ctx =
  {
    t_runs = ctx.runs;
    t_truncated = ctx.truncated;
    t_cex = ctx.cex;
    t_pruned_states = ctx.pruned_states;
    t_pruned_commutes = ctx.pruned_commutes;
    t_exhausted = ctx.exhausted;
  }

(* Explore one captured subtree to completion. The subtree's state is
   never consumed: the DFS works on copies of the process arrays and
   rolls the (task-private) environment back to its root on every exit
   path, so running the same subtree twice gives the same answer — the
   merge relies on this to recompute any task the pool skipped. *)
let run_subtree ~dedup ~max_steps ~max_crashes ~run_cap ~property
    (s : 'a subtree) =
  Env.enable_journal s.s_env;
  let cp0 = Env.checkpoint s.s_env in
  let ctx =
    fresh_ctx ~env:s.s_env ~states:(Array.copy s.s_states)
      ~histories:(Array.copy s.s_histories) ~max_steps ~max_crashes ~property
      ~dedup ~run_cap
  in
  (try
     dfs ctx ~frontier:None ~on_run:(finish ctx) s.s_depth s.s_crashes
       s.s_rev_crashed s.s_rev_choices s.s_sleep
   with Task_stop -> Env.rollback s.s_env cp0);
  Env.disable_journal s.s_env;
  task_result_of_ctx ctx

(* Phase A: walk the tree sequentially down to [frontier_depth], with
   the same dedup/sleep machinery, emitting work in DFS order — runs
   completing above the frontier come out as already-resolved leaf
   tasks, frontier nodes as subtree tasks. The frontier depth must not
   depend on [jobs], or different job counts would slice the tree
   differently; it never does. *)
let explore_tasks ~dedup ~frontier_depth ~max_steps ~max_crashes ~max_runs
    ~property ~make () =
  let env0, progs = make () in
  Env.enable_journal env0;
  let n = Array.length progs in
  let ctx =
    fresh_ctx ~env:env0
      ~states:(Array.map (fun p -> Running p) progs)
      ~histories:(Array.make n []) ~max_steps ~max_crashes ~property ~dedup
      ~run_cap:max_int
  in
  let emitted = ref [] in
  let n_emitted = ref 0 in
  let emit e =
    emitted := e :: !emitted;
    incr n_emitted;
    (* Every task yields at least one run, so after [max_runs] tasks the
       merge can never include another: stop splitting. *)
    if !n_emitted >= max_runs then raise Phase_stop
  in
  let on_run ~truncated rev_crashed rev_choices =
    let run = mk_run ctx ~truncated rev_crashed rev_choices in
    let cex =
      match property run with Ok () -> None | Error msg -> Some (run, msg)
    in
    emit
      (T_leaf
         {
           t_runs = 1;
           t_truncated = (if truncated then 1 else 0);
           t_cex = cex;
           t_pruned_states = 0;
           t_pruned_commutes = 0;
           t_exhausted = false;
         });
    (* Any task after a counterexample can never be merged. *)
    if cex <> None then raise Phase_stop
  in
  let capture ~depth ~crashes ~rev_crashed ~rev_choices ~sleep =
    emit
      (T_subtree
         {
           s_env = Env.copy ctx.env;
           s_states = Array.copy ctx.states;
           s_histories = Array.copy ctx.histories;
           s_depth = depth;
           s_crashes = crashes;
           s_rev_crashed = rev_crashed;
           s_rev_choices = rev_choices;
           s_sleep = sleep;
         })
  in
  (try
     dfs ctx ~frontier:(Some (frontier_depth, capture)) ~on_run 0 0 [] [] []
   with Phase_stop -> ());
  Env.disable_journal env0;
  (Array.of_list (List.rev !emitted), ctx.pruned_states, ctx.pruned_commutes)

(* ------------------------------------------------------------------ *)
(* Sharding hooks: a plan is the jobs-independent slicing of the tree   *)
(* ------------------------------------------------------------------ *)

(* Everything the merge needs, computed once. The plan is built by the
   same phase-A walk regardless of who executes the tasks (in-process
   domains, or worker processes in [Dist]); because phase A is
   deterministic, a coordinator and its re-exec'd workers construct the
   very same plan from the same parameters, and a task index is a
   complete description of a unit of work. *)
type 'a plan = {
  pl_tasks : 'a task array;
  pl_phase_pruned_states : int;
  pl_phase_pruned_commutes : int;
  pl_dedup : bool;
  pl_max_steps : int;
  pl_max_crashes : int;
  pl_max_runs : int;
  pl_property : 'a run -> (unit, string) Stdlib.result;
}

let plan ?(max_crashes = 0) ?(max_runs = 2_000_000) ?(dedup = true)
    ?(frontier_depth = 3) ~max_steps ~make ~property () =
  let tasks, phase_pruned_states, phase_pruned_commutes =
    explore_tasks ~dedup ~frontier_depth ~max_steps ~max_crashes ~max_runs
      ~property ~make ()
  in
  {
    pl_tasks = tasks;
    pl_phase_pruned_states = phase_pruned_states;
    pl_phase_pruned_commutes = phase_pruned_commutes;
    pl_dedup = dedup;
    pl_max_steps = max_steps;
    pl_max_crashes = max_crashes;
    pl_max_runs = max_runs;
    pl_property = property;
  }

let plan_tasks p = Array.length p.pl_tasks

type task_summary = {
  ts_leaf : bool;
  ts_runs : int;
  ts_truncated : int;
  ts_cex : bool;
  ts_pruned_states : int;
  ts_pruned_commutes : int;
  ts_exhausted : bool;
}

let summary_of_result ~leaf (r : 'a task_result) =
  {
    ts_leaf = leaf;
    ts_runs = r.t_runs;
    ts_truncated = r.t_truncated;
    ts_cex = r.t_cex <> None;
    ts_pruned_states = r.t_pruned_states;
    ts_pruned_commutes = r.t_pruned_commutes;
    ts_exhausted = r.t_exhausted;
  }

(* Execute one task of the plan. Leaves were resolved during phase A;
   subtrees are re-runnable any number of times (see [run_subtree]), so
   a skipped or remotely-computed task can always be recomputed here. *)
let task_outcome p i =
  match p.pl_tasks.(i) with
  | T_leaf r -> (summary_of_result ~leaf:true r, r.t_cex)
  | T_subtree s ->
      let r =
        run_subtree ~dedup:p.pl_dedup ~max_steps:p.pl_max_steps
          ~max_crashes:p.pl_max_crashes ~run_cap:p.pl_max_runs
          ~property:p.pl_property s
      in
      (summary_of_result ~leaf:false r, r.t_cex)

(* Merge strictly in task (= DFS) order. Budget and counterexample
   cut-offs are decided here, from per-task totals, so the outcome is a
   pure function of the summaries — identical at any job count, and
   identical whether summaries came from domains or worker processes.
   [outcome_of] must supply the full counterexample for tasks whose
   summary says [ts_cex]; a caller holding only a remote summary re-runs
   that task locally ([task_outcome] is deterministic). Metrics are
   accounted from the summaries: leaves always create [explore.runs]
   (their single run), subtrees create run counters only when non-zero
   but always create both pruning counters — mirroring what a per-task
   registry used to record, so snapshots are stable across versions. *)
let merge_plan ?metrics ?on_progress p ~outcome_of =
  let ntasks = Array.length p.pl_tasks in
  let explored = ref 0 in
  let truncated = ref 0 in
  let pruned_s = ref p.pl_phase_pruned_states in
  let pruned_c = ref p.pl_phase_pruned_commutes in
  let cex = ref None in
  let exhausted = ref false in
  (try
     for i = 0 to ntasks - 1 do
       if !explored >= p.pl_max_runs then begin
         exhausted := true;
         raise Found
       end;
       let (s : task_summary), c = outcome_of i in
       explored := !explored + s.ts_runs;
       truncated := !truncated + s.ts_truncated;
       pruned_s := !pruned_s + s.ts_pruned_states;
       pruned_c := !pruned_c + s.ts_pruned_commutes;
       (match metrics with
       | Some m ->
           if s.ts_leaf then begin
             Metrics.incr ~by:s.ts_runs (Metrics.counter m "explore.runs");
             if s.ts_truncated > 0 then
               Metrics.incr ~by:s.ts_truncated
                 (Metrics.counter m "explore.truncated");
             if s.ts_cex then
               Metrics.incr (Metrics.counter m "explore.counterexamples")
           end
           else begin
             if s.ts_runs > 0 then
               Metrics.incr ~by:s.ts_runs (Metrics.counter m "explore.runs");
             if s.ts_truncated > 0 then
               Metrics.incr ~by:s.ts_truncated
                 (Metrics.counter m "explore.truncated");
             if s.ts_cex then
               Metrics.incr (Metrics.counter m "explore.counterexamples");
             Metrics.incr ~by:s.ts_pruned_states
               (Metrics.counter m "explore.pruned_states");
             Metrics.incr ~by:s.ts_pruned_commutes
               (Metrics.counter m "explore.pruned_commutes")
           end
       | None -> ());
       heartbeat on_progress !explored;
       if s.ts_cex then begin
         (match c with
         | Some c -> cex := Some c
         | None ->
             (* the summary says this task found the counterexample, so a
                local deterministic re-run recovers the full record *)
             cex := snd (task_outcome p i));
         raise Found
       end;
       if s.ts_exhausted then begin
         exhausted := true;
         raise Found
       end
     done;
     if !explored >= p.pl_max_runs then exhausted := true
   with Found -> ());
  note_by metrics "explore.pruned_states" p.pl_phase_pruned_states;
  note_by metrics "explore.pruned_commutes" p.pl_phase_pruned_commutes;
  {
    explored = !explored;
    counterexample = !cex;
    exhausted_budget = !exhausted;
    pruned_states = !pruned_s;
    pruned_commutes = !pruned_c;
  }

let exhaustive ?max_crashes ?max_runs ?metrics ?on_progress ?(jobs = 1)
    ?oversubscribe ?dedup ?frontier_depth ~max_steps ~make ~property () =
  let p =
    plan ?max_crashes ?max_runs ?dedup ?frontier_depth ~max_steps ~make
      ~property ()
  in
  let ntasks = plan_tasks p in
  (* Lowest task index with a counterexample found so far: the merge
     stops there, so any task beyond it is dead work and workers skip
     it. Monotonically decreasing, hence safe to race on. *)
  let best_cex = Atomic.make max_int in
  let rec note_cex i =
    let cur = Atomic.get best_cex in
    if i < cur && not (Atomic.compare_and_set best_cex cur i) then note_cex i
  in
  let run_task i =
    let ((s, _) as outcome) = task_outcome p i in
    if s.ts_cex then note_cex i;
    outcome
  in
  let results =
    Par.run ~jobs ?oversubscribe
      ~skip:(fun i -> i > Atomic.get best_cex)
      ~tasks:ntasks run_task
  in
  merge_plan ?metrics ?on_progress p ~outcome_of:(fun i ->
      match results.(i) with Some r -> r | None -> task_outcome p i)

(* ------------------------------------------------------------------ *)
(* Reference engine: the original copy-per-branch DFS                   *)
(* ------------------------------------------------------------------ *)

(* Kept verbatim as the baseline the bench's EX row measures speedups
   against, and as a differential oracle for the journal engine. *)
let exhaustive_copy ?(max_crashes = 0) ?(max_runs = 2_000_000) ~max_steps ~make
    ~property () =
  let env0, progs = make () in
  let explored = ref 0 in
  let counterexample = ref None in
  let exhausted = ref false in
  let finish states crashed truncated rev_choices =
    let outcomes =
      Array.map
        (function
          | Running _ -> Exec.Blocked
          | Done v -> Exec.Decided v
          | Crashed -> Exec.Crashed)
        states
    in
    let run =
      {
        outcomes;
        crashed = List.rev crashed;
        truncated;
        schedule = schedule_string rev_choices;
      }
    in
    incr explored;
    (match property run with
    | Ok () -> ()
    | Error msg ->
        counterexample := Some (run, msg);
        raise Found);
    if !explored >= max_runs then begin
      exhausted := true;
      raise Found
    end
  in
  let rec dfs env states depth crashes crashed rev_choices =
    let live =
      Array.to_list states
      |> List.mapi (fun i s -> (i, s))
      |> List.filter_map (fun (i, s) ->
             match s with Running _ -> Some i | Done _ | Crashed -> None)
    in
    if live = [] then finish states crashed false rev_choices
    else if depth >= max_steps then finish states crashed true rev_choices
    else
      List.iter
        (fun pid ->
          (match states.(pid) with
          | Running prog ->
              let env' = Env.copy env in
              let states' = Array.copy states in
              (match prog with
              | Prog.Done v -> states'.(pid) <- Done v
              | Prog.Step (op, k) ->
                  let r = Env.apply env' ~pid op in
                  states'.(pid) <- Running (k r));
              dfs env' states' (depth + 1) crashes crashed
                (Step pid :: rev_choices)
          | Done _ | Crashed -> assert false);
          if crashes < max_crashes then begin
            let states' = Array.copy states in
            states'.(pid) <- Crashed;
            dfs (Env.copy env) states' (depth + 1) (crashes + 1)
              (pid :: crashed)
              (Crash pid :: rev_choices)
          end)
        live
  in
  (try dfs env0 (Array.map (fun p -> Running p) progs) 0 0 [] []
   with Found -> ());
  {
    explored = !explored;
    counterexample = !counterexample;
    exhausted_budget = !exhausted;
    pruned_states = 0;
    pruned_commutes = 0;
  }

(* ------------------------------------------------------------------ *)
(* Systematic fault-box sweeping under online monitors                  *)
(* ------------------------------------------------------------------ *)

type fault_point = { victim : int; op : int; kind : Adversary.fault_kind }

type fault_schedule = { scheduler : string; faults : fault_point list }

let pp_fault_point ppf { victim; op; kind } =
  Format.fprintf ppf "p%d@op%d%s" victim op
    (match kind with
    | Adversary.Crash_stop -> ""
    | k -> ":" ^ Adversary.fault_kind_name k)

let pp_fault_schedule ppf { scheduler; faults } =
  Format.fprintf ppf "%s + [%s]" scheduler
    (String.concat "; "
       (List.map (Format.asprintf "%a" pp_fault_point) faults))

type found = {
  fault : fault_schedule;
  shrunk : fault_schedule;
  violation : Monitor.violation;  (** from the run of the shrunk schedule *)
  shrink_runs : int;
  replay : string;
}

type sweep_outcome = {
  runs : int;
  found : found option;
  deadlock : fault_schedule option;
  exhausted : bool;
}

let default_schedulers ~nprocs =
  [
    ("round-robin", fun () -> Adversary.round_robin ());
    ("priority-asc", fun () -> Adversary.priority (List.init nprocs Fun.id));
    ( "priority-desc",
      fun () -> Adversary.priority (List.rev (List.init nprocs Fun.id)) );
    ("random(1)", fun () -> Adversary.random ~seed:1);
    ("random(2)", fun () -> Adversary.random ~seed:2);
  ]

type verdict = Clean | Deadlocked | Violating of Monitor.violation

let run_fault ?(budget = 20_000) ~make ~monitors ~scheduler faults =
  let env, progs = make () in
  let specs =
    List.map
      (fun { victim; op; kind } ->
        {
          Adversary.kind;
          trigger = Adversary.Crash_at_local { pid = victim; step = op };
        })
      faults
  in
  let adversary = Adversary.with_faults (scheduler ()) specs in
  match
    Exec.run ~budget ~record_trace:true ~monitors:(monitors ()) ~env ~adversary
      progs
  with
  | r ->
      (* "All processes stuck" is a finding of the omission tier, not a
         crash of the checker: the run ended with nobody decided and
         nobody even runnable. *)
      let halted =
        Array.for_all
          (function
            | Exec.Crashed | Exec.Stuck -> true
            | Exec.Decided _ | Exec.Blocked -> false)
          r.Exec.outcomes
      in
      if halted && r.Exec.stuck <> [] then Deadlocked else Clean
  | exception Monitor.Violation v -> Violating v
  | exception Adversary.Deadlock -> Deadlocked

(* Delta-debugging: drop fault points, then weaken surviving fault kinds
   toward plain crash-stop, then pull the op-indices toward 0, then try
   collapsing the scheduler to round-robin. The scheduler is resolved
   once up front, every candidate — including the scheduler collapse —
   is validated through the same [attempt] path, and the last accepted
   (schedule, violation) pair is carried through, so the result is a
   genuine violating schedule with its own violation. *)
let shrink ?budget ~make ~monitors ~schedulers fault violation0 =
  let runs = ref 0 in
  let best = ref (fault, violation0) in
  let resolve name =
    match List.assoc_opt name schedulers with
    | Some s -> Some (name, s)
    | None -> None
  in
  let attempt (name, scheduler) faults =
    incr runs;
    match run_fault ?budget ~make ~monitors ~scheduler faults with
    | Violating v ->
        best := ({ scheduler = name; faults }, v);
        true
    | Clean | Deadlocked -> false
  in
  let sched =
    match resolve fault.scheduler with
    | Some s -> s
    | None ->
        invalid_arg
          (Printf.sprintf "Explore.shrink: scheduler %S is not in schedulers"
             fault.scheduler)
  in
  let violates faults = attempt sched faults in
  let rec drop_points faults =
    let rec try_drop i =
      if i >= List.length faults then faults
      else
        let candidate = List.filteri (fun j _ -> j <> i) faults in
        if violates candidate then drop_points candidate else try_drop (i + 1)
    in
    try_drop 0
  in
  let weaken_kinds faults =
    List.mapi
      (fun i p ->
        if p.kind = Adversary.Crash_stop then p
        else
          let weakened = { p with kind = Adversary.Crash_stop } in
          let candidate =
            List.mapi (fun j q -> if j = i then weakened else q) faults
          in
          if violates candidate then weakened else p)
      faults
  in
  let lower_indices faults =
    List.mapi
      (fun i p ->
        let rec lowest cand =
          if cand >= p.op then p
          else
            let candidate =
              List.mapi
                (fun j q -> if j = i then { p with op = cand } else q)
                faults
            in
            if violates candidate then { p with op = cand }
            else lowest (cand + 1)
        in
        lowest 0)
      faults
  in
  let faults = lower_indices (weaken_kinds (drop_points fault.faults)) in
  (if fault.scheduler <> "round-robin" then
     match resolve "round-robin" with
     | Some rr -> ignore (attempt rr faults : bool)
     | None -> ());
  let shrunk, violation = !best in
  (shrunk, violation, !runs)

let fault_sets ~nprocs ~kinds ~max_faults ~op_window =
  let kinds = match kinds with [] -> [ Adversary.Crash_stop ] | ks -> ks in
  let rec assignments = function
    | [] -> [ [] ]
    | pid :: rest ->
        let tails = assignments rest in
        List.concat_map
          (fun kind ->
            List.concat_map
              (fun op ->
                List.map (fun tl -> { victim = pid; op; kind } :: tl) tails)
              (List.init op_window Fun.id))
          kinds
  in
  let sizes = List.init (max 0 max_faults) (fun s -> s + 1) in
  [] (* the fault-free schedule first *)
  :: List.concat_map
       (fun size ->
         Combin.subsets ~n:nprocs ~size |> List.concat_map assignments)
       sizes

(* ------------------------------------------------------------------ *)
(* Sweep sharding hooks: the cell grid and the in-order merge           *)
(* ------------------------------------------------------------------ *)

(* The flattened scheduler × fault-set product, in sweep order. Like an
   exploration {!plan}, the grid is a pure function of the sweep
   parameters: a coordinator and its worker processes enumerate the
   same descriptors, so a cell index fully identifies one run. *)
type 'a sweep_plan = {
  sp_make : unit -> Env.t * 'a Prog.t array;
  sp_monitors : unit -> 'a Monitor.t list;
  sp_schedulers : (string * (unit -> Adversary.t)) list;
  sp_descriptors : (string * (unit -> Adversary.t) * fault_point list) array;
  sp_budget : int option;
  sp_meta : (string * string) list;
  sp_max_runs : int;
}

let sweep_plan ?(kinds = [ Adversary.Crash_stop ]) ?(max_faults = 1)
    ?(op_window = 6) ?(max_runs = 5_000) ?budget ?schedulers ?(meta = [])
    ~make ~monitors () =
  let env0, _ = make () in
  let nprocs = Env.nprocs env0 in
  let schedulers =
    match schedulers with
    | Some s -> s
    | None -> default_schedulers ~nprocs
  in
  let fault_box = fault_sets ~nprocs ~kinds ~max_faults ~op_window in
  (* Flatten the scheduler × fault-set product into run descriptors in
     sweep order; each descriptor is one independent run (fresh env,
     programs, monitors, adversary), so runs parallelise with no shared
     state and the merge reads verdicts back in sweep order —
     byte-identical outcomes at any job or worker count. *)
  let descriptors =
    List.concat_map
      (fun (sched_name, scheduler) ->
        List.map (fun faults -> (sched_name, scheduler, faults)) fault_box)
      schedulers
    |> Array.of_list
  in
  {
    sp_make = make;
    sp_monitors = monitors;
    sp_schedulers = schedulers;
    sp_descriptors = descriptors;
    sp_budget = budget;
    sp_meta = meta;
    sp_max_runs = max_runs;
  }

let sweep_cells p = min (Array.length p.sp_descriptors) p.sp_max_runs

let sweep_cell p i =
  let _, scheduler, faults = p.sp_descriptors.(i) in
  run_fault ?budget:p.sp_budget ~make:p.sp_make ~monitors:p.sp_monitors
    ~scheduler faults

let sweep_cell_schedule p i =
  let sched_name, _, faults = p.sp_descriptors.(i) in
  { scheduler = sched_name; faults }

(* In-order merge of per-cell verdicts. [verdict_of] may be backed by
   in-process results or by tags shipped from worker processes; a
   remote [Violating] carries no violation payload, so such callers map
   the tag back through {!sweep_cell} (deterministic) before merging —
   which is also why shrinking always happens here, locally, after the
   merge. *)
let sweep_merge ?metrics ?on_progress p ~verdict_of =
  let n_dispatch = sweep_cells p in
  let runs = ref 0 in
  let found = ref None in
  let deadlock = ref None in
  let exhausted = ref false in
  (try
     for i = 0 to n_dispatch - 1 do
       let verdict = verdict_of i in
       incr runs;
       note metrics "sweep.runs";
       heartbeat on_progress !runs;
       let sched_name, _, faults = p.sp_descriptors.(i) in
       match verdict with
       | Clean -> note metrics "sweep.verdict.clean"
       | Deadlocked ->
           note metrics "sweep.verdict.deadlocked";
           if !deadlock = None then
             deadlock := Some { scheduler = sched_name; faults }
       | Violating v ->
           note metrics "sweep.verdict.violating";
           let fault = { scheduler = sched_name; faults } in
           let shrunk, violation, shrink_runs =
             shrink ?budget:p.sp_budget ~make:p.sp_make ~monitors:p.sp_monitors
               ~schedulers:p.sp_schedulers fault v
           in
           note_by metrics "sweep.shrink_runs" shrink_runs;
           let replay =
             let t =
               match violation.Monitor.trace with
               | Some t -> t
               | None -> Trace.create () (* run_fault records traces *)
             in
             Trace.to_replay
               ~meta:
                 (p.sp_meta
                 @ [
                     ("monitor", violation.Monitor.monitor);
                     ("message", violation.Monitor.message);
                     ("step", string_of_int violation.Monitor.step);
                     ("pid", string_of_int violation.Monitor.pid);
                     ( "schedule",
                       Format.asprintf "%a" pp_fault_schedule shrunk );
                   ])
               t
           in
           found := Some { fault; shrunk; violation; shrink_runs; replay };
           raise Found
     done;
     if Array.length p.sp_descriptors > p.sp_max_runs then exhausted := true
   with Found -> ());
  {
    runs = !runs;
    found = !found;
    deadlock = !deadlock;
    exhausted = !exhausted;
  }

let sweep_faults ?kinds ?max_faults ?op_window ?max_runs ?budget ?schedulers
    ?meta ?metrics ?on_progress ?(jobs = 1) ?oversubscribe ~make ~monitors ()
    =
  let p =
    sweep_plan ?kinds ?max_faults ?op_window ?max_runs ?budget ?schedulers
      ?meta ~make ~monitors ()
  in
  let n_dispatch = sweep_cells p in
  let best = Atomic.make max_int in
  let rec note_violating i =
    let cur = Atomic.get best in
    if i < cur && not (Atomic.compare_and_set best cur i) then
      note_violating i
  in
  let run_one i =
    match sweep_cell p i with
    | Violating _ as v ->
        note_violating i;
        v
    | v -> v
  in
  let results =
    Par.run ~jobs ?oversubscribe
      ~skip:(fun i -> i > Atomic.get best)
      ~tasks:n_dispatch run_one
  in
  sweep_merge ?metrics ?on_progress p ~verdict_of:(fun i ->
      match results.(i) with
      | Some v -> v
      | None ->
          (* skipped past the first violation; only reachable if the
             merge still needs it, and re-running is deterministic *)
          sweep_cell p i)

let sweep_crashes ?max_crashes ?op_window ?max_runs ?budget ?schedulers ?meta
    ?metrics ?on_progress ?jobs ?oversubscribe ~make ~monitors () =
  sweep_faults
    ~kinds:[ Adversary.Crash_stop ]
    ?max_faults:max_crashes ?op_window ?max_runs ?budget ?schedulers ?meta
    ?metrics ?on_progress ?jobs ?oversubscribe ~make ~monitors ()

let replay ?budget ?metrics ~make ~monitors decisions =
  let env, progs = make () in
  let adversary = Adversary.of_replay decisions in
  match
    Exec.run ?budget ~record_trace:true ~monitors:(monitors ()) ?metrics ~env
      ~adversary progs
  with
  | r -> Ok r
  | exception Monitor.Violation v -> Error v
