type 'a run = {
  outcomes : 'a Exec.outcome array;
  crashed : int list;
  truncated : bool;
  schedule : string;
}

type 'a result = {
  explored : int;
  counterexample : ('a run * string) option;
  exhausted_budget : bool;
}

type 'a pstate = Running of 'a Prog.t | Done of 'a | Crashed

type choice = Step of int | Crash of int

let pp_choice = function
  | Step p -> string_of_int p
  | Crash p -> Printf.sprintf "X%d" p

let schedule_string rev_choices =
  String.concat "." (List.rev_map pp_choice rev_choices)

exception Found

let exhaustive ?(max_crashes = 0) ?(max_runs = 2_000_000) ~max_steps ~make
    ~property () =
  let env0, progs = make () in
  let explored = ref 0 in
  let counterexample = ref None in
  let exhausted = ref false in
  let finish states crashed truncated rev_choices =
    let outcomes =
      Array.map
        (function
          | Running _ -> Exec.Blocked
          | Done v -> Exec.Decided v
          | Crashed -> Exec.Crashed)
        states
    in
    let run =
      {
        outcomes;
        crashed = List.rev crashed;
        truncated;
        schedule = schedule_string rev_choices;
      }
    in
    incr explored;
    (match property run with
    | Ok () -> ()
    | Error msg ->
        counterexample := Some (run, msg);
        raise Found);
    if !explored >= max_runs then begin
      exhausted := true;
      raise Found
    end
  in
  (* Depth-first over choices. [states] is immutable per node (arrays are
     copied when branching); [env] is copied when branching. *)
  let rec dfs env states depth crashes crashed rev_choices =
    let live =
      Array.to_list states
      |> List.mapi (fun i s -> (i, s))
      |> List.filter_map (fun (i, s) ->
             match s with Running _ -> Some i | Done _ | Crashed -> None)
    in
    if live = [] then finish states crashed false rev_choices
    else if depth >= max_steps then finish states crashed true rev_choices
    else
      List.iter
        (fun pid ->
          (* Branch 1: pid executes one operation. *)
          (match states.(pid) with
          | Running prog ->
              let env' = Env.copy env in
              let states' = Array.copy states in
              (match prog with
              | Prog.Done v -> states'.(pid) <- Done v
              | Prog.Step (op, k) ->
                  let r = Env.apply env' ~pid op in
                  states'.(pid) <- Running (k r));
              dfs env' states' (depth + 1) crashes crashed
                (Step pid :: rev_choices)
          | Done _ | Crashed -> assert false);
          (* Branch 2: pid crashes instead. *)
          if crashes < max_crashes then begin
            let states' = Array.copy states in
            states'.(pid) <- Crashed;
            dfs (Env.copy env) states' (depth + 1) (crashes + 1)
              (pid :: crashed)
              (Crash pid :: rev_choices)
          end)
        live
  in
  (try dfs env0 (Array.map (fun p -> Running p) progs) 0 0 [] []
   with Found -> ());
  {
    explored = !explored;
    counterexample = !counterexample;
    exhausted_budget = !exhausted;
  }

(* ------------------------------------------------------------------ *)
(* Systematic crash-point sweeping under online monitors                *)
(* ------------------------------------------------------------------ *)

type fault_schedule = { scheduler : string; crashes : (int * int) list }

let pp_fault_schedule ppf { scheduler; crashes } =
  Format.fprintf ppf "%s + [%s]" scheduler
    (String.concat "; "
       (List.map (fun (pid, op) -> Printf.sprintf "p%d@op%d" pid op) crashes))

type found = {
  fault : fault_schedule;
  shrunk : fault_schedule;
  violation : Monitor.violation;  (** from the run of the shrunk schedule *)
  shrink_runs : int;
  replay : string;
}

type sweep_outcome = {
  runs : int;
  found : found option;
  exhausted : bool;
}

let default_schedulers ~nprocs =
  [
    ("round-robin", fun () -> Adversary.round_robin ());
    ("priority-asc", fun () -> Adversary.priority (List.init nprocs Fun.id));
    ( "priority-desc",
      fun () -> Adversary.priority (List.rev (List.init nprocs Fun.id)) );
    ("random(1)", fun () -> Adversary.random ~seed:1);
    ("random(2)", fun () -> Adversary.random ~seed:2);
  ]

let run_fault ?(budget = 20_000) ~make ~monitors ~scheduler crashes =
  let env, progs = make () in
  let specs =
    List.map (fun (pid, step) -> Adversary.Crash_at_local { pid; step }) crashes
  in
  let adversary = Adversary.with_crashes (scheduler ()) specs in
  match
    Exec.run ~budget ~record_trace:true ~monitors:(monitors ()) ~env ~adversary
      progs
  with
  | (_ : _ Exec.result) -> None
  | exception Monitor.Violation v -> Some v

(* Delta-debugging: first drop crash points, then pull the surviving
   op-indices toward 0, then collapse the scheduler to round-robin. Every
   candidate is validated by a full re-run; only still-violating
   candidates are kept, so the result is a genuine violating schedule. *)
let shrink ?budget ~make ~monitors ~schedulers fault =
  let runs = ref 0 in
  let violates ~scheduler crashes =
    incr runs;
    run_fault ?budget ~make ~monitors ~scheduler crashes
  in
  let scheduler_of name = List.assoc name schedulers in
  let rec drop_points crashes =
    let try_without i =
      List.filteri (fun j _ -> j <> i) crashes
    in
    let rec attempt i =
      if i >= List.length crashes then crashes
      else
        let candidate = try_without i in
        match violates ~scheduler:(scheduler_of fault.scheduler) candidate with
        | Some _ -> drop_points candidate
        | None -> attempt (i + 1)
    in
    attempt 0
  in
  let crashes = drop_points fault.crashes in
  let lower_indices crashes =
    List.mapi
      (fun i (pid, op) ->
        let rec best cand =
          if cand >= op then op
          else
            let candidate =
              List.mapi (fun j c -> if j = i then (pid, cand) else c) crashes
            in
            match
              violates ~scheduler:(scheduler_of fault.scheduler) candidate
            with
            | Some _ -> cand
            | None -> best (cand + 1)
        in
        (pid, best 0))
      crashes
  in
  let crashes = lower_indices crashes in
  let scheduler =
    if fault.scheduler = "round-robin" then "round-robin"
    else
      match
        List.assoc_opt "round-robin" schedulers
        |> Option.map (fun s -> violates ~scheduler:s crashes)
      with
      | Some (Some _) -> "round-robin"
      | Some None | None -> fault.scheduler
  in
  let shrunk = { scheduler; crashes } in
  match violates ~scheduler:(scheduler_of scheduler) crashes with
  | Some violation -> (shrunk, violation, !runs)
  | None ->
      (* Unreachable: every kept candidate was validated by a re-run. *)
      assert false

let crash_sets ~nprocs ~max_crashes ~op_window =
  let rec assignments = function
    | [] -> [ [] ]
    | pid :: rest ->
        let tails = assignments rest in
        List.concat_map
          (fun op -> List.map (fun tl -> (pid, op) :: tl) tails)
          (List.init op_window Fun.id)
  in
  let sizes = List.init (max 0 max_crashes) (fun s -> s + 1) in
  [] (* the crash-free schedule first *)
  :: List.concat_map
       (fun size ->
         Combin.subsets ~n:nprocs ~size |> List.concat_map assignments)
       sizes

let sweep_crashes ?(max_crashes = 1) ?(op_window = 6) ?(max_runs = 5_000)
    ?budget ?schedulers ?(meta = []) ~make ~monitors () =
  let env0, _ = make () in
  let nprocs = Env.nprocs env0 in
  let schedulers =
    match schedulers with
    | Some s -> s
    | None -> default_schedulers ~nprocs
  in
  let faults = crash_sets ~nprocs ~max_crashes ~op_window in
  let runs = ref 0 in
  let found = ref None in
  let exhausted = ref false in
  (try
     List.iter
       (fun (sched_name, scheduler) ->
         List.iter
           (fun crashes ->
             if !runs >= max_runs then begin
               exhausted := true;
               raise Found
             end;
             incr runs;
             match run_fault ?budget ~make ~monitors ~scheduler crashes with
             | None -> ()
             | Some _ ->
                 let fault = { scheduler = sched_name; crashes } in
                 let shrunk, violation, shrink_runs =
                   shrink ?budget ~make ~monitors ~schedulers fault
                 in
                 let replay =
                   match violation.Monitor.trace with
                   | None -> assert false (* run_fault records traces *)
                   | Some t ->
                       Trace.to_replay
                         ~meta:
                           (meta
                           @ [
                               ("monitor", violation.Monitor.monitor);
                               ("message", violation.Monitor.message);
                               ( "step",
                                 string_of_int violation.Monitor.step );
                               ("pid", string_of_int violation.Monitor.pid);
                               ( "schedule",
                                 Format.asprintf "%a" pp_fault_schedule shrunk
                               );
                             ])
                         t
                 in
                 found := Some { fault; shrunk; violation; shrink_runs; replay };
                 raise Found)
           faults)
       schedulers
   with Found -> ());
  { runs = !runs; found = !found; exhausted = !exhausted }

let replay ?budget ~make ~monitors decisions =
  let env, progs = make () in
  let adversary = Adversary.of_replay decisions in
  match
    Exec.run ?budget ~record_trace:true ~monitors:(monitors ()) ~env ~adversary
      progs
  with
  | r -> Ok r
  | exception Monitor.Violation v -> Error v
